//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched.  This vendored stub implements the subset of the API
//! the workspace's benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — as a small but honest
//! wall-clock harness: every benchmark is warmed up, then timed over enough
//! iterations to fill a fixed measurement window, and the median of several
//! samples is reported in ns/iter (plus derived element throughput).
//!
//! It is wired in through the path entries in `[workspace.dependencies]` of
//! the workspace `Cargo.toml` (a `[patch.crates-io]` table would still need
//! registry access); point those entries back at registry versions to
//! restore the real dependency once a registry is reachable.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    /// Measurement window per sample; kept short so `cargo bench` over the
    /// whole suite stays fast.
    measurement: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement: Duration::from_millis(40),
            samples: 7,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id.render(), None, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of logical elements processed per iteration, so the
    /// report can derive elements/second.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timing samples (kept for API compatibility;
    /// clamped to a small value).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.clamp(3, 15));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().render());
        let samples = self.sample_size;
        let throughput = self.throughput.clone();
        let criterion = &mut *self.criterion;
        if let Some(s) = samples {
            let saved = criterion.samples;
            criterion.samples = s;
            run_benchmark(criterion, &full, throughput.as_ref(), &mut f);
            criterion.samples = saved;
        } else {
            run_benchmark(criterion, &full, throughput.as_ref(), &mut f);
        }
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report-only in the real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function` with parameter `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Logical work performed per iteration, used to derive throughput.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; times the routine under measurement.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(criterion: &Criterion, name: &str, throughput: Option<&Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: find an iteration count that roughly fills the window.
    let mut iterations = 1u64;
    loop {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= criterion.measurement || iterations >= 1 << 30 {
            break;
        }
        let per_iter = b.elapsed.as_nanos().max(1) as u64 / iterations.max(1);
        let target = criterion.measurement.as_nanos() as u64;
        iterations = (target / per_iter.max(1)).clamp(iterations * 2, iterations * 128);
    }
    // Measure: several samples, report the median.
    let mut per_iter_ns: Vec<f64> = (0..criterion.samples)
        .map(|_| {
            let mut b = Bencher {
                iterations,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iterations as f64
        })
        .collect();
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mut line = format!("{name:<60} {median:>12.1} ns/iter");
    match throughput {
        Some(Throughput::Elements(n)) => {
            let _ = write!(line, " {:>14.3} Melem/s", *n as f64 / median * 1e9 / 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            let _ = write!(
                line,
                " {:>14.3} MiB/s",
                *n as f64 / median * 1e9 / (1 << 20) as f64
            );
        }
        None => {}
    }
    println!("{line}");
}

/// Collects benchmark functions into a named runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Entry point running every group passed to it, mirroring criterion's macro
/// of the same name.  Command-line arguments (as passed by `cargo bench`) are
/// accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let _args: Vec<String> = std::env::args().collect();
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).render(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(32).render(), "32");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion {
            measurement: Duration::from_micros(200),
            samples: 3,
        };
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
