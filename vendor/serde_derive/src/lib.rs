//! Derive macro for the vendored `serde` stub (see `vendor/serde`).
//!
//! Written against `proc_macro` alone (no `syn`/`quote`, which are equally
//! unavailable offline): it scans the token stream for the `struct`/`enum`
//! keyword, takes the following identifier as the type name, and emits an
//! empty `impl serde::Serialize` for it.  Generic types are out of scope —
//! the workspace only derives on concrete types.

use proc_macro::{TokenStream, TokenTree};

/// Derives the marker `serde::Serialize` impl for a concrete struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return format!("impl serde::Serialize for {name} {{}}")
                        .parse()
                        .expect("generated impl must parse");
                }
                break;
            }
        }
    }
    panic!("#[derive(Serialize)] (vendored stub) supports only non-generic structs and enums");
}
