//! Collection strategies, mirroring `proptest::collection`.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

use crate::Strategy;

/// The allowed sizes of a generated collection: either fixed or a range.
#[derive(Debug, Clone, Copy)]
pub enum SizeRange {
    /// Exactly this many elements.
    Fixed(usize),
    /// A half-open range of element counts.
    Between(usize, usize),
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange::Fixed(n)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange::Between(r.start, r.end)
    }
}

/// Strategy generating `Vec`s whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = match self.size {
            SizeRange::Fixed(n) => n,
            SizeRange::Between(lo, hi) => {
                assert!(lo < hi, "empty size range");
                rng.gen_range(lo..hi)
            }
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of values drawn from `element`, with `size` elements,
/// mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
