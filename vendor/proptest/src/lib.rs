//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest` cannot
//! be fetched.  This vendored stub keeps the same *testing model* — each
//! property runs against many randomly generated cases — for the API subset
//! the workspace uses: the [`proptest!`] macro with `arg in strategy`
//! bindings and an optional `#![proptest_config(..)]` header, range
//! strategies, [`any`], [`collection::vec`], and the `prop_assert*` macros.
//!
//! What it does *not* do is shrink failing cases: a failure reports the
//! case's values (via the `prop_assert*` message) but makes no attempt to
//! minimize them.  Cases are generated from a fixed seed, so failures are
//! reproducible run-to-run.
//!
//! It is wired in through the path entries in `[workspace.dependencies]` of
//! the workspace `Cargo.toml` (a `[patch.crates-io]` table would still need
//! registry access); point those entries back at registry versions to
//! restore the real dependency once a registry is reachable.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRunner,
    };
}

/// Configuration for a `proptest!` block, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Drives the random cases of one property.
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner for the property named `name` (the name seeds the
    /// RNG, so different properties see different — but reproducible — cases).
    #[must_use]
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of cases to run.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The runner's RNG, handed to strategies.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values of one type, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, i64, i32);

/// A strategy that always yields its value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between boxed strategies of a common value type; built
/// by [`prop_oneof!`], mirroring `proptest::strategy::Union`.
pub struct Union<T>(Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Union<T> {
    /// An empty union; [`prop_oneof!`] pushes its arms into this.
    #[must_use]
    pub fn empty() -> Self {
        Union(Vec::new())
    }

    /// Adds one arm to the union.
    pub fn push(&mut self, strategy: impl Strategy<Value = T> + 'static) {
        self.0.push(Box::new(strategy));
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! requires at least one arm");
        let arm = rng.gen_range(0..self.0.len());
        self.0[arm].generate(rng)
    }
}

/// A uniform choice among the listed strategies, mirroring proptest's
/// `prop_oneof!` (without the weighted `w => strategy` arm form).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut union = $crate::Union::empty();
        $(union.push($strategy);)+
        union
    }};
}

/// Strategies that draw from explicit value lists, mirroring
/// `proptest::sample`.
pub mod sample {
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::Strategy;

    /// Strategy produced by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// A uniform choice from `values`, mirroring `proptest::sample::select`.
    #[must_use]
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(
            !values.is_empty(),
            "sample::select requires a non-empty list"
        );
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Types with a canonical "anything" strategy, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, moderate magnitudes: the workspace's properties are
        // numerical and do not probe NaN/∞ through `any`.
        rng.gen_range(-1.0e6..1.0e6)
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Defines property tests: zero or more `#[test] fn name(arg in strategy, ..)
/// { body }` items, optionally preceded by `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr)
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    $( let $arg = $crate::Strategy::generate(&($strategy), runner.rng()); )*
                    let case_values = format!(
                        concat!("case {}: ", $(stringify!($arg), " = {:?}, ",)* ""),
                        case, $(&$arg),*
                    );
                    let run = || -> () { $body };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = outcome {
                        eprintln!("proptest case failed [{}]", case_values);
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a property holds for the current case, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts two values are distinct for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_generate_in_bounds(x in 0.5f64..2.0, n in 1usize..=7, b in any::<bool>()) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((1..=7).contains(&n));
            let _ = b;
        }

        #[test]
        fn vec_strategy_has_requested_length(v in collection::vec(0.0f64..1.0, 5)) {
            prop_assert_eq!(v.len(), 5);
            for x in v {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = crate::TestRunner::new(crate::ProptestConfig::with_cases(4), "p");
        let mut b = crate::TestRunner::new(crate::ProptestConfig::with_cases(4), "p");
        let sa: f64 = crate::Strategy::generate(&(0.0f64..1.0), a.rng());
        let sb: f64 = crate::Strategy::generate(&(0.0f64..1.0), b.rng());
        assert_eq!(sa, sb);
    }
}
