//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the real `serde` cannot be
//! fetched.  The workspace only uses `#[derive(Serialize)]` as a structural
//! marker (JSON emission is hand-rolled where needed), so this stub provides a
//! marker [`Serialize`] trait and a derive macro producing an empty impl.
//!
//! It is wired in through the path entries in `[workspace.dependencies]` of
//! the workspace `Cargo.toml` (a `[patch.crates-io]` table would still need
//! registry access); point those entries back at registry versions to
//! restore the real dependency once a registry is reachable.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// Marker trait standing in for `serde::Serialize`.
///
/// Deriving it documents that a type is plain data safe to emit to external
/// tooling; the actual emission in this workspace is hand-rolled (see
/// `pie_analysis::report`).
pub trait Serialize {}

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl Serialize for f64 {}
impl Serialize for f32 {}
impl Serialize for u64 {}
impl Serialize for u32 {}
impl Serialize for usize {}
impl Serialize for i64 {}
impl Serialize for i32 {}
impl Serialize for bool {}
impl Serialize for String {}
impl Serialize for str {}
