//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access, so the
//! real `rand` cannot be fetched from crates.io.  This vendored stub
//! implements exactly the API surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], and [`Rng::gen_range`] over
//! float and integer ranges — with the same statistical contract (independent
//! uniform draws) but a different, simpler generator (xoshiro256++ seeded via
//! SplitMix64).
//!
//! It is wired in through the path entries in `[workspace.dependencies]` of
//! the workspace `Cargo.toml` (a `[patch.crates-io]` table would still need
//! registry access); point those entries back at registry versions to
//! restore the real dependency once a registry is reachable.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of uniform randomness plus the convenience draws the workspace
/// uses (`gen`, `gen_range`).
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

/// Types that can be drawn from a "standard" distribution, mirroring
/// `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges a uniform value can be drawn from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample(rng);
        let x = self.start + u * (self.end - self.start);
        // `start + u*(end-start)` can round up to exactly `end` even though
        // u < 1; clamp to keep the half-open contract of the real crate.
        if x < self.end {
            x
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Treat the inclusive float range as half-open: for continuous draws
        // the endpoint has probability zero anyway.
        let u: f64 = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize, i64, i32);

/// Unbiased uniform draw from `[0, bound)` by rejection sampling.
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Deterministic construction of a generator from an integer seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the same stream as `rand::rngs::StdRng` (which is ChaCha12), but
    /// the workspace only relies on determinism-per-seed, not on a specific
    /// stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_lie_in_unit_interval_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let z = rng.gen_range(10u64..20);
            assert!((10..20).contains(&z));
        }
    }

    #[test]
    fn integer_draws_cover_small_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
