//! Checkpoint/restore and cross-process sharded merge for
//! [`StreamPipeline`] runs, built on the `pie-store` snapshot codec.
//!
//! PR 2/PR 3 made sampling outcomes mergeable and deterministic *within* a
//! process; this module extends both guarantees across the serialization
//! boundary:
//!
//! * **Checkpoint / resume** — [`StreamPipeline::ingest_session`] opens an
//!   incremental [`StreamIngestSession`] that replays the record stream in a
//!   canonical order and can [`checkpoint`](StreamIngestSession::checkpoint)
//!   its per-`(instance, shard)` sketch state (one snapshot file per part,
//!   plus a [`SnapshotManifest`] recording the format version, scheme, seed
//!   state, and record watermark) at any point.  A fresh process configures
//!   an identical pipeline and calls [`StreamPipeline::resume`]; after the
//!   remaining records are ingested, [`StreamIngestSession::finish`]
//!   produces a report **bit-identical** to the uninterrupted
//!   [`StreamPipeline::run`].
//! * **Cross-process sharded merge** — independent processes each own one
//!   key-partitioned shard: [`StreamPipeline::write_shard_snapshots`]
//!   ingests only that shard's records and writes its sketch snapshots; a
//!   coordinating process calls [`StreamPipeline::run_from_shard_snapshots`]
//!   to load every shard's files, feed them through the same binary merge
//!   tree as in-process ingestion ([`merge_finalize`]), and estimate —
//!   again bit-identical to the single-process run.
//!
//! Both paths work because the hash-seeded sketches are pure functions of
//! `(records, seeds)` and the codec round-trips their state bitwise; no
//! statistical property depends on *where* a sketch was built.
//!
//! ```
//! use partial_info_estimators::{Scheme, Statistic, StreamPipeline};
//! use partial_info_estimators::core::suite::max_weighted_suite;
//! use partial_info_estimators::datagen::{generate_two_hours, TrafficConfig};
//! use std::sync::Arc;
//!
//! let data = Arc::new(generate_two_hours(&TrafficConfig::small(3)));
//! let configure = || StreamPipeline::new()
//!     .dataset(Arc::clone(&data))
//!     .scheme(Scheme::pps(200.0))
//!     .shards(2)
//!     .estimators(max_weighted_suite())
//!     .statistic(Statistic::max_dominance())
//!     .trials(5);
//!
//! let dir = std::env::temp_dir().join(format!("pie-ckpt-doc-{}", std::process::id()));
//!
//! // Ingest half the stream, checkpoint, and drop the session.
//! let mut session = configure().ingest_session().unwrap();
//! let half = session.total_records() / 2;
//! session.ingest_records(half);
//! session.checkpoint(&dir).unwrap();
//! drop(session);
//!
//! // A fresh, identically configured pipeline resumes and finishes.
//! let mut resumed = configure().resume(&dir).unwrap();
//! resumed.ingest_all();
//! let report = resumed.finish().unwrap();
//!
//! // Bit-identical to the uninterrupted run.
//! assert_eq!(report, configure().run().unwrap());
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use pie_datagen::{Dataset, ShardedStream};
use pie_sampling::{
    InstanceSample, Key, ObliviousPoissonSampler, PpsPoissonSampler, SamplingScheme,
    SeedAssignment, Sketch,
};
use pie_store::{Decode, Encode, SnapshotReader, SnapshotWriter, StoreError};

use crate::pipeline::{
    run_oblivious_with, run_pps_with, validate_scheme, EstimatorSet, PipelineError, PipelineReport,
    Scheme, Statistic, TrialPlan,
};
use crate::stream::{merge_finalize, StreamPipeline};

/// The checkpoint manifest's file name inside a snapshot directory.
pub const MANIFEST_FILE: &str = "manifest.pies";

/// The snapshot file holding one `(instance, shard)` part's per-trial
/// sketches.
fn part_file_name(instance: usize, shard: usize) -> String {
    format!("part_i{instance}_s{shard}.pies")
}

/// The manifest written by one shard-export process (named per shard so
/// independent writers never collide in a shared directory).
fn shard_manifest_name(shard: usize) -> String {
    format!("manifest_s{shard}.pies")
}

/// Why a checkpoint, resume, or cross-process merge failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The pipeline configuration itself is invalid (missing stage, bad
    /// scheme parameter, regime mismatch).
    Pipeline(PipelineError),
    /// Reading or writing snapshot files failed (I/O, corruption, version
    /// or manifest mismatch — see the wrapped [`StoreError`]).
    Store(StoreError),
    /// [`StreamIngestSession::finish`] was called before every record was
    /// ingested.
    Incomplete {
        /// Records ingested so far.
        ingested: u64,
        /// Records in the full stream.
        total: u64,
    },
    /// A shard index at or beyond the configured shard count.
    ShardOutOfRange {
        /// The requested shard.
        shard: usize,
        /// The configured shard count.
        shards: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Pipeline(e) => write!(f, "{e}"),
            Self::Store(e) => write!(f, "{e}"),
            Self::Incomplete { ingested, total } => write!(
                f,
                "cannot finish: only {ingested} of {total} records ingested (checkpoint and resume, or keep ingesting)"
            ),
            Self::ShardOutOfRange { shard, shards } => {
                write!(f, "shard {shard} out of range: pipeline has {shards} shards")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Pipeline(e) => Some(e),
            Self::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for CheckpointError {
    fn from(e: PipelineError) -> Self {
        Self::Pipeline(e)
    }
}

impl From<StoreError> for CheckpointError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

/// What a snapshot directory holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A mid-stream checkpoint of a full (all-shard) ingest session.
    Checkpoint {
        /// Records ingested before the checkpoint, in the canonical
        /// (instance-major, shard-major, part-order) record order.
        watermark: u64,
    },
    /// A completed single-shard export written by one worker process.
    ShardExport {
        /// The shard this export covers.
        shard: u64,
    },
}

impl Encode for SnapshotKind {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        match *self {
            Self::Checkpoint { watermark } => {
                0u32.encode(w)?;
                watermark.encode(w)
            }
            Self::ShardExport { shard } => {
                1u32.encode(w)?;
                shard.encode(w)
            }
        }
    }
}

impl Decode for SnapshotKind {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        match u32::decode(r)? {
            0 => Ok(Self::Checkpoint {
                watermark: u64::decode(r)?,
            }),
            1 => Ok(Self::ShardExport {
                shard: u64::decode(r)?,
            }),
            tag => Err(StoreError::InvalidTag {
                what: "SnapshotKind",
                tag,
            }),
        }
    }
}

/// The manifest accompanying every snapshot directory: enough configuration
/// to refuse resuming or merging under a different setup.
///
/// The format version itself lives in every snapshot file's frame header
/// ([`pie_store::FORMAT_VERSION`]); the manifest pins the *experiment*
/// parameters — scheme, shard count, trial count, seed state (base salt),
/// stream shape — plus the [`SnapshotKind`] with its watermark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotManifest {
    /// Checkpoint or single-shard export, with the kind-specific cursor.
    pub kind: SnapshotKind,
    /// The sampling scheme the sketches were opened under.
    pub scheme: Scheme,
    /// Number of key-partitioned shards per instance.
    pub shards: u64,
    /// Number of Monte-Carlo trials (one sketch set per trial).
    pub trials: u64,
    /// The base hash salt; trial `t` derives its seeds from `base_salt + t`.
    pub base_salt: u64,
    /// Number of instances in the stream.
    pub num_instances: u64,
    /// Total records in the full (all-shard) stream — a cheap fingerprint of
    /// the dataset the snapshots were built from.
    pub num_records: u64,
}

impl Encode for SnapshotManifest {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.kind.encode(w)?;
        self.scheme.encode(w)?;
        self.shards.encode(w)?;
        self.trials.encode(w)?;
        self.base_salt.encode(w)?;
        self.num_instances.encode(w)?;
        self.num_records.encode(w)
    }
}

impl Decode for SnapshotManifest {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            kind: SnapshotKind::decode(r)?,
            scheme: Scheme::decode(r)?,
            shards: u64::decode(r)?,
            trials: u64::decode(r)?,
            base_salt: u64::decode(r)?,
            num_instances: u64::decode(r)?,
            num_records: u64::decode(r)?,
        })
    }
}

impl SnapshotManifest {
    /// Checks every experiment parameter against a validated configuration,
    /// returning a [`StoreError::ManifestMismatch`] naming the first field
    /// that disagrees.
    fn check_against(
        &self,
        config: &ValidatedConfig,
        stream: &ShardedStream,
    ) -> Result<(), StoreError> {
        let mismatch = |field: &'static str, expected: String, found: String| {
            Err(StoreError::ManifestMismatch {
                field,
                expected,
                found,
            })
        };
        if self.scheme != config.scheme {
            return mismatch(
                "scheme",
                format!("{:?}", config.scheme),
                format!("{:?}", self.scheme),
            );
        }
        if self.shards != config.shards as u64 {
            return mismatch("shards", config.shards.to_string(), self.shards.to_string());
        }
        if self.trials != config.trials {
            return mismatch("trials", config.trials.to_string(), self.trials.to_string());
        }
        if self.base_salt != config.base_salt {
            return mismatch(
                "base_salt",
                config.base_salt.to_string(),
                self.base_salt.to_string(),
            );
        }
        if self.num_instances != stream.num_instances() as u64 {
            return mismatch(
                "num_instances",
                stream.num_instances().to_string(),
                self.num_instances.to_string(),
            );
        }
        if self.num_records != stream.num_records() as u64 {
            return mismatch(
                "num_records",
                stream.num_records().to_string(),
                self.num_records.to_string(),
            );
        }
        Ok(())
    }
}

/// A [`StreamPipeline`] whose stages have all been supplied and validated,
/// destructured into owned parts the session can hold on to.
struct ValidatedConfig {
    dataset: Arc<Dataset>,
    scheme: Scheme,
    shards: usize,
    estimators: EstimatorSet,
    statistic: Statistic,
    trials: u64,
    base_salt: u64,
    threads: Option<usize>,
}

impl ValidatedConfig {
    fn manifest(&self, kind: SnapshotKind, stream: &ShardedStream) -> SnapshotManifest {
        SnapshotManifest {
            kind,
            scheme: self.scheme,
            shards: self.shards as u64,
            trials: self.trials,
            base_salt: self.base_salt,
            num_instances: stream.num_instances() as u64,
            num_records: stream.num_records() as u64,
        }
    }
}

/// Validates a builder's stages (same rules as [`StreamPipeline::run`]) and
/// partitions the record stream.
fn validate_pipeline(
    pipeline: StreamPipeline,
) -> Result<(ValidatedConfig, ShardedStream), PipelineError> {
    let dataset = pipeline.dataset.ok_or(PipelineError::MissingDataset)?;
    let scheme = pipeline.scheme.ok_or(PipelineError::MissingScheme)?;
    let estimators = pipeline
        .estimators
        .ok_or(PipelineError::MissingEstimators)?;
    let statistic = pipeline.statistic.ok_or(PipelineError::MissingStatistic)?;
    if estimators.len() == 0 {
        return Err(PipelineError::MissingEstimators);
    }
    validate_scheme(scheme)?;
    match (scheme, &estimators) {
        (Scheme::ObliviousPoisson { .. }, EstimatorSet::Oblivious(_))
        | (Scheme::PpsPoisson { .. }, EstimatorSet::Weighted(_)) => {}
        (scheme, estimators) => {
            return Err(PipelineError::RegimeMismatch {
                scheme: format!("{scheme:?}"),
                estimators: match estimators {
                    EstimatorSet::Oblivious(_) => "weight-oblivious",
                    EstimatorSet::Weighted(_) => "weighted",
                },
            })
        }
    }
    let stream = match scheme {
        // Weight-oblivious sampling runs over the key universe (zero-valued
        // keys participate); weighted schemes over the explicit records.
        Scheme::ObliviousPoisson { .. } => ShardedStream::over_universe(&dataset, pipeline.shards),
        Scheme::PpsPoisson { .. } => ShardedStream::from_dataset(&dataset, pipeline.shards),
    };
    Ok((
        ValidatedConfig {
            dataset,
            scheme,
            shards: pipeline.shards,
            estimators,
            statistic,
            trials: pipeline.trials,
            base_salt: pipeline.base_salt,
            threads: pipeline.threads,
        },
        stream,
    ))
}

/// One sketch per `(trial, shard, instance)`, laid out `[trial][shard]
/// [instance]` so each trial's slice is exactly the `pools[shard][instance]`
/// shape [`merge_finalize`] consumes.
enum TrialSketches {
    /// Weight-oblivious Poisson sketches.
    Oblivious(Vec<Vec<Vec<pie_sampling::ObliviousPoissonSketch>>>),
    /// Weighted PPS Poisson sketches.
    Pps(Vec<Vec<Vec<pie_sampling::PpsPoissonSketch>>>),
}

impl TrialSketches {
    /// Routes one record into every trial's `(shard, instance)` sketch.
    fn ingest(&mut self, shard: usize, instance: usize, key: Key, value: f64) {
        match self {
            Self::Oblivious(pools) => {
                for trial in pools.iter_mut() {
                    trial[shard][instance].ingest(key, value);
                }
            }
            Self::Pps(pools) => {
                for trial in pools.iter_mut() {
                    trial[shard][instance].ingest(key, value);
                }
            }
        }
    }
}

/// Opens one sketch per `(trial, shard, instance)`; trial `t` draws its
/// seeds from `base_salt + t`, exactly as the live trial loop does.
fn new_trial_pools<S: SamplingScheme>(
    scheme: &S,
    stream: &ShardedStream,
    trials: u64,
    base_salt: u64,
) -> Vec<Vec<Vec<S::Sketch>>> {
    (0..trials)
        .map(|t| {
            let seeds = SeedAssignment::independent_known(base_salt.wrapping_add(t));
            (0..stream.shards())
                .map(|s| {
                    (0..stream.num_instances())
                        .map(|i| scheme.sketch_for_shard(&seeds, i as u64, s as u64))
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Opens one sketch per `(trial, instance)` for a single shard column —
/// what a shard-export worker needs, without allocating the other columns.
fn new_trial_column<S: SamplingScheme>(
    scheme: &S,
    stream: &ShardedStream,
    trials: u64,
    base_salt: u64,
    shard: usize,
) -> Vec<Vec<S::Sketch>> {
    (0..trials)
        .map(|t| {
            let seeds = SeedAssignment::independent_known(base_salt.wrapping_add(t));
            (0..stream.num_instances())
                .map(|i| scheme.sketch_for_shard(&seeds, i as u64, shard as u64))
                .collect()
        })
        .collect()
}

/// Writes one `(instance, shard)` part file: a frame holding the trial
/// count, the writer's `stamp`, and that part's sketch for every trial.
///
/// The stamp binds the part file to its manifest (the checkpoint watermark,
/// or the shard index for exports): a checkpoint torn between the manifest
/// and some part files leaves stamps that disagree with the manifest, which
/// [`read_part_file`] turns into a typed error instead of a silently wrong
/// resume.
fn write_part_file<'a, K: Sketch + Encode + 'a>(
    path: &Path,
    stamp: u64,
    sketches: impl ExactSizeIterator<Item = &'a K>,
) -> Result<(), StoreError> {
    let mut writer = SnapshotWriter::new(BufWriter::new(File::create(path)?));
    writer.write(&(sketches.len() as u64))?;
    writer.write(&stamp)?;
    for sketch in sketches {
        writer.write(sketch)?;
    }
    writer.finish()?;
    Ok(())
}

/// Reads one part file back, validating the per-file trial count and stamp.
fn read_part_file<K: Decode>(path: &Path, trials: u64, stamp: u64) -> Result<Vec<K>, StoreError> {
    let mut reader = SnapshotReader::new(BufReader::new(File::open(path)?))?;
    let found: u64 = reader.read()?;
    if found != trials {
        return Err(StoreError::ManifestMismatch {
            field: "trials in part file",
            expected: trials.to_string(),
            found: found.to_string(),
        });
    }
    let found_stamp: u64 = reader.read()?;
    if found_stamp != stamp {
        return Err(StoreError::ManifestMismatch {
            field: "part-file stamp (torn or mixed snapshot directory)",
            expected: stamp.to_string(),
            found: found_stamp.to_string(),
        });
    }
    let mut sketches = Vec::with_capacity(usize::try_from(trials).unwrap_or(0).min(1 << 16));
    for _ in 0..trials {
        sketches.push(reader.read()?);
    }
    reader.finish()?;
    Ok(sketches)
}

/// Writes every part file of the full `[trial][shard][instance]` layout.
fn write_parts<K: Sketch + Encode>(
    dir: &Path,
    stamp: u64,
    pools: &[Vec<Vec<K>>],
    stream: &ShardedStream,
) -> Result<(), StoreError> {
    for s in 0..stream.shards() {
        for i in 0..stream.num_instances() {
            write_part_file(
                &dir.join(part_file_name(i, s)),
                stamp,
                pools.iter().map(|trial| &trial[s][i]),
            )?;
        }
    }
    Ok(())
}

/// Loads the full `[trial][shard][instance]` sketch layout from a snapshot
/// directory containing every `(instance, shard)` part file; `stamp_of`
/// gives the stamp each shard's files must carry.
fn load_trial_pools<K: Sketch + Decode>(
    dir: &Path,
    stream: &ShardedStream,
    trials: u64,
    stamp_of: impl Fn(usize) -> u64,
) -> Result<Vec<Vec<Vec<K>>>, StoreError> {
    let trial_count = usize::try_from(trials).map_err(|_| StoreError::InvalidValue {
        what: "trial count does not fit in usize",
    })?;
    let mut pools: Vec<Vec<Vec<K>>> = (0..trial_count)
        .map(|_| {
            (0..stream.shards())
                .map(|_| Vec::with_capacity(stream.num_instances()))
                .collect()
        })
        .collect();
    for i in 0..stream.num_instances() {
        // `s` names both the file and the pool column, so a range loop is
        // the clearest shape here.
        #[allow(clippy::needless_range_loop)]
        for s in 0..stream.shards() {
            let sketches: Vec<K> =
                read_part_file(&dir.join(part_file_name(i, s)), trials, stamp_of(s))?;
            for (t, sketch) in sketches.into_iter().enumerate() {
                pools[t][s].push(sketch);
            }
        }
    }
    Ok(pools)
}

/// Merges and finalizes each trial's sketches into its per-instance samples.
fn samples_per_trial<K: Sketch>(mut pools: Vec<Vec<Vec<K>>>) -> Vec<Vec<InstanceSample>> {
    pools
        .iter_mut()
        .map(|trial| merge_finalize(trial))
        .collect()
}

/// Runs the shared estimation stage over precomputed per-trial samples —
/// the same cores (and the same parallel trial engine) the live pipelines
/// use, so downstream numbers cannot drift between the paths.
fn estimate_from_samples(
    config: ValidatedConfig,
    samples: Vec<Vec<InstanceSample>>,
) -> Result<PipelineReport, CheckpointError> {
    let plan = TrialPlan::new(config.trials, config.base_salt, config.threads);
    let samples = &samples;
    match (config.scheme, config.estimators) {
        (Scheme::ObliviousPoisson { .. }, EstimatorSet::Oblivious(registry)) => {
            Ok(run_oblivious_with(
                &config.dataset,
                &registry,
                &config.statistic,
                &plan,
                |_worker| move |t, _seeds: &SeedAssignment| samples[t as usize].as_slice(),
            ))
        }
        (Scheme::PpsPoisson { tau_star }, EstimatorSet::Weighted(registry)) => Ok(run_pps_with(
            &config.dataset,
            tau_star,
            &registry,
            &config.statistic,
            &plan,
            |_worker| move |t, _seeds: &SeedAssignment| samples[t as usize].as_slice(),
        )),
        // validate_pipeline rejected mismatched regimes already.
        (scheme, estimators) => Err(CheckpointError::Pipeline(PipelineError::RegimeMismatch {
            scheme: format!("{scheme:?}"),
            estimators: match estimators {
                EstimatorSet::Oblivious(_) => "weight-oblivious",
                EstimatorSet::Weighted(_) => "weighted",
            },
        })),
    }
}

/// An incremental, checkpointable ingest pass over a [`StreamPipeline`]'s
/// record stream.
///
/// The session replays records in a canonical order — instance-major, then
/// shard-major, then each part's key-ascending record order — so a single
/// `watermark` (count of records ingested) fully describes the resume
/// position.  Each record is routed into one sketch per Monte-Carlo trial;
/// per-`(instance, shard)` sketch sequences are identical to what
/// [`StreamPipeline::run`] feeds its pooled sketches, which is why
/// [`finish`](Self::finish) reproduces the live report bit for bit.
#[must_use = "an ingest session does nothing until records are ingested"]
pub struct StreamIngestSession {
    config: ValidatedConfig,
    stream: ShardedStream,
    sketches: TrialSketches,
    watermark: u64,
    total: u64,
}

impl fmt::Debug for StreamIngestSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamIngestSession")
            .field("scheme", &self.config.scheme)
            .field("shards", &self.config.shards)
            .field("trials", &self.config.trials)
            .field("watermark", &self.watermark)
            .field("total", &self.total)
            .finish_non_exhaustive()
    }
}

impl StreamIngestSession {
    /// Records ingested so far (the checkpoint watermark).
    #[must_use]
    pub fn ingested(&self) -> u64 {
        self.watermark
    }

    /// Records in the complete stream.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.total
    }

    /// Records still to ingest before [`finish`](Self::finish) can run.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.total - self.watermark
    }

    /// Whether every record has been ingested.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.watermark == self.total
    }

    /// Ingests up to `max_records` further records in canonical order,
    /// returning how many were actually ingested (less than `max_records`
    /// only at end of stream).
    pub fn ingest_records(&mut self, max_records: u64) -> u64 {
        let target = self.watermark.saturating_add(max_records).min(self.total);
        let mut cursor = 0u64; // canonical index of the current part's start
        for i in 0..self.stream.num_instances() {
            for s in 0..self.stream.shards() {
                let part = self.stream.part(i, s);
                let part_end = cursor + part.len() as u64;
                if part_end > self.watermark && cursor < target {
                    let from = self.watermark.max(cursor) - cursor;
                    let to = target.min(part_end) - cursor;
                    for &(key, value) in &part[from as usize..to as usize] {
                        self.sketches.ingest(s, i, key, value);
                    }
                }
                cursor = part_end;
                if cursor >= target {
                    let ingested = target - self.watermark;
                    self.watermark = target;
                    return ingested;
                }
            }
        }
        let ingested = target - self.watermark;
        self.watermark = target;
        ingested
    }

    /// Ingests every remaining record.
    pub fn ingest_all(&mut self) {
        let remaining = self.remaining();
        self.ingest_records(remaining);
    }

    /// Writes the session's full state into `dir` (created if absent): the
    /// [`SnapshotManifest`] plus one versioned, checksummed snapshot file
    /// per `(instance, shard)` part holding that part's sketch for every
    /// trial.
    ///
    /// The session stays usable — checkpoints can be taken periodically
    /// while ingestion continues.
    ///
    /// # Errors
    /// Propagates file I/O and encoding failures.
    pub fn checkpoint(&self, dir: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(StoreError::Io)?;
        // Part files first, each stamped with this checkpoint's watermark;
        // the manifest (carrying the same watermark) goes last.  A crash
        // anywhere in between leaves stamps that disagree with whichever
        // manifest survives, so a torn checkpoint over an older one fails
        // resume with a typed stamp mismatch instead of silently mixing two
        // states.
        match &self.sketches {
            TrialSketches::Oblivious(pools) => {
                write_parts(dir, self.watermark, pools, &self.stream)?;
            }
            TrialSketches::Pps(pools) => {
                write_parts(dir, self.watermark, pools, &self.stream)?;
            }
        }
        let manifest = self.config.manifest(
            SnapshotKind::Checkpoint {
                watermark: self.watermark,
            },
            &self.stream,
        );
        pie_store::write_snapshot_file(dir.join(MANIFEST_FILE), &manifest)?;
        Ok(())
    }

    /// Merges each trial's shard sketches, finalizes the per-instance
    /// samples, and runs the shared estimation stage — producing a report
    /// bit-identical to [`StreamPipeline::run`] on the same configuration.
    ///
    /// # Errors
    /// [`CheckpointError::Incomplete`] if records remain; estimation itself
    /// cannot fail once the configuration validated.
    pub fn finish(self) -> Result<PipelineReport, CheckpointError> {
        if !self.is_complete() {
            return Err(CheckpointError::Incomplete {
                ingested: self.watermark,
                total: self.total,
            });
        }
        let samples = match self.sketches {
            TrialSketches::Oblivious(pools) => samples_per_trial(pools),
            TrialSketches::Pps(pools) => samples_per_trial(pools),
        };
        estimate_from_samples(self.config, samples)
    }

    /// Merges and finalizes the per-trial samples into a servable
    /// [`CatalogEntry`](crate::CatalogEntry) instead of estimating — the
    /// bridge from checkpointed (PR 4) snapshot state to `pie-serve`'s
    /// sketch catalog: ingest, checkpoint, resume in a serving process,
    /// finish into the catalog, answer queries.
    ///
    /// # Errors
    /// [`CheckpointError::Incomplete`] if records remain.
    pub fn finish_into_catalog(self) -> Result<crate::CatalogEntry, CheckpointError> {
        if !self.is_complete() {
            return Err(CheckpointError::Incomplete {
                ingested: self.watermark,
                total: self.total,
            });
        }
        let samples = match self.sketches {
            TrialSketches::Oblivious(pools) => samples_per_trial(pools),
            TrialSketches::Pps(pools) => samples_per_trial(pools),
        };
        Ok(crate::CatalogEntry::from_parts(
            self.config.dataset,
            self.config.scheme,
            self.config.shards,
            self.config.trials,
            self.config.base_salt,
            samples,
        ))
    }
}

impl StreamPipeline {
    /// Opens an incremental, checkpointable ingest session over this
    /// pipeline's record stream (all stages must be configured, exactly as
    /// for [`run`](Self::run)).
    ///
    /// # Errors
    /// Returns a [`PipelineError`] (wrapped) if a stage is missing, a scheme
    /// parameter is out of range, or the estimator regime does not match.
    pub fn ingest_session(self) -> Result<StreamIngestSession, CheckpointError> {
        let (config, stream) = validate_pipeline(self)?;
        let sketches = match config.scheme {
            Scheme::ObliviousPoisson { p } => TrialSketches::Oblivious(new_trial_pools(
                &ObliviousPoissonSampler::new(p),
                &stream,
                config.trials,
                config.base_salt,
            )),
            Scheme::PpsPoisson { tau_star } => TrialSketches::Pps(new_trial_pools(
                &PpsPoissonSampler::new(tau_star),
                &stream,
                config.trials,
                config.base_salt,
            )),
        };
        let total = stream.num_records() as u64;
        Ok(StreamIngestSession {
            config,
            stream,
            sketches,
            watermark: 0,
            total,
        })
    }

    /// Restores an ingest session from a checkpoint directory written by
    /// [`StreamIngestSession::checkpoint`].
    ///
    /// The pipeline must be configured identically to the one that wrote the
    /// checkpoint (same dataset, scheme, shards, trials, and base salt); the
    /// manifest is validated field by field and any disagreement is a typed
    /// [`StoreError::ManifestMismatch`].
    ///
    /// # Errors
    /// Configuration, manifest, and snapshot-file failures.
    pub fn resume(self, dir: impl AsRef<Path>) -> Result<StreamIngestSession, CheckpointError> {
        let dir = dir.as_ref();
        let (config, stream) = validate_pipeline(self)?;
        let manifest: SnapshotManifest = pie_store::read_snapshot_file(dir.join(MANIFEST_FILE))?;
        manifest.check_against(&config, &stream)?;
        let watermark = match manifest.kind {
            SnapshotKind::Checkpoint { watermark } => watermark,
            SnapshotKind::ShardExport { .. } => {
                return Err(StoreError::ManifestMismatch {
                    field: "kind",
                    expected: "checkpoint".to_string(),
                    found: "shard export".to_string(),
                }
                .into())
            }
        };
        if watermark > stream.num_records() as u64 {
            return Err(StoreError::InvalidValue {
                what: "checkpoint watermark exceeds the stream's record count",
            }
            .into());
        }
        let sketches = match config.scheme {
            Scheme::ObliviousPoisson { .. } => {
                TrialSketches::Oblivious(load_trial_pools(dir, &stream, config.trials, |_| {
                    watermark
                })?)
            }
            Scheme::PpsPoisson { .. } => {
                TrialSketches::Pps(load_trial_pools(dir, &stream, config.trials, |_| {
                    watermark
                })?)
            }
        };
        let total = stream.num_records() as u64;
        Ok(StreamIngestSession {
            config,
            stream,
            sketches,
            watermark,
            total,
        })
    }

    /// The shard-worker half of the cross-process merge path: ingests
    /// **only** `shard`'s key-partition of every instance's stream (for
    /// every trial) and writes that column's snapshot files plus a per-shard
    /// manifest into `dir`.
    ///
    /// Independent processes call this for disjoint shards of the same
    /// configuration — file names never collide, so they may share `dir`.
    /// The coordinating process then merges with
    /// [`run_from_shard_snapshots`](Self::run_from_shard_snapshots).
    ///
    /// # Errors
    /// Configuration and file I/O failures, or a `shard` at or beyond the
    /// configured shard count.
    pub fn write_shard_snapshots(
        self,
        shard: usize,
        dir: impl AsRef<Path>,
    ) -> Result<(), CheckpointError> {
        let dir = dir.as_ref();
        let (config, stream) = validate_pipeline(self)?;
        if shard >= config.shards {
            return Err(CheckpointError::ShardOutOfRange {
                shard,
                shards: config.shards,
            });
        }
        std::fs::create_dir_all(dir).map_err(StoreError::Io)?;

        /// Ingests one shard column for every `(trial, instance)` and
        /// writes its part files, stamped with the shard index.
        fn export_column<S: SamplingScheme>(
            sampler: &S,
            dir: &Path,
            stream: &ShardedStream,
            config: &ValidatedConfig,
            shard: usize,
        ) -> Result<(), StoreError>
        where
            S::Sketch: Encode,
        {
            // Only this worker's column is allocated — the other shards'
            // sketches belong to other processes.
            let mut column =
                new_trial_column(sampler, stream, config.trials, config.base_salt, shard);
            for trial in column.iter_mut() {
                for (i, sketch) in trial.iter_mut().enumerate() {
                    for &(key, value) in stream.part(i, shard) {
                        sketch.ingest(key, value);
                    }
                }
            }
            for i in 0..stream.num_instances() {
                write_part_file(
                    &dir.join(part_file_name(i, shard)),
                    shard as u64,
                    column.iter().map(|trial| &trial[i]),
                )?;
            }
            Ok(())
        }

        match config.scheme {
            Scheme::ObliviousPoisson { p } => export_column(
                &ObliviousPoissonSampler::new(p),
                dir,
                &stream,
                &config,
                shard,
            )?,
            Scheme::PpsPoisson { tau_star } => export_column(
                &PpsPoissonSampler::new(tau_star),
                dir,
                &stream,
                &config,
                shard,
            )?,
        }
        // Manifest last: its presence signals the shard's part files are
        // complete, so a torn export is a missing-manifest error for the
        // coordinator rather than a partial read.
        let manifest = config.manifest(
            SnapshotKind::ShardExport {
                shard: shard as u64,
            },
            &stream,
        );
        pie_store::write_snapshot_file(dir.join(shard_manifest_name(shard)), &manifest)?;
        Ok(())
    }

    /// The coordinator half of the cross-process merge path: loads every
    /// shard's snapshot files from `dir` (validating each shard's manifest
    /// against this configuration), feeds them through the same binary merge
    /// tree as in-process ingestion, and runs the shared estimation stage.
    ///
    /// The report is **bit-identical** to [`run`](Self::run) on the same
    /// configuration — sharding across processes, like sharding across
    /// threads, is an execution strategy, not a statistical choice.
    ///
    /// # Errors
    /// Configuration, manifest, and snapshot-file failures (a missing shard
    /// surfaces as the I/O error of its absent manifest or part file).
    pub fn run_from_shard_snapshots(
        self,
        dir: impl AsRef<Path>,
    ) -> Result<PipelineReport, CheckpointError> {
        let dir = dir.as_ref();
        let (config, stream) = validate_pipeline(self)?;
        for s in 0..config.shards {
            let manifest: SnapshotManifest =
                pie_store::read_snapshot_file(dir.join(shard_manifest_name(s)))?;
            manifest.check_against(&config, &stream)?;
            if manifest.kind != (SnapshotKind::ShardExport { shard: s as u64 }) {
                return Err(StoreError::ManifestMismatch {
                    field: "kind",
                    expected: format!("shard export for shard {s}"),
                    found: format!("{:?}", manifest.kind),
                }
                .into());
            }
        }
        let samples = match config.scheme {
            Scheme::ObliviousPoisson { .. } => {
                samples_per_trial(load_trial_pools::<pie_sampling::ObliviousPoissonSketch>(
                    dir,
                    &stream,
                    config.trials,
                    |s| s as u64,
                )?)
            }
            Scheme::PpsPoisson { .. } => {
                samples_per_trial(load_trial_pools::<pie_sampling::PpsPoissonSketch>(
                    dir,
                    &stream,
                    config.trials,
                    |s| s as u64,
                )?)
            }
        };
        estimate_from_samples(config, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Statistic;
    use pie_core::suite::{max_oblivious_suite, max_weighted_suite};
    use pie_datagen::{generate_two_hours, paper_example, TrafficConfig};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, auto-created temp directory per test call site.
    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pie-checkpoint-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn pps_pipeline(data: &Arc<Dataset>, shards: usize) -> StreamPipeline {
        StreamPipeline::new()
            .dataset(Arc::clone(data))
            .scheme(Scheme::pps(150.0))
            .shards(shards)
            .estimators(max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .trials(12)
            .base_salt(5)
    }

    fn oblivious_pipeline(data: &Arc<Dataset>, shards: usize) -> StreamPipeline {
        StreamPipeline::new()
            .dataset(Arc::clone(data))
            .scheme(Scheme::oblivious(0.5))
            .shards(shards)
            .estimators(max_oblivious_suite(0.5, 0.5))
            .statistic(Statistic::max_dominance())
            .trials(40)
            .base_salt(2)
    }

    #[test]
    fn session_without_checkpoint_matches_run_bitwise() {
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(4)));
        for shards in [1, 3] {
            let mut session = pps_pipeline(&data, shards).ingest_session().unwrap();
            assert_eq!(session.remaining(), session.total_records());
            session.ingest_all();
            assert!(session.is_complete());
            let report = session.finish().unwrap();
            assert_eq!(report, pps_pipeline(&data, shards).run().unwrap());
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_for_both_regimes() {
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(4)));
        for shards in [2, 3] {
            let dir = temp_dir("pps");
            let mut session = pps_pipeline(&data, shards).ingest_session().unwrap();
            let half = session.total_records() / 2;
            assert_eq!(session.ingest_records(half), half);
            session.checkpoint(&dir).unwrap();
            drop(session);
            let mut resumed = pps_pipeline(&data, shards).resume(&dir).unwrap();
            assert_eq!(resumed.ingested(), half);
            resumed.ingest_all();
            let report = resumed.finish().unwrap();
            assert_eq!(
                report,
                pps_pipeline(&data, shards).run().unwrap(),
                "{shards} shards"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }

        let data = Arc::new(paper_example().take_instances(2));
        let dir = temp_dir("oblivious");
        let mut session = oblivious_pipeline(&data, 2).ingest_session().unwrap();
        let third = session.total_records() / 3;
        session.ingest_records(third);
        session.checkpoint(&dir).unwrap();
        drop(session);
        let mut resumed = oblivious_pipeline(&data, 2).resume(&dir).unwrap();
        resumed.ingest_all();
        assert_eq!(
            resumed.finish().unwrap(),
            oblivious_pipeline(&data, 2).run().unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_checkpoints_keep_the_session_usable() {
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(3)));
        let dir = temp_dir("repeat");
        let mut session = pps_pipeline(&data, 2).ingest_session().unwrap();
        loop {
            let ingested = session.ingest_records(500);
            session.checkpoint(&dir).unwrap();
            if ingested == 0 {
                break;
            }
        }
        let report = session.finish().unwrap();
        // The final checkpoint is a complete-state snapshot: resuming it and
        // finishing immediately reproduces the same report.
        let resumed = pps_pipeline(&data, 2).resume(&dir).unwrap();
        assert!(resumed.is_complete());
        assert_eq!(resumed.finish().unwrap(), report);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_checkpoint_over_an_older_one_is_detected() {
        // Simulate a crash between writing part files and the manifest (or
        // vice versa): an old checkpoint's part files paired with a newer
        // manifest.  The per-file watermark stamp must catch the mix.
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(3)));
        let old_dir = temp_dir("torn-old");
        let new_dir = temp_dir("torn-new");
        let mut session = pps_pipeline(&data, 2).ingest_session().unwrap();
        session.ingest_records(100);
        session.checkpoint(&old_dir).unwrap();
        session.ingest_records(100);
        session.checkpoint(&new_dir).unwrap();
        // Torn state: newer manifest over older part files.
        std::fs::copy(new_dir.join(MANIFEST_FILE), old_dir.join(MANIFEST_FILE)).unwrap();
        let err = pps_pipeline(&data, 2).resume(&old_dir).unwrap_err();
        assert!(
            matches!(
                &err,
                CheckpointError::Store(StoreError::ManifestMismatch { field, .. })
                    if field.contains("stamp")
            ),
            "{err}"
        );
        std::fs::remove_dir_all(&old_dir).unwrap();
        std::fs::remove_dir_all(&new_dir).unwrap();
    }

    #[test]
    fn finish_before_completion_is_a_typed_error() {
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(3)));
        let mut session = pps_pipeline(&data, 2).ingest_session().unwrap();
        session.ingest_records(10);
        let err = session.finish().unwrap_err();
        assert!(
            matches!(err, CheckpointError::Incomplete { ingested: 10, .. }),
            "{err}"
        );
    }

    #[test]
    fn resume_rejects_mismatched_configuration() {
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(3)));
        let dir = temp_dir("mismatch");
        let session = pps_pipeline(&data, 2).ingest_session().unwrap();
        session.checkpoint(&dir).unwrap();
        // Different tau_star.
        let err = pps_pipeline(&data, 2)
            .scheme(Scheme::pps(151.0))
            .resume(&dir)
            .unwrap_err();
        assert!(
            matches!(
                &err,
                CheckpointError::Store(StoreError::ManifestMismatch {
                    field: "scheme",
                    ..
                })
            ),
            "{err}"
        );
        // Different shard count.
        let err = pps_pipeline(&data, 3).resume(&dir).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Store(StoreError::ManifestMismatch {
                field: "shards",
                ..
            })
        ));
        // Different trial count.
        let err = pps_pipeline(&data, 2).trials(13).resume(&dir).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Store(StoreError::ManifestMismatch {
                field: "trials",
                ..
            })
        ));
        // Different dataset shape (instance/record-count fingerprint; a
        // same-shape dataset with different values is indistinguishable to
        // the manifest — resuming it is the caller's responsibility).
        let other = Arc::new(paper_example());
        let err = pps_pipeline(&other, 2).resume(&dir).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Store(StoreError::ManifestMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_shard_export_directories_and_vice_versa() {
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(3)));
        let dir = temp_dir("kind");
        pps_pipeline(&data, 2)
            .write_shard_snapshots(0, &dir)
            .unwrap();
        pps_pipeline(&data, 2)
            .write_shard_snapshots(1, &dir)
            .unwrap();
        let err = pps_pipeline(&data, 2).resume(&dir).unwrap_err();
        assert!(matches!(err, CheckpointError::Store(_)), "{err}");
        // A checkpoint directory is not a shard-export directory either.
        let ckpt = temp_dir("kind-ckpt");
        let session = pps_pipeline(&data, 2).ingest_session().unwrap();
        session.checkpoint(&ckpt).unwrap();
        let err = pps_pipeline(&data, 2)
            .run_from_shard_snapshots(&ckpt)
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Store(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&ckpt).unwrap();
    }

    #[test]
    fn in_process_shard_snapshot_merge_matches_run_bitwise() {
        // The cross-process smoke test (tests/cross_process.rs) exercises
        // real child processes; this covers the same path in-process at two
        // shard counts for both regimes.
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(4)));
        for shards in [2, 4] {
            let dir = temp_dir("merge");
            for s in 0..shards {
                pps_pipeline(&data, shards)
                    .write_shard_snapshots(s, &dir)
                    .unwrap();
            }
            let merged = pps_pipeline(&data, shards)
                .run_from_shard_snapshots(&dir)
                .unwrap();
            assert_eq!(
                merged,
                pps_pipeline(&data, shards).run().unwrap(),
                "{shards} shards"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }

        let data = Arc::new(paper_example().take_instances(2));
        let dir = temp_dir("merge-oblivious");
        for s in 0..2 {
            oblivious_pipeline(&data, 2)
                .write_shard_snapshots(s, &dir)
                .unwrap();
        }
        let merged = oblivious_pipeline(&data, 2)
            .run_from_shard_snapshots(&dir)
            .unwrap();
        assert_eq!(merged, oblivious_pipeline(&data, 2).run().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_out_of_range_is_a_typed_error() {
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(3)));
        let dir = temp_dir("range");
        let err = pps_pipeline(&data, 2)
            .write_shard_snapshots(2, &dir)
            .unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::ShardOutOfRange {
                shard: 2,
                shards: 2
            }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_corrupted_snapshots_are_typed_errors() {
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(3)));
        let dir = temp_dir("corrupt");
        // Missing manifest.
        let err = pps_pipeline(&data, 2).resume(&dir).unwrap_err();
        assert!(matches!(err, CheckpointError::Store(_)));
        // Corrupted part file.
        let session = pps_pipeline(&data, 2).ingest_session().unwrap();
        session.checkpoint(&dir).unwrap();
        let part = dir.join(part_file_name(0, 0));
        let mut bytes = std::fs::read(&part).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&part, &bytes).unwrap();
        let err = pps_pipeline(&data, 2).resume(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::Store(StoreError::ChecksumMismatch { .. })
            ),
            "{err}"
        );
        // Truncated part file.
        let session = pps_pipeline(&data, 2).ingest_session().unwrap();
        session.checkpoint(&dir).unwrap();
        let bytes = std::fs::read(&part).unwrap();
        std::fs::write(&part, &bytes[..bytes.len() - 3]).unwrap();
        let err = pps_pipeline(&data, 2).resume(&dir).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Store(StoreError::Truncated { .. })),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
