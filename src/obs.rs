//! Observation hooks for the estimation pipelines: per-stage wall-clock
//! attribution for the two heavy phases of a query — **trial replay**
//! (seed derivation, sampling or sample replay, outcome assembly) and the
//! **estimator batch** (the per-registry `estimate_batch` sweeps plus
//! accumulation) — and an optional per-chunk timing hook forwarded to the
//! trial engine's [`Recorder`](pie_analysis::Recorder).
//!
//! Observation never participates in estimation: hooks only read clocks
//! and bump atomics between the stages, so an observed run's report is
//! **bit-identical** to an unobserved one.  A disabled observer costs one
//! `Option` check per trial.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pie_analysis::{ChunkTiming, Recorder};

/// Accumulated wall-clock nanoseconds of the two heavy pipeline stages,
/// summed across all trials (and all worker threads) of one estimation
/// call.
#[derive(Debug, Default)]
pub struct StageNanos {
    trial_replay: AtomicU64,
    estimator_batch: AtomicU64,
}

impl StageNanos {
    /// A zeroed accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to the trial-replay total (sampling / sample replay and
    /// outcome assembly).
    pub fn add_trial_replay(&self, nanos: u64) {
        self.trial_replay.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Adds to the estimator-batch total (estimator sweeps plus
    /// accumulation).
    pub fn add_estimator_batch(&self, nanos: u64) {
        self.estimator_batch.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total nanoseconds spent in trial replay.
    #[must_use]
    pub fn trial_replay_nanos(&self) -> u64 {
        self.trial_replay.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent in estimator batches.
    #[must_use]
    pub fn estimator_batch_nanos(&self) -> u64 {
        self.estimator_batch.load(Ordering::Relaxed)
    }
}

/// The hooks one estimation call may carry: stage totals and/or a
/// per-chunk timing callback.  The default (disabled) observer is
/// zero-cost — no clock is ever read.
#[derive(Clone, Default)]
pub struct PipelineObserver {
    pub(crate) stages: Option<Arc<StageNanos>>,
    pub(crate) chunks: Option<Arc<dyn Fn(ChunkTiming) + Send + Sync>>,
}

impl PipelineObserver {
    /// The disabled observer (same as `PipelineObserver::default()`).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An observer accumulating stage totals into `stages`.
    #[must_use]
    pub fn stages(stages: &Arc<StageNanos>) -> Self {
        Self {
            stages: Some(Arc::clone(stages)),
            chunks: None,
        }
    }

    /// Adds a per-chunk timing hook, delivered through the trial engine's
    /// [`Recorder`](pie_analysis::Recorder) on the worker thread that ran
    /// the chunk.
    #[must_use]
    pub fn with_chunk_hook(mut self, hook: Arc<dyn Fn(ChunkTiming) + Send + Sync>) -> Self {
        self.chunks = Some(hook);
        self
    }

    /// The [`Recorder`] to install on the trial engine (disabled when no
    /// chunk hook is set).
    pub(crate) fn recorder(&self) -> Recorder {
        match &self.chunks {
            Some(hook) => Recorder::new(Arc::clone(hook)),
            None => Recorder::disabled(),
        }
    }
}

impl fmt::Debug for PipelineObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineObserver")
            .field("stages", &self.stages.is_some())
            .field("chunks", &self.chunks.is_some())
            .finish()
    }
}
