//! The sharded streaming front-end: traffic source → N shard sketches →
//! merge tree → the batched estimation stage.
//!
//! [`StreamPipeline`] is the streaming counterpart of [`Pipeline`]: instead
//! of sampling fully materialized instances, it replays each instance's
//! record stream through per-shard [`Sketch`]es (one OS thread per shard),
//! combines them with a binary merge tree, and finalizes into the exact
//! per-instance samples the estimation stage already consumes.  For the
//! hash-seeded schemes the estimates are **bit-identical** to the batch
//! [`Pipeline`] on the same seeds, whatever the shard count — sharding is an
//! execution strategy, not a statistical choice.
//!
//! Sketches are pooled per `(instance, shard)` and reset between
//! Monte-Carlo trials, so the steady-state ingest loop performs no
//! per-record heap allocation.
//!
//! ```
//! use partial_info_estimators::{Pipeline, Scheme, Statistic, StreamPipeline};
//! use partial_info_estimators::core::suite::max_weighted_suite;
//! use partial_info_estimators::datagen::{generate_two_hours, TrafficConfig};
//! use std::sync::Arc;
//!
//! let data = Arc::new(generate_two_hours(&TrafficConfig::small(3)));
//! let streamed = StreamPipeline::new()
//!     .dataset(Arc::clone(&data))
//!     .scheme(Scheme::pps(200.0))
//!     .shards(4)
//!     .estimators(max_weighted_suite())
//!     .statistic(Statistic::max_dominance())
//!     .trials(10)
//!     .run()
//!     .unwrap();
//! let batch = Pipeline::new()
//!     .dataset(data)
//!     .scheme(Scheme::pps(200.0))
//!     .estimators(max_weighted_suite())
//!     .statistic(Statistic::max_dominance())
//!     .trials(10)
//!     .run()
//!     .unwrap();
//! assert_eq!(streamed, batch, "sharding must not change the estimates");
//! ```

use std::sync::Arc;

use pie_datagen::{Dataset, ShardedStream};
use pie_sampling::{
    InstanceSample, Key, ObliviousPoissonSampler, PpsPoissonSampler, SamplingScheme,
    SeedAssignment, Sketch,
};

use crate::pipeline::{
    run_oblivious_with, run_pps_with, validate_scheme, EstimatorSet, PipelineError, PipelineReport,
    Scheme, Statistic, TrialPlan,
};

/// Builder wiring record stream → sharded ingest → merge tree → batched
/// estimation.  See the [module docs](self) for the full walkthrough.
#[derive(Debug)]
#[must_use = "a stream pipeline does nothing until .run()"]
pub struct StreamPipeline {
    pub(crate) dataset: Option<Arc<Dataset>>,
    pub(crate) scheme: Option<Scheme>,
    pub(crate) shards: usize,
    pub(crate) estimators: Option<EstimatorSet>,
    pub(crate) statistic: Option<Statistic>,
    pub(crate) trials: u64,
    pub(crate) base_salt: u64,
    pub(crate) threads: Option<usize>,
}

impl Default for StreamPipeline {
    /// Same as [`StreamPipeline::new`]: empty stages, 1 shard, 100 trials,
    /// salt 0.
    fn default() -> Self {
        Self::new()
    }
}

impl StreamPipeline {
    /// Starts an empty stream pipeline (1 shard, 100 trials, salt 0).
    pub fn new() -> Self {
        Self {
            dataset: None,
            scheme: None,
            shards: 1,
            estimators: None,
            statistic: None,
            trials: 100,
            base_salt: 0,
            threads: None,
        }
    }

    /// Sets the dataset whose record stream is replayed.
    pub fn dataset(mut self, dataset: impl Into<Arc<Dataset>>) -> Self {
        self.dataset = Some(dataset.into());
        self
    }

    /// Sets the per-instance sampling scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = Some(scheme);
        self
    }

    /// Sets the number of ingest shards per instance (default 1; values
    /// below 1 are clamped to 1).  Each shard ingests on its own thread.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the estimators to run (registry regime must match the scheme).
    pub fn estimators(mut self, estimators: impl Into<EstimatorSet>) -> Self {
        self.estimators = Some(estimators.into());
        self
    }

    /// Sets the aggregated statistic (and the ground truth it implies).
    pub fn statistic(mut self, statistic: Statistic) -> Self {
        self.statistic = Some(statistic);
        self
    }

    /// Sets the number of Monte-Carlo sampling trials (default 100).
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the base hash salt; trial `t` uses salt `base_salt + t`.
    pub fn base_salt(mut self, base_salt: u64) -> Self {
        self.base_salt = base_salt;
        self
    }

    /// Sets the number of worker threads for the Monte-Carlo trial loop
    /// (clamped to ≥ 1; default `PIE_THREADS`, else available parallelism).
    ///
    /// Trial workers are orthogonal to [`shards`](Self::shards): each worker
    /// owns a full set of per-`(instance, shard)` sketch pools and replays
    /// whole trials.  As with the batch [`crate::Pipeline`], the thread
    /// count never changes the report — only the wall clock.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Runs the pipeline: partitions each instance's record stream across
    /// the configured shards once, then per trial ingests all `(instance,
    /// shard)` parts concurrently into pooled sketches, merges, finalizes,
    /// and feeds the estimation stage shared with [`crate::Pipeline`].
    ///
    /// # Errors
    /// Returns a [`PipelineError`] if a stage is missing, a scheme parameter
    /// is out of range, or the estimator regime does not match the scheme.
    pub fn run(self) -> Result<PipelineReport, PipelineError> {
        let dataset = self.dataset.ok_or(PipelineError::MissingDataset)?;
        let scheme = self.scheme.ok_or(PipelineError::MissingScheme)?;
        let estimators = self.estimators.ok_or(PipelineError::MissingEstimators)?;
        let statistic = self.statistic.ok_or(PipelineError::MissingStatistic)?;
        if estimators.len() == 0 {
            return Err(PipelineError::MissingEstimators);
        }
        validate_scheme(scheme)?;
        let seeds0 = SeedAssignment::independent_known(self.base_salt);
        let plan = TrialPlan::new(self.trials, self.base_salt, self.threads);
        match (scheme, estimators) {
            (Scheme::ObliviousPoisson { p }, EstimatorSet::Oblivious(registry)) => {
                // Weight-oblivious sampling runs over the key universe, so
                // every union key is streamed into every instance's shards.
                let stream = ShardedStream::over_universe(&dataset, self.shards);
                let sampler = ObliviousPoissonSampler::new(p);
                let stream = &stream;
                Ok(run_oblivious_with(
                    &dataset,
                    &registry,
                    &statistic,
                    &plan,
                    |_worker| {
                        // Each trial worker owns one full sketch-pool set;
                        // sketches reset to the trial's seeds before ingest,
                        // so any worker replays any trial identically.
                        let mut pools = sketch_pools(&sampler, stream, &seeds0);
                        move |_t, seeds: &SeedAssignment| {
                            ingest_merge_finalize(stream, &mut pools, seeds)
                        }
                    },
                ))
            }
            (Scheme::PpsPoisson { tau_star }, EstimatorSet::Weighted(registry)) => {
                let stream = ShardedStream::from_dataset(&dataset, self.shards);
                let sampler = PpsPoissonSampler::new(tau_star);
                let stream = &stream;
                Ok(run_pps_with(
                    &dataset,
                    tau_star,
                    &registry,
                    &statistic,
                    &plan,
                    |_worker| {
                        let mut pools = sketch_pools(&sampler, stream, &seeds0);
                        move |_t, seeds: &SeedAssignment| {
                            ingest_merge_finalize(stream, &mut pools, seeds)
                        }
                    },
                ))
            }
            (scheme, estimators) => Err(PipelineError::RegimeMismatch {
                scheme: format!("{scheme:?}"),
                estimators: match estimators {
                    EstimatorSet::Oblivious(_) => "weight-oblivious",
                    EstimatorSet::Weighted(_) => "weighted",
                },
            }),
        }
    }

    /// Samples the configured dataset and finalizes the per-trial samples
    /// into a servable [`CatalogEntry`](crate::CatalogEntry) instead of
    /// estimating — the export hook behind `pie-serve`'s sketch catalog.
    ///
    /// Only the dataset, scheme, shards, trials, and base salt are
    /// consulted: estimator and statistic choice is deferred to each query
    /// against the entry (that deferral is the point of serving).
    ///
    /// # Errors
    /// [`PipelineError::MissingDataset`] / [`PipelineError::MissingScheme`]
    /// / [`PipelineError::InvalidScheme`].
    pub fn into_catalog_entry(self) -> Result<crate::CatalogEntry, PipelineError> {
        let dataset = self.dataset.ok_or(PipelineError::MissingDataset)?;
        let scheme = self.scheme.ok_or(PipelineError::MissingScheme)?;
        crate::CatalogEntry::build(dataset, scheme, self.shards, self.trials, self.base_salt)
    }
}

/// Allocates the pooled sketches for one [`ShardedStream`], laid out
/// `pools[shard][instance]` — the shape [`ingest_merge_finalize`] consumes,
/// chosen so each shard's ingest thread owns one contiguous column.
pub fn sketch_pools<S: SamplingScheme>(
    scheme: &S,
    stream: &ShardedStream,
    seeds: &SeedAssignment,
) -> Vec<Vec<S::Sketch>> {
    (0..stream.shards())
        .map(|s| {
            (0..stream.num_instances())
                .map(|i| scheme.sketch_for_shard(seeds, i as u64, s as u64))
                .collect()
        })
        .collect()
}

/// How a sharded ingest pass executes its per-shard work.
///
/// The finalized samples are identical whichever strategy runs — strategy is
/// an execution choice, never a statistical one — so [`Auto`] is the right
/// default everywhere; the explicit variants exist for benchmarks and tests
/// that must pin one path (e.g. exercising [`Threaded`] on a single-core CI
/// runner, where [`Auto`] would pick [`Sequential`]).
///
/// [`Auto`]: IngestStrategy::Auto
/// [`Sequential`]: IngestStrategy::Sequential
/// [`Threaded`]: IngestStrategy::Threaded
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestStrategy {
    /// [`Threaded`](IngestStrategy::Threaded) when the host has more than one
    /// hardware thread and the stream has more than one shard, else
    /// [`Sequential`](IngestStrategy::Sequential).
    Auto,
    /// All shards ingest on the calling thread via [`Sketch::ingest_group`],
    /// which lets set-determined schemes (bottom-k) share one bounded
    /// retention structure across the whole group instead of paying per-shard
    /// retention that grows with the shard count.
    Sequential,
    /// One OS thread per shard, each covering all instances.
    Threaded,
}

/// Cached hardware-parallelism probe for [`IngestStrategy::Auto`]: querying
/// it per trial in the hot loop would be a syscall per pass.
fn multi_core() -> bool {
    use std::sync::OnceLock;
    static MULTI_CORE: OnceLock<bool> = OnceLock::new();
    *MULTI_CORE.get_or_init(|| std::thread::available_parallelism().is_ok_and(|n| n.get() > 1))
}

/// One sharded sampling pass over a record stream: resets the pooled
/// sketches (layout `pools[shard][instance]`, from [`sketch_pools`]) to this
/// randomization, ingests every shard's parts ([`IngestStrategy::Auto`]),
/// merges the shard sketches per instance via [`Sketch::merge_many`], and
/// finalizes into one [`InstanceSample`] per instance.
///
/// This is the single implementation of the sketch lifecycle choreography:
/// the [`StreamPipeline`] hot loop calls it once per trial, and the
/// `stream_ingest_throughput` bench and `sharded_traffic` example call it
/// directly, so all three exercise the same code path.  The sketches are
/// drained but keep their allocations, so repeated passes perform no
/// per-record heap allocation.
///
/// # Panics
/// Panics if `pools` does not match the stream's `[shard][instance]` shape.
pub fn ingest_merge_finalize<K: Sketch>(
    stream: &ShardedStream,
    pools: &mut [Vec<K>],
    seeds: &SeedAssignment,
) -> Vec<InstanceSample> {
    ingest_merge_finalize_with(stream, pools, seeds, IngestStrategy::Auto)
}

/// [`ingest_merge_finalize`] with an explicit [`IngestStrategy`].
///
/// # Panics
/// Panics if `pools` does not match the stream's `[shard][instance]` shape.
pub fn ingest_merge_finalize_with<K: Sketch>(
    stream: &ShardedStream,
    pools: &mut [Vec<K>],
    seeds: &SeedAssignment,
    strategy: IngestStrategy,
) -> Vec<InstanceSample> {
    let shards = stream.shards();
    let instances = stream.num_instances();
    assert!(
        pools.len() == shards && pools.iter().all(|column| column.len() == instances),
        "sketch pools must be [shard][instance]-shaped for this stream"
    );
    let threaded = match strategy {
        IngestStrategy::Auto => shards > 1 && multi_core(),
        IngestStrategy::Sequential => false,
        IngestStrategy::Threaded => true,
    };
    if threaded {
        let ingest_column = |s: usize, column: &mut Vec<K>| {
            for (i, sketch) in column.iter_mut().enumerate() {
                sketch.reset(seeds, i as u64);
                for &(key, value) in stream.part(i, s) {
                    sketch.ingest(key, value);
                }
            }
        };
        std::thread::scope(|scope| {
            for (s, column) in pools.iter_mut().enumerate() {
                scope.spawn(move || ingest_column(s, column));
            }
        });
    } else {
        // Single-worker pass: hand each instance's whole shard group to the
        // scheme at once so set-determined sketches can pool retention work.
        let mut columns: Vec<std::slice::IterMut<'_, K>> =
            pools.iter_mut().map(|column| column.iter_mut()).collect();
        let mut group: Vec<&mut K> = Vec::with_capacity(shards);
        let mut parts: Vec<&[(Key, f64)]> = Vec::with_capacity(shards);
        for i in 0..instances {
            group.clear();
            group.extend(
                columns
                    .iter_mut()
                    .map(|column| column.next().expect("pool column length checked above")),
            );
            parts.clear();
            parts.extend((0..shards).map(|s| stream.part(i, s)));
            K::ingest_group(&mut group, &parts, seeds, i as u64);
        }
    }
    merge_finalize(pools)
}

/// The merge + finalize tail of one sharded sampling pass: combines the
/// `pools[shard][instance]` sketches per instance via
/// [`Sketch::merge_many`] — a balanced binary merge tree by default, a
/// single k-bounded selection for bottom-k — and finalizes one
/// [`InstanceSample`] per instance, draining every sketch.
///
/// Factored out of [`ingest_merge_finalize`] so sketches restored from
/// snapshot files — a resumed checkpoint, or shard snapshots written by
/// other processes — flow through the *same* merge path as live in-process
/// ingestion, which is what keeps cross-process reports bit-identical.
pub fn merge_finalize<K: Sketch>(pools: &mut [Vec<K>]) -> Vec<InstanceSample> {
    let shards = pools.len();
    if shards > 1 {
        let instances = pools.first().map_or(0, Vec::len);
        let mut columns: Vec<std::slice::IterMut<'_, K>> =
            pools.iter_mut().map(|column| column.iter_mut()).collect();
        let mut group: Vec<&mut K> = Vec::with_capacity(shards);
        for _ in 0..instances {
            group.clear();
            group.extend(
                columns
                    .iter_mut()
                    .map(|column| column.next().expect("pool columns share a length")),
            );
            K::merge_many(&mut group);
        }
    }
    pools[0].iter_mut().map(Sketch::finalize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, Statistic};
    use pie_core::suite::{max_oblivious_suite, max_weighted_suite};
    use pie_datagen::{generate_two_hours, paper_example, TrafficConfig};

    #[test]
    fn stream_pipeline_requires_every_stage() {
        assert_eq!(
            StreamPipeline::new().run().unwrap_err(),
            PipelineError::MissingDataset
        );
        assert_eq!(
            StreamPipeline::new()
                .dataset(paper_example())
                .run()
                .unwrap_err(),
            PipelineError::MissingScheme
        );
        assert_eq!(
            StreamPipeline::new()
                .dataset(paper_example())
                .scheme(Scheme::oblivious(0.5))
                .run()
                .unwrap_err(),
            PipelineError::MissingEstimators
        );
    }

    #[test]
    fn stream_pipeline_rejects_regime_mismatch_and_bad_parameters() {
        let err = StreamPipeline::new()
            .dataset(paper_example())
            .scheme(Scheme::oblivious(0.5))
            .estimators(max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .run()
            .unwrap_err();
        assert!(matches!(err, PipelineError::RegimeMismatch { .. }));
        let err = StreamPipeline::new()
            .dataset(paper_example())
            .scheme(Scheme::pps(-1.0))
            .estimators(max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .run()
            .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidScheme { .. }));
    }

    #[test]
    fn sharded_pps_stream_matches_batch_pipeline_bitwise() {
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(5)));
        let batch = Pipeline::new()
            .dataset(Arc::clone(&data))
            .scheme(Scheme::pps(150.0))
            .estimators(max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .trials(25)
            .base_salt(3)
            .run()
            .unwrap();
        for shards in [1, 2, 4, 7] {
            let streamed = StreamPipeline::new()
                .dataset(Arc::clone(&data))
                .scheme(Scheme::pps(150.0))
                .shards(shards)
                .estimators(max_weighted_suite())
                .statistic(Statistic::max_dominance())
                .trials(25)
                .base_salt(3)
                .run()
                .unwrap();
            assert_eq!(streamed, batch, "{shards} shards");
        }
    }

    #[test]
    fn sharded_oblivious_stream_matches_batch_pipeline_bitwise() {
        let data = Arc::new(paper_example().take_instances(2));
        let batch = Pipeline::new()
            .dataset(Arc::clone(&data))
            .scheme(Scheme::oblivious(0.5))
            .estimators(max_oblivious_suite(0.5, 0.5))
            .statistic(Statistic::max_dominance())
            .trials(200)
            .run()
            .unwrap();
        for shards in [1, 3, 4] {
            let streamed = StreamPipeline::new()
                .dataset(Arc::clone(&data))
                .scheme(Scheme::oblivious(0.5))
                .shards(shards)
                .estimators(max_oblivious_suite(0.5, 0.5))
                .statistic(Statistic::max_dominance())
                .trials(200)
                .run()
                .unwrap();
            assert_eq!(streamed, batch, "{shards} shards");
        }
    }

    #[test]
    fn forced_ingest_strategies_are_bit_identical_across_shard_counts() {
        use pie_sampling::{BottomKSampler, PpsPoissonSampler, PpsRanks};
        let data = generate_two_hours(&TrafficConfig::small(3));
        let seeds = SeedAssignment::independent_known(7);

        fn all_strategies<S: SamplingScheme>(
            scheme: &S,
            stream: &ShardedStream,
            seeds: &SeedAssignment,
        ) -> [Vec<InstanceSample>; 3] {
            [
                IngestStrategy::Sequential,
                IngestStrategy::Threaded,
                IngestStrategy::Auto,
            ]
            .map(|strategy| {
                let mut pools = sketch_pools(scheme, stream, seeds);
                ingest_merge_finalize_with(stream, &mut pools, seeds, strategy)
            })
        }

        let bottomk = BottomKSampler::new(PpsRanks, 128);
        let pps = PpsPoissonSampler::new(50.0);
        let bottomk_ref =
            all_strategies(&bottomk, &ShardedStream::from_dataset(&data, 1), &seeds)[0].clone();
        let pps_ref =
            all_strategies(&pps, &ShardedStream::from_dataset(&data, 1), &seeds)[0].clone();
        for shards in [1usize, 2, 3, 5, 8] {
            let stream = ShardedStream::from_dataset(&data, shards);
            let [seq, thr, auto] = all_strategies(&bottomk, &stream, &seeds);
            assert_eq!(seq, thr, "bottom-k sequential vs threaded, {shards} shards");
            assert_eq!(seq, auto, "bottom-k sequential vs auto, {shards} shards");
            assert_eq!(
                seq, bottomk_ref,
                "bottom-k vs single stream, {shards} shards"
            );
            let [seq, thr, auto] = all_strategies(&pps, &stream, &seeds);
            assert_eq!(seq, thr, "pps sequential vs threaded, {shards} shards");
            assert_eq!(seq, auto, "pps sequential vs auto, {shards} shards");
            assert_eq!(seq, pps_ref, "pps vs single stream, {shards} shards");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let report = StreamPipeline::new()
            .dataset(paper_example().take_instances(2))
            .scheme(Scheme::oblivious(0.5))
            .shards(0)
            .estimators(max_oblivious_suite(0.5, 0.5))
            .statistic(Statistic::max_dominance())
            .trials(5)
            .run()
            .unwrap();
        assert_eq!(report.trials, 5);
    }
}
