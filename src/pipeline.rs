//! The end-to-end estimation pipeline: dataset → sampling → outcome
//! assembly → batched estimation → sum aggregation.
//!
//! [`Pipeline`] is the one-stop builder that replaces the hand-rolled loops
//! previously copied across examples, benches, and figure harnesses.  It
//! wires the workspace crates together:
//!
//! 1. a [`Dataset`] (from `pie-datagen` or your own instances),
//! 2. a sampling [`Scheme`] applied independently per instance
//!    (`pie-sampling`),
//! 3. per-trial outcome assembly into reusable struct-of-arrays **lanes**
//!    ([`ObliviousLanes`]/[`WeightedLanes`]): each per-instance field becomes
//!    one contiguous `f64` slice, built once per trial straight from the
//!    samples and shared by every registered estimator, so the hot loop
//!    performs **no per-outcome heap allocation** after warm-up,
//! 4. a registry of estimators run over the shared lanes through the
//!    vectorized hot path ([`Estimator::estimate_lanes`]),
//! 5. the sum aggregate over selected keys, repeated over Monte-Carlo trials
//!    on the parallel deterministic trial engine ([`TrialRunner`], thread
//!    count via [`Pipeline::threads`] or `PIE_THREADS` — reports are
//!    bit-identical at any thread count) and summarized against the exact
//!    ground truth (`pie-analysis`).
//!
//! ```
//! use partial_info_estimators::{Pipeline, Scheme, Statistic};
//! use partial_info_estimators::core::suite::max_weighted_suite;
//! use partial_info_estimators::datagen::{generate_two_hours, TrafficConfig};
//!
//! let report = Pipeline::new()
//!     .dataset(generate_two_hours(&TrafficConfig::small(3)))
//!     .scheme(Scheme::pps(200.0))
//!     .estimators(max_weighted_suite())
//!     .statistic(Statistic::max_dominance())
//!     .trials(40)
//!     .run()
//!     .unwrap();
//! let l = report.get("max_l_pps_2").unwrap();
//! let ht = report.get("max_ht_pps").unwrap();
//! assert!(l.variance < ht.variance, "L dominates HT on traffic data");
//! ```

use std::fmt;
use std::sync::Arc;

use pie_analysis::{Evaluation, RunningStats, Table, TrialRunner};
use pie_core::{functions, EstimatorRegistry};
use pie_datagen::Dataset;
use pie_sampling::{
    sample_all, sample_all_with_universe, sampled_key_union, InstanceSample, ObliviousLanes,
    ObliviousOutcome, ObliviousPoissonSampler, PpsPoissonSampler, SeedAssignment, WeightedLanes,
    WeightedOutcome,
};

/// How each instance is sampled, independently of the others.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Weight-oblivious Poisson sampling: every key of the universe is
    /// included with probability `p`, regardless of its value (Section 4).
    ObliviousPoisson {
        /// Per-entry inclusion probability, in `(0, 1]`.
        p: f64,
    },
    /// Weighted Poisson PPS sampling with known seeds: a key with value `v`
    /// is included iff `v ≥ u·τ*` (Sections 5–6).
    PpsPoisson {
        /// The PPS threshold τ*.
        tau_star: f64,
    },
}

impl Scheme {
    /// Weight-oblivious Poisson sampling with probability `p`.
    #[must_use]
    pub fn oblivious(p: f64) -> Self {
        Self::ObliviousPoisson { p }
    }

    /// Weighted PPS Poisson sampling with threshold `tau_star`.
    #[must_use]
    pub fn pps(tau_star: f64) -> Self {
        Self::PpsPoisson { tau_star }
    }
}

/// The boxed per-key function inside a [`Statistic`].
type StatisticFn = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// The per-key statistic being aggregated: a named function of one key's
/// value vector, summed over keys.
pub struct Statistic {
    name: String,
    f: StatisticFn,
}

impl Statistic {
    /// A custom statistic: `name` is used in reports, `f` maps one key's
    /// value vector to its contribution.
    #[must_use]
    pub fn new(name: impl Into<String>, f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Self {
        Self {
            name: name.into(),
            f: Box::new(f),
        }
    }

    /// The max-dominance norm `Σ_key max_i v_i(key)` (Section 8.2, Figure 7).
    #[must_use]
    pub fn max_dominance() -> Self {
        Self::new("max_dominance", functions::maximum)
    }

    /// The distinct count `Σ_key OR_i (v_i(key) > 0)` — the size of the union
    /// over instances (Section 8.1, Figure 6).
    #[must_use]
    pub fn distinct_count() -> Self {
        Self::new("distinct_count", functions::boolean_or)
    }

    /// Every statistic name resolvable through [`Statistic::by_name`], in a
    /// stable order.
    pub const NAMES: [&'static str; 2] = ["max_dominance", "distinct_count"];

    /// Resolves a built-in statistic by its report name — the lookup used
    /// when the statistic choice arrives as data (a CLI flag, a served
    /// `Estimate` request).  Returns `None` for unknown names.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "max_dominance" => Some(Self::max_dominance()),
            "distinct_count" => Some(Self::distinct_count()),
            _ => None,
        }
    }

    /// The statistic's report name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the per-key contribution on one value vector.
    #[must_use]
    pub fn eval(&self, values: &[f64]) -> f64 {
        (self.f)(values)
    }
}

impl fmt::Debug for Statistic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Statistic")
            .field("name", &self.name)
            .finish()
    }
}

/// The estimators a pipeline runs: a registry for whichever outcome regime
/// the scheme produces.  Constructed via `From`/`Into` so
/// [`Pipeline::estimators`] accepts either registry type directly.
pub enum EstimatorSet {
    /// Estimators over weight-oblivious outcomes.
    Oblivious(EstimatorRegistry<ObliviousOutcome>),
    /// Estimators over weighted (known-seed) outcomes.
    Weighted(EstimatorRegistry<WeightedOutcome>),
}

impl From<EstimatorRegistry<ObliviousOutcome>> for EstimatorSet {
    fn from(registry: EstimatorRegistry<ObliviousOutcome>) -> Self {
        Self::Oblivious(registry)
    }
}

impl From<EstimatorRegistry<WeightedOutcome>> for EstimatorSet {
    fn from(registry: EstimatorRegistry<WeightedOutcome>) -> Self {
        Self::Weighted(registry)
    }
}

impl EstimatorSet {
    pub(crate) fn len(&self) -> usize {
        match self {
            Self::Oblivious(r) => r.len(),
            Self::Weighted(r) => r.len(),
        }
    }
}

/// Why a [`Pipeline`] could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// No dataset was supplied.
    MissingDataset,
    /// No sampling scheme was supplied.
    MissingScheme,
    /// No estimators were supplied (or the registry was empty).
    MissingEstimators,
    /// No statistic was supplied.
    MissingStatistic,
    /// The estimator registry's outcome regime does not match the scheme's
    /// (e.g. weighted estimators with an oblivious scheme).
    RegimeMismatch {
        /// Debug rendering of the configured scheme.
        scheme: String,
        /// The regime of the supplied estimators.
        estimators: &'static str,
    },
    /// A scheme parameter is out of range (oblivious `p` outside `(0, 1]`,
    /// or a PPS `tau_star` that is not positive and finite).
    InvalidScheme {
        /// Debug rendering of the rejected scheme.
        scheme: String,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingDataset => write!(f, "pipeline has no dataset; call .dataset(..)"),
            Self::MissingScheme => write!(f, "pipeline has no sampling scheme; call .scheme(..)"),
            Self::MissingEstimators => {
                write!(f, "pipeline has no estimators; call .estimators(..) with a non-empty registry")
            }
            Self::MissingStatistic => write!(f, "pipeline has no statistic; call .statistic(..)"),
            Self::RegimeMismatch { scheme, estimators } => write!(
                f,
                "scheme {scheme} produces a different outcome regime than the {estimators} estimators consume"
            ),
            Self::InvalidScheme { scheme, reason } => {
                write!(f, "invalid scheme {scheme}: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Per-estimator slice of a [`PipelineReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorReport {
    /// The estimator's registered name.
    pub name: String,
    /// Bias/variance summary of its aggregate estimates across trials.
    pub evaluation: Evaluation,
}

/// The result of running a [`Pipeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Name of the aggregated statistic.
    pub statistic: String,
    /// The exact aggregate computed from the raw dataset.
    pub truth: f64,
    /// Number of Monte-Carlo sampling trials.
    pub trials: u64,
    /// One entry per registered estimator, in registration order.
    pub estimators: Vec<EstimatorReport>,
}

impl PipelineReport {
    /// Looks up one estimator's evaluation by registered name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Evaluation> {
        self.estimators
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.evaluation)
    }

    /// The name of the estimator with the lowest variance, if any ran.
    #[must_use]
    pub fn best_by_variance(&self) -> Option<&str> {
        self.estimators
            .iter()
            .min_by(|a, b| a.evaluation.variance.total_cmp(&b.evaluation.variance))
            .map(|e| e.name.as_str())
    }

    /// Renders the report as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = Table::new(
            format!(
                "{} (truth {:.4}, {} trials)",
                self.statistic, self.truth, self.trials
            ),
            &["estimator", "mean", "rel. bias", "variance", "cv"],
        );
        for e in &self.estimators {
            table.push_row(&[
                e.name.clone(),
                format!("{:.4}", e.evaluation.mean),
                format!("{:.5}", e.evaluation.relative_bias),
                format!("{:.4}", e.evaluation.variance),
                format!("{:.4}", e.evaluation.cv()),
            ]);
        }
        table.render()
    }
}

impl pie_store::Encode for Scheme {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), pie_store::StoreError> {
        match *self {
            Self::ObliviousPoisson { p } => {
                0u32.encode(w)?;
                p.encode(w)
            }
            Self::PpsPoisson { tau_star } => {
                1u32.encode(w)?;
                tau_star.encode(w)
            }
        }
    }
}

impl pie_store::Decode for Scheme {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, pie_store::StoreError> {
        match u32::decode(r)? {
            0 => Ok(Self::ObliviousPoisson { p: f64::decode(r)? }),
            1 => Ok(Self::PpsPoisson {
                tau_star: f64::decode(r)?,
            }),
            tag => Err(pie_store::StoreError::InvalidTag {
                what: "Scheme",
                tag,
            }),
        }
    }
}

impl pie_store::Encode for EstimatorReport {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), pie_store::StoreError> {
        self.name.encode(w)?;
        self.evaluation.encode(w)
    }
}

impl pie_store::Decode for EstimatorReport {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, pie_store::StoreError> {
        Ok(Self {
            name: String::decode(r)?,
            evaluation: Evaluation::decode(r)?,
        })
    }
}

impl pie_store::Encode for PipelineReport {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), pie_store::StoreError> {
        self.statistic.encode(w)?;
        self.truth.encode(w)?;
        self.trials.encode(w)?;
        self.estimators.encode(w)
    }
}

impl pie_store::Decode for PipelineReport {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, pie_store::StoreError> {
        Ok(Self {
            statistic: String::decode(r)?,
            truth: f64::decode(r)?,
            trials: u64::decode(r)?,
            estimators: Vec::decode(r)?,
        })
    }
}

impl PipelineReport {
    /// Persists the report as a snapshot file (versioned, checksummed).
    ///
    /// # Errors
    /// Propagates file I/O failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), pie_store::StoreError> {
        pie_store::write_snapshot_file(path, self)
    }

    /// Loads a report previously written by [`PipelineReport::save`] —
    /// bit-identical to the saved one, so reports from different processes
    /// can be compared exactly.
    ///
    /// # Errors
    /// Propagates snapshot validation and decoding failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, pie_store::StoreError> {
        pie_store::read_snapshot_file(path)
    }
}

/// Builder wiring datagen → sampling → outcome assembly → batched estimation
/// → sum aggregation.  See the [module docs](self) for the full walkthrough.
#[derive(Debug)]
#[must_use = "a pipeline does nothing until .run()"]
pub struct Pipeline {
    dataset: Option<Arc<Dataset>>,
    scheme: Option<Scheme>,
    estimators: Option<EstimatorSet>,
    statistic: Option<Statistic>,
    trials: u64,
    base_salt: u64,
    threads: Option<usize>,
}

impl Default for Pipeline {
    /// Same as [`Pipeline::new`]: empty stages, 100 trials, salt 0.
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for EstimatorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Oblivious(r) => write!(f, "EstimatorSet::Oblivious({} estimators)", r.len()),
            Self::Weighted(r) => write!(f, "EstimatorSet::Weighted({} estimators)", r.len()),
        }
    }
}

impl Pipeline {
    /// Starts an empty pipeline (100 trials, salt 0 by default).
    pub fn new() -> Self {
        Self {
            dataset: None,
            scheme: None,
            estimators: None,
            statistic: None,
            trials: 100,
            base_salt: 0,
            threads: None,
        }
    }

    /// Sets the dataset to sample and estimate over.
    ///
    /// Accepts either an owned [`Dataset`] or an `Arc<Dataset>`; pass a
    /// shared `Arc` when running several pipelines over the same data (e.g.
    /// a parameter sweep) to avoid deep-copying the instances per run.
    pub fn dataset(mut self, dataset: impl Into<Arc<Dataset>>) -> Self {
        self.dataset = Some(dataset.into());
        self
    }

    /// Sets the per-instance sampling scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = Some(scheme);
        self
    }

    /// Sets the estimators to run; accepts a registry for either outcome
    /// regime (it must match the scheme at [`run`](Self::run) time).
    pub fn estimators(mut self, estimators: impl Into<EstimatorSet>) -> Self {
        self.estimators = Some(estimators.into());
        self
    }

    /// Sets the aggregated statistic (and the ground truth it implies).
    pub fn statistic(mut self, statistic: Statistic) -> Self {
        self.statistic = Some(statistic);
        self
    }

    /// Sets the number of Monte-Carlo sampling trials (default 100).
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the base hash salt; trial `t` uses salt `base_salt + t`, so
    /// different salts give independent experiments (default 0).
    pub fn base_salt(mut self, base_salt: u64) -> Self {
        self.base_salt = base_salt;
        self
    }

    /// Sets the number of worker threads for the Monte-Carlo trial loop
    /// (clamped to ≥ 1).
    ///
    /// The default follows the `PIE_THREADS` environment variable, falling
    /// back to the machine's available parallelism.  Thread count **never
    /// changes the report**: trials are partitioned into fixed chunks and
    /// reduced in a canonical order (see [`TrialRunner`]), so any thread
    /// count reproduces the sequential output bit for bit.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Runs the pipeline: samples every instance `trials` times, assembles
    /// per-key outcomes into reusable buffers, pushes them through each
    /// estimator's batched hot path, and summarizes the per-trial sum
    /// aggregates against the exact truth.
    ///
    /// # Estimator requirements
    ///
    /// Under the PPS scheme, outcomes are only assembled for keys present in
    /// at least one sample; keys sampled nowhere are credited **zero**
    /// without consulting the estimators.  Every estimator in the registry
    /// must therefore return `0.0` on a fully-unsampled outcome — true of
    /// all unbiased *nonnegative* estimators (an all-`None` outcome is
    /// consistent with the all-zero vector), and of everything in
    /// [`pie_core::suite`] — or its aggregate will be biased.  The
    /// oblivious scheme evaluates every dataset key, so it carries no such
    /// requirement.
    ///
    /// # Errors
    /// Returns a [`PipelineError`] if a stage is missing or the estimator
    /// regime does not match the scheme.
    pub fn run(self) -> Result<PipelineReport, PipelineError> {
        let dataset = self.dataset.ok_or(PipelineError::MissingDataset)?;
        let scheme = self.scheme.ok_or(PipelineError::MissingScheme)?;
        let estimators = self.estimators.ok_or(PipelineError::MissingEstimators)?;
        let statistic = self.statistic.ok_or(PipelineError::MissingStatistic)?;
        if estimators.len() == 0 {
            return Err(PipelineError::MissingEstimators);
        }
        validate_scheme(scheme)?;
        let plan = TrialPlan::new(self.trials, self.base_salt, self.threads);
        match (scheme, estimators) {
            (Scheme::ObliviousPoisson { p }, EstimatorSet::Oblivious(registry)) => {
                // `Dataset::keys` is already the sorted, deduped union, so
                // compute the universe once instead of per worker.
                let universe = dataset.keys();
                Ok(run_oblivious_with(
                    &dataset,
                    &registry,
                    &statistic,
                    &plan,
                    |_worker| {
                        let sampler = ObliviousPoissonSampler::new(p);
                        let ds = Arc::clone(&dataset);
                        let universe = &universe;
                        move |_t, seeds: &SeedAssignment| {
                            sample_all_with_universe(&sampler, ds.instances(), universe, seeds)
                        }
                    },
                ))
            }
            (Scheme::PpsPoisson { tau_star }, EstimatorSet::Weighted(registry)) => {
                Ok(run_pps_with(
                    &dataset,
                    tau_star,
                    &registry,
                    &statistic,
                    &plan,
                    |_worker| {
                        let sampler = PpsPoissonSampler::new(tau_star);
                        let ds = Arc::clone(&dataset);
                        move |_t, seeds: &SeedAssignment| {
                            sample_all(&sampler, ds.instances(), seeds)
                        }
                    },
                ))
            }
            (scheme, estimators) => Err(PipelineError::RegimeMismatch {
                scheme: format!("{scheme:?}"),
                estimators: match estimators {
                    EstimatorSet::Oblivious(_) => "weight-oblivious",
                    EstimatorSet::Weighted(_) => "weighted",
                },
            }),
        }
    }
}

/// The Monte-Carlo execution plan shared by both pipeline front-ends: how
/// many trials, the salt from which trial `t` derives its randomization
/// (`base_salt + t`), and the engine that runs the loop.
pub(crate) struct TrialPlan {
    pub(crate) trials: u64,
    pub(crate) base_salt: u64,
    pub(crate) runner: TrialRunner,
    pub(crate) observer: crate::obs::PipelineObserver,
}

impl TrialPlan {
    /// Builds a plan from a builder's `.trials`/`.base_salt`/`.threads`
    /// settings: an explicit thread count wins, otherwise `PIE_THREADS` /
    /// available parallelism (see [`TrialRunner::new`]).
    pub(crate) fn new(trials: u64, base_salt: u64, threads: Option<usize>) -> Self {
        Self {
            trials,
            base_salt,
            runner: match threads {
                Some(n) => TrialRunner::with_threads(n),
                None => TrialRunner::new(),
            },
            observer: crate::obs::PipelineObserver::disabled(),
        }
    }

    /// Installs observation hooks: stage totals accumulate into the
    /// observer's [`StageNanos`](crate::obs::StageNanos), and any chunk
    /// hook becomes the trial engine's recorder.  Observation never changes
    /// results.
    pub(crate) fn with_observer(mut self, observer: crate::obs::PipelineObserver) -> Self {
        self.runner = self.runner.recorder(observer.recorder());
        self.observer = observer;
        self
    }
}

/// Validates the scheme's parameters (shared by [`Pipeline`] and
/// [`StreamPipeline`](crate::StreamPipeline)).
pub(crate) fn validate_scheme(scheme: Scheme) -> Result<(), PipelineError> {
    match scheme {
        Scheme::ObliviousPoisson { p } if !(p > 0.0 && p <= 1.0) => {
            Err(PipelineError::InvalidScheme {
                scheme: format!("{scheme:?}"),
                reason: "sampling probability must lie in (0, 1]",
            })
        }
        Scheme::PpsPoisson { tau_star } if !(tau_star > 0.0 && tau_star.is_finite()) => {
            Err(PipelineError::InvalidScheme {
                scheme: format!("{scheme:?}"),
                reason: "tau_star must be positive and finite",
            })
        }
        _ => Ok(()),
    }
}

/// Exact ground truth of the aggregate: `Σ_key statistic(v(key))`.
fn exact_truth(dataset: &Dataset, statistic: &Statistic) -> f64 {
    dataset
        .keys()
        .iter()
        .map(|&k| statistic.eval(&dataset.value_vector(k)))
        .sum()
}

fn summarize(
    statistic: &Statistic,
    truth: f64,
    trials: u64,
    names: impl Iterator<Item = impl Into<String>>,
    stats: &[RunningStats],
) -> PipelineReport {
    PipelineReport {
        statistic: statistic.name().to_string(),
        truth,
        trials,
        estimators: names
            .zip(stats)
            .map(|(name, stat)| EstimatorReport {
                name: name.into(),
                evaluation: Evaluation::from_stats(stat, truth),
            })
            .collect(),
    }
}

/// Per-worker scratch state of the oblivious estimation core: the worker's
/// sampling closure plus its reusable lane and estimate buffers.
struct ObliviousWorker<G> {
    sample_trial: G,
    lanes: ObliviousLanes,
    estimates: Vec<f64>,
}

/// The oblivious-regime estimation core: runs `trials` Monte-Carlo trials on
/// the parallel trial engine, obtaining each trial's per-instance samples
/// from a worker's sampling closure (batch samplers, sharded streaming
/// ingest, …) and pushing them through the pooled outcome buffers and the
/// batched estimator hot path.
///
/// `make_sampler(worker)` builds one worker thread's sampling closure
/// (cloned samplers, per-worker sketch pools, …).  Each closure must be a
/// pure function of `(trial, seeds)` — per-trial samples may not depend on
/// which worker draws them — which is what makes the report bit-identical
/// at every thread count.  The closure may return owned samples (live
/// sampling) or borrow precomputed ones (`&[InstanceSample]`, the
/// catalog/checkpoint replay paths) — anything `AsRef<[InstanceSample]>` —
/// so replaying finalized samples costs no per-trial deep copy.
pub(crate) fn run_oblivious_with<R, G, F>(
    dataset: &Dataset,
    registry: &EstimatorRegistry<ObliviousOutcome>,
    statistic: &Statistic,
    plan: &TrialPlan,
    make_sampler: F,
) -> PipelineReport
where
    F: Fn(usize) -> G + Sync,
    G: FnMut(u64, &SeedAssignment) -> R + Send,
    R: AsRef<[InstanceSample]>,
{
    run_oblivious_multi_with(dataset, &[(registry, statistic)], plan, make_sampler)
        .pop()
        .expect("one combination in, one report out")
}

/// Multi-query variant of [`run_oblivious_with`]: answers every
/// `(registry, statistic)` combination from **one** replay of the trial
/// loop.  Per trial, the samples are drawn once and the per-key outcomes
/// are assembled once (the expensive part — it scales with the key
/// universe); each combination then only pays its own `estimate_batch` and
/// accumulation.  Every float operation a combination sees is the same it
/// would see running alone, so each returned report is **bit-identical** to
/// the corresponding single-combination [`run_oblivious_with`] call.
pub(crate) fn run_oblivious_multi_with<R, G, F>(
    dataset: &Dataset,
    combos: &[(&EstimatorRegistry<ObliviousOutcome>, &Statistic)],
    plan: &TrialPlan,
    make_sampler: F,
) -> Vec<PipelineReport>
where
    F: Fn(usize) -> G + Sync,
    G: FnMut(u64, &SeedAssignment) -> R + Send,
    R: AsRef<[InstanceSample]>,
{
    let truths: Vec<f64> = combos
        .iter()
        .map(|(_, statistic)| exact_truth(dataset, statistic))
        .collect();
    // `keys` is the sorted, deduped union of all instances' keys: the same
    // universe the sampling stage (batch or streaming) covers.
    let keys = dataset.keys();
    let keys = &keys;
    let base_salt = plan.base_salt;
    // One statistics lane per (combination, estimator), flattened in
    // combination order; chunk accumulators merge per lane exactly as in a
    // single-combination run.
    let lanes: usize = combos.iter().map(|(registry, _)| registry.len()).sum();
    // Stage attribution is observation only — clock reads between stages,
    // never inside the float path — so observed runs stay bit-identical.
    let stages = plan.observer.stages.as_deref();
    let stats = plan.runner.run(
        plan.trials,
        lanes,
        // Reusable per-worker buffers: the lane vectors are resized once and
        // rewritten in place every trial, so the hot loop stays
        // allocation-free.
        |worker| ObliviousWorker {
            sample_trial: make_sampler(worker),
            lanes: ObliviousLanes::new(),
            estimates: vec![0.0; keys.len()],
        },
        |w, t, stats| {
            let replay_start = stages.map(|_| std::time::Instant::now());
            let seeds = SeedAssignment::independent_known(base_salt.wrapping_add(t));
            let samples = (w.sample_trial)(t, &seeds);
            w.lanes.fill_from_samples(keys, samples.as_ref());
            let batch_start = stages.map(|_| std::time::Instant::now());
            let mut lane = 0;
            for (registry, _) in combos {
                for (_, estimator) in registry.iter() {
                    estimator.estimate_lanes(&w.lanes, &mut w.estimates);
                    stats[lane].push(w.estimates.iter().sum());
                    lane += 1;
                }
            }
            if let (Some(totals), Some(replayed), Some(batched)) =
                (stages, replay_start, batch_start)
            {
                totals.add_trial_replay(elapsed_nanos(replayed, batched));
                totals.add_estimator_batch(nanos_since(batched));
            }
        },
    );
    let mut reports = Vec::with_capacity(combos.len());
    let mut lane = 0;
    for ((registry, statistic), truth) in combos.iter().zip(&truths) {
        let slice = &stats[lane..lane + registry.len()];
        lane += registry.len();
        reports.push(summarize(
            statistic,
            *truth,
            plan.trials,
            registry.names(),
            slice,
        ));
    }
    reports
}

/// Per-worker scratch state of the weighted estimation core.
struct WeightedWorker<G> {
    sample_trial: G,
    lanes: WeightedLanes,
    estimates: Vec<f64>,
}

/// The weighted (PPS, known seeds) estimation core; see
/// [`run_oblivious_with`] for the trial structure and determinism contract.
pub(crate) fn run_pps_with<R, G, F>(
    dataset: &Dataset,
    tau_star: f64,
    registry: &EstimatorRegistry<WeightedOutcome>,
    statistic: &Statistic,
    plan: &TrialPlan,
    make_sampler: F,
) -> PipelineReport
where
    F: Fn(usize) -> G + Sync,
    G: FnMut(u64, &SeedAssignment) -> R + Send,
    R: AsRef<[InstanceSample]>,
{
    run_pps_multi_with(
        dataset,
        tau_star,
        &[(registry, statistic)],
        plan,
        make_sampler,
    )
    .pop()
    .expect("one combination in, one report out")
}

/// Multi-query variant of [`run_pps_with`]; see [`run_oblivious_multi_with`]
/// for the shared-replay structure and the bit-identity argument.  Here the
/// shared per-trial work is even larger: the sampled-key union and the
/// weighted outcome assembly (seeds, tau*, values) are computed once for
/// all combinations.
pub(crate) fn run_pps_multi_with<R, G, F>(
    dataset: &Dataset,
    tau_star: f64,
    combos: &[(&EstimatorRegistry<WeightedOutcome>, &Statistic)],
    plan: &TrialPlan,
    make_sampler: F,
) -> Vec<PipelineReport>
where
    F: Fn(usize) -> G + Sync,
    G: FnMut(u64, &SeedAssignment) -> R + Send,
    R: AsRef<[InstanceSample]>,
{
    let truths: Vec<f64> = combos
        .iter()
        .map(|(_, statistic)| exact_truth(dataset, statistic))
        .collect();
    let base_salt = plan.base_salt;
    let lanes: usize = combos.iter().map(|(registry, _)| registry.len()).sum();
    // Observation only; see `run_oblivious_multi_with`.
    let stages = plan.observer.stages.as_deref();
    let stats = plan.runner.run(
        plan.trials,
        lanes,
        // Per-worker lane buffers: grow to the worker's largest per-trial
        // key set, then are reused.  (Keys sampled nowhere contribute zero
        // for nonnegative estimators, so each trial only assembles lanes
        // for keys present in some sample.)
        |worker| WeightedWorker {
            sample_trial: make_sampler(worker),
            lanes: WeightedLanes::new(),
            estimates: Vec::new(),
        },
        |w, t, stats| {
            let replay_start = stages.map(|_| std::time::Instant::now());
            let seeds = SeedAssignment::independent_known(base_salt.wrapping_add(t));
            let samples = (w.sample_trial)(t, &seeds);
            let samples = samples.as_ref();
            let keys = sampled_key_union(samples);
            w.lanes.fill_pps(&keys, samples, &seeds, tau_star);
            w.estimates.resize(keys.len(), 0.0);
            let batch_start = stages.map(|_| std::time::Instant::now());
            let mut lane = 0;
            for (registry, _) in combos {
                for (_, estimator) in registry.iter() {
                    estimator.estimate_lanes(&w.lanes, &mut w.estimates[..keys.len()]);
                    stats[lane].push(w.estimates[..keys.len()].iter().sum());
                    lane += 1;
                }
            }
            if let (Some(totals), Some(replayed), Some(batched)) =
                (stages, replay_start, batch_start)
            {
                totals.add_trial_replay(elapsed_nanos(replayed, batched));
                totals.add_estimator_batch(nanos_since(batched));
            }
        },
    );
    let mut reports = Vec::with_capacity(combos.len());
    let mut lane = 0;
    for ((registry, statistic), truth) in combos.iter().zip(&truths) {
        let slice = &stats[lane..lane + registry.len()];
        lane += registry.len();
        reports.push(summarize(
            statistic,
            *truth,
            plan.trials,
            registry.names(),
            slice,
        ));
    }
    reports
}

/// Saturating nanoseconds between two stage boundary clock reads.
fn elapsed_nanos(from: std::time::Instant, to: std::time::Instant) -> u64 {
    u64::try_from(to.saturating_duration_since(from).as_nanos()).unwrap_or(u64::MAX)
}

/// Saturating nanoseconds since a stage boundary clock read.
fn nanos_since(from: std::time::Instant) -> u64 {
    u64::try_from(from.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_core::suite::{max_oblivious_suite, max_weighted_suite};
    use pie_datagen::{generate_two_hours, paper_example, TrafficConfig};

    #[test]
    fn pipeline_requires_every_stage() {
        assert_eq!(
            Pipeline::new().run().unwrap_err(),
            PipelineError::MissingDataset
        );
        assert_eq!(
            Pipeline::new()
                .dataset(paper_example().take_instances(2))
                .run()
                .unwrap_err(),
            PipelineError::MissingScheme
        );
        assert_eq!(
            Pipeline::new()
                .dataset(paper_example().take_instances(2))
                .scheme(Scheme::oblivious(0.5))
                .run()
                .unwrap_err(),
            PipelineError::MissingEstimators
        );
        assert_eq!(
            Pipeline::new()
                .dataset(paper_example().take_instances(2))
                .scheme(Scheme::oblivious(0.5))
                .estimators(max_oblivious_suite(0.5, 0.5))
                .run()
                .unwrap_err(),
            PipelineError::MissingStatistic
        );
    }

    #[test]
    fn pipeline_rejects_out_of_range_scheme_parameters() {
        for scheme in [Scheme::oblivious(0.0), Scheme::oblivious(1.5)] {
            let err = Pipeline::new()
                .dataset(paper_example().take_instances(2))
                .scheme(scheme)
                .estimators(max_oblivious_suite(0.5, 0.5))
                .statistic(Statistic::max_dominance())
                .run()
                .unwrap_err();
            assert!(
                matches!(err, PipelineError::InvalidScheme { .. }),
                "{scheme:?}"
            );
        }
        for tau in [0.0, -1.0, f64::INFINITY, f64::NAN] {
            let err = Pipeline::new()
                .dataset(paper_example().take_instances(2))
                .scheme(Scheme::pps(tau))
                .estimators(max_weighted_suite())
                .statistic(Statistic::max_dominance())
                .run()
                .unwrap_err();
            assert!(
                matches!(err, PipelineError::InvalidScheme { .. }),
                "tau_star {tau}"
            );
            assert!(err.to_string().contains("positive and finite"));
        }
    }

    #[test]
    fn pipeline_default_matches_new() {
        // A derived Default would zero `trials`; the manual impl must keep
        // new()'s documented 100-trial default.
        let report = Pipeline::default()
            .dataset(paper_example().take_instances(2))
            .scheme(Scheme::oblivious(0.5))
            .estimators(max_oblivious_suite(0.5, 0.5))
            .statistic(Statistic::max_dominance())
            .run()
            .unwrap();
        assert_eq!(report.trials, 100);
        assert!(report.estimators.iter().all(|e| e.evaluation.trials == 100));
    }

    #[test]
    fn pipeline_rejects_regime_mismatch() {
        let err = Pipeline::new()
            .dataset(paper_example().take_instances(2))
            .scheme(Scheme::oblivious(0.5))
            .estimators(max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .run()
            .unwrap_err();
        assert!(matches!(err, PipelineError::RegimeMismatch { .. }));
        assert!(err.to_string().contains("weighted"));
    }

    #[test]
    fn oblivious_pipeline_is_unbiased_and_ranks_l_first() {
        let report = Pipeline::new()
            .dataset(paper_example().take_instances(2))
            .scheme(Scheme::oblivious(0.5))
            .estimators(max_oblivious_suite(0.5, 0.5))
            .statistic(Statistic::max_dominance())
            .trials(4000)
            .base_salt(11)
            .run()
            .unwrap();
        assert_eq!(report.estimators.len(), 3);
        for e in &report.estimators {
            assert!(
                e.evaluation.relative_bias < 0.05,
                "{} bias {}",
                e.name,
                e.evaluation.relative_bias
            );
        }
        let ht = report.get("max_ht_oblivious").unwrap();
        let l = report.get("max_l_2").unwrap();
        assert!(l.variance < ht.variance, "L should beat HT");
        assert_ne!(report.best_by_variance(), Some("max_ht_oblivious"));
        let rendered = report.render();
        assert!(rendered.contains("max_dominance"));
        assert!(rendered.contains("max_l_2"));
    }

    #[test]
    fn pps_pipeline_matches_bespoke_aggregate_loop() {
        use pie_analysis::{all_keys, evaluate_aggregate_pps};
        use pie_core::aggregate::{max_dominance_l, true_max_dominance};

        let dataset = generate_two_hours(&TrafficConfig::small(3));
        let truth = true_max_dominance(dataset.instances(), |_| true);
        let trials = 60;
        let salt = 7;
        let report = Pipeline::new()
            .dataset(dataset.clone())
            .scheme(Scheme::pps(200.0))
            .estimators(max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .trials(trials)
            .base_salt(salt)
            .run()
            .unwrap();
        assert!((report.truth - truth).abs() < 1e-9);
        // The pipeline's L-estimator path must reproduce the bespoke
        // `evaluate_aggregate_pps` + `max_dominance_l` loop it replaced.
        let bespoke = evaluate_aggregate_pps(&dataset, 200.0, truth, trials, salt, |s, seeds| {
            max_dominance_l(s, seeds, all_keys)
        });
        let l = report.get("max_l_pps_2").unwrap();
        assert!(
            (l.mean - bespoke.mean).abs() <= 1e-9 * bespoke.mean.abs().max(1.0),
            "pipeline mean {} vs bespoke {}",
            l.mean,
            bespoke.mean
        );
        assert!(
            (l.variance - bespoke.variance).abs() <= 1e-6 * bespoke.variance.max(1.0),
            "pipeline variance {} vs bespoke {}",
            l.variance,
            bespoke.variance
        );
    }

    #[test]
    fn distinct_count_statistic_on_binary_data() {
        use pie_datagen::{generate_set_pair, SetPairConfig};
        let dataset = generate_set_pair(&SetPairConfig::new(200, 0.5));
        let report = Pipeline::new()
            .dataset(dataset)
            .scheme(Scheme::oblivious(0.4))
            .estimators(pie_core::suite::or_oblivious_suite(0.4, 0.4))
            .statistic(Statistic::distinct_count())
            .trials(300)
            .run()
            .unwrap();
        for e in &report.estimators {
            assert!(
                e.evaluation.relative_bias < 0.05,
                "{} bias {}",
                e.name,
                e.evaluation.relative_bias
            );
        }
        let ht = report.get("or_ht_oblivious").unwrap();
        let l = report.get("or_l_2").unwrap();
        assert!(l.variance < ht.variance);
    }
}
