//! Servable sketch state: a finalized, persistable unit of sampled data
//! that answers estimation queries with per-query estimator choice.
//!
//! The paper's setting is exactly "small summary, many downstream queries":
//! a sketch is computed once, then interrogated repeatedly — often by
//! parties that were not present at sampling time and want to pick their
//! own estimator (HT baseline vs. the Pareto-optimal `L`/`U` families) and
//! statistic per query.  [`CatalogEntry`] is that unit:
//!
//! * **built once** — from a dataset's record stream via
//!   [`CatalogEntry::build`] / [`StreamPipeline::into_catalog_entry`], or
//!   from a completed (possibly checkpoint-resumed) ingest session via
//!   [`StreamIngestSession::finish_into_catalog`] — holding one finalized
//!   [`InstanceSample`] per `(trial, instance)`;
//! * **persisted whole** — [`CatalogEntry::save`] / [`CatalogEntry::load`]
//!   write one versioned, checksummed `pie-store` snapshot file, so a
//!   serving process can load sketch state produced elsewhere;
//! * **queried many times** — [`CatalogEntry::estimate`] runs any
//!   estimator registry and statistic over the *same* estimation cores the
//!   live pipelines use, so a served answer is **bit-identical** to what
//!   [`Pipeline`](crate::Pipeline) / [`StreamPipeline`] would have produced
//!   in-process on the same configuration;
//! * **addressable by name** — [`CatalogEntry::estimate_named`] resolves
//!   estimator suites ([`pie_core::suite`]) and statistics
//!   ([`Statistic::by_name`]) from strings, returning typed
//!   [`CatalogError`]s for unknown names, regime mismatches, and
//!   arity/domain violations instead of panicking — the contract a network
//!   service needs.
//!
//! [`StreamIngestSession::finish_into_catalog`]:
//! crate::StreamIngestSession::finish_into_catalog
//! [`StreamPipeline::into_catalog_entry`]:
//! crate::StreamPipeline::into_catalog_entry
//!
//! ```
//! use partial_info_estimators::{CatalogEntry, Scheme};
//! use partial_info_estimators::datagen::paper_example;
//!
//! let entry = CatalogEntry::build(
//!     paper_example().take_instances(2),
//!     Scheme::oblivious(0.5),
//!     2,   // shards
//!     50,  // trials
//!     7,   // base salt
//! )
//! .unwrap();
//! let report = entry.estimate_named("max_oblivious", "max_dominance", Some(1)).unwrap();
//! assert_eq!(report.trials, 50);
//! ```

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use pie_core::suite::{oblivious_suite_by_name, suite_regime, weighted_suite_by_name, SuiteRegime};
use pie_datagen::{Dataset, ShardedStream};
use pie_sampling::{InstanceSample, ObliviousPoissonSampler, PpsPoissonSampler, SeedAssignment};
use pie_store::{Decode, Encode, StoreError};

use crate::pipeline::{
    run_oblivious_multi_with, run_oblivious_with, run_pps_multi_with, run_pps_with,
    validate_scheme, EstimatorSet, PipelineError, PipelineReport, Scheme, Statistic, TrialPlan,
};
use crate::stream::{ingest_merge_finalize, sketch_pools};

/// Why a catalog entry could not resolve or answer a query.
#[derive(Debug)]
#[non_exhaustive]
pub enum CatalogError {
    /// The underlying pipeline configuration or estimation failed.
    Pipeline(PipelineError),
    /// No estimator suite is registered under this name (see
    /// [`pie_core::suite::SUITE_NAMES`]).
    UnknownSuite {
        /// The unresolvable suite name.
        name: String,
    },
    /// The named suite consumes a different outcome regime than this
    /// entry's sampling scheme produces.
    RegimeMismatch {
        /// The requested suite name.
        suite: String,
        /// Debug rendering of the entry's scheme.
        scheme: String,
    },
    /// The named suite is defined for a different number of instances than
    /// this entry holds (the paper's pairwise estimators need exactly two).
    ArityMismatch {
        /// The requested suite name.
        suite: String,
        /// Instances the suite requires.
        required: usize,
        /// Instances the entry holds.
        found: usize,
    },
    /// The named suite requires binary (0/1) data, but this entry's dataset
    /// has other values (Boolean `OR` is only defined over indicators).
    NonBinaryData {
        /// The requested suite name.
        suite: String,
    },
    /// No statistic is registered under this name (see
    /// [`Statistic::NAMES`]).
    UnknownStatistic {
        /// The unresolvable statistic name.
        name: String,
    },
    /// Reading or writing the entry's snapshot file failed.
    Store(StoreError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Pipeline(e) => write!(f, "{e}"),
            Self::UnknownSuite { name } => write!(f, "unknown estimator suite {name:?}"),
            Self::RegimeMismatch { suite, scheme } => write!(
                f,
                "suite {suite:?} consumes a different outcome regime than scheme {scheme}"
            ),
            Self::ArityMismatch {
                suite,
                required,
                found,
            } => write!(
                f,
                "suite {suite:?} is defined for {required} instances, sketch has {found}"
            ),
            Self::NonBinaryData { suite } => write!(
                f,
                "suite {suite:?} requires binary (0/1) data, sketch holds other values"
            ),
            Self::UnknownStatistic { name } => write!(f, "unknown statistic {name:?}"),
            Self::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Pipeline(e) => Some(e),
            Self::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for CatalogError {
    fn from(e: PipelineError) -> Self {
        Self::Pipeline(e)
    }
}

impl From<StoreError> for CatalogError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

/// A finalized, persistable, queryable sketch of one dataset: the sampled
/// state of every `(trial, instance)` pair plus the configuration that
/// produced it.  See the [module docs](self) for the life cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    dataset: Arc<Dataset>,
    scheme: Scheme,
    shards: usize,
    trials: u64,
    base_salt: u64,
    /// Whether every explicit dataset value is 0 or 1 (precomputed so
    /// binary-only suites can be gated per query without rescanning).
    binary: bool,
    /// Content fingerprint over the entry's full encoded state (precomputed
    /// so result caches can key on it without rescanning; see
    /// [`fingerprint`](Self::fingerprint)).
    fingerprint: u64,
    /// One finalized sample per `[trial][instance]`.
    samples: Vec<Vec<InstanceSample>>,
}

/// `io::Write` adapter that folds encoded bytes into the store's frame
/// checksum, fingerprinting an entry without materializing its encoding.
struct ChecksumWriter(pie_store::frame::Checksum);

impl std::io::Write for ChecksumWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.update(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl CatalogEntry {
    /// Samples `dataset` under `scheme` across `shards` ingest shards for
    /// `trials` Monte-Carlo trials (trial `t` seeded from `base_salt + t`)
    /// and finalizes the per-instance samples.
    ///
    /// The sampling path is the same sharded ingest → merge tree → finalize
    /// choreography [`StreamPipeline`](crate::StreamPipeline) runs per
    /// trial, so estimates over the entry are bit-identical to the live
    /// pipelines on the same configuration.
    ///
    /// # Errors
    /// [`PipelineError::InvalidScheme`] for out-of-range scheme parameters.
    pub fn build(
        dataset: impl Into<Arc<Dataset>>,
        scheme: Scheme,
        shards: usize,
        trials: u64,
        base_salt: u64,
    ) -> Result<Self, PipelineError> {
        validate_scheme(scheme)?;
        let dataset = dataset.into();
        let shards = shards.max(1);
        let seeds0 = SeedAssignment::independent_known(base_salt);
        let samples = match scheme {
            Scheme::ObliviousPoisson { p } => {
                let stream = ShardedStream::over_universe(&dataset, shards);
                let mut pools = sketch_pools(&ObliviousPoissonSampler::new(p), &stream, &seeds0);
                (0..trials)
                    .map(|t| {
                        let seeds = SeedAssignment::independent_known(base_salt.wrapping_add(t));
                        ingest_merge_finalize(&stream, &mut pools, &seeds)
                    })
                    .collect()
            }
            Scheme::PpsPoisson { tau_star } => {
                let stream = ShardedStream::from_dataset(&dataset, shards);
                let mut pools = sketch_pools(&PpsPoissonSampler::new(tau_star), &stream, &seeds0);
                (0..trials)
                    .map(|t| {
                        let seeds = SeedAssignment::independent_known(base_salt.wrapping_add(t));
                        ingest_merge_finalize(&stream, &mut pools, &seeds)
                    })
                    .collect()
            }
        };
        Ok(Self::from_parts(
            dataset, scheme, shards, trials, base_salt, samples,
        ))
    }

    /// Assembles an entry from already-finalized per-trial samples (the
    /// checkpoint/session export path).
    pub(crate) fn from_parts(
        dataset: Arc<Dataset>,
        scheme: Scheme,
        shards: usize,
        trials: u64,
        base_salt: u64,
        samples: Vec<Vec<InstanceSample>>,
    ) -> Self {
        let binary = dataset
            .instances()
            .iter()
            .all(|inst| inst.iter().all(|(_, v)| v == 0.0 || v == 1.0));
        let mut entry = Self {
            dataset,
            scheme,
            shards,
            trials,
            base_salt,
            binary,
            fingerprint: 0,
            samples,
        };
        let mut hasher = ChecksumWriter(pie_store::frame::Checksum::new());
        entry
            .encode(&mut hasher)
            .expect("checksum writer cannot fail");
        entry.fingerprint = hasher.0.value();
        entry
    }

    /// The sampling scheme the entry was built under.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Number of ingest shards the entry was built with.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of Monte-Carlo trials the entry holds samples for.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The base hash salt; trial `t` derives its seeds from `base_salt + t`.
    #[must_use]
    pub fn base_salt(&self) -> u64 {
        self.base_salt
    }

    /// Number of instances in the underlying dataset.
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.dataset.num_instances()
    }

    /// Whether every explicit dataset value is 0 or 1 — the domain the
    /// Boolean `OR` suites require.
    #[must_use]
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Content fingerprint: an FNV-1a digest over the entry's full encoded
    /// state (dataset, scheme, shards, trials, base salt, and every
    /// finalized sample).  Two entries answer every query bit-identically
    /// whenever their fingerprints match, so a result cache keyed on
    /// `(name, fingerprint, query)` can never serve a report computed from
    /// a sketch that has since been replaced under the same name.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The dataset the entry summarizes (kept for exact ground truth and,
    /// under the oblivious scheme, the key universe).
    #[must_use]
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Resolves a named estimator suite against this entry's scheme,
    /// instance count, and value domain.
    ///
    /// # Errors
    /// [`CatalogError::UnknownSuite`], [`CatalogError::RegimeMismatch`],
    /// [`CatalogError::ArityMismatch`] (the pairwise suites are defined for
    /// exactly two instances, `max_oblivious_uniform` for at least two), or
    /// [`CatalogError::NonBinaryData`] for `OR` suites over non-indicator
    /// data — each the typed refusal a serving boundary needs in place of
    /// the estimators' own assertions.
    pub fn suite(&self, name: &str) -> Result<EstimatorSet, CatalogError> {
        let regime = suite_regime(name).ok_or_else(|| CatalogError::UnknownSuite {
            name: name.to_string(),
        })?;
        let r = self.num_instances();
        let arity = |required: usize, exact: bool| -> Result<(), CatalogError> {
            if (exact && r != required) || (!exact && r < required) {
                Err(CatalogError::ArityMismatch {
                    suite: name.to_string(),
                    required,
                    found: r,
                })
            } else {
                Ok(())
            }
        };
        let binary = |required: bool| -> Result<(), CatalogError> {
            if required && !self.binary {
                Err(CatalogError::NonBinaryData {
                    suite: name.to_string(),
                })
            } else {
                Ok(())
            }
        };
        match (self.scheme, regime) {
            (Scheme::ObliviousPoisson { p }, SuiteRegime::Oblivious) => {
                arity(2, name != "max_oblivious_uniform")?;
                binary(name == "or_oblivious")?;
                Ok(EstimatorSet::Oblivious(
                    oblivious_suite_by_name(name, r, p).expect("regime-checked suite name"),
                ))
            }
            (Scheme::PpsPoisson { .. }, SuiteRegime::Weighted) => {
                arity(2, true)?;
                binary(name == "or_weighted")?;
                Ok(EstimatorSet::Weighted(
                    weighted_suite_by_name(name).expect("regime-checked suite name"),
                ))
            }
            _ => Err(CatalogError::RegimeMismatch {
                suite: name.to_string(),
                scheme: format!("{:?}", self.scheme),
            }),
        }
    }

    /// Runs `estimators` and `statistic` over the entry's finalized samples
    /// through the shared estimation cores — bit-identical to
    /// [`Pipeline::run`](crate::Pipeline::run) /
    /// [`StreamPipeline::run`](crate::StreamPipeline::run) on the same
    /// configuration, at any thread count.
    ///
    /// # Errors
    /// [`PipelineError::MissingEstimators`] for an empty registry,
    /// [`PipelineError::RegimeMismatch`] if the registry's outcome regime
    /// does not match the entry's scheme.
    pub fn estimate(
        &self,
        estimators: impl Into<EstimatorSet>,
        statistic: Statistic,
    ) -> Result<PipelineReport, PipelineError> {
        self.estimate_with(estimators, statistic, None)
    }

    /// [`estimate`](Self::estimate) with an explicit trial-engine thread
    /// count (`None` = `PIE_THREADS` / available parallelism).  A serving
    /// process typically pins queries to one thread each and lets
    /// concurrency come from the connections.
    ///
    /// # Errors
    /// As [`estimate`](Self::estimate).
    pub fn estimate_with(
        &self,
        estimators: impl Into<EstimatorSet>,
        statistic: Statistic,
        threads: Option<usize>,
    ) -> Result<PipelineReport, PipelineError> {
        self.estimate_with_observed(
            estimators,
            statistic,
            threads,
            crate::obs::PipelineObserver::disabled(),
        )
    }

    /// [`estimate_with`](Self::estimate_with) under an observation hook:
    /// `observer` collects per-stage wall-clock totals (trial replay vs
    /// estimator batch) and optional per-chunk timings.  Observation never
    /// changes the report — it is **bit-identical** to the unobserved call.
    ///
    /// # Errors
    /// As [`estimate`](Self::estimate).
    pub fn estimate_with_observed(
        &self,
        estimators: impl Into<EstimatorSet>,
        statistic: Statistic,
        threads: Option<usize>,
        observer: crate::obs::PipelineObserver,
    ) -> Result<PipelineReport, PipelineError> {
        let estimators = estimators.into();
        if estimators.len() == 0 {
            return Err(PipelineError::MissingEstimators);
        }
        let plan = TrialPlan::new(self.trials, self.base_salt, threads).with_observer(observer);
        let samples = &self.samples;
        match (self.scheme, estimators) {
            (Scheme::ObliviousPoisson { .. }, EstimatorSet::Oblivious(registry)) => Ok(
                // Borrow the finalized samples: the serving hot path must
                // not deep-copy every trial's entries per query.
                run_oblivious_with(&self.dataset, &registry, &statistic, &plan, |_worker| {
                    move |t, _seeds: &SeedAssignment| samples[t as usize].as_slice()
                }),
            ),
            (Scheme::PpsPoisson { tau_star }, EstimatorSet::Weighted(registry)) => {
                Ok(run_pps_with(
                    &self.dataset,
                    tau_star,
                    &registry,
                    &statistic,
                    &plan,
                    |_worker| move |t, _seeds: &SeedAssignment| samples[t as usize].as_slice(),
                ))
            }
            (scheme, estimators) => Err(PipelineError::RegimeMismatch {
                scheme: format!("{scheme:?}"),
                estimators: match estimators {
                    EstimatorSet::Oblivious(_) => "weight-oblivious",
                    EstimatorSet::Weighted(_) => "weighted",
                },
            }),
        }
    }

    /// Resolves `suite` and `statistic` by name and estimates — the one
    /// call a query dispatcher needs.
    ///
    /// # Errors
    /// Name-resolution failures as [`suite`](Self::suite) /
    /// [`Statistic::by_name`]; estimation failures wrapped as
    /// [`CatalogError::Pipeline`].
    pub fn estimate_named(
        &self,
        suite: &str,
        statistic: &str,
        threads: Option<usize>,
    ) -> Result<PipelineReport, CatalogError> {
        self.estimate_named_observed(
            suite,
            statistic,
            threads,
            crate::obs::PipelineObserver::disabled(),
        )
    }

    /// [`estimate_named`](Self::estimate_named) under an observation hook —
    /// the serving layer's tracing path.  The report is bit-identical to
    /// the unobserved call.
    ///
    /// # Errors
    /// As [`estimate_named`](Self::estimate_named).
    pub fn estimate_named_observed(
        &self,
        suite: &str,
        statistic: &str,
        threads: Option<usize>,
        observer: crate::obs::PipelineObserver,
    ) -> Result<PipelineReport, CatalogError> {
        let estimators = self.suite(suite)?;
        let statistic =
            Statistic::by_name(statistic).ok_or_else(|| CatalogError::UnknownStatistic {
                name: statistic.to_string(),
            })?;
        Ok(self.estimate_with_observed(estimators, statistic, threads, observer)?)
    }

    /// Answers many `(suite, statistic)` queries from **one** replay over
    /// the finalized samples: per trial, the sampled outcomes are assembled
    /// once and every query's estimators run over that shared assembly —
    /// the paper's "one summary, many queries" promise made literal at the
    /// serving layer.  Each returned report (in request order) is
    /// **bit-identical** to the corresponding single
    /// [`estimate_named`](Self::estimate_named) call.
    ///
    /// ```
    /// use partial_info_estimators::{CatalogEntry, Scheme};
    /// use partial_info_estimators::datagen::paper_example;
    ///
    /// let entry = CatalogEntry::build(
    ///     paper_example().take_instances(2),
    ///     Scheme::oblivious(0.5),
    ///     2,
    ///     20,
    ///     7,
    /// )
    /// .unwrap();
    /// let reports = entry
    ///     .estimate_batch_named(
    ///         &[
    ///             ("max_oblivious", "max_dominance"),
    ///             ("max_oblivious", "distinct_count"),
    ///             ("max_oblivious_uniform", "max_dominance"),
    ///         ],
    ///         Some(1),
    ///     )
    ///     .unwrap();
    /// assert_eq!(reports.len(), 3);
    /// assert_eq!(
    ///     reports[1],
    ///     entry.estimate_named("max_oblivious", "distinct_count", Some(1)).unwrap()
    /// );
    /// ```
    ///
    /// # Errors
    /// Name-resolution failures as [`estimate_named`](Self::estimate_named);
    /// every query is resolved before any estimation runs, so a failure
    /// means no work was done.
    pub fn estimate_batch_named(
        &self,
        queries: &[(&str, &str)],
        threads: Option<usize>,
    ) -> Result<Vec<PipelineReport>, CatalogError> {
        self.estimate_batch_named_observed(
            queries,
            threads,
            crate::obs::PipelineObserver::disabled(),
        )
    }

    /// [`estimate_batch_named`](Self::estimate_batch_named) under an
    /// observation hook.  Reports are bit-identical to the unobserved call.
    ///
    /// # Errors
    /// As [`estimate_batch_named`](Self::estimate_batch_named).
    pub fn estimate_batch_named_observed(
        &self,
        queries: &[(&str, &str)],
        threads: Option<usize>,
        observer: crate::obs::PipelineObserver,
    ) -> Result<Vec<PipelineReport>, CatalogError> {
        let mut resolved = Vec::with_capacity(queries.len());
        for (suite, statistic) in queries {
            let estimators = self.suite(suite)?;
            let statistic =
                Statistic::by_name(statistic).ok_or_else(|| CatalogError::UnknownStatistic {
                    name: (*statistic).to_string(),
                })?;
            resolved.push((estimators, statistic));
        }
        if resolved.is_empty() {
            return Ok(Vec::new());
        }
        let plan = TrialPlan::new(self.trials, self.base_salt, threads).with_observer(observer);
        let samples = &self.samples;
        // `suite()` regime-checks every set against this entry's scheme, so
        // the sets are homogeneous and match the arm we dispatch to.
        match self.scheme {
            Scheme::ObliviousPoisson { .. } => {
                let combos: Vec<_> = resolved
                    .iter()
                    .map(|(set, statistic)| match set {
                        EstimatorSet::Oblivious(registry) => (registry, statistic),
                        EstimatorSet::Weighted(_) => {
                            unreachable!("suite() regime-checks against the scheme")
                        }
                    })
                    .collect();
                Ok(run_oblivious_multi_with(
                    &self.dataset,
                    &combos,
                    &plan,
                    |_worker| move |t, _seeds: &SeedAssignment| samples[t as usize].as_slice(),
                ))
            }
            Scheme::PpsPoisson { tau_star } => {
                let combos: Vec<_> = resolved
                    .iter()
                    .map(|(set, statistic)| match set {
                        EstimatorSet::Weighted(registry) => (registry, statistic),
                        EstimatorSet::Oblivious(_) => {
                            unreachable!("suite() regime-checks against the scheme")
                        }
                    })
                    .collect();
                Ok(run_pps_multi_with(
                    &self.dataset,
                    tau_star,
                    &combos,
                    &plan,
                    |_worker| move |t, _seeds: &SeedAssignment| samples[t as usize].as_slice(),
                ))
            }
        }
    }

    /// Persists the entry as one versioned, checksummed snapshot file.
    ///
    /// # Errors
    /// Propagates encoding and file I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        pie_store::write_snapshot_file(path, self)
    }

    /// Loads an entry previously written by [`save`](Self::save) —
    /// bit-identical to the saved one.
    ///
    /// # Errors
    /// Propagates snapshot validation and decoding failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        pie_store::read_snapshot_file(path)
    }
}

impl Encode for CatalogEntry {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        self.dataset.as_ref().encode(w)?;
        self.scheme.encode(w)?;
        (self.shards as u64).encode(w)?;
        self.trials.encode(w)?;
        self.base_salt.encode(w)?;
        self.samples.encode(w)
    }
}

impl Decode for CatalogEntry {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        let dataset = Arc::new(Dataset::decode(r)?);
        let scheme = Scheme::decode(r)?;
        let shards = usize::decode(r)?;
        let trials = u64::decode(r)?;
        let base_salt = u64::decode(r)?;
        let samples: Vec<Vec<InstanceSample>> = Vec::decode(r)?;
        if shards == 0 {
            return Err(StoreError::InvalidValue {
                what: "CatalogEntry shard count must be at least 1",
            });
        }
        if samples.len() as u64 != trials {
            return Err(StoreError::InvalidValue {
                what: "CatalogEntry must hold exactly one sample set per trial",
            });
        }
        let r_instances = dataset.num_instances();
        if samples.iter().any(|trial| trial.len() != r_instances) {
            return Err(StoreError::InvalidValue {
                what: "CatalogEntry trial must hold exactly one sample per instance",
            });
        }
        Ok(Self::from_parts(
            dataset, scheme, shards, trials, base_salt, samples,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, StreamPipeline};
    use pie_core::suite::max_oblivious_suite;
    use pie_datagen::{
        generate_set_pair, generate_two_hours, paper_example, SetPairConfig, TrafficConfig,
    };

    #[test]
    fn estimates_are_bit_identical_to_both_pipelines() {
        let data = Arc::new(generate_two_hours(&TrafficConfig::small(2)));
        let entry = CatalogEntry::build(Arc::clone(&data), Scheme::pps(150.0), 3, 15, 4).unwrap();
        let expected = Pipeline::new()
            .dataset(Arc::clone(&data))
            .scheme(Scheme::pps(150.0))
            .estimators(pie_core::suite::max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .trials(15)
            .base_salt(4)
            .run()
            .unwrap();
        let got = entry
            .estimate_named("max_weighted", "max_dominance", Some(1))
            .unwrap();
        assert_eq!(got, expected);
        let streamed = StreamPipeline::new()
            .dataset(Arc::clone(&data))
            .scheme(Scheme::pps(150.0))
            .shards(3)
            .estimators(pie_core::suite::max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .trials(15)
            .base_salt(4)
            .run()
            .unwrap();
        assert_eq!(got, streamed);
    }

    #[test]
    fn save_load_roundtrips_and_still_estimates_identically() {
        let data = Arc::new(paper_example().take_instances(2));
        let entry =
            CatalogEntry::build(Arc::clone(&data), Scheme::oblivious(0.5), 2, 30, 9).unwrap();
        let dir = std::env::temp_dir().join(format!("pie-catalog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.pies");
        entry.save(&path).unwrap();
        let loaded = CatalogEntry::load(&path).unwrap();
        assert_eq!(loaded, entry);
        assert_eq!(
            loaded
                .estimate_named("max_oblivious", "max_dominance", Some(1))
                .unwrap(),
            entry
                .estimate(max_oblivious_suite(0.5, 0.5), Statistic::max_dominance())
                .unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn suite_resolution_failures_are_typed() {
        let data = Arc::new(paper_example()); // 3 instances, non-binary
        let entry = CatalogEntry::build(data, Scheme::oblivious(0.5), 1, 5, 0).unwrap();
        assert!(matches!(
            entry.suite("nope").unwrap_err(),
            CatalogError::UnknownSuite { .. }
        ));
        assert!(matches!(
            entry.suite("max_weighted").unwrap_err(),
            CatalogError::RegimeMismatch { .. }
        ));
        // Pairwise suite over three instances.
        assert!(matches!(
            entry.suite("max_oblivious").unwrap_err(),
            CatalogError::ArityMismatch {
                required: 2,
                found: 3,
                ..
            }
        ));
        // OR over non-binary data, even at the right arity.
        let two = Arc::new(paper_example().take_instances(2));
        let entry2 = CatalogEntry::build(two, Scheme::oblivious(0.5), 1, 5, 0).unwrap();
        assert!(matches!(
            entry2.suite("or_oblivious").unwrap_err(),
            CatalogError::NonBinaryData { .. }
        ));
        assert!(matches!(
            entry2
                .estimate_named("max_oblivious", "nope", Some(1))
                .unwrap_err(),
            CatalogError::UnknownStatistic { .. }
        ));
        // The uniform suite accepts any r ≥ 2.
        assert!(entry.suite("max_oblivious_uniform").is_ok());
    }

    #[test]
    fn binary_data_unlocks_or_suites() {
        let data = Arc::new(generate_set_pair(&SetPairConfig::new(80, 0.5)));
        let entry =
            CatalogEntry::build(Arc::clone(&data), Scheme::oblivious(0.4), 2, 40, 1).unwrap();
        assert!(entry.is_binary());
        let report = entry
            .estimate_named("or_oblivious", "distinct_count", Some(1))
            .unwrap();
        let expected = Pipeline::new()
            .dataset(data)
            .scheme(Scheme::oblivious(0.4))
            .estimators(pie_core::suite::or_oblivious_suite(0.4, 0.4))
            .statistic(Statistic::distinct_count())
            .trials(40)
            .base_salt(1)
            .run()
            .unwrap();
        assert_eq!(report, expected);
    }

    #[test]
    fn decode_rejects_inconsistent_shapes() {
        let data = Arc::new(paper_example().take_instances(2));
        let entry = CatalogEntry::build(data, Scheme::oblivious(0.5), 1, 3, 0).unwrap();
        let bytes = pie_store::encode_to_vec(&entry).unwrap();
        let back: CatalogEntry = pie_store::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, entry);
        // Truncating one trial's samples must be caught by the shape check:
        // rebuild the frame with trials = 4 but only 3 sample sets.
        let mut tampered = entry.clone();
        tampered.trials = 4;
        let bytes = pie_store::encode_to_vec(&tampered).unwrap();
        assert!(matches!(
            pie_store::decode_from_slice::<CatalogEntry>(&bytes).unwrap_err(),
            StoreError::InvalidValue { .. }
        ));
    }
}
