//! # partial-info-estimators
//!
//! Umbrella crate for the Rust reproduction of Cohen & Kaplan,
//! *"Get the Most out of Your Sample: Optimal Unbiased Estimators using
//! Partial Information"* (PODS 2011).
//!
//! The workspace is organized as five focused crates, re-exported here for
//! convenience:
//!
//! * [`sampling`] (`pie-sampling`) — hash-seeded randomization, rank
//!   distributions, Poisson / bottom-k / VarOpt samplers, per-key outcomes;
//! * [`core`] (`pie-core`) — the paper's estimators: Horvitz–Thompson
//!   baselines, the Pareto-optimal `L`/`U` estimators for `max` and `OR`,
//!   the known-seed PPS estimators, the Algorithm 1 derivation engine, the
//!   impossibility results, and sum aggregates (distinct count, dominance
//!   norms);
//! * [`store`] (`pie-store`) — the versioned, checksummed binary snapshot
//!   substrate behind sketch persistence, checkpoint/restore, and
//!   cross-process merge;
//! * [`datagen`] (`pie-datagen`) — synthetic workloads (Zipf traffic, set
//!   pairs with controlled Jaccard, the paper's worked example);
//! * [`analysis`] (`pie-analysis`) — Monte-Carlo and quadrature evaluation,
//!   statistics, and report formatting.
//!
//! # Streaming ingestion, batch-first estimation
//!
//! The API is shaped around the production regime — keyed record streams of
//! millions of keys — rather than materialized instances and one outcome at
//! a time:
//!
//! * sampling runs through the unified [`sampling::SamplingScheme`] /
//!   [`sampling::Sketch`] streaming API (`ingest` → `merge` → `finalize`);
//!   the sharded [`StreamPipeline`] front-end ingests N key-partitioned
//!   shards concurrently and merges them, bit-identically to single-stream
//!   sampling for the hash-seeded schemes;
//! * outcomes are read through the borrowed, allocation-free
//!   [`sampling::OutcomeView`] accessors;
//! * estimators run over slices of outcomes via the object-safe
//!   [`core::Estimator::estimate_batch`] hot path and are enumerated
//!   dynamically through [`core::EstimatorRegistry`] (prebuilt line-ups in
//!   [`core::suite`]);
//! * Monte-Carlo trial loops run on the parallel deterministic trial engine
//!   ([`TrialRunner`]): trials are chunked across OS threads
//!   (`PIE_THREADS` / [`Pipeline::threads`]) and reduced in a canonical
//!   order with mergeable statistics, so every report is **bit-identical at
//!   any thread count**;
//! * sketch state survives the process: [`StreamPipeline`] ingest sessions
//!   checkpoint to — and resume from — versioned binary snapshot files
//!   ([`checkpoint`]), and shard snapshots written by independent processes
//!   merge into reports bit-identical to a single-process run;
//! * finalized sketches become servable units: a [`CatalogEntry`]
//!   ([`catalog`]) persists whole, loads once, and answers estimation
//!   queries with per-query estimator and statistic choice — the substrate
//!   behind the `pie-serve` TCP service, whose responses are bit-identical
//!   to in-process estimation;
//! * the top-level [`Pipeline`] builder wires dataset → sampling → outcome
//!   assembly → batched estimation → sum aggregation end to end:
//!
//! ```
//! use partial_info_estimators::{Pipeline, Scheme, Statistic};
//! use partial_info_estimators::core::suite::max_oblivious_suite;
//! use partial_info_estimators::datagen::paper_example;
//!
//! let report = Pipeline::new()
//!     .dataset(paper_example().take_instances(2))
//!     .scheme(Scheme::oblivious(0.5))
//!     .estimators(max_oblivious_suite(0.5, 0.5))
//!     .statistic(Statistic::max_dominance())
//!     .trials(500)
//!     .run()
//!     .unwrap();
//! println!("{}", report.render());
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `pie-bench` crate for the benchmarks and figure-regeneration harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod checkpoint;
pub mod obs;
pub mod pipeline;
pub mod stream;

pub use pie_analysis as analysis;
pub use pie_core as core;
pub use pie_datagen as datagen;
pub use pie_sampling as sampling;
pub use pie_store as store;

pub use pie_analysis::TrialRunner;

pub use catalog::{CatalogEntry, CatalogError};
pub use checkpoint::{CheckpointError, SnapshotKind, SnapshotManifest, StreamIngestSession};
pub use obs::{PipelineObserver, StageNanos};
pub use pipeline::{
    EstimatorReport, EstimatorSet, Pipeline, PipelineError, PipelineReport, Scheme, Statistic,
};
pub use stream::{ingest_merge_finalize, merge_finalize, sketch_pools, StreamPipeline};
