//! # partial-info-estimators
//!
//! Umbrella crate for the Rust reproduction of Cohen & Kaplan,
//! *"Get the Most out of Your Sample: Optimal Unbiased Estimators using
//! Partial Information"* (PODS 2011).
//!
//! The workspace is organized as four focused crates, re-exported here for
//! convenience:
//!
//! * [`sampling`] (`pie-sampling`) — hash-seeded randomization, rank
//!   distributions, Poisson / bottom-k / VarOpt samplers, per-key outcomes;
//! * [`core`] (`pie-core`) — the paper's estimators: Horvitz–Thompson
//!   baselines, the Pareto-optimal `L`/`U` estimators for `max` and `OR`,
//!   the known-seed PPS estimators, the Algorithm 1 derivation engine, the
//!   impossibility results, and sum aggregates (distinct count, dominance
//!   norms);
//! * [`datagen`] (`pie-datagen`) — synthetic workloads (Zipf traffic, set
//!   pairs with controlled Jaccard, the paper's worked example);
//! * [`analysis`] (`pie-analysis`) — Monte-Carlo and quadrature evaluation,
//!   statistics, and report formatting.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `pie-bench` crate for the benchmarks and figure-regeneration harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pie_analysis as analysis;
pub use pie_core as core;
pub use pie_datagen as datagen;
pub use pie_sampling as sampling;
