//! Distributed-serving conformance: every estimate served through the
//! cluster router — at every node count × replication factor, through
//! both ingest paths, and after killing nodes — is **bit-identical** to
//! the in-process [`Pipeline`] on the same configuration.
//!
//! This is the cluster layer's version of the repo's core invariant:
//! moving computation (across threads, processes, sockets, and now nodes)
//! must never move a bit of the answer.  Consistent hashing decides
//! *where* a sketch lives; determinism guarantees *what* every replica
//! answers; these tests pin the composition.

use std::sync::Arc;

use partial_info_estimators::core::suite::{max_oblivious_suite, max_weighted_suite};
use partial_info_estimators::datagen::{
    dataset_records, generate_two_hours, paper_example, Dataset, TrafficConfig,
};
use partial_info_estimators::{CatalogEntry, Pipeline, PipelineReport, Scheme, Statistic};
use pie_cluster::{ClusterError, LocalCluster, MetricsSnapshot, Router, TraceContext};
use pie_serve::{BatchQuery, IngestRecord, ServeClient, SketchConfig};

/// One sketch in the conformance matrix: data, config, and the
/// (suite, statistic) pairs it answers.
struct Case {
    name: &'static str,
    dataset: Arc<Dataset>,
    config: SketchConfig,
    queries: Vec<(&'static str, &'static str, PipelineReport)>,
}

fn cases() -> Vec<Case> {
    let pair = Arc::new(paper_example().take_instances(2));
    let pair_config = SketchConfig {
        scheme: Scheme::oblivious(0.5),
        shards: 2,
        trials: 12,
        base_salt: 3,
    };
    let traffic = Arc::new(generate_two_hours(&TrafficConfig::small(4)));
    let traffic_config = SketchConfig {
        scheme: Scheme::pps(150.0),
        shards: 2,
        trials: 8,
        base_salt: 7,
    };

    let expect_pair = Pipeline::new()
        .dataset(Arc::clone(&pair))
        .scheme(pair_config.scheme)
        .estimators(max_oblivious_suite(0.5, 0.5))
        .statistic(Statistic::max_dominance())
        .trials(pair_config.trials)
        .base_salt(pair_config.base_salt)
        .run()
        .unwrap();
    let expect_traffic_max = Pipeline::new()
        .dataset(Arc::clone(&traffic))
        .scheme(traffic_config.scheme)
        .estimators(max_weighted_suite())
        .statistic(Statistic::max_dominance())
        .trials(traffic_config.trials)
        .base_salt(traffic_config.base_salt)
        .run()
        .unwrap();
    let expect_traffic_distinct = Pipeline::new()
        .dataset(Arc::clone(&traffic))
        .scheme(traffic_config.scheme)
        .estimators(max_weighted_suite())
        .statistic(Statistic::distinct_count())
        .trials(traffic_config.trials)
        .base_salt(traffic_config.base_salt)
        .run()
        .unwrap();

    vec![
        Case {
            name: "paper_pair",
            dataset: pair,
            config: pair_config,
            queries: vec![("max_oblivious", "max_dominance", expect_pair)],
        },
        Case {
            name: "traffic_pps",
            dataset: traffic,
            config: traffic_config,
            queries: vec![
                ("max_weighted", "max_dominance", expect_traffic_max),
                ("max_weighted", "distinct_count", expect_traffic_distinct),
            ],
        },
    ]
}

fn wire_records(dataset: &Dataset) -> Vec<IngestRecord> {
    dataset_records(dataset)
        .map(|r| IngestRecord {
            instance: r.instance,
            key: r.key,
            value: r.value,
        })
        .collect()
}

/// Loads every case into the cluster: even cases via replicated wire
/// ingest (each owner runs the same deterministic build), odd cases via
/// a locally built entry published to all owners as one snapshot.
fn populate(router: &mut Router, cases: &[Case]) {
    for (i, case) in cases.iter().enumerate() {
        if i % 2 == 0 {
            let records = wire_records(&case.dataset);
            let half = records.len() / 2;
            router
                .ingest_batch(case.name, case.config, records[..half].to_vec(), false)
                .unwrap();
            router
                .ingest_batch(case.name, case.config, records[half..].to_vec(), true)
                .unwrap();
        } else {
            let entry = CatalogEntry::build(
                (*case.dataset).clone(),
                case.config.scheme,
                case.config.shards as usize,
                case.config.trials,
                case.config.base_salt,
            )
            .unwrap();
            router.publish_entry(case.name, &entry).unwrap();
        }
    }
}

/// Asserts every query of every case answers bit-identically through the
/// router, via both `estimate` and `batch_estimate`.
fn assert_serving_matches(router: &mut Router, cases: &[Case], context: &str) {
    for case in cases {
        for (estimator, statistic, want) in &case.queries {
            let got = router
                .estimate(case.name, estimator, statistic)
                .unwrap_or_else(|e| {
                    panic!("{context}: {}/{estimator}/{statistic}: {e}", case.name)
                });
            assert_eq!(
                got, *want,
                "{context}: {} {estimator}/{statistic}",
                case.name
            );
        }
        let batch: Vec<BatchQuery> = case
            .queries
            .iter()
            .map(|(estimator, statistic, _)| BatchQuery {
                estimator: (*estimator).into(),
                statistic: (*statistic).into(),
            })
            .collect();
        let reports = router
            .batch_estimate(case.name, batch)
            .unwrap_or_else(|e| panic!("{context}: batch {}: {e}", case.name));
        for ((_, _, want), got) in case.queries.iter().zip(&reports) {
            assert_eq!(got, want, "{context}: batch {}", case.name);
        }
    }
}

#[test]
fn every_topology_serves_bit_identical_to_in_process_pipeline() {
    let cases = cases();
    for nodes in [1usize, 3, 5] {
        for replication in [1usize, 2] {
            let cluster = LocalCluster::launch(nodes).unwrap();
            let mut router = cluster.router(replication).unwrap();
            populate(&mut router, &cases);
            let context = format!("N={nodes} R={replication}");
            assert_serving_matches(&mut router, &cases, &context);

            // The union catalog lists every sketch exactly once, sorted,
            // regardless of which nodes hold which replicas.
            let listing = router.list_catalog().unwrap();
            let names: Vec<&str> = listing.iter().map(|i| i.name.as_str()).collect();
            assert_eq!(names, ["paper_pair", "traffic_pps"], "{context}");

            // Fleet stats aggregate across nodes: the queries just served
            // are visible in the merged tenant rows.
            let stats = router.stats().unwrap();
            let total: u64 = stats.tenants.iter().map(|t| t.queries_admitted).sum();
            assert!(total > 0, "{context}: no admitted queries in fleet stats");

            // The fleet metrics plane reports *exact* totals: reads land
            // on exactly one node, writes on every owner, and the merge
            // sums counters without loss.
            let effective_r = replication.min(nodes) as u64;
            let estimates: u64 = cases.iter().map(|c| c.queries.len() as u64).sum();
            let batches = cases.len() as u64;
            let metrics = router.fleet_metrics().unwrap();
            assert_eq!(
                metrics.counter("requests_estimate_total"),
                Some(estimates),
                "{context}: fleet estimate counter"
            );
            assert_eq!(
                metrics.counter("requests_batch_estimate_total"),
                Some(batches),
                "{context}: fleet batch counter"
            );
            // Case 0 ingested two batches into every owner; case 1 was
            // published as one snapshot to every owner.
            assert_eq!(
                metrics.counter("requests_ingest_batch_total"),
                Some(2 * effective_r),
                "{context}: fleet ingest counter"
            );
            assert_eq!(
                metrics.counter("requests_put_snapshot_total"),
                Some(effective_r),
                "{context}: fleet snapshot counter"
            );
            // The fleet latency histogram saw every counted request.
            let per_kind: u64 = metrics
                .counters
                .iter()
                .filter(|c| c.name.starts_with("requests_") && c.name != "requests_total")
                .map(|c| c.value)
                .sum();
            assert_eq!(
                metrics.counter("requests_total"),
                Some(per_kind),
                "{context}"
            );
            assert_eq!(
                metrics.histogram("request_nanos").unwrap().count,
                per_kind,
                "{context}: histogram must observe every request exactly once"
            );
        }
    }
}

#[test]
fn fleet_metric_merge_is_bit_deterministic_in_any_node_order() {
    let cases = cases();
    let cluster = LocalCluster::launch(3).unwrap();
    let mut router = cluster.router(2).unwrap();
    populate(&mut router, &cases);
    assert_serving_matches(&mut router, &cases, "N=3 R=2 merge-soak");

    // One snapshot per node, fetched directly so each node is read once.
    let snapshots: Vec<MetricsSnapshot> = (0..3)
        .map(|i| {
            ServeClient::connect(cluster.addr(i))
                .unwrap()
                .metrics()
                .unwrap()
        })
        .collect();

    // Absorbing the same three snapshots in every order yields the same
    // snapshot bit-for-bit: counters and histogram buckets sum exactly,
    // min/max and gauges merge symmetrically.
    let merge = |order: &[usize]| {
        let mut fleet = MetricsSnapshot::default();
        for &i in order {
            fleet.absorb(&snapshots[i]);
        }
        fleet
    };
    let want = merge(&[0, 1, 2]);
    for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
        assert_eq!(merge(&order), want, "absorb order {order:?}");
    }
    // And the merge lost nothing: per-node histogram counts sum exactly.
    let node_sum: u64 = snapshots
        .iter()
        .filter_map(|s| s.histogram("request_nanos"))
        .map(|h| h.count)
        .sum();
    assert_eq!(want.histogram("request_nanos").unwrap().count, node_sum);
}

#[test]
fn cluster_routed_trace_shows_router_and_node_spans_under_one_trace_id() {
    let cases = cases();
    let cluster = LocalCluster::launch(3).unwrap();
    let mut router = cluster.router(2).unwrap();
    populate(&mut router, &cases);

    const TRACE_ID: u64 = 0xC0FF_EE00;
    router.set_trace(Some(TraceContext::new(TRACE_ID, 1)));
    let (estimator, statistic, want) = &cases[0].queries[0];
    let got = router
        .estimate(cases[0].name, estimator, statistic)
        .unwrap();
    assert_eq!(&got, want, "tracing must not perturb the served bits");
    router.set_trace(None);

    let spans = router.query_trace(TRACE_ID).unwrap();
    assert!(spans.iter().all(|s| s.trace_id == TRACE_ID));
    let router_span = spans
        .iter()
        .find(|s| s.node == "router")
        .expect("router-layer span");
    assert_eq!(router_span.stage, "route_estimate");
    assert_eq!(router_span.parent_span_id, 1, "parents under the caller");
    let node_stages: Vec<&str> = spans
        .iter()
        .filter(|s| s.node != "router")
        .map(|s| s.stage.as_str())
        .collect();
    for stage in ["decode", "admission", "cache_probe", "encode"] {
        assert!(
            node_stages.contains(&stage),
            "missing node-layer {stage} span in {node_stages:?}"
        );
    }
    // Node spans parent under the router's span: one trace, two layers.
    assert!(spans
        .iter()
        .filter(|s| s.node != "router")
        .all(|s| s.parent_span_id == router_span.span_id));
}

#[test]
fn serving_survives_node_death_bit_identically_when_replicated() {
    let cases = cases();
    let mut cluster = LocalCluster::launch(3).unwrap();
    let mut router = cluster.router(2).unwrap();
    populate(&mut router, &cases);
    assert_serving_matches(&mut router, &cases, "N=3 R=2 all-up");

    // Kill the primary owner of the first sketch: every query must keep
    // answering identically from the replica.
    let owner = router.owners(cases[0].name)[0].to_string();
    let index: usize = owner.strip_prefix("node-").unwrap().parse().unwrap();
    assert!(cluster.kill(index));
    assert_serving_matches(&mut router, &cases, "N=3 R=2 one-down");

    // The union catalog still sees every sketch through surviving nodes.
    let listing = router.list_catalog().unwrap();
    assert_eq!(listing.len(), cases.len());

    // Health sweep agrees: exactly one node is down.
    let down = router
        .ping_all()
        .into_iter()
        .filter(|(_, alive)| !alive)
        .count();
    assert_eq!(down, 1);
}

#[test]
fn unreplicated_sketches_fail_typed_when_their_only_owner_dies() {
    let cases = cases();
    let mut cluster = LocalCluster::launch(3).unwrap();
    let mut router = cluster.router(1).unwrap();
    populate(&mut router, &cases);

    let owner = router.owners(cases[0].name)[0].to_string();
    let index: usize = owner.strip_prefix("node-").unwrap().parse().unwrap();
    cluster.kill(index);

    // R=1 and the only owner is gone: the router must say so, typed —
    // naming the sketch — not hang or invent an answer elsewhere.
    let (estimator, statistic, _) = &cases[0].queries[0];
    match router.estimate(cases[0].name, estimator, statistic) {
        Err(ClusterError::NoReplica { sketch, .. }) => assert_eq!(sketch, cases[0].name),
        other => panic!("expected NoReplica, got {other:?}"),
    }
}
