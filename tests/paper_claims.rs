//! Cross-crate integration tests for the paper's headline claims.
//!
//! Each test corresponds to a statement made in the paper's text and checks it
//! end-to-end through the public API (sampling substrate + estimators +
//! evaluation harness).

use partial_info_estimators::analysis::{evaluate_aggregate_pps, evaluate_pps_known_seeds};
use partial_info_estimators::analysis::{pps2_variance, Evaluation};
use partial_info_estimators::core::aggregate::{
    distinct_ht_variance, distinct_l_variance, max_dominance_ht, max_dominance_l,
    required_sample_size_ht, required_sample_size_l, true_max_dominance,
};
use partial_info_estimators::core::functions::maximum;
use partial_info_estimators::core::negative::{
    or_unknown_seeds_forced_estimator, or_unknown_seeds_nonnegative_exists,
};
use partial_info_estimators::core::oblivious::{
    MaxHtOblivious, MaxL2, MaxLUniform, MaxU2, OrL2, OrU2,
};
use partial_info_estimators::core::variance::{
    exact_oblivious_variance, max_ht_variance_half, max_l_variance_half, max_u_variance_half,
    or_ht_variance, or_l_variance_change, or_l_variance_equal,
};
use partial_info_estimators::core::weighted::{MaxHtPps, MaxLPps2};
use partial_info_estimators::datagen::{generate_two_hours, TrafficConfig};

/// Section 1 / Section 4: the L and U estimators strictly dominate HT for the
/// maximum over weight-oblivious samples, and are incomparable to each other.
#[test]
fn l_and_u_dominate_ht_and_are_incomparable() {
    let p = [0.5, 0.5];
    let l = MaxL2::new(0.5, 0.5);
    let u = MaxU2::new(0.5, 0.5);
    for &v in &[[1.0, 0.0], [1.0, 0.5], [1.0, 1.0], [7.0, 3.0]] {
        let var_ht = exact_oblivious_variance(&MaxHtOblivious, &v, &p);
        let var_l = exact_oblivious_variance(&l, &v, &p);
        let var_u = exact_oblivious_variance(&u, &v, &p);
        assert!(var_l < var_ht);
        assert!(var_u < var_ht);
        // And they agree with the Figure 1 closed forms.
        assert!((var_ht - max_ht_variance_half(v[0], v[1])).abs() < 1e-9);
        assert!((var_l - max_l_variance_half(v[0], v[1])).abs() < 1e-9);
        assert!((var_u - max_u_variance_half(v[0], v[1])).abs() < 1e-9);
    }
    // Incomparability: L wins on similar entries, U wins on disjoint ones.
    assert!(max_l_variance_half(1.0, 1.0) < max_u_variance_half(1.0, 1.0));
    assert!(max_u_variance_half(1.0, 0.0) < max_l_variance_half(1.0, 0.0));
}

/// Section 4.3: the asymptotic variance gains of OR^(L)/OR^(U) over OR^(HT).
#[test]
fn or_asymptotic_gains() {
    let p = 0.002;
    // HT: ≈ 1/p² on any vector with OR = 1.
    assert!((or_ht_variance(&[p, p]) * p * p - 1.0).abs() < 0.01);
    // L on (1,1): ≈ 1/(2p); on (1,0): ≈ 1/(4p²).
    assert!((or_l_variance_equal(p, p) * 2.0 * p - 1.0).abs() < 0.01);
    assert!((or_l_variance_change(p, p) * 4.0 * p * p - 1.0).abs() < 0.02);
    // The gain on "no change" data is roughly the square root of the HT variance.
    let ht = or_ht_variance(&[p, p]);
    let l = or_l_variance_equal(p, p);
    assert!((l - 0.5 * ht.sqrt()).abs() / (0.5 * ht.sqrt()) < 0.01);
}

/// Figure 2's qualitative content: L is best on (1,1), U is best on (1,0),
/// both dominate HT, across a sweep of sampling probabilities.
#[test]
fn figure2_ordering_holds_across_probabilities() {
    for &p in &[0.05, 0.1, 0.2, 0.4, 0.6] {
        let probs = [p, p];
        let var = |est: &dyn partial_info_estimators::core::Estimator<
            partial_info_estimators::sampling::ObliviousOutcome,
        >,
                   v: &[f64; 2]| exact_oblivious_variance(&est, v, &probs);
        let l = OrL2::new(p, p);
        let u = OrU2::new(p, p);
        let ht = partial_info_estimators::core::oblivious::OrHtOblivious;
        assert!(var(&l, &[1.0, 1.0]) <= var(&u, &[1.0, 1.0]));
        assert!(var(&u, &[1.0, 0.0]) <= var(&l, &[1.0, 0.0]));
        assert!(var(&l, &[1.0, 1.0]) <= var(&ht, &[1.0, 1.0]));
        assert!(var(&u, &[1.0, 0.0]) <= var(&ht, &[1.0, 0.0]));
    }
}

/// Section 4.1 / Theorem 4.2: Algorithm 3 extends max^(L) to many instances;
/// the estimator remains unbiased and dominates HT for r up to 5.
#[test]
fn algorithm3_scales_to_more_instances() {
    for r in 2..=5usize {
        let p = 0.4;
        let est = MaxLUniform::new(r, p);
        let probs = vec![p; r];
        let mut v: Vec<f64> = (0..r).map(|i| 1.0 + i as f64).collect();
        v.reverse();
        let var_l = exact_oblivious_variance(&est, &v, &probs);
        let var_ht = exact_oblivious_variance(&MaxHtOblivious, &v, &probs);
        assert!(var_l <= var_ht, "r={r}: {var_l} vs {var_ht}");
        let mean =
            partial_info_estimators::core::variance::exact_oblivious_expectation(&est, &v, &probs);
        assert!((mean - maximum(&v)).abs() < 1e-8, "r={r} bias");
    }
}

/// Section 5.2: the weighted known-seed max^(L) dominates max^(HT) across a
/// grid of value pairs, with the largest gains when the entries are similar.
#[test]
fn pps_known_seeds_l_dominates_ht() {
    let tau = [10.0, 10.0];
    let mut ratio_similar = 0.0;
    let mut ratio_disjoint = 0.0;
    for &v in &[[4.0, 4.0], [4.0, 2.0], [4.0, 0.0]] {
        let var_l = pps2_variance(&MaxLPps2, v, tau);
        let var_ht = pps2_variance(&MaxHtPps, v, tau);
        assert!(var_l <= var_ht + 1e-9, "L must dominate HT at {v:?}");
        if v[1] == 4.0 {
            ratio_similar = var_ht / var_l;
        }
        if v[1] == 0.0 {
            ratio_disjoint = var_ht / var_l;
        }
    }
    assert!(
        ratio_similar > ratio_disjoint,
        "the gain should be largest for similar entries: {ratio_similar} vs {ratio_disjoint}"
    );
    assert!(ratio_similar > 4.0);
    assert!(ratio_disjoint > 1.8);
}

/// Section 5.2 variance-ratio claim, checked at the data points the paper
/// emphasises (max(v) close to τ*, entries similar): VAR[HT]/VAR[L] ≥ 2.
#[test]
fn pps_variance_ratio_at_least_two_for_similar_entries() {
    let tau = [10.0, 10.0];
    for &v in &[[9.0, 9.0], [5.0, 5.0], [2.0, 1.8], [9.0, 7.0]] {
        let var_l = pps2_variance(&MaxLPps2, v, tau);
        let var_ht = pps2_variance(&MaxHtPps, v, tau);
        assert!(
            var_ht / var_l >= 2.0,
            "ratio {} at {v:?} should be at least 2",
            var_ht / var_l
        );
    }
}

/// Theorem 6.1: without seeds, unbiased nonnegative estimation of OR is
/// impossible below the p1 + p2 = 1 threshold and possible above it.
#[test]
fn unknown_seeds_threshold() {
    assert!(!or_unknown_seeds_nonnegative_exists(0.2, 0.3));
    assert!(!or_unknown_seeds_nonnegative_exists(0.49, 0.49));
    assert!(or_unknown_seeds_nonnegative_exists(0.5, 0.5));
    assert!(or_unknown_seeds_nonnegative_exists(0.9, 0.2));
    let forced = or_unknown_seeds_forced_estimator(0.2, 0.3);
    assert!(forced[3] < 0.0);
}

/// Section 5 vs Section 6: the same sampling distribution supports an
/// unbiased nonnegative estimator exactly when the seeds are known.
#[test]
fn known_seeds_rescue_estimation() {
    // With known seeds, OR^(L) exists for any probabilities (here far below
    // the unknown-seed threshold) and is unbiased.
    use partial_info_estimators::core::weighted::OrLKnownSeeds;
    use partial_info_estimators::core::Estimator;
    use partial_info_estimators::sampling::{WeightedEntry, WeightedOutcome};
    let (p1, p2) = (0.2, 0.25);
    let (t1, t2) = (1.0 / p1, 1.0 / p2);
    // Exhaustive expectation over the 4 seed regions for data (1, 0).
    let mut expectation = 0.0;
    for (low1, prob1) in [(true, p1), (false, 1.0 - p1)] {
        for (low2, prob2) in [(true, p2), (false, 1.0 - p2)] {
            let outcome = WeightedOutcome::new(vec![
                WeightedEntry {
                    tau_star: t1,
                    seed: Some(if low1 {
                        p1 * 0.5
                    } else {
                        p1 + (1.0 - p1) * 0.5
                    }),
                    value: if low1 { Some(1.0) } else { None },
                },
                WeightedEntry {
                    tau_star: t2,
                    seed: Some(if low2 {
                        p2 * 0.5
                    } else {
                        p2 + (1.0 - p2) * 0.5
                    }),
                    value: None,
                },
            ]);
            let est = OrLKnownSeeds.estimate(&outcome);
            assert!(est >= 0.0);
            expectation += prob1 * prob2 * est;
        }
    }
    assert!((expectation - 1.0).abs() < 1e-10);
    // While with unknown seeds the forced estimator is negative.
    assert!(!or_unknown_seeds_nonnegative_exists(p1, p2));
}

/// Section 8.1 / Figure 6: the L estimator needs roughly √(1−J)/2 of the HT
/// sample size, i.e. at most half, and only Θ(1) samples when the sets are
/// identical.
#[test]
fn figure6_sample_size_factor() {
    let n = 1e8;
    for &cv in &[0.1, 0.02] {
        for &j in &[0.0, 0.5, 0.9] {
            let s_ht = required_sample_size_ht(n, j, cv);
            let s_l = required_sample_size_l(n, j, cv);
            assert!(s_l < 0.62 * s_ht, "J={j}, cv={cv}: {s_l} vs {s_ht}");
        }
        let s_l_identical = required_sample_size_l(n, 1.0, cv);
        assert!(s_l_identical < 1e4, "identical sets need only Θ(1) samples");
    }
    // Variance formulas behind the figure.
    let d = 1000.0;
    assert!(distinct_l_variance(d, 0.5, 0.1, 0.1) < distinct_ht_variance(d, 0.1, 0.1));
}

/// Section 8.2 / Figure 7: on heavy-tailed two-instance traffic, the
/// max-dominance L estimator is unbiased and reduces the variance of the HT
/// estimator by a factor comparable to the paper's 2.45–2.7.
#[test]
fn figure7_max_dominance_gain() {
    let data = generate_two_hours(&TrafficConfig::small(99));
    let truth = true_max_dominance(data.instances(), |_| true);
    let tau_star = 150.0;
    let trials = 120;
    let eval = |f: &(dyn Fn(
        &[partial_info_estimators::sampling::InstanceSample],
        &partial_info_estimators::sampling::SeedAssignment,
    ) -> f64
                      + Sync)|
     -> Evaluation { evaluate_aggregate_pps(&data, tau_star, truth, trials, 5, f) };
    let ht = eval(&|s, seeds| max_dominance_ht(s, seeds, |_| true));
    let l = eval(&|s, seeds| max_dominance_l(s, seeds, |_| true));
    assert!(ht.relative_bias < 0.03, "HT bias {}", ht.relative_bias);
    assert!(l.relative_bias < 0.03, "L bias {}", l.relative_bias);
    let ratio = ht.variance / l.variance;
    assert!(
        ratio > 1.5 && ratio < 6.0,
        "variance ratio {ratio} should show a clear (roughly 2-3x) gain"
    );
}

/// Per-key estimates aggregate into low-relative-error sums (Section 7):
/// the aggregate CV is far below the single-key CV.
#[test]
fn aggregation_shrinks_relative_error() {
    let single_key =
        evaluate_pps_known_seeds(&MaxLPps2, maximum, &[4.0, 3.0], &[40.0, 40.0], 100_000, 3);
    let data = generate_two_hours(&TrafficConfig::small(7));
    let truth = true_max_dominance(data.instances(), |_| true);
    let aggregate = evaluate_aggregate_pps(&data, 150.0, truth, 60, 11, |s, seeds| {
        max_dominance_l(s, seeds, |_| true)
    });
    assert!(
        single_key.cv() > 1.0,
        "a single aggressively-sampled key is noisy"
    );
    assert!(
        aggregate.cv() < 0.1,
        "the aggregate is accurate: cv {}",
        aggregate.cv()
    );
}
