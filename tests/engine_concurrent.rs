//! Engine-layer soak test: the multi-tenant query engine under concurrent
//! load.
//!
//! The contracts under load:
//!
//! 1. **Bit-identity through the cache and the planner** — every served
//!    `Estimate` (cache hit or miss) and every `BatchEstimate` report
//!    equals the direct in-process [`Pipeline`] result for the same
//!    configuration, across all five estimator suites.
//! 2. **Exact accounting** — cache hits + misses equal the number of
//!    combination lookups performed; per-tenant admitted counters match
//!    the combinations each tenant sent.
//! 3. **Typed overload** — a full in-flight gate and an exhausted tenant
//!    quota shed with [`ServeError::Overloaded`]; nothing panics, the
//!    connection survives, and the shed is counted in `Stats`.  A shed
//!    request was never executed, so [`RetryPolicy`] retries it to
//!    success once capacity returns.

use std::sync::Arc;
use std::time::Duration;

use partial_info_estimators::core::suite::{
    max_oblivious_suite, max_oblivious_uniform_suite, max_weighted_suite, or_oblivious_suite,
    or_weighted_suite,
};
use partial_info_estimators::datagen::{
    generate_set_pair, generate_two_hours, Dataset, SetPairConfig, TrafficConfig,
};
use partial_info_estimators::{
    CatalogEntry, EstimatorSet, Pipeline, PipelineReport, Scheme, Statistic,
};
use pie_serve::{
    BatchQuery, EngineConfig, RetryPolicy, ServeClient, ServeError, Server, SketchConfig,
    TenantQuota,
};

/// One sketch in the soak: its name, entry parameters, and the
/// (suite, statistic) queries it answers with expected in-process reports.
struct Case {
    name: &'static str,
    dataset: Arc<Dataset>,
    config: SketchConfig,
    queries: Vec<(&'static str, &'static str, PipelineReport)>,
}

fn expected(
    dataset: &Arc<Dataset>,
    config: &SketchConfig,
    estimators: EstimatorSet,
    statistic: Statistic,
) -> PipelineReport {
    let mut pipeline = Pipeline::new()
        .dataset(Arc::clone(dataset))
        .scheme(config.scheme)
        .statistic(statistic)
        .trials(config.trials)
        .base_salt(config.base_salt);
    pipeline = match estimators {
        EstimatorSet::Oblivious(r) => pipeline.estimators(r),
        EstimatorSet::Weighted(r) => pipeline.estimators(r),
    };
    pipeline.run().expect("in-process reference run")
}

/// The five-suite case matrix, with both statistics on the suites that
/// support them — the `BatchEstimate` fan-out pulls several combinations
/// from one replay.
fn cases() -> Vec<Case> {
    let mut cases = Vec::new();

    let pair = Arc::new(partial_info_estimators::datagen::paper_example().take_instances(2));
    let pair_config = SketchConfig {
        scheme: Scheme::oblivious(0.5),
        shards: 2,
        trials: 18,
        base_salt: 5,
    };
    cases.push(Case {
        name: "paper_pair",
        dataset: Arc::clone(&pair),
        config: pair_config,
        queries: vec![
            (
                "max_oblivious",
                "max_dominance",
                expected(
                    &pair,
                    &pair_config,
                    max_oblivious_suite(0.5, 0.5).into(),
                    Statistic::max_dominance(),
                ),
            ),
            (
                "max_oblivious",
                "distinct_count",
                expected(
                    &pair,
                    &pair_config,
                    max_oblivious_suite(0.5, 0.5).into(),
                    Statistic::distinct_count(),
                ),
            ),
            (
                "max_oblivious_uniform",
                "max_dominance",
                expected(
                    &pair,
                    &pair_config,
                    max_oblivious_uniform_suite(2, 0.5).into(),
                    Statistic::max_dominance(),
                ),
            ),
        ],
    });

    let sets = Arc::new(generate_set_pair(&SetPairConfig::new(90, 0.5)));
    let sets_obl_config = SketchConfig {
        scheme: Scheme::oblivious(0.4),
        shards: 2,
        trials: 14,
        base_salt: 9,
    };
    cases.push(Case {
        name: "sets_oblivious",
        dataset: Arc::clone(&sets),
        config: sets_obl_config,
        queries: vec![(
            "or_oblivious",
            "distinct_count",
            expected(
                &sets,
                &sets_obl_config,
                or_oblivious_suite(0.4, 0.4).into(),
                Statistic::distinct_count(),
            ),
        )],
    });
    let sets_pps_config = SketchConfig {
        scheme: Scheme::pps(1.5),
        shards: 2,
        trials: 14,
        base_salt: 4,
    };
    cases.push(Case {
        name: "sets_pps",
        dataset: Arc::clone(&sets),
        config: sets_pps_config,
        queries: vec![(
            "or_weighted",
            "distinct_count",
            expected(
                &sets,
                &sets_pps_config,
                or_weighted_suite().into(),
                Statistic::distinct_count(),
            ),
        )],
    });

    let traffic = Arc::new(generate_two_hours(&TrafficConfig::small(6)));
    let traffic_config = SketchConfig {
        scheme: Scheme::pps(150.0),
        shards: 2,
        trials: 12,
        base_salt: 8,
    };
    cases.push(Case {
        name: "traffic_pps",
        dataset: Arc::clone(&traffic),
        config: traffic_config,
        queries: vec![
            (
                "max_weighted",
                "max_dominance",
                expected(
                    &traffic,
                    &traffic_config,
                    max_weighted_suite().into(),
                    Statistic::max_dominance(),
                ),
            ),
            (
                "max_weighted",
                "distinct_count",
                expected(
                    &traffic,
                    &traffic_config,
                    max_weighted_suite().into(),
                    Statistic::distinct_count(),
                ),
            ),
        ],
    });
    cases
}

fn insert_cases(server: &Server, cases: &[Case]) {
    for case in cases {
        let entry = CatalogEntry::build(
            Arc::clone(&case.dataset),
            case.config.scheme,
            case.config.shards as usize,
            case.config.trials,
            case.config.base_salt,
        )
        .unwrap();
        server.catalog().insert(case.name, entry);
    }
}

#[test]
fn cached_and_batch_estimates_bit_identical_under_concurrent_load() {
    let cases = cases();
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    insert_cases(&server, &cases);

    let distinct: usize = cases.iter().map(|c| c.queries.len()).sum();

    // Warm phase: one client asks every combination once, half through
    // single `Estimate`, half through one `BatchEstimate` per sketch — so
    // every miss and its single-replay computation happen exactly once
    // before the concurrent phase.
    let mut warm = ServeClient::connect(addr).unwrap();
    let mut lookups = 0usize;
    for (i, case) in cases.iter().enumerate() {
        if i % 2 == 0 {
            let queries: Vec<BatchQuery> = case
                .queries
                .iter()
                .map(|(suite, statistic, _)| BatchQuery {
                    estimator: (*suite).to_string(),
                    statistic: (*statistic).to_string(),
                })
                .collect();
            let reports = warm.batch_estimate(case.name, queries).unwrap();
            for (got, (suite, statistic, want)) in reports.iter().zip(&case.queries) {
                assert_eq!(
                    got, want,
                    "warm batch {suite}/{statistic} over {} must be bit-identical",
                    case.name
                );
            }
            lookups += case.queries.len();
        } else {
            for (suite, statistic, want) in &case.queries {
                let got = warm.estimate(case.name, *suite, *statistic).unwrap();
                assert_eq!(
                    &got, want,
                    "warm estimate {suite}/{statistic} over {} must be bit-identical",
                    case.name
                );
                lookups += 1;
            }
        }
    }

    // Every combination was looked up exactly once and missed exactly once.
    let stats = warm.stats().unwrap();
    assert_eq!(stats.cache.misses, distinct as u64);
    assert_eq!(stats.cache.hits, (lookups - distinct) as u64);
    assert_eq!(stats.cache.entries, distinct as u64);

    // Concurrent phase: every lookup is a warm hit; responses stay
    // bit-identical whether they come from the cache, a batch, or both.
    const CLIENTS: usize = 6;
    const OPS_PER_CLIENT: usize = 30;
    // Replicate the workers' op-mix arithmetic so the metrics plane can be
    // held to *exact* totals afterwards.
    let mut issued_estimates = 0u64;
    let mut issued_batches = 0u64;
    for (i, case) in cases.iter().enumerate() {
        if i % 2 == 0 {
            issued_batches += 1;
        } else {
            issued_estimates += case.queries.len() as u64;
        }
    }
    for worker in 0..CLIENTS {
        for op in 0..OPS_PER_CLIENT {
            if (op + worker) % 3 == 0 {
                issued_batches += 1;
            } else {
                issued_estimates += 1;
            }
        }
    }
    std::thread::scope(|scope| {
        for worker in 0..CLIENTS {
            let cases = &cases;
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                client.identify(format!("tenant_{}", worker % 3)).unwrap();
                for op in 0..OPS_PER_CLIENT {
                    let case = &cases[(op + worker) % cases.len()];
                    if (op + worker) % 3 == 0 {
                        let queries: Vec<BatchQuery> = case
                            .queries
                            .iter()
                            .map(|(suite, statistic, _)| BatchQuery {
                                estimator: (*suite).to_string(),
                                statistic: (*statistic).to_string(),
                            })
                            .collect();
                        let reports = client.batch_estimate(case.name, queries).unwrap();
                        for (got, (suite, statistic, want)) in reports.iter().zip(&case.queries) {
                            assert_eq!(
                                got, want,
                                "soak batch {suite}/{statistic} over {}",
                                case.name
                            );
                        }
                    } else {
                        let (suite, statistic, ref want) =
                            case.queries[(op / 2 + worker) % case.queries.len()];
                        let got = client.estimate(case.name, suite, statistic).unwrap();
                        assert_eq!(
                            &got, want,
                            "soak estimate {suite}/{statistic} over {}",
                            case.name
                        );
                    }
                }
            });
        }
    });

    // The warm set was never invalidated: no new misses, no evictions, and
    // per-tenant admitted counters cover exactly what the workers sent.
    let stats = warm.stats().unwrap();
    assert_eq!(stats.cache.misses, distinct as u64);
    assert_eq!(stats.cache.evictions, 0);
    assert_eq!(stats.queue.shed, 0);
    let admitted: u64 = stats.tenants.iter().map(|row| row.queries_admitted).sum();
    assert!(stats.tenants.iter().any(|row| row.tenant == "tenant_0"));
    // Warm client billed to the default tenant; workers to tenant_0..2.
    assert!(stats
        .tenants
        .iter()
        .any(|row| row.tenant == pie_serve::DEFAULT_TENANT));
    assert!(admitted >= (lookups + CLIENTS * OPS_PER_CLIENT) as u64);
    for row in &stats.tenants {
        assert_eq!(row.queries_shed, 0, "{}", row.tenant);
        assert_eq!(row.ingests_shed, 0, "{}", row.tenant);
    }

    // The metrics plane reports *exact* totals: counters are atomic adds,
    // never sampled, so the soak's op mix is recovered to the op.
    let metrics = warm.metrics().unwrap();
    assert_eq!(
        metrics.counter("requests_estimate_total"),
        Some(issued_estimates),
        "estimate counter must equal the ops issued"
    );
    assert_eq!(
        metrics.counter("requests_batch_estimate_total"),
        Some(issued_batches),
        "batch counter must equal the ops issued"
    );
    // requests_total is the sum of every per-kind counter, and the latency
    // histogram observed every one of those requests exactly once.
    let per_kind: u64 = metrics
        .counters
        .iter()
        .filter(|c| c.name.starts_with("requests_") && c.name != "requests_total")
        .map(|c| c.value)
        .sum();
    let total = metrics.counter("requests_total").unwrap();
    assert_eq!(total, per_kind, "per-kind counters must sum to the total");
    let request_nanos = metrics.histogram("request_nanos").unwrap();
    // Every counted request recorded one latency observation (the Metrics
    // request being served is not yet counted in its own snapshot).
    assert_eq!(request_nanos.count, total);
    assert_eq!(
        request_nanos.buckets.iter().sum::<u64>(),
        request_nanos.count,
        "bucket occupancy must account for every observation"
    );

    // The stats report carries the same per-request counters (engine side)
    // plus build info.
    let stats = warm.stats().unwrap();
    let estimate_row = stats
        .requests
        .iter()
        .find(|r| r.request == "estimate")
        .expect("estimate request row");
    assert_eq!(estimate_row.count, issued_estimates);
    assert!(stats.threads_available >= 1);
    assert_eq!(stats.version, env!("CARGO_PKG_VERSION"));

    server.shutdown();
}

#[test]
fn full_gate_sheds_typed_overload_and_retry_succeeds() {
    let cases = cases();
    let server = Server::bind_with(
        "127.0.0.1:0",
        EngineConfig {
            max_inflight: 1,
            max_queue: 0,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    insert_cases(&server, &cases[..1]);
    let (suite, statistic, ref want) = cases[0].queries[0];

    // Hold the single in-flight slot in-process: every wire query now
    // finds the gate full and the queue disabled.
    let permit = server.engine().gate().admit().unwrap();
    let mut client = ServeClient::connect(addr).unwrap();
    let err = client.estimate("paper_pair", suite, statistic).unwrap_err();
    let ServeError::Overloaded {
        ref what,
        retry_after_ms,
    } = err
    else {
        panic!("expected Overloaded, got {err:?}");
    };
    assert_eq!(what, "in-flight queue");
    assert!(retry_after_ms > 0, "the shed must carry a retry hint");
    let stats = client.stats().unwrap();
    assert_eq!(stats.queue.shed, 1);

    // The same connection keeps serving, and once capacity returns the
    // request succeeds — first manually, then via the retry policy while
    // the permit is released from another thread.
    drop(permit);
    let got = client.estimate("paper_pair", suite, statistic).unwrap();
    assert_eq!(&got, want);

    let permit = server.engine().gate().admit().unwrap();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            drop(permit);
        });
        let mut retrying = ServeClient::connect(addr).unwrap().with_retry(RetryPolicy {
            attempts: 60,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
        });
        assert_eq!(retrying.retry_stats().total(), 0, "no silent retries yet");
        let got = retrying.estimate("paper_pair", suite, statistic).unwrap();
        assert_eq!(&got, want, "a shed request must succeed on retry");
        // The silent overload retries that made the call succeed are
        // visible, not swallowed.
        let retry_stats = retrying.retry_stats();
        assert!(
            retry_stats.overloaded_retries > 0,
            "the shed-then-success path must count its retries: {retry_stats:?}"
        );
        assert_eq!(retry_stats.connect_retries, 0);
        assert_eq!(retry_stats.transport_retries, 0);
    });

    let stats = client.stats().unwrap();
    assert!(stats.queue.shed >= 2, "both shed rounds are counted");
    // Each shed is attributed to its reason in the metrics plane.
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.counter("shed_inflight_queue_total").unwrap_or(0) >= 2,
        "gate sheds must be counted by reason"
    );
    server.shutdown();
}

#[test]
fn exhausted_tenant_quota_sheds_only_that_tenant() {
    let cases = cases();
    let server = Server::bind_with(
        "127.0.0.1:0",
        EngineConfig {
            tenant_quotas: vec![(
                "metered".to_string(),
                TenantQuota {
                    query_rate: 0.0,
                    query_burst: 2.0,
                    ..TenantQuota::unlimited()
                },
            )],
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    insert_cases(&server, &cases[..1]);
    let (suite, statistic, ref want) = cases[0].queries[0];

    let mut metered = ServeClient::connect(addr).unwrap();
    assert_eq!(metered.identify("metered").unwrap(), "metered");
    for _ in 0..2 {
        let got = metered.estimate("paper_pair", suite, statistic).unwrap();
        assert_eq!(&got, want);
    }
    // Burst spent, refill rate zero: every further query sheds — typed,
    // no panic, connection intact.
    for _ in 0..3 {
        assert!(matches!(
            metered
                .estimate("paper_pair", suite, statistic)
                .unwrap_err(),
            ServeError::Overloaded { .. }
        ));
    }

    // An unmetered tenant on the same server is untouched.
    let mut other = ServeClient::connect(addr).unwrap();
    let got = other.estimate("paper_pair", suite, statistic).unwrap();
    assert_eq!(&got, want);

    let stats = other.stats().unwrap();
    let row = stats
        .tenants
        .iter()
        .find(|row| row.tenant == "metered")
        .expect("metered tenant row");
    assert_eq!(row.queries_admitted, 2);
    assert_eq!(row.queries_shed, 3);
    server.shutdown();
}

#[test]
fn connect_with_retry_gives_up_with_a_typed_transport_error() {
    // Nothing listens here; the bounded policy must fail typed, not hang.
    let unused = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = unused.local_addr().unwrap();
    drop(unused);
    match ServeClient::connect_with_retry(addr, RetryPolicy::bounded(3)) {
        Err(err) => assert!(matches!(err, ServeError::Transport { .. }), "{err:?}"),
        Ok(_) => panic!("connected to a closed port"),
    }
}
