//! Cross-process sharded merge smoke test.
//!
//! Child processes (re-invocations of this test binary, selected via an
//! environment variable) each ingest one key-partitioned shard of the
//! Figure 7 max-dominance traffic workload and write their sketch snapshots
//! with [`StreamPipeline::write_shard_snapshots`].  The parent then loads
//! every shard's files with [`StreamPipeline::run_from_shard_snapshots`],
//! merges them through the same binary merge tree as in-process ingestion,
//! and asserts the report **bit-identical** to the single-process
//! [`StreamPipeline::run`] — serialization and process boundaries must not
//! perturb a single bit.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use partial_info_estimators::core::suite::max_weighted_suite;
use partial_info_estimators::datagen::{generate_two_hours, Dataset, TrafficConfig};
use partial_info_estimators::{Scheme, Statistic, StreamPipeline};

const ENV_DIR: &str = "PIE_SHARD_WORKER_DIR";
const ENV_SHARD: &str = "PIE_SHARD_WORKER_SHARD";
const ENV_SHARDS: &str = "PIE_SHARD_WORKER_SHARDS";

/// The fig7-style workload: two hours of heavy-tailed keyed traffic,
/// regenerated identically in every process from the same config.
fn traffic() -> Arc<Dataset> {
    Arc::new(generate_two_hours(&TrafficConfig::small(42)))
}

/// The shared experiment configuration; every process must build it
/// identically for the manifests to validate.
fn pipeline(data: &Arc<Dataset>, shards: usize) -> StreamPipeline {
    StreamPipeline::new()
        .dataset(Arc::clone(data))
        .scheme(Scheme::pps(180.0))
        .shards(shards)
        .estimators(max_weighted_suite())
        .statistic(Statistic::max_dominance())
        .trials(10)
        .base_salt(77)
}

/// The child-process entry point: a no-op under a normal `cargo test` run,
/// a shard worker when the parent test re-invokes the binary with the
/// `PIE_SHARD_WORKER_*` environment set.
#[test]
fn shard_worker_child() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let shard: usize = std::env::var(ENV_SHARD).unwrap().parse().unwrap();
    let shards: usize = std::env::var(ENV_SHARDS).unwrap().parse().unwrap();
    let data = traffic();
    pipeline(&data, shards)
        .write_shard_snapshots(shard, PathBuf::from(dir))
        .unwrap();
}

#[test]
fn cross_process_shard_merge_is_bit_identical_to_single_process() {
    let exe = std::env::current_exe().unwrap();
    let data = traffic();
    // Two shard counts: the acceptance bar is ≥ 2 — two child processes for
    // shards = 2, three for shards = 3.
    for shards in [2usize, 3] {
        let dir =
            std::env::temp_dir().join(format!("pie-cross-process-{}-{shards}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Each child is a separate OS process ingesting one key range.
        let children: Vec<_> = (0..shards)
            .map(|s| {
                Command::new(&exe)
                    .arg("shard_worker_child")
                    .arg("--exact")
                    .env(ENV_DIR, &dir)
                    .env(ENV_SHARD, s.to_string())
                    .env(ENV_SHARDS, shards.to_string())
                    .spawn()
                    .expect("spawn shard worker")
            })
            .collect();
        for mut child in children {
            let status = child.wait().expect("await shard worker");
            assert!(status.success(), "shard worker failed: {status}");
        }

        let merged = pipeline(&data, shards)
            .run_from_shard_snapshots(&dir)
            .unwrap();
        let single_process = pipeline(&data, shards).run().unwrap();
        assert_eq!(
            merged, single_process,
            "{shards}-process merge must be bit-identical to the in-process run"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
