//! Thread-count invariance of the parallel trial engine, end to end.
//!
//! The contract (extending the `tests/stream_merge.rs` pattern from shards
//! to trial workers): the number of worker threads driving the Monte-Carlo
//! trial loop is an execution choice, **never** a statistical one.
//! `Pipeline` and `StreamPipeline` reports — means, variances, every
//! floating-point field — are bit-identical at 1, 2, 3, and 8 threads, for
//! both outcome regimes, with threads composed with ingest shards, and
//! under the `PIE_THREADS` environment default.

use std::sync::Arc;

use partial_info_estimators::analysis::trial::TrialRunner;
use partial_info_estimators::core::suite::{
    max_oblivious_suite, max_weighted_suite, or_oblivious_suite,
};
use partial_info_estimators::datagen::{
    generate_set_pair, generate_two_hours, paper_example, SetPairConfig, TrafficConfig,
};
use partial_info_estimators::{Pipeline, PipelineReport, Scheme, Statistic, StreamPipeline};

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Runs the batch pipeline at a given thread count.
fn batch_report(threads: usize, scheme: Scheme, trials: u64) -> PipelineReport {
    let builder = Pipeline::new().threads(threads).trials(trials).base_salt(9);
    match scheme {
        Scheme::ObliviousPoisson { p } => builder
            .dataset(paper_example().take_instances(2))
            .scheme(scheme)
            .estimators(max_oblivious_suite(p, p))
            .statistic(Statistic::max_dominance())
            .run()
            .unwrap(),
        Scheme::PpsPoisson { .. } => builder
            .dataset(generate_two_hours(&TrafficConfig::small(13)))
            .scheme(scheme)
            .estimators(max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .run()
            .unwrap(),
    }
}

#[test]
fn oblivious_pipeline_is_bit_identical_at_every_thread_count() {
    // 150 trials: not a multiple of the chunk width, so the tail chunk is
    // exercised too.
    let reference = batch_report(1, Scheme::oblivious(0.5), 150);
    for threads in THREAD_COUNTS {
        assert_eq!(
            batch_report(threads, Scheme::oblivious(0.5), 150),
            reference,
            "{threads} threads"
        );
    }
}

#[test]
fn pps_pipeline_is_bit_identical_at_every_thread_count() {
    let reference = batch_report(1, Scheme::pps(140.0), 75);
    for threads in THREAD_COUNTS {
        assert_eq!(
            batch_report(threads, Scheme::pps(140.0), 75),
            reference,
            "{threads} threads"
        );
    }
}

#[test]
fn stream_pipeline_is_bit_identical_across_threads_and_shards() {
    let data = Arc::new(generate_two_hours(&TrafficConfig::small(21)));
    let run = |threads: usize, shards: usize| {
        StreamPipeline::new()
            .dataset(Arc::clone(&data))
            .scheme(Scheme::pps(160.0))
            .shards(shards)
            .threads(threads)
            .estimators(max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .trials(30)
            .base_salt(4)
            .run()
            .unwrap()
    };
    let reference = run(1, 1);
    for threads in THREAD_COUNTS {
        for shards in [1, 3] {
            assert_eq!(
                run(threads, shards),
                reference,
                "{threads} threads, {shards} shards"
            );
        }
    }
}

#[test]
fn stream_pipeline_oblivious_matches_batch_at_every_thread_count() {
    let data = Arc::new(generate_set_pair(&SetPairConfig::new(250, 0.4)));
    let batch = Pipeline::new()
        .dataset(Arc::clone(&data))
        .scheme(Scheme::oblivious(0.4))
        .threads(2)
        .estimators(or_oblivious_suite(0.4, 0.4))
        .statistic(Statistic::distinct_count())
        .trials(60)
        .run()
        .unwrap();
    for threads in THREAD_COUNTS {
        let streamed = StreamPipeline::new()
            .dataset(Arc::clone(&data))
            .scheme(Scheme::oblivious(0.4))
            .shards(2)
            .threads(threads)
            .estimators(or_oblivious_suite(0.4, 0.4))
            .statistic(Statistic::distinct_count())
            .trials(60)
            .run()
            .unwrap();
        assert_eq!(streamed, batch, "{threads} threads");
    }
}

/// A compact, order-stable digest of a report's floating-point content, for
/// comparing reports across process boundaries.
fn report_digest(report: &PipelineReport) -> String {
    report
        .estimators
        .iter()
        .map(|e| {
            format!(
                "{}:{:016x}:{:016x}",
                e.name,
                e.evaluation.mean.to_bits(),
                e.evaluation.variance.to_bits()
            )
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// The `PIE_THREADS` environment default routes through the same engine, so
/// whatever it selects must reproduce the explicit-thread-count reports.
///
/// The env-configured run happens in a *child process* (this same test
/// binary re-invoked with `PIE_THREADS` set): mutating the parent's
/// environment with `set_var` would race against concurrent test threads
/// reading it inside `TrialRunner::new`.
#[test]
fn env_thread_default_reproduces_explicit_thread_counts() {
    const CHILD_MARKER: &str = "PIE_TEST_EMIT_ENV_REPORT";
    let run_default_threads = || {
        Pipeline::new()
            .trials(40)
            .base_salt(9)
            .dataset(paper_example().take_instances(2))
            .scheme(Scheme::oblivious(0.5))
            .estimators(max_oblivious_suite(0.5, 0.5))
            .statistic(Statistic::max_dominance())
            .run()
            .unwrap()
    };
    if std::env::var_os(CHILD_MARKER).is_some() {
        // Child mode: report the digest computed under the parent-chosen
        // PIE_THREADS and stop (no further recursion — the marker is only
        // set by the parent spawn below).
        println!(
            "ENV_REPORT_DIGEST={}",
            report_digest(&run_default_threads())
        );
        return;
    }
    let reference = report_digest(&batch_report(1, Scheme::oblivious(0.5), 40));
    for pie_threads in ["1", "3", "8"] {
        let output = std::process::Command::new(std::env::current_exe().unwrap())
            .args([
                "--exact",
                "env_thread_default_reproduces_explicit_thread_counts",
                "--nocapture",
            ])
            .env(CHILD_MARKER, "1")
            .env("PIE_THREADS", pie_threads)
            .output()
            .expect("re-running the test binary succeeds");
        assert!(output.status.success(), "child run failed: {output:?}");
        let stdout = String::from_utf8_lossy(&output.stdout);
        // libtest may print its own "test … ..." prefix on the same line,
        // so locate the marker anywhere and read to the next whitespace.
        let digest = stdout
            .split_once("ENV_REPORT_DIGEST=")
            .map(|(_, rest)| rest.split_whitespace().next().unwrap_or(""))
            .unwrap_or_else(|| panic!("no digest in child output: {stdout}"));
        assert_eq!(digest, reference, "PIE_THREADS={pie_threads}");
    }
    // And the runner itself honors the variable's absence gracefully.
    assert!(TrialRunner::new().thread_count() >= 1);
}

/// Trial counts around the chunk boundary all agree across thread counts
/// (off-by-one chunk partitioning would show up exactly here).
#[test]
fn chunk_boundary_trial_counts_stay_invariant() {
    for trials in [1, 15, 16, 17, 32, 33] {
        let reference = batch_report(1, Scheme::oblivious(0.5), trials);
        assert_eq!(reference.trials, trials);
        for threads in [2, 8] {
            assert_eq!(
                batch_report(threads, Scheme::oblivious(0.5), trials),
                reference,
                "{trials} trials, {threads} threads"
            );
        }
    }
}
