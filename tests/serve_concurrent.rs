//! Concurrency soak test for the `pie-serve` stack: N client threads × M
//! mixed queries against one live server.
//!
//! The two contracts under load:
//!
//! 1. **Bit-identity** — every served `Estimate` response equals the direct
//!    in-process [`Pipeline`] result for the same configuration, across all
//!    five estimator suites (`max_oblivious`, `max_oblivious_uniform`,
//!    `or_oblivious`, `max_weighted`, `or_weighted`).  Serving changes
//!    where estimation runs, never what it returns.
//! 2. **Catalog consistency** — `ListCatalog` keeps returning a complete,
//!    sorted listing in which every stable sketch is present and ready,
//!    while a writer thread concurrently replaces entries via
//!    `LoadSnapshot`.

use std::sync::Arc;

use partial_info_estimators::core::suite::{
    max_oblivious_suite, max_oblivious_uniform_suite, max_weighted_suite, or_oblivious_suite,
    or_weighted_suite,
};
use partial_info_estimators::datagen::{
    dataset_records, generate_set_pair, generate_two_hours, Dataset, SetPairConfig, TrafficConfig,
};
use partial_info_estimators::{
    CatalogEntry, EstimatorSet, Pipeline, PipelineReport, Scheme, Statistic,
};
use pie_serve::{IngestRecord, ServeClient, ServeError, Server, SketchConfig};

/// One sketch the soak serves: its name, data, configuration, and the
/// (suite, statistic) queries it answers, each with the expected in-process
/// report.
struct Case {
    name: &'static str,
    dataset: Arc<Dataset>,
    config: SketchConfig,
    queries: Vec<(&'static str, &'static str, PipelineReport)>,
}

fn expected(
    dataset: &Arc<Dataset>,
    config: &SketchConfig,
    estimators: EstimatorSet,
    statistic: Statistic,
) -> PipelineReport {
    let mut pipeline = Pipeline::new()
        .dataset(Arc::clone(dataset))
        .scheme(config.scheme)
        .statistic(statistic)
        .trials(config.trials)
        .base_salt(config.base_salt);
    pipeline = match estimators {
        EstimatorSet::Oblivious(r) => pipeline.estimators(r),
        EstimatorSet::Weighted(r) => pipeline.estimators(r),
    };
    pipeline.run().expect("in-process reference run")
}

/// The five-suite case matrix.
fn cases() -> Vec<Case> {
    let mut cases = Vec::new();

    // Pairwise + uniform max over the paper's oblivious example.
    let pair = Arc::new(partial_info_estimators::datagen::paper_example().take_instances(2));
    let pair_config = SketchConfig {
        scheme: Scheme::oblivious(0.5),
        shards: 2,
        trials: 24,
        base_salt: 3,
    };
    cases.push(Case {
        name: "paper_pair",
        dataset: Arc::clone(&pair),
        config: pair_config,
        queries: vec![
            (
                "max_oblivious",
                "max_dominance",
                expected(
                    &pair,
                    &pair_config,
                    max_oblivious_suite(0.5, 0.5).into(),
                    Statistic::max_dominance(),
                ),
            ),
            (
                "max_oblivious_uniform",
                "max_dominance",
                expected(
                    &pair,
                    &pair_config,
                    max_oblivious_uniform_suite(2, 0.5).into(),
                    Statistic::max_dominance(),
                ),
            ),
        ],
    });

    // Boolean OR over a binary set pair, both regimes.
    let sets = Arc::new(generate_set_pair(&SetPairConfig::new(120, 0.5)));
    let sets_obl_config = SketchConfig {
        scheme: Scheme::oblivious(0.4),
        shards: 3,
        trials: 20,
        base_salt: 11,
    };
    cases.push(Case {
        name: "sets_oblivious",
        dataset: Arc::clone(&sets),
        config: sets_obl_config,
        queries: vec![(
            "or_oblivious",
            "distinct_count",
            expected(
                &sets,
                &sets_obl_config,
                or_oblivious_suite(0.4, 0.4).into(),
                Statistic::distinct_count(),
            ),
        )],
    });
    let sets_pps_config = SketchConfig {
        scheme: Scheme::pps(1.5),
        shards: 2,
        trials: 20,
        base_salt: 2,
    };
    cases.push(Case {
        name: "sets_pps",
        dataset: Arc::clone(&sets),
        config: sets_pps_config,
        queries: vec![(
            "or_weighted",
            "distinct_count",
            expected(
                &sets,
                &sets_pps_config,
                or_weighted_suite().into(),
                Statistic::distinct_count(),
            ),
        )],
    });

    // Weighted max over synthetic traffic.
    let traffic = Arc::new(generate_two_hours(&TrafficConfig::small(4)));
    let traffic_config = SketchConfig {
        scheme: Scheme::pps(150.0),
        shards: 2,
        trials: 16,
        base_salt: 7,
    };
    cases.push(Case {
        name: "traffic_pps",
        dataset: Arc::clone(&traffic),
        config: traffic_config,
        queries: vec![(
            "max_weighted",
            "max_dominance",
            expected(
                &traffic,
                &traffic_config,
                max_weighted_suite().into(),
                Statistic::max_dominance(),
            ),
        )],
    });
    cases
}

fn wire_records(dataset: &Dataset) -> Vec<IngestRecord> {
    dataset_records(dataset)
        .map(|r| IngestRecord {
            instance: r.instance,
            key: r.key,
            value: r.value,
        })
        .collect()
}

#[test]
fn concurrent_soak_estimates_bit_identical_to_pipeline() {
    let cases = cases();
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Populate half the catalog over the wire (sharded IngestBatch from
    // concurrent clients), half via LoadSnapshot from persisted entries —
    // the two sources the protocol supports.
    let dir = std::env::temp_dir().join(format!("pie-serve-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (i, case) in cases.iter().enumerate() {
        if i % 2 == 0 {
            // Shard the records across 3 concurrent ingest clients, then
            // finalize with an empty last batch: arrival order must not
            // matter.
            let records = wire_records(&case.dataset);
            std::thread::scope(|scope| {
                for chunk in records.chunks(records.len().div_ceil(3)) {
                    scope.spawn(|| {
                        let mut client = ServeClient::connect(addr).unwrap();
                        let ack = client
                            .ingest_batch(case.name, case.config, chunk.to_vec(), false)
                            .unwrap();
                        assert!(!ack.ready);
                    });
                }
            });
            let mut client = ServeClient::connect(addr).unwrap();
            let ack = client
                .ingest_batch(case.name, case.config, Vec::new(), true)
                .unwrap();
            assert!(ack.ready);
        } else {
            let entry = CatalogEntry::build(
                Arc::clone(&case.dataset),
                case.config.scheme,
                case.config.shards as usize,
                case.config.trials,
                case.config.base_salt,
            )
            .unwrap();
            let path = dir.join(format!("{}.pies", case.name));
            entry.save(&path).unwrap();
            let mut client = ServeClient::connect(addr).unwrap();
            let info = client
                .load_snapshot(case.name, path.to_str().unwrap())
                .unwrap();
            assert!(info.ready);
            assert_eq!(info.name, case.name);
        }
    }

    // A spare entry the writer thread keeps replacing during the soak.
    let spare = CatalogEntry::build(
        Arc::clone(&cases[0].dataset),
        cases[0].config.scheme,
        1,
        4,
        99,
    )
    .unwrap();
    let spare_path = dir.join("spare.pies");
    spare.save(&spare_path).unwrap();

    const CLIENTS: usize = 6;
    const OPS_PER_CLIENT: usize = 24;
    let stable_names: Vec<&str> = cases.iter().map(|c| c.name).collect();

    std::thread::scope(|scope| {
        // Writer: concurrently (re)loads the spare entry under new and
        // repeated names while readers list and estimate.
        scope.spawn(|| {
            let mut client = ServeClient::connect(addr).unwrap();
            for i in 0..OPS_PER_CLIENT {
                let name = format!("spare_{}", i % 3);
                let info = client
                    .load_snapshot(name.clone(), spare_path.to_str().unwrap())
                    .unwrap();
                assert!(info.ready, "{name}");
            }
        });
        for worker in 0..CLIENTS {
            let cases = &cases;
            let stable_names = &stable_names;
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for op in 0..OPS_PER_CLIENT {
                    // Mixed workload: mostly estimates, listings in between.
                    if (op + worker) % 5 == 4 {
                        let listing = client.list_catalog().unwrap();
                        // Sorted, complete, and every stable sketch ready.
                        let names: Vec<&str> = listing.iter().map(|i| i.name.as_str()).collect();
                        let mut sorted = names.clone();
                        sorted.sort_unstable();
                        assert_eq!(names, sorted, "listing must be sorted");
                        for name in stable_names {
                            let row = listing
                                .iter()
                                .find(|i| i.name == *name)
                                .unwrap_or_else(|| panic!("{name} missing from listing"));
                            assert!(row.ready, "{name} must stay ready");
                        }
                    } else {
                        let case = &cases[(op + worker) % cases.len()];
                        let (suite, statistic, ref want) =
                            case.queries[(op / 2 + worker) % case.queries.len()];
                        let got = client.estimate(case.name, suite, statistic).unwrap();
                        assert_eq!(
                            &got, want,
                            "served {suite}/{statistic} over {} must be bit-identical",
                            case.name
                        );
                    }
                }
            });
        }
    });

    // Typed error paths over the wire, after the soak (server still sane).
    let mut client = ServeClient::connect(addr).unwrap();
    assert!(matches!(
        client
            .estimate("missing", "max_oblivious", "max_dominance")
            .unwrap_err(),
        ServeError::UnknownSketch { .. }
    ));
    assert!(matches!(
        client
            .estimate("paper_pair", "not_a_suite", "max_dominance")
            .unwrap_err(),
        ServeError::UnknownEstimator { .. }
    ));
    assert!(matches!(
        client
            .estimate("paper_pair", "max_weighted", "max_dominance")
            .unwrap_err(),
        ServeError::EstimatorMismatch { .. }
    ));
    assert!(matches!(
        client
            .estimate("paper_pair", "max_oblivious", "not_a_statistic")
            .unwrap_err(),
        ServeError::UnknownStatistic { .. }
    ));
    assert!(matches!(
        client
            .load_snapshot("bad", "/nonexistent/definitely.pies")
            .unwrap_err(),
        ServeError::Snapshot { .. }
    ));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn served_estimates_also_match_stream_pipeline_and_session_exports() {
    // The catalog hooks: StreamPipeline::into_catalog_entry and a completed
    // ingest session's finish_into_catalog must serve the same bytes.
    use partial_info_estimators::StreamPipeline;

    let data = Arc::new(generate_two_hours(&TrafficConfig::small(9)));
    let configure = || {
        StreamPipeline::new()
            .dataset(Arc::clone(&data))
            .scheme(Scheme::pps(180.0))
            .shards(3)
            .estimators(max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .trials(10)
            .base_salt(21)
    };
    let want = configure().run().unwrap();

    let server = Server::bind("127.0.0.1:0").unwrap();
    let from_pipeline = configure().into_catalog_entry().unwrap();
    server.catalog().insert("from_pipeline", from_pipeline);
    let mut session = configure().ingest_session().unwrap();
    session.ingest_all();
    let from_session = session.finish_into_catalog().unwrap();
    server.catalog().insert("from_session", from_session);

    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    for name in ["from_pipeline", "from_session"] {
        let got = client
            .estimate(name, "max_weighted", "max_dominance")
            .unwrap();
        assert_eq!(got, want, "{name}");
    }
    server.shutdown();
}
