//! End-to-end pipeline tests: generate data → summarize each instance
//! independently → estimate multi-instance aggregates from the samples only.
//!
//! These tests exercise the whole public API the way an application would,
//! including bottom-k (priority) summaries and selection predicates.

use partial_info_estimators::core::aggregate::{
    distinct_count_ht, distinct_count_l, max_dominance_l, min_dominance_ht, sum_aggregate,
    true_max_dominance, true_min_dominance,
};
use partial_info_estimators::core::weighted::MaxLPps2;
use partial_info_estimators::datagen::{
    generate_set_pair, generate_two_hours, SetPairConfig, TrafficConfig,
};
use partial_info_estimators::sampling::{
    sample_all, BottomKSampler, PpsPoissonSampler, PpsRanks, SeedAssignment,
};

#[test]
fn distinct_count_pipeline_over_poisson_samples() {
    let config = SetPairConfig::new(20_000, 0.5);
    let data = generate_set_pair(&config);
    let truth = config.union_size() as f64;
    let p = 0.1;
    let mut ht_sum = 0.0;
    let mut l_sum = 0.0;
    let reps = 40;
    for salt in 0..reps {
        let seeds = SeedAssignment::independent_known(salt);
        let samples = sample_all(&PpsPoissonSampler::new(1.0 / p), data.instances(), &seeds);
        ht_sum += distinct_count_ht(&samples[0], &samples[1], &seeds, |_| true);
        l_sum += distinct_count_l(&samples[0], &samples[1], &seeds, |_| true);
    }
    let (ht_mean, l_mean) = (ht_sum / reps as f64, l_sum / reps as f64);
    assert!(
        (ht_mean - truth).abs() / truth < 0.03,
        "HT mean {ht_mean} vs {truth}"
    );
    assert!(
        (l_mean - truth).abs() / truth < 0.03,
        "L mean {l_mean} vs {truth}"
    );
}

#[test]
fn distinct_count_pipeline_over_bottom_k_samples() {
    // Bottom-k (priority) summaries: the (k+1)-st rank plays the role of the
    // sampling threshold; the same estimators apply through the rank-conditioned
    // inclusion probabilities.
    let config = SetPairConfig::new(5_000, 0.6);
    let data = generate_set_pair(&config);
    let truth = config.union_size() as f64;
    let k = 600;
    let mut l_sum = 0.0;
    let reps = 30;
    for salt in 0..reps {
        let seeds = SeedAssignment::independent_known(1_000 + salt);
        let sampler = BottomKSampler::new(PpsRanks, k);
        let s1 = sampler.sample(&data.instances()[0], &seeds, 0);
        let s2 = sampler.sample(&data.instances()[1], &seeds, 1);
        l_sum += distinct_count_l(&s1, &s2, &seeds, |_| true);
    }
    let l_mean = l_sum / reps as f64;
    assert!(
        (l_mean - truth).abs() / truth < 0.05,
        "bottom-k L mean {l_mean} vs {truth}"
    );
}

#[test]
fn max_dominance_pipeline_with_selection_predicate() {
    let data = generate_two_hours(&TrafficConfig::small(21));
    let select = |k: u64| k.is_multiple_of(3);
    let truth = true_max_dominance(data.instances(), select);
    let mut sum = 0.0;
    let reps = 60;
    for salt in 0..reps {
        let seeds = SeedAssignment::independent_known(salt);
        let samples = sample_all(&PpsPoissonSampler::new(100.0), data.instances(), &seeds);
        sum += max_dominance_l(&samples, &seeds, select);
    }
    let mean = sum / reps as f64;
    assert!(
        (mean - truth).abs() / truth < 0.05,
        "mean {mean} vs truth {truth}"
    );
}

#[test]
fn min_dominance_pipeline() {
    let data = generate_two_hours(&TrafficConfig::small(33));
    let truth = true_min_dominance(data.instances(), |_| true);
    let mut sum = 0.0;
    let reps = 80;
    for salt in 0..reps {
        let seeds = SeedAssignment::independent_known(salt);
        let samples = sample_all(&PpsPoissonSampler::new(60.0), data.instances(), &seeds);
        sum += min_dominance_ht(&samples, &seeds, |_| true);
    }
    let mean = sum / reps as f64;
    assert!(
        (mean - truth).abs() / truth < 0.08,
        "mean {mean} vs truth {truth}"
    );
}

#[test]
fn generic_sum_aggregate_matches_specialized_driver() {
    let data = generate_two_hours(&TrafficConfig::small(5));
    let seeds = SeedAssignment::independent_known(9);
    let samples = sample_all(&PpsPoissonSampler::new(120.0), data.instances(), &seeds);
    let a = max_dominance_l(&samples, &seeds, |_| true);
    let b = sum_aggregate(&MaxLPps2, &samples, &seeds, |_| true);
    assert!((a - b).abs() < 1e-9);
}

#[test]
fn estimates_are_reproducible_for_a_fixed_salt() {
    // The whole pipeline is hash-driven: same salt, same samples, same estimate.
    let data = generate_two_hours(&TrafficConfig::small(64));
    let run = || {
        let seeds = SeedAssignment::independent_known(31337);
        let samples = sample_all(&PpsPoissonSampler::new(80.0), data.instances(), &seeds);
        max_dominance_l(&samples, &seeds, |_| true)
    };
    assert_eq!(run(), run());
}
