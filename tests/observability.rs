//! Single-node observability integration: server-side span coverage of
//! every pipeline stage, slow-query log capture, and the contract that
//! instrumentation never changes an answer.
//!
//! The cluster soak covers fleet-level merge and routed tracing; this
//! file pins the per-node plane: which stages a traced request records,
//! what lands in the slow-query log (and when nothing does), and that a
//! server running with [`ObsConfig::disabled`] serves bit-identical
//! estimates while answering `Metrics`/`QueryTrace` with empty planes.

use std::time::Duration;

use partial_info_estimators::datagen::paper_example;
use partial_info_estimators::{CatalogEntry, Scheme};
use pie_serve::{EngineConfig, ObsConfig, ServeClient, Server, TraceContext};

/// A server with one ready sketch (`example`) and the given obs tunables.
fn seeded_server(obs: ObsConfig) -> Server {
    let server = Server::bind_with_obs("127.0.0.1:0", EngineConfig::default(), obs)
        .expect("bind ephemeral server");
    let entry = CatalogEntry::build(
        paper_example().take_instances(2),
        Scheme::oblivious(0.5),
        1,
        10,
        0,
    )
    .expect("build example sketch");
    server.catalog().insert("example", entry);
    server
}

#[test]
fn traced_estimate_records_every_pipeline_stage_server_side() {
    const TRACE_ID: u64 = 0x0BAD_CAFE;
    const CALLER_SPAN: u64 = 7;

    let server = seeded_server(ObsConfig::default());
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_trace(Some(TraceContext::new(TRACE_ID, CALLER_SPAN)));

    // Cold estimate (trial replay + estimator batch run), then a warm one
    // (cache probe hits): identical answers, instrumentation observes only.
    let cold = client
        .estimate("example", "max_oblivious", "max_dominance")
        .unwrap();
    let warm = client
        .estimate("example", "max_oblivious", "max_dominance")
        .unwrap();
    assert_eq!(cold, warm, "tracing must not change the answer");

    // An untraced request afterwards: its round trip guarantees the event
    // loop finished the iteration that records the estimates' write-queue
    // spans, and it must contribute no spans of its own.
    client.set_trace(None);
    client.ping().unwrap();

    let spans = server.trace_spans(TRACE_ID);
    for stage in [
        "decode",
        "admission",
        "cache_probe",
        "trial_replay",
        "estimator_batch",
        "encode",
        "write_queue",
    ] {
        assert!(
            spans.iter().any(|s| s.stage == stage),
            "stage {stage} missing from {spans:?}"
        );
    }
    let node = server.local_addr().to_string();
    for span in &spans {
        assert_eq!(span.trace_id, TRACE_ID);
        assert_eq!(
            span.parent_span_id, CALLER_SPAN,
            "single-hop spans parent directly under the caller's span"
        );
        assert_eq!(span.node, node);
    }
    // Span ids are unique within the trace.
    let mut ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), spans.len(), "duplicate span ids in {spans:?}");

    // A trace id nobody used stays empty, and nothing was slow enough for
    // the default 250 ms threshold.
    assert!(server.trace_spans(0x5EED).is_empty());
    assert!(server.slow_queries().is_empty());
    server.shutdown();
}

#[test]
fn zero_threshold_slow_query_log_captures_kind_sketch_and_trace_id() {
    const TRACE_ID: u64 = 0xFACE;

    let obs = ObsConfig {
        slow_query_threshold: Duration::ZERO,
        slow_query_log_capacity: 4,
        ..ObsConfig::default()
    };
    let server = seeded_server(obs);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_trace(Some(TraceContext::new(TRACE_ID, 1)));
    client
        .estimate("example", "max_oblivious", "max_dominance")
        .unwrap();

    let slow = server.slow_queries();
    assert!(
        slow.iter().any(|r| r.request == "estimate"
            && r.sketch == "example"
            && r.trace_id == TRACE_ID
            && r.duration_nanos > 0),
        "estimate not captured: {slow:?}"
    );

    // The log is bounded: a burst far past capacity retains only the most
    // recent `slow_query_log_capacity` records.
    for _ in 0..16 {
        client.ping().unwrap();
    }
    let slow = server.slow_queries();
    assert_eq!(slow.len(), 4, "log exceeded its capacity: {slow:?}");
    assert!(slow.iter().all(|r| r.request == "ping"));
    server.shutdown();
}

#[test]
fn disabled_observability_serves_identical_answers_with_empty_planes() {
    const TRACE_ID: u64 = 0xD15A;

    let on = seeded_server(ObsConfig::default());
    let off = seeded_server(ObsConfig::disabled());
    let mut client_on = ServeClient::connect(on.local_addr()).unwrap();
    let mut client_off = ServeClient::connect(off.local_addr()).unwrap();
    client_on.set_trace(Some(TraceContext::new(TRACE_ID, 1)));
    client_off.set_trace(Some(TraceContext::new(TRACE_ID, 1)));

    let with_obs = client_on
        .estimate("example", "max_oblivious", "max_dominance")
        .unwrap();
    let without_obs = client_off
        .estimate("example", "max_oblivious", "max_dominance")
        .unwrap();
    assert_eq!(
        with_obs, without_obs,
        "instrumentation must never change a served estimate"
    );

    // The disabled plane answers the wire requests with empty payloads —
    // clients need no mode detection.
    let snapshot = client_off.metrics().unwrap();
    assert!(snapshot.counters.is_empty());
    assert!(snapshot.gauges.is_empty());
    assert!(snapshot.histograms.is_empty());
    assert!(client_off.query_trace(TRACE_ID).unwrap().is_empty());
    assert!(off.slow_queries().is_empty());

    // The enabled plane saw the work.
    let snapshot = client_on.metrics().unwrap();
    assert!(snapshot.counter("requests_total").unwrap_or(0) >= 1);
    assert!(snapshot.counter("requests_estimate_total").unwrap_or(0) >= 1);
    assert!(!client_on.query_trace(TRACE_ID).unwrap().is_empty());

    on.shutdown();
    off.shutdown();
}
