//! Property-based tests (proptest) for the core invariants:
//!
//! * unbiasedness of every estimator, verified by exact enumeration
//!   (weight-oblivious) or quadrature (PPS with known seeds);
//! * nonnegativity of the L/U estimators on arbitrary outcomes;
//! * dominance of the L/U estimators over Horvitz–Thompson;
//! * structural invariants of the sampling substrate (rank monotonicity,
//!   bottom-k sample size, VarOpt fixed size, seed determinism);
//! * consistency of the batched estimation path: `estimate_batch` agrees
//!   with per-outcome `estimate` for every registered estimator, and the
//!   borrowed `OutcomeView` accessors agree with the deprecated
//!   `Vec`-returning shims;
//! * bit-identity of the struct-of-arrays lane path: `estimate_lanes` over
//!   filled lanes agrees bit for bit with `estimate` and `estimate_batch`
//!   for every estimator of every suite in `SUITE_NAMES`, on adversarial
//!   batches (empty, single-outcome, chunk-boundary lengths, extreme and
//!   zero values, near-zero probabilities).

use proptest::prelude::*;

use partial_info_estimators::analysis::{pps2_expectation, pps2_variance};
use partial_info_estimators::core::oblivious::{
    MaxHtOblivious, MaxL2, MaxLUniform, MaxU2, OrL2, OrU2,
};
use partial_info_estimators::core::suite::{
    max_oblivious_suite, max_weighted_suite, oblivious_suite_by_name, or_oblivious_suite,
    or_weighted_suite, suite_regime, weighted_suite_by_name, SuiteRegime, SUITE_NAMES,
};
use partial_info_estimators::core::variance::{
    exact_oblivious_expectation, exact_oblivious_variance,
};
use partial_info_estimators::core::weighted::{MaxHtPps, MaxLPps2};
use partial_info_estimators::core::Estimator;
use partial_info_estimators::sampling::{
    BottomKSampler, ExpRanks, Instance, ObliviousEntry, ObliviousLanes, ObliviousOutcome,
    OutcomeView, PpsRanks, RankFamily, SeedAssignment, VarOptSampler, WeightedEntry, WeightedLanes,
    WeightedOutcome,
};

/// Builds `n` weight-oblivious outcomes over two instances from flat random
/// draws.
fn oblivious_outcomes(
    n: usize,
    p1: f64,
    p2: f64,
    values: &[f64],
    sampled: &[bool],
) -> Vec<ObliviousOutcome> {
    (0..n)
        .map(|i| {
            ObliviousOutcome::new(vec![
                ObliviousEntry {
                    p: p1,
                    value: sampled[2 * i].then_some(values[2 * i]),
                },
                ObliviousEntry {
                    p: p2,
                    value: sampled[2 * i + 1].then_some(values[2 * i + 1]),
                },
            ])
        })
        .collect()
}

/// Builds `n` weighted (known-seed) outcomes over two instances; entry
/// `values[j]` is sampled exactly when the PPS rule `v ≥ u·τ*` fires.
fn weighted_outcomes(n: usize, tau: f64, values: &[f64], seeds: &[f64]) -> Vec<WeightedOutcome> {
    (0..n)
        .map(|i| {
            WeightedOutcome::new(
                (0..2)
                    .map(|j| {
                        let v = values[2 * i + j];
                        let u = seeds[2 * i + j];
                        WeightedEntry {
                            tau_star: tau,
                            seed: Some(u),
                            value: (v > 0.0 && v >= u * tau).then_some(v),
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

fn prob() -> impl Strategy<Value = f64> {
    0.05f64..1.0
}

fn value() -> impl Strategy<Value = f64> {
    0.0f64..100.0
}

/// Values stressing the lane kernels: exact zeros and magnitude extremes
/// alongside ordinary draws.
fn adversarial_value() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1e-300), Just(1e300), 0.0f64..100.0,]
}

/// Probabilities stressing the lane kernels: near-zero (inverse blow-up),
/// exactly one, and ordinary draws.
fn adversarial_prob() -> impl Strategy<Value = f64> {
    prop_oneof![Just(1e-9), Just(1.0), 0.05f64..1.0]
}

/// Batch lengths around the fixed chunk width of the lane kernels: empty,
/// single, one below/at/above one and two chunks, and a long tail.
fn lane_len() -> impl Strategy<Value = usize> {
    proptest::sample::select(vec![0usize, 1, 7, 8, 9, 15, 16, 17, 33])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// max^(L) and max^(U) (r = 2) are unbiased for arbitrary values and
    /// probabilities, by exact enumeration over the 4 outcomes.
    #[test]
    fn max_l2_and_u2_unbiased(v1 in value(), v2 in value(), p1 in prob(), p2 in prob()) {
        let truth = v1.max(v2);
        let l = exact_oblivious_expectation(&MaxL2::new(p1, p2), &[v1, v2], &[p1, p2]);
        let u = exact_oblivious_expectation(&MaxU2::new(p1, p2), &[v1, v2], &[p1, p2]);
        prop_assert!((l - truth).abs() <= 1e-8 * truth.max(1.0));
        prop_assert!((u - truth).abs() <= 1e-8 * truth.max(1.0));
    }

    /// Both Pareto-optimal estimators dominate HT on every input.
    #[test]
    fn l_and_u_dominate_ht(v1 in value(), v2 in value(), p1 in prob(), p2 in prob()) {
        let var_ht = exact_oblivious_variance(&MaxHtOblivious, &[v1, v2], &[p1, p2]);
        let var_l = exact_oblivious_variance(&MaxL2::new(p1, p2), &[v1, v2], &[p1, p2]);
        let var_u = exact_oblivious_variance(&MaxU2::new(p1, p2), &[v1, v2], &[p1, p2]);
        prop_assert!(var_l <= var_ht + 1e-6 + 1e-9 * var_ht);
        prop_assert!(var_u <= var_ht + 1e-6 + 1e-9 * var_ht);
    }

    /// The L/U estimates are nonnegative on every outcome.
    #[test]
    fn l_and_u_nonnegative(v1 in value(), v2 in value(), p1 in prob(), p2 in prob(),
                           s1 in any::<bool>(), s2 in any::<bool>()) {
        let o = ObliviousOutcome::new(vec![
            ObliviousEntry { p: p1, value: s1.then_some(v1) },
            ObliviousEntry { p: p2, value: s2.then_some(v2) },
        ]);
        prop_assert!(MaxL2::new(p1, p2).estimate(&o) >= -1e-9);
        prop_assert!(MaxU2::new(p1, p2).estimate(&o) >= -1e-9);
    }

    /// OR^(L) / OR^(U) are unbiased and nonnegative on binary data.
    #[test]
    fn or_estimators_unbiased(b1 in any::<bool>(), b2 in any::<bool>(), p1 in prob(), p2 in prob()) {
        let v = [f64::from(b1 as u8), f64::from(b2 as u8)];
        let truth = if b1 || b2 { 1.0 } else { 0.0 };
        let l = exact_oblivious_expectation(&OrL2::new(p1, p2), &v, &[p1, p2]);
        let u = exact_oblivious_expectation(&OrU2::new(p1, p2), &v, &[p1, p2]);
        prop_assert!((l - truth).abs() < 1e-9);
        prop_assert!((u - truth).abs() < 1e-9);
    }

    /// Algorithm 3 (uniform p, r instances) stays unbiased and keeps the
    /// Lemma 4.2 coefficient signs for r up to 5.
    #[test]
    fn max_l_uniform_unbiased_and_signed(
        r in 2usize..=5,
        p in 0.1f64..0.95,
        raw in proptest::collection::vec(0.0f64..50.0, 5),
    ) {
        let v = &raw[..r];
        let est = MaxLUniform::new(r, p);
        let probs = vec![p; r];
        let truth = v.iter().copied().fold(0.0, f64::max);
        let mean = exact_oblivious_expectation(&est, v, &probs);
        prop_assert!((mean - truth).abs() <= 1e-7 * truth.max(1.0), "bias {mean} vs {truth}");
        let alpha = est.coefficients();
        prop_assert!(alpha[0] > 0.0);
        for &a in &alpha[1..] {
            prop_assert!(a <= 1e-12);
        }
    }

    /// The weighted known-seed max^(L) (Figure 3) is unbiased for arbitrary
    /// values and (possibly asymmetric) thresholds, by quadrature.
    #[test]
    fn max_l_pps2_unbiased(
        v1 in 0.5f64..20.0,
        v2 in 0.0f64..20.0,
        t1 in 5.0f64..30.0,
        t2 in 5.0f64..30.0,
    ) {
        let truth = v1.max(v2);
        let mean = pps2_expectation(&MaxLPps2, [v1, v2], [t1, t2]);
        prop_assert!((mean - truth).abs() <= 3e-3 * truth, "bias {mean} vs {truth}");
    }

    /// With equal thresholds — the setting of Section 5.2 and Figure 4 — the
    /// weighted known-seed max^(L) dominates max^(HT).  (With very asymmetric
    /// thresholds, one zero entry and max(v) above the smaller threshold, the
    /// Figure 3 estimator's logarithmic branch can exceed HT's variance; see
    /// EXPERIMENTS.md.)
    #[test]
    fn max_l_pps2_dominates_ht_for_equal_thresholds(
        v1 in 0.5f64..20.0,
        v2 in 0.0f64..20.0,
        tau in 5.0f64..30.0,
    ) {
        let var_l = pps2_variance(&MaxLPps2, [v1, v2], [tau, tau]);
        let var_ht = pps2_variance(&MaxHtPps, [v1, v2], [tau, tau]);
        prop_assert!(var_l <= var_ht + 1e-6 + 1e-3 * var_ht,
            "var_l {var_l} should not exceed var_ht {var_ht}");
    }

    /// Rank families: ranks decrease with the value for a fixed seed
    /// (the consistency property behind coordinated sampling).
    #[test]
    fn ranks_monotone_in_value(u in 0.01f64..0.99, w1 in 0.1f64..100.0, delta in 0.1f64..50.0) {
        let w2 = w1 + delta;
        prop_assert!(PpsRanks.rank_from_seed(u, w2) <= PpsRanks.rank_from_seed(u, w1));
        prop_assert!(ExpRanks.rank_from_seed(u, w2) <= ExpRanks.rank_from_seed(u, w1));
    }

    /// Bottom-k samples have exactly min(k, #positive keys) entries and their
    /// threshold upper-bounds every sampled rank.
    #[test]
    fn bottom_k_size_and_threshold(n in 1usize..200, k in 1usize..50, salt in 0u64..1000) {
        let inst = Instance::from_pairs((0..n as u64).map(|i| (i, 1.0 + (i % 7) as f64)));
        let seeds = SeedAssignment::independent_known(salt);
        let sampler = BottomKSampler::new(PpsRanks, k);
        let s = sampler.sample(&inst, &seeds, 0);
        prop_assert_eq!(s.len(), k.min(n));
        for (key, value) in s.iter() {
            let rank = sampler.rank_of(key, value, &seeds, 0);
            prop_assert!(rank <= s.threshold);
        }
    }

    /// VarOpt reservoirs never exceed their capacity and keep every key whose
    /// value exceeds the final threshold.
    #[test]
    fn varopt_size_and_heavy_keys(n in 1usize..300, k in 1usize..40, seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let inst = Instance::from_pairs((0..n as u64).map(|i| (i, 0.5 + (i % 11) as f64)));
        let mut rng = StdRng::seed_from_u64(seed);
        let s = VarOptSampler::sample(k, &inst, &mut rng, 0);
        prop_assert_eq!(s.len(), k.min(n));
        if s.threshold > 0.0 {
            for (key, value) in inst.iter() {
                if value > s.threshold {
                    prop_assert!(s.contains(key), "heavy key {key} missing");
                }
            }
        }
    }

    /// `estimate_batch` agrees with per-outcome `estimate` for every
    /// registered weight-oblivious estimator, on batches of random outcomes.
    #[test]
    fn estimate_batch_matches_per_outcome_oblivious(
        p1 in prob(), p2 in prob(),
        values in proptest::collection::vec(0.0f64..50.0, 16),
        sampled in proptest::collection::vec(any::<bool>(), 16),
        binary in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let n = 8;
        // max estimators on arbitrary values, OR estimators on binary data.
        let max_batch = oblivious_outcomes(n, p1, p2, &values, &sampled);
        let bits: Vec<f64> = binary.iter().map(|&b| f64::from(b as u8)).collect();
        let or_batch = oblivious_outcomes(n, p1, p2, &bits, &sampled);
        for (registry, outcomes) in [
            (max_oblivious_suite(p1, p2), &max_batch),
            (or_oblivious_suite(p1, p2), &or_batch),
        ] {
            let mut out = vec![f64::NAN; outcomes.len()];
            for (name, estimator) in registry.iter() {
                estimator.estimate_batch(outcomes, &mut out);
                for (outcome, &batched) in outcomes.iter().zip(&out) {
                    let single = estimator.estimate(outcome);
                    prop_assert!(
                        batched == single || (batched.is_nan() && single.is_nan()),
                        "{name}: batched {batched} != single {single}"
                    );
                }
            }
        }
    }

    /// `estimate_batch` agrees with per-outcome `estimate` for every
    /// registered weighted (known-seed) estimator.
    #[test]
    fn estimate_batch_matches_per_outcome_weighted(
        tau in 5.0f64..30.0,
        values in proptest::collection::vec(0.0f64..40.0, 16),
        seeds in proptest::collection::vec(0.001f64..0.999, 16),
        binary in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let n = 8;
        let max_batch = weighted_outcomes(n, tau, &values, &seeds);
        let bits: Vec<f64> = binary.iter().map(|&b| f64::from(b as u8)).collect();
        let or_batch = weighted_outcomes(n, 0.9, &bits, &seeds);
        for (registry, outcomes) in [
            (max_weighted_suite(), &max_batch),
            (or_weighted_suite(), &or_batch),
        ] {
            let mut out = vec![f64::NAN; outcomes.len()];
            for (name, estimator) in registry.iter() {
                estimator.estimate_batch(outcomes, &mut out);
                for (outcome, &batched) in outcomes.iter().zip(&out) {
                    let single = estimator.estimate(outcome);
                    prop_assert!(
                        batched == single || (batched.is_nan() && single.is_nan()),
                        "{name}: batched {batched} != single {single}"
                    );
                }
            }
        }
    }

    /// The borrowed `OutcomeView` accessors are internally consistent with
    /// the entry slices on random outcomes of both regimes.
    #[test]
    fn outcome_view_accessors_are_consistent(
        p1 in prob(), p2 in prob(),
        tau in 5.0f64..30.0,
        values in proptest::collection::vec(0.0f64..50.0, 16),
        sampled in proptest::collection::vec(any::<bool>(), 16),
        seeds in proptest::collection::vec(0.001f64..0.999, 16),
    ) {
        for o in oblivious_outcomes(8, p1, p2, &values, &sampled) {
            prop_assert_eq!(o.num_sampled(), o.sampled_indices_iter().count());
            prop_assert_eq!(o.max_sampled(), o.sampled_values().fold(None, |a: Option<f64>, v| Some(a.map_or(v, |x| x.max(v)))));
            prop_assert_eq!(o.values().collect::<Vec<_>>(), o.entries().iter().map(|e| e.value).collect::<Vec<_>>());
            prop_assert_eq!(o.probabilities_iter().collect::<Vec<_>>(), o.entries().iter().map(|e| e.p).collect::<Vec<_>>());
        }
        for w in weighted_outcomes(8, tau, &values, &seeds) {
            prop_assert_eq!(w.num_sampled(), w.sampled_indices_iter().count());
            prop_assert_eq!(w.values().collect::<Vec<_>>(), w.entries().iter().map(|e| e.value).collect::<Vec<_>>());
        }
    }

    /// The struct-of-arrays lane path is bit-identical to both scalar paths
    /// for every estimator of every *oblivious* suite in `SUITE_NAMES`, on
    /// adversarial batches: chunk-boundary lengths, extreme magnitudes,
    /// near-zero probabilities, and arbitrary presence patterns.
    #[test]
    fn lane_kernels_bit_identical_for_every_oblivious_suite(
        len in lane_len(),
        r_uniform in 2usize..=4,
        p in adversarial_prob(),
        values in proptest::collection::vec(adversarial_value(), 4 * 33),
        sampled in proptest::collection::vec(any::<bool>(), 4 * 33),
    ) {
        for name in SUITE_NAMES {
            if suite_regime(name) != Some(SuiteRegime::Oblivious) {
                continue;
            }
            let r = if name == "max_oblivious_uniform" { r_uniform } else { 2 };
            let binary = name.starts_with("or");
            let outcomes: Vec<ObliviousOutcome> = (0..len)
                .map(|i| {
                    ObliviousOutcome::new(
                        (0..r)
                            .map(|j| {
                                let k = i * r + j;
                                let v = if binary {
                                    f64::from(u8::from(values[k] > 1.0))
                                } else {
                                    values[k]
                                };
                                ObliviousEntry { p, value: sampled[k].then_some(v) }
                            })
                            .collect(),
                    )
                })
                .collect();
            let registry = oblivious_suite_by_name(name, r, p).unwrap();
            let mut lanes = ObliviousLanes::new();
            lanes.fill_from_outcomes(&outcomes);
            let mut by_lane = vec![f64::NAN; len];
            let mut by_batch = vec![f64::NAN; len];
            for (ename, estimator) in registry.iter() {
                estimator.estimate_lanes(&lanes, &mut by_lane);
                estimator.estimate_batch(&outcomes, &mut by_batch);
                for (k, o) in outcomes.iter().enumerate() {
                    let single = estimator.estimate(o);
                    prop_assert_eq!(
                        by_lane[k].to_bits(), single.to_bits(),
                        "{}::{} lanes vs scalar at k={} len={}", name, ename, k, len
                    );
                    prop_assert_eq!(
                        by_lane[k].to_bits(), by_batch[k].to_bits(),
                        "{}::{} lanes vs batch at k={} len={}", name, ename, k, len
                    );
                }
            }
        }
    }

    /// Same bit-identity contract for every *weighted* suite in
    /// `SUITE_NAMES`: PPS-consistent outcomes (sampled iff `v ≥ u·τ*`, all
    /// seeds visible) over extreme values, plus binary data for the OR suite.
    #[test]
    fn lane_kernels_bit_identical_for_every_weighted_suite(
        len in lane_len(),
        tau in prop_oneof![Just(0.9), 5.0f64..30.0, Just(1e6)],
        values in proptest::collection::vec(adversarial_value(), 2 * 33),
        seeds in proptest::collection::vec(0.001f64..0.999, 2 * 33),
        bits in proptest::collection::vec(any::<bool>(), 2 * 33),
    ) {
        let binary: Vec<f64> = bits.iter().map(|&b| f64::from(u8::from(b))).collect();
        for name in SUITE_NAMES {
            if suite_regime(name) != Some(SuiteRegime::Weighted) {
                continue;
            }
            let outcomes = if name == "or_weighted" {
                weighted_outcomes(len, tau, &binary, &seeds)
            } else {
                weighted_outcomes(len, tau, &values, &seeds)
            };
            let registry = weighted_suite_by_name(name).unwrap();
            let mut lanes = WeightedLanes::new();
            lanes.fill_from_outcomes(&outcomes);
            let mut by_lane = vec![f64::NAN; len];
            let mut by_batch = vec![f64::NAN; len];
            for (ename, estimator) in registry.iter() {
                estimator.estimate_lanes(&lanes, &mut by_lane);
                estimator.estimate_batch(&outcomes, &mut by_batch);
                for (k, o) in outcomes.iter().enumerate() {
                    let single = estimator.estimate(o);
                    prop_assert_eq!(
                        by_lane[k].to_bits(), single.to_bits(),
                        "{}::{} lanes vs scalar at k={} len={}", name, ename, k, len
                    );
                    prop_assert_eq!(
                        by_lane[k].to_bits(), by_batch[k].to_bits(),
                        "{}::{} lanes vs batch at k={} len={}", name, ename, k, len
                    );
                }
            }
        }
    }

    /// Seed assignments are deterministic and respect coordination.
    #[test]
    fn seed_assignment_properties(salt in 0u64..10_000, key in 0u64..1_000_000, inst in 0u64..8) {
        let shared = SeedAssignment::shared(salt);
        let indep = SeedAssignment::independent_known(salt);
        prop_assert_eq!(shared.seed(key, inst), shared.seed(key, inst + 1));
        prop_assert_eq!(indep.seed(key, inst), indep.seed(key, inst));
        let u = indep.seed(key, inst);
        prop_assert!(u > 0.0 && u < 1.0);
    }
}
