//! Property test for estimate-cache invalidation correctness.
//!
//! The engine caches served reports keyed by
//! `(sketch, estimator, statistic, entry fingerprint)`.  The property: no
//! matter how a sketch's name is bound and re-bound — wire ingest into a
//! fresh name, then any number of `LoadSnapshot` re-binds of that same
//! name to *different* entry configurations — every served estimate is
//! bit-identical to a fresh in-process [`Pipeline`] run against the
//! currently-bound configuration.  A stale cached report surviving a
//! re-bind would fail the equality immediately, because re-binding
//! changes `trials`/`base_salt` and therefore the report's contents.

use std::sync::Arc;

use proptest::prelude::*;

use partial_info_estimators::core::suite::max_oblivious_suite;
use partial_info_estimators::datagen::{dataset_records, paper_example};
use partial_info_estimators::{CatalogEntry, Pipeline, PipelineReport, Scheme, Statistic};
use pie_serve::{IngestRecord, ServeClient, Server, SketchConfig};

fn expected(p: f64, trials: u64, base_salt: u64) -> PipelineReport {
    Pipeline::new()
        .dataset(Arc::new(paper_example().take_instances(2)))
        .scheme(Scheme::oblivious(p))
        .estimators(max_oblivious_suite(p, p))
        .statistic(Statistic::max_dominance())
        .trials(trials)
        .base_salt(base_salt)
        .run()
        .expect("in-process reference run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn served_estimates_track_every_rebind(
        trials in 3u64..9,
        base_salt in 0u64..1000,
        p_index in 0usize..3,
        split in 1usize..6,
        rebinds in 1usize..4,
    ) {
        let p = [0.3, 0.5, 0.7][p_index];
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let dir = std::env::temp_dir().join(format!(
            "pie-cache-inval-{}-{trials}-{base_salt}-{p_index}-{split}-{rebinds}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        // Bind "subject" over the wire: split the records across two
        // batches, finalize, and check the first served estimate.
        let config = SketchConfig {
            scheme: Scheme::oblivious(p),
            shards: 2,
            trials,
            base_salt,
        };
        let records: Vec<IngestRecord> = dataset_records(&paper_example().take_instances(2))
            .map(|r| IngestRecord {
                instance: r.instance,
                key: r.key,
                value: r.value,
            })
            .collect();
        let cut = split.min(records.len() - 1);
        let mut client = ServeClient::connect(addr).unwrap();
        client
            .ingest_batch("subject", config, records[..cut].to_vec(), false)
            .unwrap();
        let ack = client
            .ingest_batch("subject", config, records[cut..].to_vec(), true)
            .unwrap();
        prop_assert!(ack.ready);
        let got = client
            .estimate("subject", "max_oblivious", "max_dominance")
            .unwrap();
        prop_assert_eq!(&got, &expected(p, trials, base_salt));

        // Ask again: answered from the cache, still bit-identical.
        let got = client
            .estimate("subject", "max_oblivious", "max_dominance")
            .unwrap();
        prop_assert_eq!(&got, &expected(p, trials, base_salt));
        let stats = client.stats().unwrap();
        prop_assert_eq!(stats.cache.hits, 1);

        // Re-bind the SAME name to entries with shifted salt and trial
        // count; each re-bind must immediately change what is served.
        for round in 1..=rebinds as u64 {
            let salt = base_salt + round;
            let entry = CatalogEntry::build(
                Arc::new(paper_example().take_instances(2)),
                Scheme::oblivious(p),
                2,
                trials + round,
                salt,
            )
            .unwrap();
            let path = dir.join(format!("rebind-{round}.pies"));
            entry.save(&path).unwrap();
            client
                .load_snapshot("subject", path.to_str().unwrap())
                .unwrap();
            let got = client
                .estimate("subject", "max_oblivious", "max_dominance")
                .unwrap();
            prop_assert_eq!(&got, &expected(p, trials + round, salt));
        }

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
