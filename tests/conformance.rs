//! Tier-2 statistical conformance suite: the paper's headline claims,
//! asserted mechanically via `pie-testkit`.
//!
//! Two claim families are covered, on the Figure 1 (weight-oblivious,
//! `p₁ = p₂ = 1/2`) and Figure 3 (PPS with known seeds) workloads plus the
//! Figure 7 traffic aggregate:
//!
//! * **Unbiasedness** — every estimator the suites register has a
//!   Monte-Carlo mean within a `z`-standard-error confidence interval of
//!   the exact value, across a sweep of independent base salts;
//! * **Variance ordering** — the order-optimal estimators dominate
//!   Horvitz–Thompson (`U ≤ L ≤ HT` where the paper orders all three — for
//!   `max` at `min/max ≤ 1/2`; `L ≤ U ≤ HT` on the Boolean-`OR` side —
//!   each within an explicit Monte-Carlo margin, never by lucky seed).
//!
//! The tests are `#[ignore]` by default because they burn real Monte-Carlo
//! budget (tier-2); CI runs them explicitly with `cargo test --release
//! --test conformance -- --ignored`, and so can you.  Thread count comes
//! from `PIE_THREADS` via the trial engine and never changes any asserted
//! number.

use partial_info_estimators::analysis::{
    evaluate_oblivious_family, evaluate_pps_family, Evaluation,
};
use partial_info_estimators::core::functions::{boolean_or, maximum};
use partial_info_estimators::core::suite::{
    max_oblivious_suite, max_oblivious_uniform_suite, max_weighted_suite, or_oblivious_suite,
    or_weighted_suite,
};
use partial_info_estimators::datagen::{generate_two_hours, TrafficConfig};
use partial_info_estimators::{Pipeline, Scheme, Statistic};
use pie_testkit::{assert_variance_ordering, check_unbiased, ConformanceFailure, SeedSweep};

/// `z` multiplier for per-estimator confidence intervals: two-sided tail
/// mass ≈ 6·10⁻⁵ per check under the CLT normal approximation.
const Z: f64 = 4.0;

/// Minimum fraction of sweep salts on which every estimator of a family
/// must pass its CI check (the slack absorbs the intervals' designed-in
/// tail mass — systematic bias fails *every* salt, not one in eight).
const SWEEP_PASS_FRACTION: f64 = 0.85;

/// Relative Monte-Carlo margin for variance-ordering assertions.
const ORDERING_MARGIN: f64 = 0.05;

/// Sweeps `salts` base salts; on each, evaluates a family and requires
/// every estimator's mean inside its `Z`-interval.
fn sweep_family_unbiased(
    salts: u64,
    base_salt: u64,
    mut family: impl FnMut(u64) -> Vec<(String, Evaluation)>,
) {
    let sweep = SeedSweep::new(base_salt, salts);
    sweep
        .check(SWEEP_PASS_FRACTION, |salt| {
            for (name, eval) in family(salt) {
                check_unbiased(&name, &eval, Z)?;
            }
            Ok(())
        })
        .unwrap_or_else(|failure| panic!("{failure}"));
}

/// Looks up one estimator's variance in a family evaluation.
fn variance_of(family: &[(String, Evaluation)], name: &str) -> f64 {
    family
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("estimator {name} missing from family"))
        .1
        .variance
}

#[test]
#[ignore = "tier-2 statistical conformance; run with -- --ignored"]
fn max_oblivious_family_is_unbiased_on_fig1_workload() {
    // Figure 1: v = [1, ratio], p₁ = p₂ = 1/2, across the ratio axis.
    for (i, ratio) in [0.1, 0.5, 0.9].into_iter().enumerate() {
        sweep_family_unbiased(8, 0x0F16_0001 + i as u64, |salt| {
            evaluate_oblivious_family(
                &max_oblivious_suite(0.5, 0.5),
                maximum,
                &[1.0, ratio],
                &[0.5, 0.5],
                40_000,
                salt,
            )
        });
    }
}

#[test]
#[ignore = "tier-2 statistical conformance; run with -- --ignored"]
fn or_oblivious_family_is_unbiased_on_fig1_workload() {
    sweep_family_unbiased(8, 0x0F16_0002, |salt| {
        evaluate_oblivious_family(
            &or_oblivious_suite(0.5, 0.5),
            boolean_or,
            &[1.0, 1.0],
            &[0.5, 0.5],
            40_000,
            salt,
        )
    });
    // One-sided presence (only instance 1 holds the key) stresses the
    // asymmetric outcomes.
    sweep_family_unbiased(8, 0x0F16_0003, |salt| {
        evaluate_oblivious_family(
            &or_oblivious_suite(0.5, 0.5),
            boolean_or,
            &[1.0, 0.0],
            &[0.5, 0.5],
            40_000,
            salt,
        )
    });
}

#[test]
#[ignore = "tier-2 statistical conformance; run with -- --ignored"]
fn uniform_max_family_is_unbiased_beyond_two_instances() {
    sweep_family_unbiased(8, 0x0F16_0004, |salt| {
        evaluate_oblivious_family(
            &max_oblivious_uniform_suite(4, 0.3),
            maximum,
            &[4.0, 1.5, 3.0, 0.5],
            &[0.3, 0.3, 0.3, 0.3],
            40_000,
            salt,
        )
    });
}

#[test]
#[ignore = "tier-2 statistical conformance; run with -- --ignored"]
fn weighted_families_are_unbiased_on_fig3_workload() {
    // Figure 3: PPS with known seeds, τ* = 10 per instance.  Values both
    // far below threshold and straddling it.
    for (i, values) in [[5.0, 2.0], [9.0, 8.5], [12.0, 0.5]]
        .into_iter()
        .enumerate()
    {
        sweep_family_unbiased(8, 0x0F36_0001 + i as u64, |salt| {
            evaluate_pps_family(
                &max_weighted_suite(),
                maximum,
                &values,
                &[10.0, 10.0],
                40_000,
                salt,
            )
        });
    }
    // The known-seed OR estimators require binary data (Section 5.1's
    // information-preserving reduction), so the OR workload is 0/1-valued
    // with τ* = 10 (inclusion probability 1/10 per present key).
    for (i, values) in [[1.0, 1.0], [1.0, 0.0]].into_iter().enumerate() {
        sweep_family_unbiased(8, 0x0F36_0010 + i as u64, |salt| {
            evaluate_pps_family(
                &or_weighted_suite(),
                boolean_or,
                &values,
                &[10.0, 10.0],
                40_000,
                salt,
            )
        });
    }
}

#[test]
#[ignore = "tier-2 statistical conformance; run with -- --ignored"]
fn max_oblivious_variance_ordering_u_l_ht() {
    // The paper's ordering for max at p = 1/2: U is order-optimal on the
    // lower range (min/max ≤ 1/2), L always dominates HT.  Exact values at
    // ratio 0.3: var U = 0.58, var L ≈ 0.769, var HT = 3.
    for ratio in [0.1, 0.3, 0.5] {
        let family = evaluate_oblivious_family(
            &max_oblivious_suite(0.5, 0.5),
            maximum,
            &[1.0, ratio],
            &[0.5, 0.5],
            200_000,
            0xA11CE,
        );
        assert_variance_ordering(
            &[
                ("max_u_2", variance_of(&family, "max_u_2")),
                ("max_l_2", variance_of(&family, "max_l_2")),
                ("max_ht_oblivious", variance_of(&family, "max_ht_oblivious")),
            ],
            ORDERING_MARGIN,
        );
    }
    // Above the crossover the order between L and U flips; both must still
    // dominate HT.
    for ratio in [0.7, 1.0] {
        let family = evaluate_oblivious_family(
            &max_oblivious_suite(0.5, 0.5),
            maximum,
            &[1.0, ratio],
            &[0.5, 0.5],
            200_000,
            0xA11CF,
        );
        assert_variance_ordering(
            &[
                ("max_l_2", variance_of(&family, "max_l_2")),
                ("max_ht_oblivious", variance_of(&family, "max_ht_oblivious")),
            ],
            ORDERING_MARGIN,
        );
        assert_variance_ordering(
            &[
                ("max_u_2", variance_of(&family, "max_u_2")),
                ("max_ht_oblivious", variance_of(&family, "max_ht_oblivious")),
            ],
            ORDERING_MARGIN,
        );
    }
}

#[test]
#[ignore = "tier-2 statistical conformance; run with -- --ignored"]
fn or_oblivious_variance_ordering_l_u_ht() {
    // On the Boolean-OR side L is the dominant order-optimal estimator
    // (exact at p = 1/2, v = [1,1]: var L = 1/3, var U = 1, var HT = 3).
    let family = evaluate_oblivious_family(
        &or_oblivious_suite(0.5, 0.5),
        boolean_or,
        &[1.0, 1.0],
        &[0.5, 0.5],
        200_000,
        0xA11D0,
    );
    assert_variance_ordering(
        &[
            ("or_l_2", variance_of(&family, "or_l_2")),
            ("or_u_2", variance_of(&family, "or_u_2")),
            ("or_ht_oblivious", variance_of(&family, "or_ht_oblivious")),
        ],
        ORDERING_MARGIN,
    );
}

#[test]
#[ignore = "tier-2 statistical conformance; run with -- --ignored"]
fn pps_variance_ordering_l_ht_on_fig3_workload() {
    for values in [[5.0, 2.0], [9.0, 8.5]] {
        let family = evaluate_pps_family(
            &max_weighted_suite(),
            maximum,
            &values,
            &[10.0, 10.0],
            200_000,
            0xA11D1,
        );
        assert_variance_ordering(
            &[
                ("max_l_pps_2", variance_of(&family, "max_l_pps_2")),
                ("max_ht_pps", variance_of(&family, "max_ht_pps")),
            ],
            ORDERING_MARGIN,
        );
    }
}

#[test]
#[ignore = "tier-2 statistical conformance; run with -- --ignored"]
fn traffic_aggregate_is_unbiased_and_l_dominates_ht() {
    // Figure 7's regime: max-dominance over two hours of heavy-tailed
    // traffic, estimated from PPS samples through the full pipeline.
    let data = std::sync::Arc::new(generate_two_hours(&TrafficConfig::small(31)));
    let sweep = SeedSweep::new(0x0F70_0001, 3);
    let mut l_variances = Vec::new();
    let mut ht_variances = Vec::new();
    sweep
        .check(1.0, |salt| {
            let report = Pipeline::new()
                .dataset(std::sync::Arc::clone(&data))
                .scheme(Scheme::pps(150.0))
                .estimators(max_weighted_suite())
                .statistic(Statistic::max_dominance())
                .trials(150)
                .base_salt(salt)
                .run()
                .expect("pipeline runs");
            for e in &report.estimators {
                // Aggregates over ~thousands of keys concentrate hard; z=5
                // keeps the sweep's combined false-failure rate negligible
                // while still catching percent-level bias.
                check_unbiased(&e.name, &e.evaluation, 5.0)?;
            }
            let l = report.get("max_l_pps_2").expect("L ran").variance;
            let ht = report.get("max_ht_pps").expect("HT ran").variance;
            l_variances.push(l);
            ht_variances.push(ht);
            if l > ht {
                return Err(ConformanceFailure::Misordered {
                    smaller_name: "max_l_pps_2".into(),
                    smaller: l,
                    larger_name: "max_ht_pps".into(),
                    larger: ht,
                    rel_margin: 0.0,
                });
            }
            Ok(())
        })
        .unwrap_or_else(|failure| panic!("{failure}"));
    // Across the sweep, L's average variance dominates HT's by a clear
    // factor (the paper reports ≈2.45–2.7× on the traffic workload).
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let gain = mean(&ht_variances) / mean(&l_variances);
    assert!(
        gain > 1.5,
        "expected a clear variance gain of L over HT, measured {gain:.2}x"
    );
}
