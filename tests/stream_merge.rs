//! Merge-equivalence and streaming-vs-batch properties of the unified
//! `SamplingScheme` / `Sketch` API.
//!
//! The contract under test, for every scheme family:
//!
//! * **Merge equivalence** — ingesting a key-partitioned stream into
//!   per-shard sketches and merging is equivalent to ingesting the
//!   concatenated stream into one sketch: *bit-identical* for the
//!   hash-seeded schemes (oblivious Poisson, PPS Poisson, bottom-k over PPS
//!   and EXP ranks), *distribution-identical* for VarOpt (fresh eviction
//!   randomness per sketch).
//! * **Streaming = batch** — a sketch's `finalize` equals the legacy batch
//!   `sample()` wrapper on the materialized instance.
//! * **Pipeline invariance** — `StreamPipeline` reproduces the batch
//!   `Pipeline` report bit for bit at any shard count.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use partial_info_estimators::core::suite::{max_weighted_suite, or_oblivious_suite};
use partial_info_estimators::datagen::{generate_two_hours, shard_of, TrafficConfig};
use partial_info_estimators::sampling::{
    merge_tree, sample_all, BottomKSampler, ExpRanks, Instance, InstanceSample, Key,
    ObliviousPoissonSampler, PpsPoissonSampler, PpsRanks, SamplingScheme, SeedAssignment, Sketch,
    VarOptSampler, VarOptScheme,
};
use partial_info_estimators::{Pipeline, Scheme, Statistic, StreamPipeline};

/// A deterministic heavy-tailed weight for key `k` (so property cases only
/// need to draw key counts and salts).
fn weight_of(k: Key) -> f64 {
    0.25 + (k % 13) as f64 + if k.is_multiple_of(17) { 50.0 } else { 0.0 }
}

fn records(n: u64) -> Vec<(Key, f64)> {
    // Sparse keys so shards receive uneven, realistic populations.
    (0..n).map(|i| (i * 7 + (i % 5), weight_of(i))).collect()
}

fn instance_of(recs: &[(Key, f64)]) -> Instance {
    Instance::from_pairs(recs.iter().copied())
}

/// Ingests `recs` into one sketch (single stream) and into `shards`
/// key-partitioned sketches merged by tree, returning both samples.
fn single_vs_sharded<S: SamplingScheme>(
    scheme: &S,
    recs: &[(Key, f64)],
    shards: usize,
    seeds: &SeedAssignment,
    instance_index: u64,
) -> (InstanceSample, InstanceSample) {
    let mut single = scheme.sketch(seeds, instance_index);
    for &(k, v) in recs {
        single.ingest(k, v);
    }
    let mut pool: Vec<S::Sketch> = (0..shards)
        .map(|s| scheme.sketch_for_shard(seeds, instance_index, s as u64))
        .collect();
    for &(k, v) in recs {
        pool[shard_of(k, shards)].ingest(k, v);
    }
    merge_tree(&mut pool);
    (single.finalize(), pool[0].finalize())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pps_merge_is_bit_identical_and_matches_batch(
        n in 50u64..400,
        salt in 0u64..1_000,
        shards in 1usize..7,
        tau in 2u64..40,
    ) {
        let recs = records(n);
        let seeds = SeedAssignment::independent_known(salt);
        let scheme = PpsPoissonSampler::new(tau as f64);
        let (single, sharded) = single_vs_sharded(&scheme, &recs, shards, &seeds, 1);
        prop_assert_eq!(&single, &sharded);
        let batch = scheme.sample(&instance_of(&recs), &seeds, 1);
        prop_assert_eq!(&single, &batch);
    }

    #[test]
    fn oblivious_merge_is_bit_identical_and_matches_batch(
        n in 50u64..400,
        salt in 0u64..1_000,
        shards in 1usize..7,
    ) {
        let recs = records(n);
        let seeds = SeedAssignment::independent_known(salt);
        let scheme = ObliviousPoissonSampler::new(0.4);
        let (single, sharded) = single_vs_sharded(&scheme, &recs, shards, &seeds, 2);
        prop_assert_eq!(&single, &sharded);
        // The record keys are the universe here.
        let universe: Vec<Key> = recs.iter().map(|&(k, _)| k).collect();
        let batch = scheme.sample(&instance_of(&recs), &universe, &seeds, 2);
        prop_assert_eq!(&single, &batch);
    }

    #[test]
    fn bottomk_merge_is_bit_identical_and_matches_batch(
        n in 50u64..400,
        salt in 0u64..1_000,
        shards in 1usize..7,
        k in 5usize..60,
    ) {
        let recs = records(n);
        let seeds = SeedAssignment::independent_known(salt);

        let pps = BottomKSampler::new(PpsRanks, k);
        let (single, sharded) = single_vs_sharded(&pps, &recs, shards, &seeds, 0);
        prop_assert_eq!(&single, &sharded);
        prop_assert_eq!(&single, &pps.sample(&instance_of(&recs), &seeds, 0));

        let exp = BottomKSampler::new(ExpRanks, k);
        let (single, sharded) = single_vs_sharded(&exp, &recs, shards, &seeds, 0);
        prop_assert_eq!(&single, &sharded);
        prop_assert_eq!(&single, &exp.sample(&instance_of(&recs), &seeds, 0));
    }

    #[test]
    fn varopt_single_stream_matches_batch_given_shared_seed(
        n in 80u64..300,
        salt in 0u64..1_000,
        k in 8usize..48,
    ) {
        // The single-stream sketch and the legacy batch sampler consume the
        // same derived RNG stream in the same (key-ascending) order, so their
        // samples are bit-identical.
        let recs = records(n);
        let seeds = SeedAssignment::independent_known(salt);
        let samples = sample_all(&VarOptScheme::new(k), &[instance_of(&recs)], &seeds);
        let mut rng = StdRng::seed_from_u64(seeds.rng_seed(0, 0));
        let batch = VarOptSampler::sample(k, &instance_of(&recs), &mut rng, 0);
        prop_assert_eq!(&samples[0], &batch);
    }

    #[test]
    fn varopt_merge_preserves_structural_invariants(
        n in 150u64..400,
        salt in 0u64..1_000,
        shards in 2usize..6,
    ) {
        let k = 32;
        let mut recs = records(n);
        recs.push((1_000_003, 10_000.0)); // a key no threshold can evict
        let seeds = SeedAssignment::independent_known(salt);
        let (single, sharded) = single_vs_sharded(&VarOptScheme::new(k), &recs, shards, &seeds, 0);
        prop_assert_eq!(single.len(), k);
        prop_assert_eq!(sharded.len(), k);
        prop_assert!(sharded.contains(1_000_003), "heavy key must survive merge");
        prop_assert!(sharded.threshold >= 0.0 && sharded.threshold.is_finite());
        // Every surviving entry's HT contribution is the adjusted weight
        // max(v, τ) — finite and positive.
        for (_, v) in sharded.iter() {
            prop_assert!(v > 0.0 && v.is_finite());
        }
    }
}

/// Sharded, merged VarOpt estimation stays unbiased: the threshold merge
/// re-enters small items at their adjusted weight, so the merged sample's
/// Horvitz–Thompson subset-sum over the *union* stream is unbiased even
/// though eviction randomness differs per shard.
#[test]
fn varopt_merge_total_estimate_is_unbiased() {
    let recs = records(250);
    let truth: f64 = recs.iter().map(|&(_, v)| v).sum();
    let shards = 4;
    let scheme = VarOptScheme::new(40);
    let reps = 600u64;
    let mut sum = 0.0;
    for salt in 0..reps {
        let seeds = SeedAssignment::independent_known(salt);
        let mut pool: Vec<_> = (0..shards)
            .map(|s| scheme.sketch_for_shard(&seeds, 0, s as u64))
            .collect();
        for &(k, v) in &recs {
            pool[shard_of(k, shards)].ingest(k, v);
        }
        merge_tree(&mut pool);
        sum += pool[0].finalize().ht_subset_sum(|_| true);
    }
    let mean = sum / reps as f64;
    let rel_err = (mean - truth).abs() / truth;
    assert!(
        rel_err < 0.05,
        "relative bias {rel_err} (mean {mean}, truth {truth})"
    );
}

/// Acceptance check: streaming and batch estimator outputs are bit-identical
/// on shared seeds, for both outcome regimes and for sharded ingest.
#[test]
fn stream_pipeline_reports_are_bit_identical_to_batch() {
    let data = Arc::new(generate_two_hours(&TrafficConfig::small(9)));
    let batch = Pipeline::new()
        .dataset(Arc::clone(&data))
        .scheme(Scheme::pps(120.0))
        .estimators(max_weighted_suite())
        .statistic(Statistic::max_dominance())
        .trials(20)
        .base_salt(5)
        .run()
        .unwrap();
    for shards in [1, 4, 6] {
        let streamed = StreamPipeline::new()
            .dataset(Arc::clone(&data))
            .scheme(Scheme::pps(120.0))
            .shards(shards)
            .estimators(max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .trials(20)
            .base_salt(5)
            .run()
            .unwrap();
        assert_eq!(streamed, batch, "pps regime, {shards} shards");
    }

    let small = Arc::new(partial_info_estimators::datagen::generate_set_pair(
        &partial_info_estimators::datagen::SetPairConfig::new(300, 0.5),
    ));
    let batch = Pipeline::new()
        .dataset(Arc::clone(&small))
        .scheme(Scheme::oblivious(0.4))
        .estimators(or_oblivious_suite(0.4, 0.4))
        .statistic(Statistic::distinct_count())
        .trials(50)
        .run()
        .unwrap();
    for shards in [1, 4] {
        let streamed = StreamPipeline::new()
            .dataset(Arc::clone(&small))
            .scheme(Scheme::oblivious(0.4))
            .shards(shards)
            .estimators(or_oblivious_suite(0.4, 0.4))
            .statistic(Statistic::distinct_count())
            .trials(50)
            .run()
            .unwrap();
        assert_eq!(streamed, batch, "oblivious regime, {shards} shards");
    }
}

/// Interleaving ingestion with merges (partial merges of a long stream)
/// also reproduces the single-stream sample: merge is associative over
/// stream prefixes for hash-seeded schemes.
#[test]
fn incremental_merge_of_stream_segments_is_exact() {
    let recs = records(500);
    let seeds = SeedAssignment::independent_known(77);
    let scheme = BottomKSampler::new(ExpRanks, 25);
    let mut single = scheme.sketch(&seeds, 0);
    for &(k, v) in &recs {
        single.ingest(k, v);
    }
    // Segment the stream (a time partition is fine for merge: the contract
    // only requires each *key* to stay within one logical shard, and the
    // segments are disjoint in keys because `records` emits unique keys).
    let mut acc = scheme.sketch(&seeds, 0);
    for segment in recs.chunks(123) {
        let mut part = scheme.sketch(&seeds, 0);
        for &(k, v) in segment {
            part.ingest(k, v);
        }
        acc.merge(&mut part);
    }
    assert_eq!(acc.finalize(), single.finalize());
}
