//! # pie-analysis — evaluation harness for partial-information estimators
//!
//! Tools for measuring estimator quality against ground truth:
//!
//! * [`stats`] — streaming summary statistics (mean, variance, CV,
//!   confidence intervals), mergeable for parallel reduction;
//! * [`trial`] — the parallel, deterministic Monte-Carlo trial engine
//!   ([`TrialRunner`]): chunked trial execution across OS threads with a
//!   canonical [`RunningStats::merge`] reduction order, so reports are
//!   bit-identical at any thread count;
//! * [`empirical`] — Monte-Carlo evaluation of per-key estimators and of
//!   whole sum aggregates over sampled datasets, running on the trial
//!   engine;
//! * [`exact`] — quadrature-based exact expectation/variance for two-instance
//!   PPS sampling with known seeds (noise-free Figure 3 / Figure 4 curves);
//! * [`report`] — aligned text tables, data series, and CSV output used by the
//!   figure-regeneration binaries in `pie-bench`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod empirical;
pub mod exact;
pub mod report;
pub mod stats;
pub mod trial;

pub use empirical::{
    all_keys, evaluate_aggregate_pps, evaluate_oblivious, evaluate_oblivious_family,
    evaluate_pps_family, evaluate_pps_known_seeds, Evaluation, SIMULATION_BATCH,
};
pub use exact::{pps2_expectation, pps2_mean_variance, pps2_outcome, pps2_variance};
pub use report::{format_sig, Series, Table};
pub use stats::{relative_error, RunningStats};
pub use trial::{parse_threads, ChunkTiming, Recorder, TrialRunner, THREADS_ENV, TRIAL_CHUNK};
