//! # pie-analysis — evaluation harness for partial-information estimators
//!
//! Tools for measuring estimator quality against ground truth:
//!
//! * [`stats`] — streaming summary statistics (mean, variance, CV,
//!   confidence intervals);
//! * [`empirical`] — Monte-Carlo evaluation of per-key estimators and of
//!   whole sum aggregates over sampled datasets;
//! * [`exact`] — quadrature-based exact expectation/variance for two-instance
//!   PPS sampling with known seeds (noise-free Figure 3 / Figure 4 curves);
//! * [`report`] — aligned text tables, data series, and CSV output used by the
//!   figure-regeneration binaries in `pie-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod empirical;
pub mod exact;
pub mod report;
pub mod stats;

pub use empirical::{
    all_keys, evaluate_aggregate_pps, evaluate_oblivious, evaluate_oblivious_family,
    evaluate_pps_family, evaluate_pps_known_seeds, Evaluation, SIMULATION_BATCH,
};
pub use exact::{pps2_expectation, pps2_mean_variance, pps2_outcome, pps2_variance};
pub use report::{format_sig, Series, Table};
pub use stats::{relative_error, RunningStats};
