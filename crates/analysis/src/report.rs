//! Plain-text tables and data series for the figure-regeneration harnesses.
//!
//! Every experiment binary prints its rows through these helpers so that the
//! output is uniform, alignable, and easy to diff against EXPERIMENTS.md.
//! Series can also be emitted as CSV for external plotting.

use std::fmt::Write as _;

use serde::Serialize;

/// A simple aligned text table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    /// Panics if the number of cells does not match the number of headers.
    pub fn push_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of floating-point values formatted with `precision`
    /// significant digits.
    pub fn push_values(&mut self, values: &[f64], precision: usize) {
        let cells: Vec<String> = values.iter().map(|v| format_sig(*v, precision)).collect();
        self.push_row(&cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders the table as CSV (headers plus rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// A named (x, y) series, one per curve of a figure.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Series {
    /// Curve label (e.g. `"var[L]/var[HT]"`).
    pub label: String,
    /// The x/y points in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Renders the series as `x y` lines preceded by a `# label` comment
    /// (gnuplot-friendly, matching how the paper's figures are described).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.label);
        for (x, y) in &self.points {
            let _ = writeln!(out, "{x:.6e} {y:.6e}");
        }
        out
    }
}

/// Formats a float with a fixed number of significant digits, using plain
/// decimal notation for moderate magnitudes and scientific notation otherwise.
#[must_use]
pub fn format_sig(value: f64, digits: usize) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    let magnitude = value.abs().log10();
    if (-3.0..6.0).contains(&magnitude) {
        let decimals = (digits as i32 - 1 - magnitude.floor() as i32).max(0) as usize;
        format!("{value:.decimals$}")
    } else {
        format!("{value:.prec$e}", prec = digits.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push_row(&["1".to_string(), "10.5".to_string()]);
        t.push_values(&[2.0, 0.333_333], 3);
        let text = t.render();
        assert!(text.contains("# demo"));
        assert!(text.contains("value"));
        assert!(text.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn table_csv_roundtrip_structure() {
        let mut t = Table::new("csv", &["a", "b"]);
        t.push_values(&[1.0, 2.0], 3);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("a,b"));
        assert_eq!(lines.next(), Some("1.00,2.00"));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_length_rejected() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.push_row(&["only one".to_string()]);
    }

    #[test]
    fn series_renders_points() {
        let mut s = Series::new("curve");
        s.push(0.1, 2.0);
        s.push(0.2, 3.0);
        let text = s.render();
        assert!(text.starts_with("# curve"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn format_sig_switches_notation() {
        assert_eq!(format_sig(0.0, 3), "0");
        assert_eq!(format_sig(1.0, 3), "1.00");
        assert_eq!(format_sig(123.456, 4), "123.5");
        assert!(format_sig(1.0e9, 3).contains('e'));
        assert!(format_sig(1.0e-5, 3).contains('e'));
    }
}
