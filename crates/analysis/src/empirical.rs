//! Monte-Carlo evaluation of estimators, batch-first.
//!
//! For the sampling regimes whose outcome space is continuous (PPS with known
//! seeds) or whose aggregates span many keys, variance is measured by
//! repeated simulation.  Each evaluation reports bias, variance, and the
//! coefficient of variation of the estimator, together with the ground truth.
//!
//! Simulation is organized around *batches of outcomes*: trials are
//! materialized into a reusable buffer of outcomes (entry vectors are
//! rewritten in place, so the hot loop performs no per-outcome allocation),
//! and estimators consume each batch through
//! [`Estimator::estimate_batch`].  The `*_family` evaluators amortize
//! outcome generation further by running a whole [`EstimatorRegistry`] over
//! each batch in one pass — the shape benches and figure harnesses want.
//!
//! All evaluators execute on the parallel trial engine
//! ([`crate::trial::TrialRunner`]): the trial range is partitioned into
//! chunks of [`SIMULATION_BATCH`] trials, each chunk draws its outcomes from
//! an RNG seeded by `(seed, chunk index)`, and per-chunk statistics are
//! merged in chunk order.  Results therefore depend only on `(inputs,
//! trials, seed)` — never on the worker-thread count, which follows
//! `PIE_THREADS` / the machine's available parallelism.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pie_core::{Estimator, EstimatorRegistry};
use pie_datagen::Dataset;
use pie_sampling::{
    hash, sample_all, Key, ObliviousEntry, ObliviousOutcome, PpsPoissonSampler, SeedAssignment,
    WeightedEntry, WeightedOutcome,
};

use crate::stats::RunningStats;
use crate::trial::TrialRunner;

/// Number of simulated outcomes materialized per batch by the Monte-Carlo
/// evaluators — also their trial-engine reduction chunk width, so each chunk
/// is generated as exactly one batch.  Large enough to amortize per-batch
/// dispatch, small enough to stay cache-resident.
pub const SIMULATION_BATCH: usize = 256;

/// A dynamically dispatched, thread-shareable estimator reference — the lane
/// unit of the batched Monte-Carlo evaluators.
type DynLane<'a, O> = &'a (dyn Estimator<O> + Send + Sync);

/// The result of evaluating an estimator against a known ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// The true value of the estimated quantity.
    pub truth: f64,
    /// Mean of the estimates.
    pub mean: f64,
    /// Variance of the estimates (population variance over the trials).
    pub variance: f64,
    /// `|mean − truth| / truth` (absolute bias when the truth is 0).
    pub relative_bias: f64,
    /// Number of trials.
    pub trials: u64,
}

impl Evaluation {
    /// Summarizes accumulated trial statistics against a known ground truth.
    #[must_use]
    pub fn from_stats(stats: &RunningStats, truth: f64) -> Self {
        Self {
            truth,
            mean: stats.mean(),
            variance: stats.variance(),
            relative_bias: crate::stats::relative_error(stats.mean(), truth),
            trials: stats.count(),
        }
    }

    /// The normalized variance `Var / truth²` (∞ if the truth is 0 and the
    /// variance is positive), the quantity plotted in Figure 7.
    #[must_use]
    pub fn normalized_variance(&self) -> f64 {
        if self.truth == 0.0 {
            if self.variance == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.variance / (self.truth * self.truth)
        }
    }

    /// The coefficient of variation of the estimator around the truth.
    #[must_use]
    pub fn cv(&self) -> f64 {
        self.normalized_variance().sqrt()
    }
}

impl pie_store::Encode for Evaluation {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), pie_store::StoreError> {
        self.truth.encode(w)?;
        self.mean.encode(w)?;
        self.variance.encode(w)?;
        self.relative_bias.encode(w)?;
        self.trials.encode(w)
    }
}

impl pie_store::Decode for Evaluation {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, pie_store::StoreError> {
        Ok(Self {
            truth: f64::decode(r)?,
            mean: f64::decode(r)?,
            variance: f64::decode(r)?,
            relative_bias: f64::decode(r)?,
            trials: u64::decode(r)?,
        })
    }
}

/// The evaluators' trial engine: thread count from the environment, chunk
/// width pinned to [`SIMULATION_BATCH`] so every chunk is one batch.
fn evaluator_runner() -> TrialRunner {
    TrialRunner::new().chunk_trials(SIMULATION_BATCH as u64)
}

/// The RNG seed of one reduction chunk: a pure function of the evaluation
/// seed and the chunk index, so chunk outcomes are reproducible whichever
/// worker generates them.
fn chunk_rng(seed: u64, chunk_start: u64) -> StdRng {
    StdRng::seed_from_u64(hash::combine(seed, chunk_start / SIMULATION_BATCH as u64))
}

/// Runs every estimator lane over `trials` simulated weight-oblivious
/// outcomes of one key's value vector, one reduction chunk per outcome
/// batch, returning the merged per-lane statistics.
///
/// The batch buffer is allocated once per worker thread; each trial rewrites
/// an outcome's entries in place, so the per-trial hot loop is
/// allocation-free.
fn oblivious_lanes(
    estimators: &[DynLane<'_, ObliviousOutcome>],
    values: &[f64],
    probs: &[f64],
    trials: u64,
    seed: u64,
) -> Vec<RunningStats> {
    assert_eq!(
        values.len(),
        probs.len(),
        "values and probabilities must align"
    );
    let template: Vec<ObliviousEntry> = probs
        .iter()
        .map(|&p| ObliviousEntry { p, value: None })
        .collect();
    let batch = SIMULATION_BATCH.min(trials.max(1) as usize);
    evaluator_runner().run_chunks(
        trials,
        estimators.len(),
        |_worker| {
            let buffer: Vec<ObliviousOutcome> = (0..batch)
                .map(|_| ObliviousOutcome::new(template.clone()))
                .collect();
            (buffer, vec![0.0; batch])
        },
        |(buffer, out), range, stats| {
            let mut rng = chunk_rng(seed, range.start);
            let n = (range.end - range.start) as usize;
            for outcome in &mut buffer[..n] {
                for (entry, &v) in outcome.entries.iter_mut().zip(values) {
                    entry.value = (rng.gen::<f64>() < entry.p).then_some(v);
                }
            }
            for (estimator, stat) in estimators.iter().zip(stats) {
                estimator.estimate_batch(&buffer[..n], &mut out[..n]);
                stat.extend(out[..n].iter().copied());
            }
        },
    )
}

/// The weighted (PPS, known seeds) counterpart of [`oblivious_lanes`].
fn pps_lanes(
    estimators: &[DynLane<'_, WeightedOutcome>],
    values: &[f64],
    tau_stars: &[f64],
    trials: u64,
    seed: u64,
) -> Vec<RunningStats> {
    assert_eq!(
        values.len(),
        tau_stars.len(),
        "values and thresholds must align"
    );
    let template: Vec<WeightedEntry> = tau_stars
        .iter()
        .map(|&tau| WeightedEntry {
            tau_star: tau,
            seed: Some(0.5),
            value: None,
        })
        .collect();
    let batch = SIMULATION_BATCH.min(trials.max(1) as usize);
    evaluator_runner().run_chunks(
        trials,
        estimators.len(),
        |_worker| {
            let buffer: Vec<WeightedOutcome> = (0..batch)
                .map(|_| WeightedOutcome::new(template.clone()))
                .collect();
            (buffer, vec![0.0; batch])
        },
        |(buffer, out), range, stats| {
            let mut rng = chunk_rng(seed, range.start);
            let n = (range.end - range.start) as usize;
            for outcome in &mut buffer[..n] {
                for (entry, &v) in outcome.entries.iter_mut().zip(values) {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    entry.seed = Some(u);
                    entry.value = (v > 0.0 && v >= u * entry.tau_star).then_some(v);
                }
            }
            for (estimator, stat) in estimators.iter().zip(stats) {
                estimator.estimate_batch(&buffer[..n], &mut out[..n]);
                stat.extend(out[..n].iter().copied());
            }
        },
    )
}

/// Evaluates an estimator of `f(v)` under weight-oblivious Poisson sampling of
/// a single key's value vector, by Monte-Carlo simulation through the batched
/// hot path ([`Estimator::estimate_batch`]).
///
/// (The exact enumeration in `pie_core::variance` is preferable for small `r`;
/// this exists for cross-checking and for large `r`.)
pub fn evaluate_oblivious<E, F>(
    estimator: &E,
    f: F,
    values: &[f64],
    probs: &[f64],
    trials: u64,
    seed: u64,
) -> Evaluation
where
    E: Estimator<ObliviousOutcome> + Send + Sync,
    F: Fn(&[f64]) -> f64,
{
    let lanes = oblivious_lanes(&[estimator], values, probs, trials, seed);
    Evaluation::from_stats(&lanes[0], f(values))
}

/// Evaluates a whole registry of weight-oblivious estimators against the same
/// simulated outcomes, generating each outcome batch once and running every
/// estimator over it through [`Estimator::estimate_batch`].
///
/// Each registered estimator is one lane of the shared trial run, so its
/// evaluation is bit-identical to an [`evaluate_oblivious`] call with the
/// same inputs (the workspace property tests assert this).
///
/// Returns `(name, evaluation)` pairs in registration order.
pub fn evaluate_oblivious_family<F>(
    registry: &EstimatorRegistry<ObliviousOutcome>,
    f: F,
    values: &[f64],
    probs: &[f64],
    trials: u64,
    seed: u64,
) -> Vec<(String, Evaluation)>
where
    F: Fn(&[f64]) -> f64,
{
    let estimators: Vec<DynLane<'_, ObliviousOutcome>> = registry.iter().map(|(_, e)| e).collect();
    let lanes = oblivious_lanes(&estimators, values, probs, trials, seed);
    let truth = f(values);
    registry
        .names()
        .zip(&lanes)
        .map(|(name, stat)| (name.to_string(), Evaluation::from_stats(stat, truth)))
        .collect()
}

/// Evaluates an estimator of `f(v)` under weighted PPS Poisson sampling with
/// known seeds of a single key's value vector, by Monte-Carlo simulation
/// through the batched hot path.
pub fn evaluate_pps_known_seeds<E, F>(
    estimator: &E,
    f: F,
    values: &[f64],
    tau_stars: &[f64],
    trials: u64,
    seed: u64,
) -> Evaluation
where
    E: Estimator<WeightedOutcome> + Send + Sync,
    F: Fn(&[f64]) -> f64,
{
    let lanes = pps_lanes(&[estimator], values, tau_stars, trials, seed);
    Evaluation::from_stats(&lanes[0], f(values))
}

/// Evaluates a whole registry of weighted (known-seed) estimators against the
/// same simulated outcomes; the PPS counterpart of
/// [`evaluate_oblivious_family`].
pub fn evaluate_pps_family<F>(
    registry: &EstimatorRegistry<WeightedOutcome>,
    f: F,
    values: &[f64],
    tau_stars: &[f64],
    trials: u64,
    seed: u64,
) -> Vec<(String, Evaluation)>
where
    F: Fn(&[f64]) -> f64,
{
    let estimators: Vec<DynLane<'_, WeightedOutcome>> = registry.iter().map(|(_, e)| e).collect();
    let lanes = pps_lanes(&estimators, values, tau_stars, trials, seed);
    let truth = f(values);
    registry
        .names()
        .zip(&lanes)
        .map(|(name, stat)| (name.to_string(), Evaluation::from_stats(stat, truth)))
        .collect()
}

/// Evaluates a *sum-aggregate* estimator over PPS samples of a whole dataset,
/// repeating the sampling `trials` times with different hash salts.
///
/// `aggregate` receives the per-instance samples and the seed assignment and
/// returns the aggregate estimate (e.g.
/// [`pie_core::aggregate::max_dominance_l`]); `truth` is the exact aggregate.
///
/// Trial `t` samples with salt `base_salt + t`, so the trial loop runs on
/// the parallel engine ([`crate::trial::TrialRunner`]) without changing any
/// trial's sample.
pub fn evaluate_aggregate_pps<A>(
    dataset: &Dataset,
    tau_star: f64,
    truth: f64,
    trials: u64,
    base_salt: u64,
    aggregate: A,
) -> Evaluation
where
    A: Fn(&[pie_sampling::InstanceSample], &SeedAssignment) -> f64 + Sync,
{
    let stats = TrialRunner::new().run(
        trials,
        1,
        |_worker| PpsPoissonSampler::new(tau_star),
        |sampler, t, stats| {
            let seeds = SeedAssignment::independent_known(base_salt.wrapping_add(t));
            let samples = sample_all(sampler, dataset.instances(), &seeds);
            stats[0].push(aggregate(&samples, &seeds));
        },
    );
    Evaluation::from_stats(&stats[0], truth)
}

/// Convenience selection predicate accepting every key.
#[must_use]
pub fn all_keys(_key: Key) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_core::aggregate::{max_dominance_ht, max_dominance_l, true_max_dominance};
    use pie_core::functions::maximum;
    use pie_core::oblivious::{MaxHtOblivious, MaxL2};
    use pie_core::variance::exact_oblivious_variance;
    use pie_core::weighted::MaxLPps2;
    use pie_datagen::{generate_two_hours, TrafficConfig};

    #[test]
    fn family_evaluation_matches_individual_evaluation() {
        let v = [4.0, 1.5];
        let p = [0.5, 0.3];
        let registry = pie_core::suite::max_oblivious_suite(0.5, 0.3);
        let family = evaluate_oblivious_family(&registry, maximum, &v, &p, 20_000, 5);
        assert_eq!(family.len(), registry.len());
        // The family evaluator replays the same seeded outcome stream as the
        // single-estimator evaluator, so the evaluations agree bit-for-bit.
        for (name, eval) in &family {
            let single =
                evaluate_oblivious(&registry.get(name).unwrap(), maximum, &v, &p, 20_000, 5);
            assert_eq!(eval.mean, single.mean, "{name} mean");
            assert_eq!(eval.variance, single.variance, "{name} variance");
        }
    }

    #[test]
    fn pps_family_evaluation_matches_individual_evaluation() {
        let v = [5.0, 2.0];
        let tau = [10.0, 10.0];
        let registry = pie_core::suite::max_weighted_suite();
        let family = evaluate_pps_family(&registry, maximum, &v, &tau, 20_000, 6);
        for (name, eval) in &family {
            let single = evaluate_pps_known_seeds(
                &registry.get(name).unwrap(),
                maximum,
                &v,
                &tau,
                20_000,
                6,
            );
            assert_eq!(eval.mean, single.mean, "{name} mean");
            assert_eq!(eval.variance, single.variance, "{name} variance");
        }
    }

    #[test]
    fn oblivious_monte_carlo_matches_exact_enumeration() {
        let v = [4.0, 1.5];
        let p = [0.5, 0.3];
        let est = MaxL2::new(0.5, 0.3);
        let eval = evaluate_oblivious(&est, maximum, &v, &p, 200_000, 1);
        assert!(eval.relative_bias < 0.02, "bias {}", eval.relative_bias);
        let exact = exact_oblivious_variance(&est, &v, &p);
        assert!(
            (eval.variance - exact).abs() / exact < 0.05,
            "MC variance {} vs exact {exact}",
            eval.variance
        );
    }

    #[test]
    fn pps_monte_carlo_is_unbiased_for_max_l() {
        let eval =
            evaluate_pps_known_seeds(&MaxLPps2, maximum, &[5.0, 2.0], &[10.0, 10.0], 300_000, 2);
        assert!(eval.relative_bias < 0.02, "bias {}", eval.relative_bias);
        assert!(eval.variance > 0.0);
        assert!(eval.cv() > 0.0);
    }

    #[test]
    fn aggregate_evaluation_reports_shrinking_cv() {
        // The aggregate CV should be far below the per-key CV (error averages out).
        let ds = generate_two_hours(&TrafficConfig::small(3));
        let truth = true_max_dominance(ds.instances(), |_| true);
        let eval = evaluate_aggregate_pps(&ds, 200.0, truth, 60, 7, |samples, seeds| {
            max_dominance_l(samples, seeds, all_keys)
        });
        assert!(eval.relative_bias < 0.05, "bias {}", eval.relative_bias);
        assert!(eval.cv() < 0.2, "cv {}", eval.cv());
    }

    #[test]
    fn aggregate_l_beats_ht_on_traffic_data() {
        let ds = generate_two_hours(&TrafficConfig::small(5));
        let truth = true_max_dominance(ds.instances(), |_| true);
        let l = evaluate_aggregate_pps(&ds, 300.0, truth, 80, 11, |s, seeds| {
            max_dominance_l(s, seeds, all_keys)
        });
        let ht = evaluate_aggregate_pps(&ds, 300.0, truth, 80, 11, |s, seeds| {
            max_dominance_ht(s, seeds, all_keys)
        });
        assert!(
            l.variance < ht.variance,
            "L variance {} should be below HT variance {}",
            l.variance,
            ht.variance
        );
    }

    #[test]
    fn evaluation_normalized_variance_and_cv() {
        let eval = Evaluation {
            truth: 10.0,
            mean: 10.0,
            variance: 4.0,
            relative_bias: 0.0,
            trials: 100,
        };
        assert!((eval.normalized_variance() - 0.04).abs() < 1e-12);
        assert!((eval.cv() - 0.2).abs() < 1e-12);
        let zero = Evaluation {
            truth: 0.0,
            mean: 0.0,
            variance: 0.0,
            relative_bias: 0.0,
            trials: 1,
        };
        assert_eq!(zero.normalized_variance(), 0.0);
    }

    #[test]
    fn ht_oblivious_evaluation_matches_formula() {
        let v = [3.0, 3.0];
        let p = [0.4, 0.4];
        let eval = evaluate_oblivious(&MaxHtOblivious, maximum, &v, &p, 300_000, 9);
        let expected = pie_core::variance::full_sample_ht_variance(3.0, &p);
        assert!(
            (eval.variance - expected).abs() / expected < 0.05,
            "variance {} vs {expected}",
            eval.variance
        );
    }
}
