//! Monte-Carlo evaluation of estimators, batch-first.
//!
//! For the sampling regimes whose outcome space is continuous (PPS with known
//! seeds) or whose aggregates span many keys, variance is measured by
//! repeated simulation.  Each evaluation reports bias, variance, and the
//! coefficient of variation of the estimator, together with the ground truth.
//!
//! Simulation is organized around *batches of outcomes*: trials are
//! materialized into a reusable buffer of outcomes (entry vectors are
//! rewritten in place, so the hot loop performs no per-outcome allocation),
//! and estimators consume each batch through
//! [`Estimator::estimate_batch`].  The `*_family` evaluators amortize
//! outcome generation further by running a whole [`EstimatorRegistry`] over
//! each batch in one pass — the shape benches and figure harnesses want.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pie_core::{Estimator, EstimatorRegistry};
use pie_datagen::Dataset;
use pie_sampling::{
    sample_all, Key, ObliviousEntry, ObliviousOutcome, PpsPoissonSampler, SeedAssignment,
    WeightedEntry, WeightedOutcome,
};

use crate::stats::RunningStats;

/// Number of simulated outcomes materialized per batch by the Monte-Carlo
/// evaluators.  Large enough to amortize per-batch dispatch, small enough to
/// stay cache-resident.
pub const SIMULATION_BATCH: usize = 256;

/// The result of evaluating an estimator against a known ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// The true value of the estimated quantity.
    pub truth: f64,
    /// Mean of the estimates.
    pub mean: f64,
    /// Variance of the estimates (population variance over the trials).
    pub variance: f64,
    /// `|mean − truth| / truth` (absolute bias when the truth is 0).
    pub relative_bias: f64,
    /// Number of trials.
    pub trials: u64,
}

impl Evaluation {
    /// Summarizes accumulated trial statistics against a known ground truth.
    #[must_use]
    pub fn from_stats(stats: &RunningStats, truth: f64) -> Self {
        Self {
            truth,
            mean: stats.mean(),
            variance: stats.variance(),
            relative_bias: crate::stats::relative_error(stats.mean(), truth),
            trials: stats.count(),
        }
    }

    /// The normalized variance `Var / truth²` (∞ if the truth is 0 and the
    /// variance is positive), the quantity plotted in Figure 7.
    #[must_use]
    pub fn normalized_variance(&self) -> f64 {
        if self.truth == 0.0 {
            if self.variance == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.variance / (self.truth * self.truth)
        }
    }

    /// The coefficient of variation of the estimator around the truth.
    #[must_use]
    pub fn cv(&self) -> f64 {
        self.normalized_variance().sqrt()
    }
}

/// Simulates `trials` weight-oblivious outcomes of one key's value vector and
/// feeds them to `consume` in reusable batches of at most
/// [`SIMULATION_BATCH`].
///
/// The batch buffer is allocated once; each trial rewrites an outcome's
/// entries in place, so the per-trial hot loop is allocation-free.
fn for_each_oblivious_batch<C>(
    values: &[f64],
    probs: &[f64],
    trials: u64,
    seed: u64,
    mut consume: C,
) where
    C: FnMut(&[ObliviousOutcome]),
{
    assert_eq!(
        values.len(),
        probs.len(),
        "values and probabilities must align"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let batch = SIMULATION_BATCH.min(trials.max(1) as usize);
    let template: Vec<ObliviousEntry> = probs
        .iter()
        .map(|&p| ObliviousEntry { p, value: None })
        .collect();
    let mut buffer: Vec<ObliviousOutcome> = (0..batch)
        .map(|_| ObliviousOutcome::new(template.clone()))
        .collect();
    let mut remaining = trials;
    while remaining > 0 {
        let n = batch.min(usize::try_from(remaining).unwrap_or(batch));
        for outcome in &mut buffer[..n] {
            for (entry, &v) in outcome.entries.iter_mut().zip(values) {
                entry.value = (rng.gen::<f64>() < entry.p).then_some(v);
            }
        }
        consume(&buffer[..n]);
        remaining -= n as u64;
    }
}

/// Simulates `trials` weighted (PPS, known seeds) outcomes of one key's value
/// vector and feeds them to `consume` in reusable batches, like
/// [`for_each_oblivious_batch`].
fn for_each_pps_batch<C>(values: &[f64], tau_stars: &[f64], trials: u64, seed: u64, mut consume: C)
where
    C: FnMut(&[WeightedOutcome]),
{
    assert_eq!(
        values.len(),
        tau_stars.len(),
        "values and thresholds must align"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let batch = SIMULATION_BATCH.min(trials.max(1) as usize);
    let template: Vec<WeightedEntry> = tau_stars
        .iter()
        .map(|&tau| WeightedEntry {
            tau_star: tau,
            seed: Some(0.5),
            value: None,
        })
        .collect();
    let mut buffer: Vec<WeightedOutcome> = (0..batch)
        .map(|_| WeightedOutcome::new(template.clone()))
        .collect();
    let mut remaining = trials;
    while remaining > 0 {
        let n = batch.min(usize::try_from(remaining).unwrap_or(batch));
        for outcome in &mut buffer[..n] {
            for (entry, &v) in outcome.entries.iter_mut().zip(values) {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                entry.seed = Some(u);
                entry.value = (v > 0.0 && v >= u * entry.tau_star).then_some(v);
            }
        }
        consume(&buffer[..n]);
        remaining -= n as u64;
    }
}

/// Evaluates an estimator of `f(v)` under weight-oblivious Poisson sampling of
/// a single key's value vector, by Monte-Carlo simulation through the batched
/// hot path ([`Estimator::estimate_batch`]).
///
/// (The exact enumeration in `pie_core::variance` is preferable for small `r`;
/// this exists for cross-checking and for large `r`.)
pub fn evaluate_oblivious<E, F>(
    estimator: &E,
    f: F,
    values: &[f64],
    probs: &[f64],
    trials: u64,
    seed: u64,
) -> Evaluation
where
    E: Estimator<ObliviousOutcome>,
    F: Fn(&[f64]) -> f64,
{
    let mut stats = RunningStats::new();
    let mut out = vec![0.0; SIMULATION_BATCH.min(trials.max(1) as usize)];
    for_each_oblivious_batch(values, probs, trials, seed, |outcomes| {
        let out = &mut out[..outcomes.len()];
        estimator.estimate_batch(outcomes, out);
        stats.extend(out.iter().copied());
    });
    Evaluation::from_stats(&stats, f(values))
}

/// Evaluates a whole registry of weight-oblivious estimators against the same
/// simulated outcomes, generating each outcome batch once and running every
/// estimator over it through [`Estimator::estimate_batch`].
///
/// Returns `(name, evaluation)` pairs in registration order.
pub fn evaluate_oblivious_family<F>(
    registry: &EstimatorRegistry<ObliviousOutcome>,
    f: F,
    values: &[f64],
    probs: &[f64],
    trials: u64,
    seed: u64,
) -> Vec<(String, Evaluation)>
where
    F: Fn(&[f64]) -> f64,
{
    let mut stats: Vec<RunningStats> = (0..registry.len()).map(|_| RunningStats::new()).collect();
    let mut out = vec![0.0; SIMULATION_BATCH.min(trials.max(1) as usize)];
    for_each_oblivious_batch(values, probs, trials, seed, |outcomes| {
        let out = &mut out[..outcomes.len()];
        for ((_, estimator), stat) in registry.iter().zip(&mut stats) {
            estimator.estimate_batch(outcomes, out);
            stat.extend(out.iter().copied());
        }
    });
    let truth = f(values);
    registry
        .names()
        .zip(&stats)
        .map(|(name, stat)| (name.to_string(), Evaluation::from_stats(stat, truth)))
        .collect()
}

/// Evaluates an estimator of `f(v)` under weighted PPS Poisson sampling with
/// known seeds of a single key's value vector, by Monte-Carlo simulation
/// through the batched hot path.
pub fn evaluate_pps_known_seeds<E, F>(
    estimator: &E,
    f: F,
    values: &[f64],
    tau_stars: &[f64],
    trials: u64,
    seed: u64,
) -> Evaluation
where
    E: Estimator<WeightedOutcome>,
    F: Fn(&[f64]) -> f64,
{
    let mut stats = RunningStats::new();
    let mut out = vec![0.0; SIMULATION_BATCH.min(trials.max(1) as usize)];
    for_each_pps_batch(values, tau_stars, trials, seed, |outcomes| {
        let out = &mut out[..outcomes.len()];
        estimator.estimate_batch(outcomes, out);
        stats.extend(out.iter().copied());
    });
    Evaluation::from_stats(&stats, f(values))
}

/// Evaluates a whole registry of weighted (known-seed) estimators against the
/// same simulated outcomes; the PPS counterpart of
/// [`evaluate_oblivious_family`].
pub fn evaluate_pps_family<F>(
    registry: &EstimatorRegistry<WeightedOutcome>,
    f: F,
    values: &[f64],
    tau_stars: &[f64],
    trials: u64,
    seed: u64,
) -> Vec<(String, Evaluation)>
where
    F: Fn(&[f64]) -> f64,
{
    let mut stats: Vec<RunningStats> = (0..registry.len()).map(|_| RunningStats::new()).collect();
    let mut out = vec![0.0; SIMULATION_BATCH.min(trials.max(1) as usize)];
    for_each_pps_batch(values, tau_stars, trials, seed, |outcomes| {
        let out = &mut out[..outcomes.len()];
        for ((_, estimator), stat) in registry.iter().zip(&mut stats) {
            estimator.estimate_batch(outcomes, out);
            stat.extend(out.iter().copied());
        }
    });
    let truth = f(values);
    registry
        .names()
        .zip(&stats)
        .map(|(name, stat)| (name.to_string(), Evaluation::from_stats(stat, truth)))
        .collect()
}

/// Evaluates a *sum-aggregate* estimator over PPS samples of a whole dataset,
/// repeating the sampling `trials` times with different hash salts.
///
/// `aggregate` receives the per-instance samples and the seed assignment and
/// returns the aggregate estimate (e.g.
/// [`pie_core::aggregate::max_dominance_l`]); `truth` is the exact aggregate.
pub fn evaluate_aggregate_pps<A>(
    dataset: &Dataset,
    tau_star: f64,
    truth: f64,
    trials: u64,
    base_salt: u64,
    aggregate: A,
) -> Evaluation
where
    A: Fn(&[pie_sampling::InstanceSample], &SeedAssignment) -> f64,
{
    let mut stats = RunningStats::new();
    for t in 0..trials {
        let seeds = SeedAssignment::independent_known(base_salt.wrapping_add(t));
        let samples = sample_all(
            &PpsPoissonSampler::new(tau_star),
            dataset.instances(),
            &seeds,
        );
        stats.push(aggregate(&samples, &seeds));
    }
    Evaluation::from_stats(&stats, truth)
}

/// Convenience selection predicate accepting every key.
#[must_use]
pub fn all_keys(_key: Key) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_core::aggregate::{max_dominance_ht, max_dominance_l, true_max_dominance};
    use pie_core::functions::maximum;
    use pie_core::oblivious::{MaxHtOblivious, MaxL2};
    use pie_core::variance::exact_oblivious_variance;
    use pie_core::weighted::MaxLPps2;
    use pie_datagen::{generate_two_hours, TrafficConfig};

    #[test]
    fn family_evaluation_matches_individual_evaluation() {
        let v = [4.0, 1.5];
        let p = [0.5, 0.3];
        let registry = pie_core::suite::max_oblivious_suite(0.5, 0.3);
        let family = evaluate_oblivious_family(&registry, maximum, &v, &p, 20_000, 5);
        assert_eq!(family.len(), registry.len());
        // The family evaluator replays the same seeded outcome stream as the
        // single-estimator evaluator, so the evaluations agree bit-for-bit.
        for (name, eval) in &family {
            let single =
                evaluate_oblivious(&registry.get(name).unwrap(), maximum, &v, &p, 20_000, 5);
            assert_eq!(eval.mean, single.mean, "{name} mean");
            assert_eq!(eval.variance, single.variance, "{name} variance");
        }
    }

    #[test]
    fn pps_family_evaluation_matches_individual_evaluation() {
        let v = [5.0, 2.0];
        let tau = [10.0, 10.0];
        let registry = pie_core::suite::max_weighted_suite();
        let family = evaluate_pps_family(&registry, maximum, &v, &tau, 20_000, 6);
        for (name, eval) in &family {
            let single = evaluate_pps_known_seeds(
                &registry.get(name).unwrap(),
                maximum,
                &v,
                &tau,
                20_000,
                6,
            );
            assert_eq!(eval.mean, single.mean, "{name} mean");
            assert_eq!(eval.variance, single.variance, "{name} variance");
        }
    }

    #[test]
    fn oblivious_monte_carlo_matches_exact_enumeration() {
        let v = [4.0, 1.5];
        let p = [0.5, 0.3];
        let est = MaxL2::new(0.5, 0.3);
        let eval = evaluate_oblivious(&est, maximum, &v, &p, 200_000, 1);
        assert!(eval.relative_bias < 0.02, "bias {}", eval.relative_bias);
        let exact = exact_oblivious_variance(&est, &v, &p);
        assert!(
            (eval.variance - exact).abs() / exact < 0.05,
            "MC variance {} vs exact {exact}",
            eval.variance
        );
    }

    #[test]
    fn pps_monte_carlo_is_unbiased_for_max_l() {
        let eval =
            evaluate_pps_known_seeds(&MaxLPps2, maximum, &[5.0, 2.0], &[10.0, 10.0], 300_000, 2);
        assert!(eval.relative_bias < 0.02, "bias {}", eval.relative_bias);
        assert!(eval.variance > 0.0);
        assert!(eval.cv() > 0.0);
    }

    #[test]
    fn aggregate_evaluation_reports_shrinking_cv() {
        // The aggregate CV should be far below the per-key CV (error averages out).
        let ds = generate_two_hours(&TrafficConfig::small(3));
        let truth = true_max_dominance(ds.instances(), |_| true);
        let eval = evaluate_aggregate_pps(&ds, 200.0, truth, 60, 7, |samples, seeds| {
            max_dominance_l(samples, seeds, all_keys)
        });
        assert!(eval.relative_bias < 0.05, "bias {}", eval.relative_bias);
        assert!(eval.cv() < 0.2, "cv {}", eval.cv());
    }

    #[test]
    fn aggregate_l_beats_ht_on_traffic_data() {
        let ds = generate_two_hours(&TrafficConfig::small(5));
        let truth = true_max_dominance(ds.instances(), |_| true);
        let l = evaluate_aggregate_pps(&ds, 300.0, truth, 80, 11, |s, seeds| {
            max_dominance_l(s, seeds, all_keys)
        });
        let ht = evaluate_aggregate_pps(&ds, 300.0, truth, 80, 11, |s, seeds| {
            max_dominance_ht(s, seeds, all_keys)
        });
        assert!(
            l.variance < ht.variance,
            "L variance {} should be below HT variance {}",
            l.variance,
            ht.variance
        );
    }

    #[test]
    fn evaluation_normalized_variance_and_cv() {
        let eval = Evaluation {
            truth: 10.0,
            mean: 10.0,
            variance: 4.0,
            relative_bias: 0.0,
            trials: 100,
        };
        assert!((eval.normalized_variance() - 0.04).abs() < 1e-12);
        assert!((eval.cv() - 0.2).abs() < 1e-12);
        let zero = Evaluation {
            truth: 0.0,
            mean: 0.0,
            variance: 0.0,
            relative_bias: 0.0,
            trials: 1,
        };
        assert_eq!(zero.normalized_variance(), 0.0);
    }

    #[test]
    fn ht_oblivious_evaluation_matches_formula() {
        let v = [3.0, 3.0];
        let p = [0.4, 0.4];
        let eval = evaluate_oblivious(&MaxHtOblivious, maximum, &v, &p, 300_000, 9);
        let expected = pie_core::variance::full_sample_ht_variance(3.0, &p);
        assert!(
            (eval.variance - expected).abs() / expected < 0.05,
            "variance {} vs {expected}",
            eval.variance
        );
    }
}
