//! The parallel, deterministic Monte-Carlo trial engine.
//!
//! Every repeated-sampling experiment in this workspace — the umbrella
//! crate's `Pipeline` and `StreamPipeline`, the [`crate::empirical`]
//! evaluators, the figure harnesses — boils down to the same loop: for each
//! trial `t` in `[0, trials)`, derive that trial's randomization from `t`,
//! compute one observation per *lane* (usually one lane per estimator), and
//! accumulate the observations into per-lane [`RunningStats`].
//! [`TrialRunner`] is the single implementation of that loop, parallelized
//! across OS threads without giving up reproducibility.
//!
//! # Determinism model
//!
//! Naive parallel accumulation (each thread pushes into shared stats in
//! completion order) would make reports depend on scheduling.  The engine
//! instead fixes a *canonical reduction order* that depends only on the
//! trial count:
//!
//! 1. `[0, trials)` is partitioned into contiguous chunks of
//!    [`chunk_trials`](TrialRunner::chunk_trials) trials (default
//!    [`TRIAL_CHUNK`]).  The partition is a pure function of `trials` —
//!    **never** of the thread count.
//! 2. Each chunk is processed by exactly one worker thread (statically
//!    strided over workers), accumulating into chunk-local stats.  The
//!    per-trial body must derive all randomness from the trial index, so a
//!    chunk's accumulator is the same whichever thread computes it.
//! 3. Chunk accumulators are folded left-to-right in chunk-index order with
//!    [`RunningStats::merge`] (Chan et al. pairwise moment combination).
//!
//! Because both the partition and the fold order are fixed, the result is
//! **bit-identical at any thread count** — running with `.threads(8)`
//! reproduces the sequential `.threads(1)` report exactly, and
//! `PIE_THREADS` can be tuned per machine without invalidating pinned
//! numbers.
//!
//! # Thread-count selection
//!
//! [`TrialRunner::new`] reads the `PIE_THREADS` environment variable
//! (clamped to ≥ 1; unparsable values are ignored) and falls back to
//! [`std::thread::available_parallelism`].  Builders that embed a runner
//! (`Pipeline::threads`, `StreamPipeline::threads`) override it explicitly.
//!
//! ```
//! use pie_analysis::trial::TrialRunner;
//!
//! // Estimate the mean of a deterministic per-trial quantity on 4 threads…
//! let stats = TrialRunner::with_threads(4).run(1000, 1, |_worker| (), |(), t, lanes| {
//!     lanes[0].push((t % 10) as f64);
//! });
//! // …and the sequential run is bit-identical.
//! let seq = TrialRunner::with_threads(1).run(1000, 1, |_worker| (), |(), t, lanes| {
//!     lanes[0].push((t % 10) as f64);
//! });
//! assert_eq!(stats, seq);
//! ```

use std::fmt;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use crate::stats::RunningStats;

/// Default number of trials per reduction chunk.
///
/// Small enough that typical trial counts (a few hundred) split into enough
/// chunks to load-balance eight workers, large enough that chunk bookkeeping
/// is negligible next to per-trial sampling work.  The chunk width is part
/// of the canonical reduction order: changing it changes reports at the
/// floating-point-noise level (~ULPs), so it is fixed per call site, never
/// derived from the machine.
pub const TRIAL_CHUNK: u64 = 16;

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "PIE_THREADS";

/// The wall-clock timing of one executed reduction chunk, as delivered to a
/// [`Recorder`] hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTiming {
    /// The chunk's index in the canonical partition.
    pub chunk: u64,
    /// How many trials the chunk covered.
    pub trials: u64,
    /// Wall-clock nanoseconds the chunk body took.
    pub nanos: u64,
}

/// A per-chunk timing hook for [`TrialRunner`], **zero-cost when
/// disabled**: the default (disabled) recorder costs one `Option` check per
/// chunk — no clock reads, no allocation — and never changes results
/// (timing is observation only; the reduction order is untouched).
#[derive(Clone, Default)]
pub struct Recorder {
    hook: Option<Arc<dyn Fn(ChunkTiming) + Send + Sync>>,
}

impl Recorder {
    /// The disabled recorder (same as `Recorder::default()`).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recorder delivering every chunk's [`ChunkTiming`] to `hook`.  The
    /// hook runs on the worker thread that executed the chunk, so it must
    /// be cheap and thread-safe (an atomic add, a lock-free histogram).
    #[must_use]
    pub fn new(hook: Arc<dyn Fn(ChunkTiming) + Send + Sync>) -> Self {
        Self { hook: Some(hook) }
    }

    /// Whether a hook is installed.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.hook.is_some()
    }

    fn observe(&self, timing: ChunkTiming) {
        if let Some(hook) = &self.hook {
            hook(timing);
        }
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Parallel, deterministic executor of Monte-Carlo trial loops; see the
/// [module docs](self) for the determinism model.
#[derive(Debug, Clone)]
pub struct TrialRunner {
    threads: usize,
    chunk: u64,
    recorder: Recorder,
}

/// Runner identity is its determinism-relevant configuration (threads and
/// chunk width); the observation-only recorder never participates.
impl PartialEq for TrialRunner {
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads && self.chunk == other.chunk
    }
}

impl Eq for TrialRunner {}

impl Default for TrialRunner {
    /// Same as [`TrialRunner::new`].
    fn default() -> Self {
        Self::new()
    }
}

impl TrialRunner {
    /// Creates a runner with the environment-selected thread count
    /// (`PIE_THREADS`, else [`std::thread::available_parallelism`]) and the
    /// default chunk width [`TRIAL_CHUNK`].
    #[must_use]
    pub fn new() -> Self {
        Self {
            threads: env_threads().unwrap_or_else(available_threads),
            chunk: TRIAL_CHUNK,
            recorder: Recorder::disabled(),
        }
    }

    /// Creates a runner with an explicit thread count (clamped to ≥ 1),
    /// ignoring `PIE_THREADS`.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            chunk: TRIAL_CHUNK,
            recorder: Recorder::disabled(),
        }
    }

    /// Sets the worker-thread count (clamped to ≥ 1).  Thread count never
    /// changes results, only wall clock.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the reduction chunk width in trials (clamped to ≥ 1).
    ///
    /// The chunk width is part of the canonical reduction order, so two runs
    /// only reproduce each other bitwise when they agree on it; callers that
    /// pin reports should leave it at [`TRIAL_CHUNK`] (the trial-loop
    /// default) or [`crate::SIMULATION_BATCH`] (the evaluators' default).
    #[must_use]
    pub fn chunk_trials(mut self, chunk: u64) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The configured reduction chunk width, in trials.
    #[must_use]
    pub fn chunk_width(&self) -> u64 {
        self.chunk
    }

    /// Installs a per-chunk timing [`Recorder`].  Recording is observation
    /// only — the partition, reduction order, and results are untouched, so
    /// instrumented runs stay bit-identical to uninstrumented ones.
    #[must_use]
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs `trials` trials with `lanes` statistics lanes and a per-trial
    /// body, returning the merged per-lane statistics in the canonical
    /// reduction order.
    ///
    /// `init(worker)` builds one worker's reusable scratch state (samplers,
    /// outcome pools, buffers); it runs once per worker thread, so per-trial
    /// work can stay allocation-free.  `body(state, t, lane_stats)` computes
    /// trial `t` and pushes exactly its observations into `lane_stats`
    /// (chunk-local accumulators of length `lanes`).
    ///
    /// **Determinism contract:** `body` must derive everything it pushes
    /// from the trial index `t` alone — worker state may cache buffers but
    /// must not carry randomness across trials — and must push the same
    /// sequence of values for a given `t` on every call.  Under that
    /// contract the returned statistics are bit-identical at any thread
    /// count.
    pub fn run<S, I, B>(&self, trials: u64, lanes: usize, init: I, body: B) -> Vec<RunningStats>
    where
        S: Send,
        I: Fn(usize) -> S + Sync,
        B: Fn(&mut S, u64, &mut [RunningStats]) + Sync,
    {
        self.run_chunks(trials, lanes, init, |state, range, stats| {
            for t in range {
                body(state, t, stats);
            }
        })
    }

    /// Chunk-granular variant of [`run`](Self::run): `body` receives a whole
    /// contiguous trial range (one reduction chunk) at a time, for callers
    /// that generate trial batches in bulk (e.g. the Monte-Carlo outcome
    /// simulators).  The determinism contract is the same, applied to the
    /// chunk range: the pushed values may only depend on the trial indices
    /// covered by `range`.
    pub fn run_chunks<S, I, B>(
        &self,
        trials: u64,
        lanes: usize,
        init: I,
        body: B,
    ) -> Vec<RunningStats>
    where
        S: Send,
        I: Fn(usize) -> S + Sync,
        B: Fn(&mut S, Range<u64>, &mut [RunningStats]) + Sync,
    {
        let chunk = self.chunk;
        let num_chunks = trials.div_ceil(chunk);
        let chunk_range = move |c: u64| (c * chunk)..((c + 1) * chunk).min(trials);
        let workers = self
            .threads
            .min(usize::try_from(num_chunks).unwrap_or(usize::MAX))
            .max(1);

        // Timed execution of one chunk: the disabled recorder costs a
        // single branch, no clock reads.
        let run_chunk = |state: &mut S, c: u64, stats: &mut [RunningStats]| {
            let range = chunk_range(c);
            if self.recorder.is_enabled() {
                let trials = range.end - range.start;
                let started = Instant::now();
                body(state, range, stats);
                self.recorder.observe(ChunkTiming {
                    chunk: c,
                    trials,
                    nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                });
            } else {
                body(state, range, stats);
            }
        };

        let per_chunk: Vec<Vec<RunningStats>> = if workers == 1 {
            let mut state = init(0);
            (0..num_chunks)
                .map(|c| {
                    let mut stats = vec![RunningStats::new(); lanes];
                    run_chunk(&mut state, c, &mut stats);
                    stats
                })
                .collect()
        } else {
            // One worker per thread; worker `w` owns chunks `w, w+W, w+2W, …`
            // (static striding — assignment is deterministic, and since each
            // chunk's accumulator is a pure function of its trial range, the
            // assignment could be anything without changing results).
            let worker_outputs: Vec<Vec<(u64, Vec<RunningStats>)>> = std::thread::scope(|scope| {
                let init = &init;
                let run_chunk = &run_chunk;
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut state = init(w);
                            let mut out = Vec::new();
                            let mut c = w as u64;
                            while c < num_chunks {
                                let mut stats = vec![RunningStats::new(); lanes];
                                run_chunk(&mut state, c, &mut stats);
                                out.push((c, stats));
                                c += workers as u64;
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trial worker panicked"))
                    .collect()
            });
            let mut per_chunk = vec![Vec::new(); usize::try_from(num_chunks).expect("chunk count")];
            for worker_out in worker_outputs {
                for (c, stats) in worker_out {
                    per_chunk[usize::try_from(c).expect("chunk index")] = stats;
                }
            }
            per_chunk
        };

        // Canonical reduction: left fold in chunk-index order.  Merging into
        // empty lanes is a bitwise copy, so chunk 0 seeds the fold exactly.
        let mut merged = vec![RunningStats::new(); lanes];
        for stats in &per_chunk {
            for (lane, chunk_stat) in merged.iter_mut().zip(stats) {
                lane.merge(chunk_stat);
            }
        }
        merged
    }
}

/// Parses a `PIE_THREADS`-style value: a positive integer; `0`, empty, or
/// unparsable values are rejected (callers then fall back to the hardware
/// default).
#[must_use]
pub fn parse_threads(value: &str) -> Option<usize> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .as_deref()
        .and_then(parse_threads)
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random per-trial observation (SplitMix64-ish
    /// mix so lanes and trials decorrelate).
    fn observation(t: u64, lane: u64) -> f64 {
        let mut x = t
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(lane.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x = (x ^ (x >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    fn run_at(threads: usize, trials: u64, lanes: usize) -> Vec<RunningStats> {
        TrialRunner::with_threads(threads).run(
            trials,
            lanes,
            |_| (),
            |(), t, stats| {
                for (lane, stat) in stats.iter_mut().enumerate() {
                    stat.push(observation(t, lane as u64));
                }
            },
        )
    }

    #[test]
    fn thread_count_never_changes_results() {
        for trials in [0, 1, 15, 16, 17, 100, 333] {
            let reference = run_at(1, trials, 3);
            for threads in [2, 3, 5, 8] {
                assert_eq!(run_at(threads, trials, 3), reference, "{threads} threads");
            }
        }
    }

    #[test]
    fn engine_matches_plain_push_within_tolerance() {
        let trials = 500u64;
        let engine = run_at(4, trials, 1);
        let direct = RunningStats::from_values((0..trials).map(|t| observation(t, 0)));
        assert_eq!(engine[0].count(), direct.count());
        assert!((engine[0].mean() - direct.mean()).abs() <= 1e-12);
        assert!((engine[0].variance() - direct.variance()).abs() <= 1e-12);
        assert_eq!(engine[0].min(), direct.min());
        assert_eq!(engine[0].max(), direct.max());
    }

    #[test]
    fn worker_state_is_initialized_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let runner = TrialRunner::with_threads(3);
        let stats = runner.run(
            64,
            1,
            |_w| {
                inits.fetch_add(1, Ordering::SeqCst);
            },
            |(), t, stats| stats[0].push(t as f64),
        );
        assert_eq!(stats[0].count(), 64);
        let n = inits.load(Ordering::SeqCst);
        assert!(n <= 3, "at most one init per worker, got {n}");
    }

    #[test]
    fn zero_trials_yields_empty_lanes() {
        let stats = run_at(4, 0, 2);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].count(), 0);
    }

    #[test]
    fn builders_clamp_and_report() {
        let r = TrialRunner::with_threads(0).chunk_trials(0);
        assert_eq!(r.thread_count(), 1);
        assert_eq!(r.chunk_width(), 1);
        let r = TrialRunner::with_threads(6).chunk_trials(128);
        assert_eq!(r.thread_count(), 6);
        assert_eq!(r.chunk_width(), 128);
    }

    #[test]
    fn recorder_sees_every_chunk_and_never_changes_results() {
        use std::sync::Mutex;
        let timings: Arc<Mutex<Vec<ChunkTiming>>> = Arc::new(Mutex::new(Vec::new()));
        let hook = {
            let timings = Arc::clone(&timings);
            Arc::new(move |t: ChunkTiming| timings.lock().unwrap().push(t))
        };
        let recorded = TrialRunner::with_threads(3)
            .recorder(Recorder::new(hook))
            .run(
                100,
                2,
                |_| (),
                |(), t, stats| {
                    for (lane, stat) in stats.iter_mut().enumerate() {
                        stat.push(observation(t, lane as u64));
                    }
                },
            );
        assert_eq!(
            recorded,
            run_at(3, 100, 2),
            "recording must not change results"
        );
        let mut timings = timings.lock().unwrap().clone();
        timings.sort_by_key(|t| t.chunk);
        // 100 trials / TRIAL_CHUNK(16) = 7 chunks, the last covering 4.
        assert_eq!(timings.len(), 7);
        assert_eq!(timings.iter().map(|t| t.trials).sum::<u64>(), 100);
        assert_eq!(timings[6].trials, 4);
        // Equality ignores the recorder: an instrumented runner is the same
        // runner.
        assert_eq!(
            TrialRunner::with_threads(3).recorder(Recorder::disabled()),
            TrialRunner::with_threads(3)
        );
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 12 "), Some(12));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("eight"), None);
    }
}
