//! Streaming summary statistics used throughout the evaluation harness.

use pie_store::StoreError;

/// Online mean / variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds another accumulator into this one (Chan et al. pairwise moment
    /// combination), as if every observation pushed into `other` had been
    /// pushed into `self` after the observations it already holds.
    ///
    /// This is the reduction primitive behind the parallel trial engine
    /// ([`crate::trial::TrialRunner`]): per-chunk accumulators are combined
    /// in a fixed chunk order, so the merged result is **bit-identical no
    /// matter how many threads computed the chunks**.  Relative to pushing
    /// every observation into a single accumulator, the merged moments agree
    /// mathematically and to within a few ULPs numerically (the pairwise
    /// combination is at least as stable as a long push chain); `count`,
    /// `min`, and `max` are always exact.
    ///
    /// Merging with an empty accumulator is an exact identity in both
    /// directions: it leaves every field bitwise unchanged (or bitwise
    /// copies `other` when `self` is empty).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = self.n + other.n;
        let nf = n as f64;
        let delta = other.mean - self.mean;
        // Welford-style combined moments: stable even when one side is much
        // larger than the other (delta is scaled, never the raw sums).
        self.mean += delta * (n2 / nf);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / nf);
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Adds every observation of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Builds an accumulator from an iterator of observations.
    #[must_use]
    pub fn from_values<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`; 0 when fewer than 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (divides by `n − 1`).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation `σ/μ` (0 when the mean is 0).
    #[must_use]
    pub fn cv(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean().abs()
        }
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sample_variance() / self.n as f64).sqrt()
        }
    }

    /// A normal-approximation confidence interval for the mean at ±`z` standard
    /// errors (`z = 1.96` for 95%).
    #[must_use]
    pub fn mean_confidence_interval(&self, z: f64) -> (f64, f64) {
        let half = z * self.standard_error();
        (self.mean() - half, self.mean() + half)
    }

    /// Smallest observation (∞ when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl pie_store::Encode for RunningStats {
    /// Writes the raw moment state — count, mean, `M2`, min, max — with the
    /// floats as IEEE-754 bit patterns, so a decoded accumulator is *bitwise*
    /// equal to the encoded one (merging it later gives identical results).
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        self.n.encode(w)?;
        self.mean.encode(w)?;
        self.m2.encode(w)?;
        self.min.encode(w)?;
        self.max.encode(w)
    }
}

impl pie_store::Decode for RunningStats {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        Ok(Self {
            n: u64::decode(r)?,
            mean: f64::decode(r)?,
            m2: f64::decode(r)?,
            min: f64::decode(r)?,
            max: f64::decode(r)?,
        })
    }
}

/// Relative error `|estimate − truth| / truth` (absolute error when the truth
/// is zero).
#[must_use]
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        estimate.abs()
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_direct_computation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = RunningStats::from_values(xs.iter().copied());
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let empty = RunningStats::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.variance(), 0.0);
        assert_eq!(empty.cv(), 0.0);
        let mut one = RunningStats::new();
        one.push(7.0);
        assert_eq!(one.mean(), 7.0);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn cv_and_confidence_interval() {
        let s = RunningStats::from_values((1..=1000).map(|i| f64::from(i % 10)));
        let cv = s.cv();
        assert!(cv > 0.0);
        let (lo, hi) = s.mean_confidence_interval(1.96);
        assert!(lo < s.mean() && s.mean() < hi);
        assert!((hi - lo) < 0.5);
    }

    #[test]
    fn welford_is_numerically_stable_for_large_offsets() {
        let offset = 1e9;
        let s = RunningStats::from_values((0..1000).map(|i| offset + f64::from(i % 7)));
        assert!((s.mean() - (offset + 3.0)).abs() < 1.0);
        assert!(s.variance() > 3.0 && s.variance() < 5.0);
    }

    #[test]
    fn merge_with_empty_is_bitwise_identity() {
        let s = RunningStats::from_values([1.0, 2.5, -3.0]);
        let mut left = s;
        left.merge(&RunningStats::new());
        assert_eq!(left, s);
        let mut right = RunningStats::new();
        right.merge(&s);
        assert_eq!(right, s);
        let mut both = RunningStats::new();
        both.merge(&RunningStats::new());
        assert_eq!(both, RunningStats::new());
    }

    #[test]
    fn merge_of_split_matches_sequential_push() {
        let xs: Vec<f64> = (0..1000).map(|i| f64::from(i % 23) * 1.7 - 5.0).collect();
        let sequential = RunningStats::from_values(xs.iter().copied());
        for split in [1, 137, 500, 999] {
            let mut merged = RunningStats::from_values(xs[..split].iter().copied());
            merged.merge(&RunningStats::from_values(xs[split..].iter().copied()));
            assert_eq!(merged.count(), sequential.count());
            assert!((merged.mean() - sequential.mean()).abs() <= 1e-12 * sequential.mean().abs());
            assert!(
                (merged.variance() - sequential.variance()).abs()
                    <= 1e-9 * sequential.variance().abs()
            );
            assert_eq!(merged.min(), sequential.min());
            assert_eq!(merged.max(), sequential.max());
        }
    }

    #[test]
    fn merge_is_stable_for_large_offsets() {
        let offset = 1e12;
        let a = RunningStats::from_values((0..500).map(|i| offset + f64::from(i % 7)));
        let b = RunningStats::from_values((500..1000).map(|i| offset + f64::from(i % 7)));
        let mut merged = a;
        merged.merge(&b);
        let sequential = RunningStats::from_values((0..1000).map(|i| offset + f64::from(i % 7)));
        assert!((merged.mean() - sequential.mean()).abs() < 1e-3);
        assert!((merged.variance() - sequential.variance()).abs() < 1e-3);
    }

    #[test]
    fn relative_error_handles_zero_truth() {
        assert_eq!(relative_error(5.0, 0.0), 5.0);
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
    }
}
