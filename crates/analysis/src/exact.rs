//! Exact (quadrature-based) evaluation of two-instance PPS estimators.
//!
//! For weighted PPS sampling with known seeds the outcome of a key is a
//! deterministic function of the seed pair `(u_1, u_2) ∈ [0,1]²`, so exact
//! expectations reduce to integrals over the unit square.  The integrand is
//! smooth within each of the four sampling regions (both sampled / only one /
//! neither), so the square is split at the inclusion probabilities
//! `q_i = min(1, v_i/τ*_i)` and each region is integrated with composite
//! Simpson quadrature.
//!
//! This is what the Figure 3 / Figure 4 harness uses to produce noise-free
//! variance curves, and what the test-suite uses to verify the closed-form
//! `max^(L)` estimator is exactly unbiased.

use pie_core::Estimator;
use pie_sampling::{WeightedEntry, WeightedOutcome};

/// Number of Simpson panels per one-dimensional region integral.
const PANELS_1D: usize = 4_096;
/// Number of Simpson panels per axis for the "neither sampled" region.  Every
/// estimator in this workspace returns 0 on empty outcomes (nonnegative
/// unbiased estimators of functions that vanish on the zero vector must), so
/// this region only needs enough resolution to catch a non-zero integrand at
/// all; it is kept small to keep per-key evaluation cheap.
const PANELS_2D: usize = 32;

fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, panels: usize) -> f64 {
    if b <= a {
        return 0.0;
    }
    let n = panels * 2; // Simpson needs an even number of intervals
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + h * i as f64;
        sum += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    sum * h / 3.0
}

/// Integrates a region `[lo, hi]` of one seed axis, splitting at the supplied
/// breakpoints (where the integrand may have kinks, e.g. the point at which an
/// unsampled entry's upper bound stops being capped by the sampled value) and
/// switching to a logarithmic substitution near `lo = 0`, where the `max^(L)`
/// integrand has an integrable logarithmic singularity.
fn integrate_axis<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    breakpoints: &[f64],
    panels: usize,
) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    let mut cuts: Vec<f64> = breakpoints
        .iter()
        .copied()
        .filter(|&b| b > lo && b < hi)
        .collect();
    cuts.push(hi);
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    cuts.dedup();
    let mut total = 0.0;
    let mut start = lo;
    for &end in &cuts {
        if start <= 1e-12 {
            // Logarithmic substitution u = e^t on (ε, end]; the mass below ε is
            // negligible for integrands growing at most logarithmically.
            let eps = 1e-12f64;
            if end > eps {
                total += simpson(
                    |t| {
                        let u = t.exp();
                        f(u) * u
                    },
                    eps.ln(),
                    end.ln(),
                    panels,
                );
            }
        } else {
            total += simpson(&f, start, end, panels);
        }
        start = end;
    }
    total
}

fn simpson2<F: Fn(f64, f64) -> f64>(
    f: F,
    a1: f64,
    b1: f64,
    a2: f64,
    b2: f64,
    panels: usize,
) -> f64 {
    if b1 <= a1 || b2 <= a2 {
        return 0.0;
    }
    simpson(|x| simpson(|y| f(x, y), a2, b2, panels), a1, b1, panels)
}

/// Builds the outcome seen for data `(v1, v2)` with thresholds `(tau1, tau2)`
/// and seed pair `(u1, u2)` under PPS sampling with known seeds.
#[must_use]
pub fn pps2_outcome(v: [f64; 2], tau: [f64; 2], u: [f64; 2]) -> WeightedOutcome {
    let sampled = [
        v[0] > 0.0 && v[0] >= u[0] * tau[0],
        v[1] > 0.0 && v[1] >= u[1] * tau[1],
    ];
    outcome_with_pattern(v, tau, u, sampled)
}

/// Builds the outcome with an explicitly given sampled/unsampled pattern.
///
/// Used by the region-split quadrature so that nodes landing exactly on a
/// region boundary are attributed to the region being integrated rather than
/// to whichever side the floating-point comparison happens to pick.
fn outcome_with_pattern(
    v: [f64; 2],
    tau: [f64; 2],
    u: [f64; 2],
    sampled: [bool; 2],
) -> WeightedOutcome {
    let entries = (0..2)
        .map(|i| {
            // Quadrature nodes may land exactly on the boundary of the unit
            // interval; nudge them inside, which does not change the outcome.
            let seed = u[i].clamp(1e-15, 1.0 - 1e-15);
            WeightedEntry {
                tau_star: tau[i],
                seed: Some(seed),
                value: if sampled[i] { Some(v[i]) } else { None },
            }
        })
        .collect();
    WeightedOutcome::new(entries)
}

/// The expectation of `transform(estimate)` over the seed distribution, for a
/// two-instance PPS sample of data `v` with thresholds `tau`, using the
/// default quadrature resolution.
pub fn pps2_expectation_of<E, T>(estimator: &E, v: [f64; 2], tau: [f64; 2], transform: T) -> f64
where
    E: Estimator<WeightedOutcome>,
    T: Fn(f64) -> f64,
{
    pps2_expectation_of_with_panels(estimator, v, tau, transform, PANELS_1D)
}

/// Like [`pps2_expectation_of`], but with an explicit number of Simpson panels
/// per one-dimensional region (trade accuracy for speed when evaluating many
/// keys, as the Figure 7 harness does).
pub fn pps2_expectation_of_with_panels<E, T>(
    estimator: &E,
    v: [f64; 2],
    tau: [f64; 2],
    transform: T,
    panels: usize,
) -> f64
where
    E: Estimator<WeightedOutcome>,
    T: Fn(f64) -> f64,
{
    assert!(tau[0] > 0.0 && tau[1] > 0.0, "thresholds must be positive");
    let q = [
        if v[0] > 0.0 {
            (v[0] / tau[0]).min(1.0)
        } else {
            0.0
        },
        if v[1] > 0.0 {
            (v[1] / tau[1]).min(1.0)
        } else {
            0.0
        },
    ];
    let g = |u1: f64, u2: f64, pattern: [bool; 2]| {
        transform(estimator.estimate(&outcome_with_pattern(v, tau, [u1, u2], pattern)))
    };

    // Region A: both sampled — the estimate does not depend on the seeds
    // beyond the fact that they are below the thresholds.
    let a = if q[0] > 0.0 && q[1] > 0.0 {
        q[0] * q[1] * g(q[0] * 0.5, q[1] * 0.5, [true, true])
    } else {
        0.0
    };
    // Region B: only entry 1 sampled — integrate over u2 ∈ (q2, 1).  The
    // integrand can kink where the unsampled entry's bound u2·τ2 crosses the
    // sampled value v1 (the determining vector stops being capped).
    let b = if q[0] > 0.0 {
        let kink = v[0] / tau[1];
        q[0] * integrate_axis(
            |u2| g(q[0] * 0.5, u2, [true, false]),
            q[1],
            1.0,
            &[kink],
            panels,
        )
    } else {
        0.0
    };
    // Region C: only entry 2 sampled — integrate over u1 ∈ (q1, 1).
    let c = if q[1] > 0.0 {
        let kink = v[1] / tau[0];
        q[1] * integrate_axis(
            |u1| g(u1, q[1] * 0.5, [false, true]),
            q[0],
            1.0,
            &[kink],
            panels,
        )
    } else {
        0.0
    };
    // Region D: neither sampled — a 2-D integral (zero for all nonnegative
    // estimators of functions that vanish on the all-zero vector, but kept for
    // generality).
    let d = simpson2(
        |u1, u2| g(u1, u2, [false, false]),
        q[0],
        1.0,
        q[1],
        1.0,
        PANELS_2D.min(panels),
    );
    a + b + c + d
}

/// Exact mean and variance of an estimator on data `v` under two-instance PPS
/// sampling with known seeds, with an explicit quadrature resolution.
///
/// Use the default-resolution [`pps2_expectation`] / [`pps2_variance`] unless
/// many keys have to be processed (e.g. the Figure 7 harness).
pub fn pps2_mean_variance<E: Estimator<WeightedOutcome>>(
    estimator: &E,
    v: [f64; 2],
    tau: [f64; 2],
    panels: usize,
) -> (f64, f64) {
    let mean = pps2_expectation_of_with_panels(estimator, v, tau, |x| x, panels);
    let second = pps2_expectation_of_with_panels(estimator, v, tau, |x| x * x, panels);
    (mean, (second - mean * mean).max(0.0))
}

/// The exact expectation of an estimator on data `v` under two-instance PPS
/// sampling with known seeds.
pub fn pps2_expectation<E: Estimator<WeightedOutcome>>(
    estimator: &E,
    v: [f64; 2],
    tau: [f64; 2],
) -> f64 {
    pps2_expectation_of(estimator, v, tau, |x| x)
}

/// The exact variance of an estimator on data `v` under two-instance PPS
/// sampling with known seeds.
pub fn pps2_variance<E: Estimator<WeightedOutcome>>(
    estimator: &E,
    v: [f64; 2],
    tau: [f64; 2],
) -> f64 {
    let mean = pps2_expectation(estimator, v, tau);
    let second = pps2_expectation_of(estimator, v, tau, |x| x * x);
    (second - mean * mean).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_core::variance::max_ht_pps_normalized_variance;
    use pie_core::weighted::max_l_pps2_equal_entries as equal_entries;
    use pie_core::weighted::{MaxHtPps, MaxLPps2};

    #[test]
    fn max_l_is_exactly_unbiased_by_quadrature() {
        let cases: &[([f64; 2], [f64; 2])] = &[
            ([5.0, 3.0], [10.0, 10.0]),
            ([5.0, 0.0], [10.0, 10.0]),
            ([2.0, 2.0], [10.0, 6.0]),
            ([9.0, 0.5], [10.0, 8.0]),
            ([12.0, 3.0], [10.0, 10.0]),
            ([7.0, 6.5], [8.0, 6.0]),
        ];
        for &(v, tau) in cases {
            let mean = pps2_expectation(&MaxLPps2, v, tau);
            let truth = v[0].max(v[1]);
            assert!(
                (mean - truth).abs() / truth < 2e-3,
                "bias on {v:?} tau {tau:?}: {mean} vs {truth}"
            );
        }
    }

    #[test]
    fn max_ht_is_exactly_unbiased_by_quadrature() {
        for &(v, tau) in &[([5.0, 3.0], [10.0, 10.0]), ([4.0, 0.0], [10.0, 6.0])] {
            let mean = pps2_expectation(&MaxHtPps, v, tau);
            let truth: f64 = v[0].max(v[1]);
            assert!((mean - truth).abs() / truth < 2e-3, "{mean} vs {truth}");
        }
    }

    #[test]
    fn ht_variance_matches_closed_form() {
        // VAR[max^(HT)]/τ*² = 1 − ρ² for τ*₁ = τ*₂ = τ*, any min value.
        let tau = 10.0;
        for &(v1, v2) in &[(5.0, 3.0), (5.0, 0.0), (5.0, 5.0)] {
            let var = pps2_variance(&MaxHtPps, [v1, v2], [tau, tau]);
            let rho = v1.max(v2) / tau;
            let expected = max_ht_pps_normalized_variance(rho) * tau * tau;
            assert!(
                (var - expected).abs() / expected < 1e-2,
                "({v1},{v2}): {var} vs {expected}"
            );
        }
    }

    #[test]
    fn max_l_dominates_ht_everywhere_on_a_grid() {
        let tau = [10.0, 10.0];
        for i in 1..=4 {
            for j in 0..=i {
                let v = [i as f64 * 2.0, j as f64 * 2.0];
                let var_l = pps2_variance(&MaxLPps2, v, tau);
                let var_ht = pps2_variance(&MaxHtPps, v, tau);
                assert!(
                    var_l <= var_ht + 1e-6,
                    "L should dominate HT at {v:?}: {var_l} vs {var_ht}"
                );
            }
        }
    }

    #[test]
    fn equal_entry_estimate_matches_quadrature_probability() {
        // For data (v, v), the estimator takes the single value of Eq. (25)
        // whenever anything is sampled; quadrature must agree.
        let (v, tau) = (4.0, [10.0, 8.0]);
        let expected_value = equal_entries(v, tau[0], tau[1]);
        let q1: f64 = v / tau[0];
        let q2: f64 = v / tau[1];
        let p_any = q1 + q2 - q1 * q2;
        let mean = pps2_expectation(&MaxLPps2, [v, v], tau);
        assert!((mean - expected_value * p_any).abs() < 1e-3);
    }

    #[test]
    fn zero_vector_has_zero_moments() {
        assert_eq!(pps2_expectation(&MaxLPps2, [0.0, 0.0], [10.0, 10.0]), 0.0);
        assert_eq!(pps2_variance(&MaxLPps2, [0.0, 0.0], [10.0, 10.0]), 0.0);
    }
}
