//! Snapshot roundtrip properties for the mergeable statistics and
//! evaluation types: encode → decode is bitwise (including after merges and
//! for empty accumulators), and malformed bytes yield typed errors.

use pie_analysis::{Evaluation, RunningStats};
use pie_store::{snapshot_from_slice, snapshot_to_vec, StoreError};
use proptest::prelude::*;

fn assert_stats_roundtrip_bitwise(stats: &RunningStats) {
    let bytes = snapshot_to_vec(stats).unwrap();
    let back: RunningStats = snapshot_from_slice(&bytes).unwrap();
    // Field-for-field bitwise: re-encoding reproduces the exact bytes, and
    // the derived moments agree to the last bit.
    assert_eq!(snapshot_to_vec(&back).unwrap(), bytes);
    assert_eq!(back.count(), stats.count());
    assert_eq!(back.mean().to_bits(), stats.mean().to_bits());
    assert_eq!(back.variance().to_bits(), stats.variance().to_bits());
    assert_eq!(back.min().to_bits(), stats.min().to_bits());
    assert_eq!(back.max().to_bits(), stats.max().to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn running_stats_roundtrip_after_pushes_and_merges(
        xs in proptest::collection::vec(-1.0e6f64..1.0e6, 40),
        split in 0usize..40,
    ) {
        let mut merged = RunningStats::from_values(xs[..split].iter().copied());
        merged.merge(&RunningStats::from_values(xs[split..].iter().copied()));
        assert_stats_roundtrip_bitwise(&merged);

        // A decoded accumulator merges exactly like the original.
        let bytes = snapshot_to_vec(&merged).unwrap();
        let decoded: RunningStats = snapshot_from_slice(&bytes).unwrap();
        let extra = RunningStats::from_values(xs.iter().map(|x| x * 0.5));
        let mut a = merged;
        let mut b = decoded;
        a.merge(&extra);
        b.merge(&extra);
        prop_assert_eq!(snapshot_to_vec(&a).unwrap(), snapshot_to_vec(&b).unwrap());
    }

    #[test]
    fn evaluation_roundtrip(truth in -1.0e6f64..1.0e6, xs in proptest::collection::vec(-1.0e6f64..1.0e6, 16)) {
        let stats = RunningStats::from_values(xs.iter().copied());
        let eval = Evaluation::from_stats(&stats, truth);
        let bytes = snapshot_to_vec(&eval).unwrap();
        let back: Evaluation = snapshot_from_slice(&bytes).unwrap();
        prop_assert_eq!(back, eval);
        prop_assert_eq!(snapshot_to_vec(&back).unwrap(), bytes);
    }
}

#[test]
fn empty_running_stats_roundtrip_bitwise() {
    // The empty accumulator carries ±∞ sentinels in min/max; both must
    // survive exactly so that merging a decoded empty stays the identity.
    let empty = RunningStats::new();
    assert_stats_roundtrip_bitwise(&empty);
    let bytes = snapshot_to_vec(&empty).unwrap();
    let decoded: RunningStats = snapshot_from_slice(&bytes).unwrap();
    let mut target = RunningStats::from_values([1.0, 2.0, 3.0]);
    let reference = target;
    target.merge(&decoded);
    assert_eq!(target, reference, "merging a decoded empty is the identity");
}

#[test]
fn malformed_stats_snapshots_are_typed_errors() {
    let bytes = snapshot_to_vec(&RunningStats::from_values([1.0, 2.0])).unwrap();
    for cut in 0..bytes.len() {
        let err = snapshot_from_slice::<RunningStats>(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, StoreError::Truncated { .. }),
            "cut {cut}: {err}"
        );
    }
    let mut wrong_version = bytes.clone();
    wrong_version[4] = 9;
    assert!(matches!(
        snapshot_from_slice::<RunningStats>(&wrong_version).unwrap_err(),
        StoreError::UnsupportedVersion { found: 9, .. }
    ));
    let mut corrupted = bytes;
    let mid = corrupted.len() - 2;
    corrupted[mid] ^= 0x01;
    assert!(matches!(
        snapshot_from_slice::<RunningStats>(&corrupted).unwrap_err(),
        StoreError::ChecksumMismatch { .. }
    ));
}
