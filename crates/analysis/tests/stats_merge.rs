//! Property coverage of `RunningStats::merge` and the deterministic chunked
//! reduction it powers.
//!
//! The contract under test:
//!
//! * **Deterministic reduction order** — folding per-chunk accumulators in
//!   chunk-index order is *bit-identical* however the chunks were computed:
//!   the `TrialRunner` engine produces the same lanes at every thread
//!   count, and a by-hand fold of independently built chunk accumulators
//!   reproduces the engine exactly.
//! * **Permutation robustness** — for *arbitrary* splits and merge orders
//!   (which are **not** the canonical order), the merged moments still agree
//!   with a single sequential `push` pass within tight f64 tolerance, and
//!   `count`/`min`/`max` are exact.
//! * **Identity** — merging with an empty accumulator changes nothing,
//!   bitwise.

use proptest::prelude::*;

use pie_analysis::trial::TrialRunner;
use pie_analysis::RunningStats;

/// A deterministic, heavy-tailed observation for trial `t` (so properties
/// only need to draw counts, salts, and split points).
fn observation(salt: u64, t: u64) -> f64 {
    let mut x = t
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let u = (x >> 11) as f64 / (1u64 << 53) as f64;
    // Mix scales so merges see non-trivial mean shifts between chunks.
    if x.is_multiple_of(17) {
        1e6 * u
    } else {
        u * 10.0 - 5.0
    }
}

/// Splits `[0, n)` at sorted cut points derived from `cuts`, folds each
/// piece into its own accumulator, and merges left-to-right.
fn merged_over_splits(salt: u64, n: u64, cuts: &[u64]) -> RunningStats {
    let mut bounds: Vec<u64> = cuts.iter().map(|&c| c % (n + 1)).collect();
    bounds.push(0);
    bounds.push(n);
    bounds.sort_unstable();
    let mut acc = RunningStats::new();
    for pair in bounds.windows(2) {
        let chunk = RunningStats::from_values((pair[0]..pair[1]).map(|t| observation(salt, t)));
        acc.merge(&chunk);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine's canonical chunked reduction is bit-identical at every
    /// thread count — merge-of-chunks *is* the sequential reduction.
    #[test]
    fn engine_reduction_is_thread_invariant_bitwise(
        trials in 0u64..600,
        salt in 0u64..1_000,
        threads in 2usize..9,
    ) {
        let run = |threads: usize| {
            TrialRunner::with_threads(threads).run(trials, 2, |_| (), |(), t, lanes| {
                lanes[0].push(observation(salt, t));
                lanes[1].push(observation(salt.wrapping_add(1), t));
            })
        };
        prop_assert_eq!(run(threads), run(1));
    }

    /// A by-hand fold of independently computed chunk accumulators, in
    /// chunk-index order, reproduces the engine bitwise: the reduction is a
    /// pure function of the chunk partition, not of who computed the chunks.
    #[test]
    fn manual_chunk_fold_matches_engine_bitwise(
        trials in 1u64..600,
        salt in 0u64..1_000,
        chunk in 1u64..64,
        threads in 1usize..9,
    ) {
        let engine = TrialRunner::with_threads(threads)
            .chunk_trials(chunk)
            .run(trials, 1, |_| (), |(), t, lanes| lanes[0].push(observation(salt, t)));
        // Compute every chunk accumulator independently (in reverse, to
        // prove computation order is irrelevant), then fold in chunk order.
        let num_chunks = trials.div_ceil(chunk);
        let chunks: Vec<RunningStats> = (0..num_chunks).rev().map(|c| {
            let hi = ((c + 1) * chunk).min(trials);
            RunningStats::from_values((c * chunk..hi).map(|t| observation(salt, t)))
        }).collect();
        let mut folded = RunningStats::new();
        for chunk_stat in chunks.iter().rev() {
            folded.merge(chunk_stat);
        }
        prop_assert_eq!(vec![folded], engine);
    }

    /// Arbitrary splits merged left-to-right agree with one sequential
    /// `push` pass within f64 tolerance; count/min/max exactly.
    #[test]
    fn arbitrary_splits_match_sequential_push_within_tolerance(
        n in 1u64..800,
        salt in 0u64..1_000,
        cuts in proptest::collection::vec(0u64..800, 0..6),
    ) {
        let merged = merged_over_splits(salt, n, &cuts);
        let sequential = RunningStats::from_values((0..n).map(|t| observation(salt, t)));
        prop_assert_eq!(merged.count(), sequential.count());
        prop_assert_eq!(merged.min(), sequential.min());
        prop_assert_eq!(merged.max(), sequential.max());
        let mean_scale = sequential.mean().abs().max(1.0);
        prop_assert!((merged.mean() - sequential.mean()).abs() <= 1e-9 * mean_scale,
            "mean {} vs {}", merged.mean(), sequential.mean());
        let var_scale = sequential.variance().abs().max(1.0);
        prop_assert!((merged.variance() - sequential.variance()).abs() <= 1e-6 * var_scale,
            "variance {} vs {}", merged.variance(), sequential.variance());
    }

    /// Two different split sets of the same data merge to the same moments
    /// within tolerance (permutation robustness across partitions).
    #[test]
    fn different_partitions_agree_within_tolerance(
        n in 1u64..800,
        salt in 0u64..1_000,
        cuts_a in proptest::collection::vec(0u64..800, 0..6),
        cuts_b in proptest::collection::vec(0u64..800, 0..6),
    ) {
        let a = merged_over_splits(salt, n, &cuts_a);
        let b = merged_over_splits(salt, n, &cuts_b);
        prop_assert_eq!(a.count(), b.count());
        prop_assert_eq!(a.min(), b.min());
        prop_assert_eq!(a.max(), b.max());
        prop_assert!((a.mean() - b.mean()).abs() <= 1e-9 * a.mean().abs().max(1.0));
        prop_assert!((a.variance() - b.variance()).abs() <= 1e-6 * a.variance().abs().max(1.0));
    }

    /// Merging with an empty accumulator is a bitwise identity either way.
    #[test]
    fn empty_merge_is_bitwise_identity(n in 0u64..200, salt in 0u64..1_000) {
        let s = RunningStats::from_values((0..n).map(|t| observation(salt, t)));
        let mut left = s;
        left.merge(&RunningStats::new());
        prop_assert_eq!(left, s);
        let mut right = RunningStats::new();
        right.merge(&s);
        prop_assert_eq!(right, s);
    }
}
