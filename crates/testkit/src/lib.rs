//! # pie-testkit — statistical assertion helpers for conformance tests
//!
//! The paper's headline claims are *statistical*: every estimator is
//! unbiased, and the order-optimal `L`/`U` estimators dominate the
//! Horvitz–Thompson baseline's variance.  Asserting such claims mechanically
//! needs more care than `assert!(a < b)` on a single Monte-Carlo run — an
//! unbiased estimator's sample mean is *never* exactly the truth, and a
//! variance ordering can flip on an unlucky seed.  This crate packages the
//! statistically sound versions used by the workspace's tier-2 conformance
//! tests (and available to downstream experiments):
//!
//! * [`check_unbiased`] / [`assert_unbiased`] — is the sample mean within a
//!   `z`-standard-error confidence interval of the truth?  Failure messages
//!   report the interval, the miss distance, and the trial count.
//! * [`check_variance_ordering`] / [`assert_variance_ordering`] — does a
//!   measured variance ranking hold with an explicit relative margin
//!   absorbing Monte-Carlo noise?
//! * [`SeedSweep`] — repeats an evaluation across decorrelated base salts
//!   and applies a check to every repetition, so a conformance property is
//!   established across many independent randomizations instead of one
//!   (with an optional pass-fraction to tolerate designed-in CI tail mass).
//!
//! Checks come in `check_*` (returning `Result<(), ConformanceFailure>`)
//! and `assert_*` (panicking with the rendered failure) flavors; tests use
//! the asserting ones, and harnesses that want to count or report failures
//! use the checking ones.
//!
//! ```
//! use pie_analysis::Evaluation;
//! use pie_testkit::{assert_unbiased, check_variance_ordering};
//!
//! let eval = Evaluation { truth: 10.0, mean: 10.02, variance: 4.0, relative_bias: 0.002, trials: 40_000 };
//! assert_unbiased("max_l_2", &eval, 4.0);
//! // U ≤ L ≤ HT, allowing 5% relative Monte-Carlo slack per adjacent pair.
//! check_variance_ordering(&[("U", 1.9), ("L", 2.0), ("HT", 6.1)], 0.05).unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

use std::fmt;

use pie_analysis::Evaluation;

/// Why a statistical conformance check failed.
///
/// Rendered by [`fmt::Display`] with every quantity a human needs to judge
/// whether the failure is a real defect or an under-powered check.
#[derive(Debug, Clone, PartialEq)]
pub enum ConformanceFailure {
    /// The sample mean fell outside the `z`-standard-error confidence
    /// interval around the truth.
    Biased {
        /// Name of the estimator (or experiment) under test.
        name: String,
        /// The exact value being estimated.
        truth: f64,
        /// The Monte-Carlo sample mean.
        mean: f64,
        /// Half-width `z · SE` of the accepted interval around the truth.
        ci_half_width: f64,
        /// The `z` multiplier the caller chose.
        z: f64,
        /// Number of Monte-Carlo trials behind the mean.
        trials: u64,
    },
    /// The check was asked about an evaluation with too few trials to
    /// estimate a standard error (fewer than 2).
    Underpowered {
        /// Name of the estimator (or experiment) under test.
        name: String,
        /// Number of trials supplied.
        trials: u64,
    },
    /// Two adjacent entries of a claimed variance ranking compare the wrong
    /// way, beyond the allowed relative margin.
    Misordered {
        /// Name of the entry claimed to have the smaller variance.
        smaller_name: String,
        /// Its measured variance.
        smaller: f64,
        /// Name of the entry claimed to have the larger variance.
        larger_name: String,
        /// Its measured variance.
        larger: f64,
        /// The relative Monte-Carlo slack that was allowed.
        rel_margin: f64,
    },
    /// A seed sweep passed on too small a fraction of its salts.
    SweepFailed {
        /// Salts on which the per-seed check passed.
        passed: usize,
        /// Total salts swept.
        total: usize,
        /// The minimum pass fraction required.
        required_fraction: f64,
        /// The first per-seed failure, as rendered text (kept as a string so
        /// the variant stays `PartialEq` and cheap to clone).
        first_failure: String,
    },
}

impl fmt::Display for ConformanceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Biased {
                name,
                truth,
                mean,
                ci_half_width,
                z,
                trials,
            } => write!(
                f,
                "{name}: mean {mean} outside truth {truth} ± {ci_half_width} \
                 (z = {z}, {trials} trials, miss = {})",
                (mean - truth).abs() - ci_half_width
            ),
            Self::Underpowered { name, trials } => write!(
                f,
                "{name}: {trials} trial(s) cannot support a confidence-interval check \
                 (need at least 2)"
            ),
            Self::Misordered {
                smaller_name,
                smaller,
                larger_name,
                larger,
                rel_margin,
            } => write!(
                f,
                "variance ordering violated: var[{smaller_name}] = {smaller} should be \
                 ≤ var[{larger_name}] = {larger} within {:.1}% relative margin",
                rel_margin * 100.0
            ),
            Self::SweepFailed {
                passed,
                total,
                required_fraction,
                first_failure,
            } => write!(
                f,
                "seed sweep: {passed}/{total} salts passed, required {:.0}%; \
                 first failure: {first_failure}",
                required_fraction * 100.0
            ),
        }
    }
}

impl std::error::Error for ConformanceFailure {}

/// The standard error of an evaluation's mean: `sqrt(s² / n)` with the
/// unbiased sample variance `s² = n/(n−1) · Var` recovered from the stored
/// population variance.  Returns `None` for fewer than 2 trials.
#[must_use]
pub fn standard_error(eval: &Evaluation) -> Option<f64> {
    if eval.trials < 2 {
        return None;
    }
    let n = eval.trials as f64;
    let sample_variance = eval.variance * n / (n - 1.0);
    Some((sample_variance / n).sqrt())
}

/// Checks that `eval`'s mean lies within `z` standard errors of its truth —
/// the mechanical form of "the estimator is unbiased", with the test's
/// false-failure probability controlled by `z` (`z = 4` ≈ 6·10⁻⁵ two-sided
/// under the CLT normal approximation).
///
/// # Errors
/// [`ConformanceFailure::Biased`] when the mean misses the interval, or
/// [`ConformanceFailure::Underpowered`] when fewer than 2 trials were run.
pub fn check_unbiased(name: &str, eval: &Evaluation, z: f64) -> Result<(), ConformanceFailure> {
    let Some(se) = standard_error(eval) else {
        return Err(ConformanceFailure::Underpowered {
            name: name.to_string(),
            trials: eval.trials,
        });
    };
    let ci_half_width = z * se;
    if (eval.mean - eval.truth).abs() <= ci_half_width {
        Ok(())
    } else {
        Err(ConformanceFailure::Biased {
            name: name.to_string(),
            truth: eval.truth,
            mean: eval.mean,
            ci_half_width,
            z,
            trials: eval.trials,
        })
    }
}

/// Panicking form of [`check_unbiased`], for direct use in tests.
///
/// # Panics
/// Panics with the rendered [`ConformanceFailure`] if the check fails.
pub fn assert_unbiased(name: &str, eval: &Evaluation, z: f64) {
    if let Err(failure) = check_unbiased(name, eval, z) {
        panic!("{failure}");
    }
}

/// Checks a claimed variance ranking `ranked[0] ≤ ranked[1] ≤ …` (e.g.
/// `U ≤ L ≤ HT`), allowing each adjacent pair a strictly relative
/// Monte-Carlo margin: `var[i] ≤ var[i+1] · (1 + rel_margin)`.  A zero
/// variance on the larger side therefore admits no positive smaller side —
/// an exact zero is noise-free, so any positive competitor genuinely
/// outranks it.
///
/// The margin makes the check's intent explicit: a *strict* paper claim is
/// asserted with a small margin absorbing simulation noise, never by
/// silently picking a lucky seed.
///
/// # Errors
/// [`ConformanceFailure::Misordered`] naming the first offending pair.
pub fn check_variance_ordering(
    ranked: &[(&str, f64)],
    rel_margin: f64,
) -> Result<(), ConformanceFailure> {
    for pair in ranked.windows(2) {
        let (smaller_name, smaller) = pair[0];
        let (larger_name, larger) = pair[1];
        if smaller > larger * (1.0 + rel_margin) {
            return Err(ConformanceFailure::Misordered {
                smaller_name: smaller_name.to_string(),
                smaller,
                larger_name: larger_name.to_string(),
                larger,
                rel_margin,
            });
        }
    }
    Ok(())
}

/// Panicking form of [`check_variance_ordering`], for direct use in tests.
///
/// # Panics
/// Panics with the rendered [`ConformanceFailure`] if the ordering fails.
pub fn assert_variance_ordering(ranked: &[(&str, f64)], rel_margin: f64) {
    if let Err(failure) = check_variance_ordering(ranked, rel_margin) {
        panic!("{failure}");
    }
}

/// A sweep over decorrelated base salts: the harness for asserting a
/// statistical property across many independent randomizations.
///
/// Salt `i` is `base_salt + i · STRIDE` with a large odd stride, so sweeps
/// never reuse the per-trial salts `base + t` of another repetition (trial
/// loops add at most `trials ≪ STRIDE` to their base).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSweep {
    base_salt: u64,
    sweeps: u64,
}

/// The salt stride between sweep repetitions (a large odd constant, so
/// repetitions stay decorrelated and never overlap trial-salt ranges).
const SWEEP_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

impl SeedSweep {
    /// A sweep of `sweeps` repetitions starting at `base_salt` (clamped to
    /// ≥ 1 repetition).
    #[must_use]
    pub fn new(base_salt: u64, sweeps: u64) -> Self {
        Self {
            base_salt,
            sweeps: sweeps.max(1),
        }
    }

    /// The swept base salts, in repetition order.
    pub fn salts(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.sweeps).map(|i| self.base_salt.wrapping_add(i.wrapping_mul(SWEEP_STRIDE)))
    }

    /// Runs `evaluate` once per salt, collecting the evaluations.
    pub fn evaluate(&self, mut evaluate: impl FnMut(u64) -> Evaluation) -> SweepReport {
        SweepReport {
            evaluations: self.salts().map(|salt| (salt, evaluate(salt))).collect(),
        }
    }

    /// Applies `check` at every salt and requires at least `min_fraction` of
    /// the repetitions to pass (use `1.0` to require all).  A fraction
    /// strictly below 1 is how a sweep of `z`-interval checks tolerates the
    /// interval's designed-in tail mass without hiding systematic bias.
    ///
    /// # Errors
    /// [`ConformanceFailure::SweepFailed`] carrying the pass count and the
    /// first per-salt failure.
    pub fn check(
        &self,
        min_fraction: f64,
        check: impl FnMut(u64) -> Result<(), ConformanceFailure>,
    ) -> Result<(), ConformanceFailure> {
        require_pass_fraction(self.salts().map(check), min_fraction)
    }
}

/// The shared pass-fraction gate behind [`SeedSweep::check`] and
/// [`SweepReport::check_unbiased`]: counts passing repetitions and fails
/// with [`ConformanceFailure::SweepFailed`] (carrying the first per-
/// repetition failure) when fewer than `min_fraction` of them pass.
fn require_pass_fraction(
    results: impl Iterator<Item = Result<(), ConformanceFailure>>,
    min_fraction: f64,
) -> Result<(), ConformanceFailure> {
    let mut passed = 0usize;
    let mut total = 0usize;
    let mut first_failure: Option<ConformanceFailure> = None;
    for result in results {
        total += 1;
        match result {
            Ok(()) => passed += 1,
            Err(failure) => {
                first_failure.get_or_insert(failure);
            }
        }
    }
    if (passed as f64) < min_fraction * total as f64 {
        Err(ConformanceFailure::SweepFailed {
            passed,
            total,
            required_fraction: min_fraction,
            first_failure: first_failure.map_or_else(
                || "(no per-salt failure recorded)".to_string(),
                |f| f.to_string(),
            ),
        })
    } else {
        Ok(())
    }
}

/// The evaluations a [`SeedSweep::evaluate`] run collected, with summary
/// accessors for cross-repetition assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// `(salt, evaluation)` pairs in repetition order.
    pub evaluations: Vec<(u64, Evaluation)>,
}

impl SweepReport {
    /// The largest relative bias observed across the sweep.
    #[must_use]
    pub fn worst_relative_bias(&self) -> f64 {
        self.evaluations
            .iter()
            .map(|(_, e)| e.relative_bias)
            .fold(0.0, f64::max)
    }

    /// The mean of the per-repetition variances — a lower-noise variance
    /// estimate for ordering checks than any single repetition.
    #[must_use]
    pub fn mean_variance(&self) -> f64 {
        if self.evaluations.is_empty() {
            return 0.0;
        }
        self.evaluations
            .iter()
            .map(|(_, e)| e.variance)
            .sum::<f64>()
            / self.evaluations.len() as f64
    }

    /// Checks every repetition's unbiasedness at `z` standard errors,
    /// requiring at least `min_fraction` of them to pass.
    ///
    /// # Errors
    /// See [`SeedSweep::check`].
    pub fn check_unbiased(
        &self,
        name: &str,
        z: f64,
        min_fraction: f64,
    ) -> Result<(), ConformanceFailure> {
        require_pass_fraction(
            self.evaluations
                .iter()
                .map(|(_, eval)| check_unbiased(name, eval, z)),
            min_fraction,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(truth: f64, mean: f64, variance: f64, trials: u64) -> Evaluation {
        Evaluation {
            truth,
            mean,
            variance,
            relative_bias: if truth == 0.0 {
                mean.abs()
            } else {
                (mean - truth).abs() / truth.abs()
            },
            trials,
        }
    }

    #[test]
    fn unbiased_check_accepts_mean_within_interval() {
        // SE = sqrt((4 * 10000/9999) / 10000) ≈ 0.02; z=4 interval ≈ ±0.08.
        let e = eval(10.0, 10.05, 4.0, 10_000);
        assert!(check_unbiased("ok", &e, 4.0).is_ok());
        assert_unbiased("ok", &e, 4.0);
    }

    #[test]
    fn unbiased_check_rejects_clear_bias() {
        let e = eval(10.0, 10.5, 4.0, 10_000);
        let failure = check_unbiased("biased", &e, 4.0).unwrap_err();
        let msg = failure.to_string();
        assert!(msg.contains("biased"), "{msg}");
        assert!(msg.contains("10.5"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "outside truth")]
    fn assert_unbiased_panics_with_interval() {
        assert_unbiased("biased", &eval(10.0, 12.0, 1.0, 10_000), 4.0);
    }

    #[test]
    fn unbiased_check_flags_underpowered_evaluations() {
        let e = eval(10.0, 10.0, 0.0, 1);
        assert!(matches!(
            check_unbiased("tiny", &e, 4.0),
            Err(ConformanceFailure::Underpowered { trials: 1, .. })
        ));
    }

    #[test]
    fn variance_ordering_respects_margin() {
        // In order, comfortably.
        assert!(check_variance_ordering(&[("U", 1.0), ("L", 2.0), ("HT", 4.0)], 0.0).is_ok());
        // 5% out of order, allowed by a 10% margin…
        assert!(check_variance_ordering(&[("U", 2.1), ("L", 2.0)], 0.1).is_ok());
        // …but not by a 1% margin.
        let failure = check_variance_ordering(&[("U", 2.1), ("L", 2.0)], 0.01).unwrap_err();
        assert!(failure.to_string().contains("var[U]"));
    }

    #[test]
    #[should_panic(expected = "variance ordering violated")]
    fn assert_variance_ordering_panics() {
        assert_variance_ordering(&[("L", 5.0), ("HT", 2.0)], 0.05);
    }

    #[test]
    fn sweep_salts_are_distinct_and_reproducible() {
        let sweep = SeedSweep::new(7, 16);
        let salts: Vec<u64> = sweep.salts().collect();
        assert_eq!(salts.len(), 16);
        assert_eq!(salts[0], 7);
        let mut dedup = salts.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16, "salts must be distinct");
        assert_eq!(salts, SeedSweep::new(7, 16).salts().collect::<Vec<u64>>());
    }

    #[test]
    fn sweep_check_enforces_pass_fraction() {
        let sweep = SeedSweep::new(0, 10);
        // 8/10 pass; require 70% -> ok, require 90% -> failure.
        let flaky = |salt: u64| -> Result<(), ConformanceFailure> {
            if salt == 0 || salt == SWEEP_STRIDE.wrapping_mul(5) {
                Err(ConformanceFailure::Underpowered {
                    name: "flaky".into(),
                    trials: 1,
                })
            } else {
                Ok(())
            }
        };
        assert!(sweep.check(0.7, flaky).is_ok());
        let failure = sweep.check(0.9, flaky).unwrap_err();
        assert!(failure.to_string().contains("8/10"), "{failure}");
    }

    #[test]
    fn sweep_report_summaries() {
        let report = SweepReport {
            evaluations: vec![
                (0, eval(10.0, 10.1, 2.0, 1000)),
                (1, eval(10.0, 9.8, 4.0, 1000)),
            ],
        };
        assert!((report.worst_relative_bias() - 0.02).abs() < 1e-12);
        assert!((report.mean_variance() - 3.0).abs() < 1e-12);
        assert!(report.check_unbiased("x", 4.0, 0.5).is_ok());
        let empty = SweepReport {
            evaluations: Vec::new(),
        };
        assert_eq!(empty.mean_variance(), 0.0);
    }
}
