//! Demonstrates the Section 6 impossibility results numerically: the unique
//! unbiased OR estimator under weighted sampling with unknown seeds, its
//! forced negative value when `p₁ + p₂ < 1`, and the ℓ-th-statistic extension.
//!
//! ```text
//! cargo run -p pie-bench --release --bin negative_results
//! ```

use pie_analysis::Table;
use pie_core::derive::{
    derive_order_based, sparse_first_order, FiniteModel, WeightedUnknownSeedsBinaryModel,
};
use pie_core::functions::boolean_or;
use pie_core::negative::{
    lth_unknown_seeds_forced_value, or_unknown_seeds_forced_estimator,
    or_unknown_seeds_nonnegative_exists,
};

fn main() {
    println!("Theorem 6.1: OR over weighted samples with UNKNOWN seeds\n");
    let mut table = Table::new(
        "forced (unique) unbiased estimator per outcome",
        &[
            "p1",
            "p2",
            "est(∅)",
            "est({1})",
            "est({2})",
            "est({1,2})",
            "nonnegative?",
        ],
    );
    for &(p1, p2) in &[(0.1, 0.2), (0.3, 0.4), (0.45, 0.45), (0.5, 0.5), (0.7, 0.6)] {
        let e = or_unknown_seeds_forced_estimator(p1, p2);
        let mut row = vec![
            format!("{p1}"),
            format!("{p2}"),
            format!("{:.4}", e[0]),
            format!("{:.4}", e[1]),
            format!("{:.4}", e[2]),
            format!("{:.4}", e[3]),
        ];
        row.push(
            if or_unknown_seeds_nonnegative_exists(p1, p2) {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        );
        table.push_row(&row);
    }
    println!("{}", table.render());

    println!("cross-check with the Algorithm 1 derivation engine (p1 = 0.3, p2 = 0.4):");
    let model = WeightedUnknownSeedsBinaryModel::new(vec![0.3, 0.4]);
    let order = sparse_first_order(&model.data_vectors());
    let derived = derive_order_based(&model, boolean_or, &order, 1e-12)
        .expect_success("unknown-seed OR derivation");
    println!(
        "  engine's most negative estimate: {:.4} (analytic: {:.4})\n",
        derived.most_negative(),
        or_unknown_seeds_forced_estimator(0.3, 0.4)[3]
    );

    println!("ℓ-th statistic extension (r = 4, auxiliary entries sampled with p = 0.5):");
    for l in 1..=3 {
        let forced = lth_unknown_seeds_forced_value(&[0.3, 0.4, 0.5, 0.5], l);
        println!("  l = {l}: forced value on the doubly-sampled outcome = {forced:.4}");
    }
    println!("\nConclusion: with unknown seeds, aggressive weighted sampling admits no");
    println!("unbiased nonnegative estimator for max/OR/ℓ-th (ℓ < r) — hash-reproducible");
    println!("(known) seeds are what make the Section 5 estimators possible.");
}
