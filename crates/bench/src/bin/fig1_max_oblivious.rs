//! Regenerates Figure 1: variance ratios of `max^(L)` and `max^(U)` against
//! `max^(HT)` for weight-oblivious Poisson sampling with `p₁ = p₂ = 1/2`.
//!
//! ```text
//! cargo run -p pie-bench --release --bin fig1_max_oblivious
//! ```

use pie_bench::fig1;

fn main() {
    let p = 0.5;
    println!("Figure 1: estimators for max(v1,v2) over Poisson samples (weight-oblivious), p1 = p2 = {p}\n");
    for series in fig1::compute(p, 20) {
        println!("{}", series.render());
    }
    println!("# batched Monte-Carlo cross-check (evaluate_oblivious_family / estimate_batch):");
    for series in fig1::compute_monte_carlo(p, 10, 40_000, 1) {
        println!("{}", series.render());
    }
    println!("# paper reference points (from the closed forms in the Figure 1 box):");
    println!("#   min/max = 0 : var[L]/var[HT] = 11/27 ≈ 0.407");
    println!("#   min/max = 1 : var[L]/var[HT] = 1/9   ≈ 0.111");
    println!("#   var[U]/var[HT] = 1/3 at both extremes (the paper's printed 3/4·max² term");
    println!("#   would give 1/4; the estimator printed in the same figure yields max², see EXPERIMENTS.md)");
}
