//! Regenerates Figure 4: normalized variance of `max^(HT)` and `max^(L)` over
//! two PPS samples with known seeds (panels A/B) and their variance ratio
//! (panel C), as functions of `min(v)/max(v)` for several `ρ = max(v)/τ*`.
//!
//! ```text
//! cargo run -p pie-bench --release --bin fig4_pps_max_variance
//! ```

use pie_bench::fig4;

fn main() {
    println!("Figure 4 (A)/(B): normalized variance vs min/max\n");
    for rho in [0.5, 0.01] {
        for series in fig4::normalized_variance_curves(rho, 20) {
            println!("{}", series.render());
        }
    }
    println!("Figure 4 (C): var[HT]/var[L] vs min/max\n");
    for series in fig4::ratio_curves(&[1.0, 0.99, 0.5, 0.1, 0.01, 0.001], 20) {
        println!("{}", series.render());
    }
    println!("# paper reference: var[HT]/tau*^2 = 1 - rho^2 independent of min(v);");
    println!("# the ratio grows as entries become similar and as rho shrinks.");
    println!("# At min/max = 0 the paper claims ratio (1+rho)/rho; the Figure 3 estimator's");
    println!("# measured ratio there is close to 2 (see EXPERIMENTS.md).");
}
