//! Regenerates Figure 7: normalized variance of the max-dominance estimate
//! over two independently PPS-sampled traffic instances (known seeds), HT vs
//! L per-key estimators, as a function of the percentage of keys sampled.
//!
//! The workload is the calibrated synthetic substitute for the paper's
//! proprietary hourly IP-flow logs (see DESIGN.md).  Pass `--quick` to run a
//! reduced configuration.
//!
//! ```text
//! cargo run -p pie-bench --release --bin fig7_max_dominance [-- --quick]
//! ```

use pie_bench::fig7;
use pie_datagen::TrafficConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (config, fractions) = if quick {
        (TrafficConfig::small(1), vec![0.001, 0.01, 0.1, 0.5])
    } else {
        (
            TrafficConfig::paper_scale(),
            vec![0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.9],
        )
    };
    eprintln!(
        "generating {} keys/hour, sweeping {} sampling fractions (exact per-key variances)...",
        config.keys_per_hour,
        fractions.len(),
    );
    let points = fig7::compute(&config, &fractions);
    println!("{}", fig7::to_table(&points).render());
    for series in fig7::to_series(&points) {
        println!("{}", series.render());
    }
    let mc_trials = if quick { 60 } else { 200 };
    eprintln!("cross-checking through the batched Pipeline ({mc_trials} trials/fraction)...");
    let dataset = pie_datagen::generate_two_hours(&config);
    let mc_points = fig7::compute_monte_carlo_on(&dataset, &fractions, mc_trials, 1);
    let mut mc_table = pie_analysis::Table::new(
        "Figure 7 (Pipeline Monte-Carlo cross-check)",
        &["% sampled", "var[HT]/mu^2", "var[L]/mu^2", "var[HT]/var[L]"],
    );
    for p in &mc_points {
        mc_table.push_values(
            &[
                p.sampled_fraction * 100.0,
                p.ht_normalized_variance,
                p.l_normalized_variance,
                p.ratio(),
            ],
            4,
        );
    }
    println!("{}", mc_table.render());
    println!("# paper reference: var[HT]/var[L] between 2.45 and 2.7 across sampling rates");
    println!("# on the authors' two-hour gateway trace.");
}
