//! Prints the Algorithm 3 / Theorem 4.2 coefficients of the uniform-probability
//! `max^(L)` estimator: the prefix sums `A_h` and the coefficients `α_i`
//! applied to the sorted determining vector, for a sweep of `r` and `p`.
//!
//! The `r = 2` and `r = 3` columns can be checked against the closed forms
//! printed in Section 4.1 (Equation (22) and the following display).
//!
//! ```text
//! cargo run -p pie-bench --release --bin alg3_coefficients
//! ```

use pie_analysis::Table;
use pie_core::oblivious::MaxLUniform;

fn main() {
    for r in [2usize, 3, 4, 6, 8] {
        let mut table = Table::new(
            format!("Algorithm 3 coefficients, r = {r}"),
            &["p", "A_1", "A_r", "alpha_1", "alpha_2", "alpha_r"],
        );
        for &p in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let est = MaxLUniform::new(r, p);
            let a = est.prefix_sums_slice();
            let alpha = est.coefficients();
            table.push_values(&[p, a[0], a[r - 1], alpha[0], alpha[1], alpha[r - 1]], 5);
        }
        println!("{}", table.render());
    }
    println!("# checks: alpha_1 > 0, alpha_i < 0 for i > 1, alpha_1 <= 1/p^r (Lemma 4.2);");
    println!("# for r = 2: alpha = (1/(p^2(2-p)), -(1-p)/(p^2(2-p)))  (Equation (22)).");
}
