//! Regenerates Figure 3 as a numeric audit: the closed-form `max^(L)`
//! estimator for two PPS samples with known seeds, its per-outcome values, and
//! a quadrature check that every row is unbiased.
//!
//! ```text
//! cargo run -p pie-bench --release --bin fig3_pps_maxl_table
//! ```

use pie_bench::fig3;

fn main() {
    for tau in [[10.0, 10.0], [10.0, 5.0]] {
        let pairs = fig3::default_value_pairs(tau);
        let table = fig3::audit_table(tau, &pairs);
        println!("{}", table.render());
    }
    println!("note: the closed form follows Appendix A; the logarithm argument of the");
    println!("v2 <= tau2 <= v1 <= tau1 case is re-derived (the printed Eq. (30) does not");
    println!("reduce to its boundary value; see EXPERIMENTS.md). Column E[est] must match max(v).");
}
