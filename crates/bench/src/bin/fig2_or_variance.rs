//! Regenerates Figure 2: variance of `OR^(HT)`, `OR^(L)` and `OR^(U)` on the
//! vectors (1,1) and (1,0) as a function of `p = p₁ = p₂`.
//!
//! ```text
//! cargo run -p pie-bench --release --bin fig2_or_variance
//! ```

use pie_bench::fig2;

fn main() {
    println!("Figure 2: variance of OR estimators vs p (log-spaced), data (1,1) and (1,0)\n");
    for series in fig2::compute(0.01, 0.9, 30) {
        println!("{}", series.render());
    }
    println!("# asymptotics as p -> 0 (Section 4.3):");
    println!("#   var[HT] ~ 1/p^2 ;  var[L],var[U] ~ 1/(4p^2) on (1,0) ;  ~ 1/(2p) on (1,1)");
}
