//! Regenerates Figure 6: the per-instance sample size required to estimate a
//! two-set distinct count with a target coefficient of variation, HT vs L,
//! for Jaccard coefficients {0, 0.5, 0.9, 1} — plus the s(L)/s(HT) ratio.
//!
//! ```text
//! cargo run -p pie-bench --release --bin fig6_distinct_sample_size
//! ```

use pie_bench::fig6;

fn main() {
    let grid = fig6::default_n_grid();
    for cv in [0.1, 0.02] {
        println!("== target cv = {cv} ==\n");
        println!("-- required sample size s vs n --");
        for series in fig6::sample_size_curves(cv, &grid) {
            println!("{}", series.render());
        }
        println!("-- ratio s(L)/s(HT) vs n --");
        for series in fig6::ratio_curves(cv, &grid) {
            println!("{}", series.render());
        }
    }
    println!("# paper reference: the L estimator needs a factor ≈ sqrt(1-J)/2 fewer samples;");
    println!("# for J = 1 a constant number of samples suffices for any fixed cv.");
}
