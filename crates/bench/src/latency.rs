//! Shared latency aggregation for the serving benches.
//!
//! Every bench that talks to a live server collects per-request wall times
//! and reports throughput plus tail percentiles; this module is that one
//! summary, so `serve_throughput`, `engine_load`, and future harnesses
//! agree on nearest-rank percentile semantics and JSON field meanings.

/// The nearest-rank `q`-th percentile (`0.0..=1.0`) of an ascending-sorted
/// sample in milliseconds.  Empty samples report `NaN` — a bench row with
/// zero completions has no latency to summarize.
#[must_use]
pub fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Throughput and tail latency of one bench row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Completed requests in the sample.
    pub count: usize,
    /// Wall-clock seconds the row ran for.
    pub elapsed_s: f64,
    /// Completions per second over `elapsed_s`.
    pub throughput_per_s: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, milliseconds.
    pub p999_ms: f64,
}

impl LatencySummary {
    /// Summarizes per-request latencies (any order; sorted in place) over a
    /// row that took `elapsed_s` seconds of wall clock.
    #[must_use]
    pub fn from_latencies_ms(mut latencies_ms: Vec<f64>, elapsed_s: f64) -> Self {
        latencies_ms.sort_by(f64::total_cmp);
        Self {
            count: latencies_ms.len(),
            elapsed_s,
            throughput_per_s: if elapsed_s > 0.0 {
                latencies_ms.len() as f64 / elapsed_s
            } else {
                f64::NAN
            },
            p50_ms: percentile(&latencies_ms, 0.50),
            p99_ms: percentile(&latencies_ms, 0.99),
            p999_ms: percentile(&latencies_ms, 0.999),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank_on_sorted_input() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.50), 51.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn summary_sorts_and_counts() {
        let summary = LatencySummary::from_latencies_ms(vec![3.0, 1.0, 2.0, 4.0], 2.0);
        assert_eq!(summary.count, 4);
        assert_eq!(summary.throughput_per_s, 2.0);
        assert_eq!(summary.p50_ms, 3.0);
        assert_eq!(summary.p999_ms, 4.0);
    }
}
