//! Figure 1: variance ratios of `max^(L)` and `max^(U)` against `max^(HT)`
//! over weight-oblivious Poisson samples with `p₁ = p₂ = 1/2`, as a function
//! of `min(v)/max(v)`.

use pie_analysis::{evaluate_oblivious_family, Series};
use pie_core::functions::maximum;
use pie_core::oblivious::{MaxHtOblivious, MaxL2, MaxU2};
use pie_core::suite::max_oblivious_suite;
use pie_core::variance::exact_oblivious_variance;

/// The curves of Figure 1 for sampling probability `p` (the paper uses 1/2):
/// `VAR[max^(L)]/VAR[max^(HT)]` and `VAR[max^(U)]/VAR[max^(HT)]` as functions
/// of `min/max ∈ [0, 1]`, computed by exact enumeration.
#[must_use]
pub fn compute(p: f64, points: usize) -> Vec<Series> {
    let mut l_series = Series::new("var[L]/var[HT]");
    let mut u_series = Series::new("var[U]/var[HT]");
    let l = MaxL2::new(p, p);
    let u = MaxU2::new(p, p);
    for i in 0..=points {
        let ratio = i as f64 / points as f64;
        let v = [1.0, ratio];
        let probs = [p, p];
        let var_ht = exact_oblivious_variance(&MaxHtOblivious, &v, &probs);
        let var_l = exact_oblivious_variance(&l, &v, &probs);
        let var_u = exact_oblivious_variance(&u, &v, &probs);
        l_series.push(ratio, var_l / var_ht);
        u_series.push(ratio, var_u / var_ht);
    }
    vec![l_series, u_series]
}

/// Monte-Carlo cross-check of [`compute`] through the batched estimation
/// API: the whole `max` estimator family ([`max_oblivious_suite`]) is
/// evaluated against shared simulated outcome batches
/// ([`evaluate_oblivious_family`], backed by
/// [`pie_core::Estimator::estimate_batch`]) instead of a hand-rolled
/// per-trial loop.
#[must_use]
pub fn compute_monte_carlo(p: f64, points: usize, trials: u64, seed: u64) -> Vec<Series> {
    let mut l_series = Series::new("var[L]/var[HT] (mc)");
    let mut u_series = Series::new("var[U]/var[HT] (mc)");
    let registry = max_oblivious_suite(p, p);
    for i in 0..=points {
        let ratio = i as f64 / points as f64;
        let v = [1.0, ratio];
        let probs = [p, p];
        let family = evaluate_oblivious_family(
            &registry,
            maximum,
            &v,
            &probs,
            trials,
            seed.wrapping_add(i as u64),
        );
        let variance_of = |name: &str| {
            family
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| e.variance)
                .expect("estimator in suite")
        };
        let var_ht = variance_of("max_ht_oblivious");
        l_series.push(ratio, variance_of("max_l_2") / var_ht);
        u_series.push(ratio, variance_of("max_u_2") / var_ht);
    }
    vec![l_series, u_series]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monte_carlo_cross_check_matches_exact_enumeration() {
        let exact = compute(0.5, 4);
        let mc = compute_monte_carlo(0.5, 4, 60_000, 42);
        for (e_series, m_series) in exact.iter().zip(&mc) {
            for (&(_, e), &(_, m)) in e_series.points.iter().zip(&m_series.points) {
                assert!((e - m).abs() < 0.08, "exact ratio {e} vs monte-carlo {m}");
            }
        }
    }

    #[test]
    fn endpoints_match_closed_forms() {
        let series = compute(0.5, 10);
        let l = &series[0];
        let u = &series[1];
        // min/max = 0: L ratio = (11/9)/3, U ratio = 1/3.
        assert!((l.points[0].1 - 11.0 / 27.0).abs() < 1e-9);
        assert!((u.points[0].1 - 1.0 / 3.0).abs() < 1e-9);
        // min/max = 1: L ratio = (1/3)/3 = 1/9, U ratio = 1/3.
        assert!((l.points.last().unwrap().1 - 1.0 / 9.0).abs() < 1e-9);
        assert!((u.points.last().unwrap().1 - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ratios_stay_below_one() {
        for s in compute(0.3, 20) {
            for &(_, y) in &s.points {
                assert!(y <= 1.0 + 1e-9, "ratio {y} exceeds 1");
            }
        }
    }
}
