//! Figure 1: variance ratios of `max^(L)` and `max^(U)` against `max^(HT)`
//! over weight-oblivious Poisson samples with `p₁ = p₂ = 1/2`, as a function
//! of `min(v)/max(v)`.

use pie_analysis::Series;
use pie_core::oblivious::{MaxHtOblivious, MaxL2, MaxU2};
use pie_core::variance::exact_oblivious_variance;

/// The curves of Figure 1 for sampling probability `p` (the paper uses 1/2):
/// `VAR[max^(L)]/VAR[max^(HT)]` and `VAR[max^(U)]/VAR[max^(HT)]` as functions
/// of `min/max ∈ [0, 1]`, computed by exact enumeration.
#[must_use]
pub fn compute(p: f64, points: usize) -> Vec<Series> {
    let mut l_series = Series::new("var[L]/var[HT]");
    let mut u_series = Series::new("var[U]/var[HT]");
    let l = MaxL2::new(p, p);
    let u = MaxU2::new(p, p);
    for i in 0..=points {
        let ratio = i as f64 / points as f64;
        let v = [1.0, ratio];
        let probs = [p, p];
        let var_ht = exact_oblivious_variance(&MaxHtOblivious, &v, &probs);
        let var_l = exact_oblivious_variance(&l, &v, &probs);
        let var_u = exact_oblivious_variance(&u, &v, &probs);
        l_series.push(ratio, var_l / var_ht);
        u_series.push(ratio, var_u / var_ht);
    }
    vec![l_series, u_series]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_closed_forms() {
        let series = compute(0.5, 10);
        let l = &series[0];
        let u = &series[1];
        // min/max = 0: L ratio = (11/9)/3, U ratio = 1/3.
        assert!((l.points[0].1 - 11.0 / 27.0).abs() < 1e-9);
        assert!((u.points[0].1 - 1.0 / 3.0).abs() < 1e-9);
        // min/max = 1: L ratio = (1/3)/3 = 1/9, U ratio = 1/3.
        assert!((l.points.last().unwrap().1 - 1.0 / 9.0).abs() < 1e-9);
        assert!((u.points.last().unwrap().1 - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ratios_stay_below_one() {
        for s in compute(0.3, 20) {
            for &(_, y) in &s.points {
                assert!(y <= 1.0 + 1e-9, "ratio {y} exceeds 1");
            }
        }
    }
}
