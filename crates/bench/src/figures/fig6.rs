//! Figure 6: the per-instance sample size needed to estimate a distinct count
//! with a target coefficient of variation, for the HT and L estimators, as a
//! function of the set size `n` and the Jaccard coefficient `J`.

use pie_analysis::Series;
use pie_core::aggregate::{required_sample_size_ht, required_sample_size_l};

/// The Jaccard coefficients plotted in the paper's Figure 6.
pub const JACCARDS: [f64; 4] = [0.0, 0.5, 0.9, 1.0];

/// Top panels: required sample size `s` versus `n` (log–log), one curve per
/// estimator × Jaccard value, for a fixed target `cv`.
#[must_use]
pub fn sample_size_curves(cv: f64, n_values: &[f64]) -> Vec<Series> {
    let mut curves = Vec::new();
    for &j in &JACCARDS {
        let mut ht = Series::new(format!("HT J={j}"));
        let mut l = Series::new(format!("L J={j}"));
        for &n in n_values {
            ht.push(n, required_sample_size_ht(n, j, cv));
            l.push(n, required_sample_size_l(n, j, cv));
        }
        curves.push(ht);
        curves.push(l);
    }
    curves
}

/// Bottom panels: the ratio `s(L)/s(HT)` versus `n`, one curve per Jaccard
/// value.
#[must_use]
pub fn ratio_curves(cv: f64, n_values: &[f64]) -> Vec<Series> {
    JACCARDS
        .iter()
        .map(|&j| {
            let mut series = Series::new(format!("L/HT J={j}"));
            for &n in n_values {
                let ht = required_sample_size_ht(n, j, cv);
                let l = required_sample_size_l(n, j, cv);
                series.push(n, if ht > 0.0 { l / ht } else { f64::NAN });
            }
            series
        })
        .collect()
}

/// The logarithmic grid of set sizes used by the paper (10² to 10¹⁰).
#[must_use]
pub fn default_n_grid() -> Vec<f64> {
    (2..=10).map(|e| 10f64.powi(e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_needs_at_most_half_the_samples_for_disjoint_sets() {
        let ratios = ratio_curves(0.1, &default_n_grid());
        let disjoint = &ratios[0]; // J = 0
        for &(n, ratio) in &disjoint.points {
            if n >= 1e4 {
                assert!((ratio - 0.5).abs() < 0.05, "J=0, n={n}: ratio {ratio}");
            }
        }
    }

    #[test]
    fn identical_sets_need_vanishing_sample_fraction() {
        let ratios = ratio_curves(0.1, &default_n_grid());
        let identical = ratios.last().unwrap(); // J = 1
        let large_n_ratio = identical.points.last().unwrap().1;
        assert!(large_n_ratio < 0.01, "J=1 ratio at n=1e10: {large_n_ratio}");
    }

    #[test]
    fn sample_sizes_grow_with_n_and_shrink_with_cv() {
        let curves_loose = sample_size_curves(0.1, &default_n_grid());
        let curves_tight = sample_size_curves(0.02, &default_n_grid());
        for (loose, tight) in curves_loose.iter().zip(&curves_tight) {
            for (a, b) in loose.points.iter().zip(&tight.points) {
                assert!(b.1 >= a.1, "tighter cv must not need fewer samples");
            }
            for w in loose.points.windows(2) {
                assert!(
                    w[1].1 >= w[0].1 * 0.999,
                    "sample size should not shrink with n"
                );
            }
        }
    }
}
