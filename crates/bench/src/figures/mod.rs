//! One module per figure/table of the paper's evaluation, each exposing the
//! computation behind the corresponding harness binary and Criterion bench.

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
