//! Figure 3: the closed-form `max^(L)` estimator for two PPS-sampled
//! instances with known seeds — the determining-vector map, the per-case
//! estimate values, and an unbiasedness audit by quadrature.

use pie_analysis::{pps2_expectation, Table};
use pie_core::weighted::MaxLPps2;
use pie_core::Estimator;
use pie_sampling::{WeightedEntry, WeightedOutcome};

/// One row of the Figure 3 audit: a data vector, the estimator's value on its
/// four outcome types, and the quadrature check of unbiasedness.
#[must_use]
pub fn audit_table(tau: [f64; 2], value_pairs: &[[f64; 2]]) -> Table {
    let mut table = Table::new(
        format!("Figure 3 audit (tau* = {:?})", tau),
        &[
            "v1",
            "v2",
            "est(S={1,2})",
            "est(S={1},u2=0.9)",
            "est(S={2},u1=0.9)",
            "E[est] (quadrature)",
            "max(v)",
        ],
    );
    for &[v1, v2] in value_pairs {
        let both = outcome(tau, [Some(v1), Some(v2)], [0.5, 0.5]);
        let only1 = outcome(tau, [Some(v1), None], [0.5, 0.9]);
        let only2 = outcome(tau, [None, Some(v2)], [0.9, 0.5]);
        let expectation = pps2_expectation(&MaxLPps2, [v1, v2], tau);
        table.push_values(
            &[
                v1,
                v2,
                MaxLPps2.estimate(&both),
                if v1 > 0.0 {
                    MaxLPps2.estimate(&only1)
                } else {
                    0.0
                },
                if v2 > 0.0 {
                    MaxLPps2.estimate(&only2)
                } else {
                    0.0
                },
                expectation,
                v1.max(v2),
            ],
            4,
        );
    }
    table
}

fn outcome(tau: [f64; 2], values: [Option<f64>; 2], seeds: [f64; 2]) -> WeightedOutcome {
    WeightedOutcome::new(
        (0..2)
            .map(|i| WeightedEntry {
                tau_star: tau[i],
                seed: Some(seeds[i]),
                value: values[i],
            })
            .collect(),
    )
}

/// The default value grid used by the harness binary.
#[must_use]
pub fn default_value_pairs(tau: [f64; 2]) -> Vec<[f64; 2]> {
    let max = tau[0].max(tau[1]);
    let mut pairs = Vec::new();
    for &frac1 in &[0.1, 0.3, 0.5, 0.8, 1.1] {
        for &frac2 in &[0.0, 0.2, 0.5, 1.0] {
            let v1 = frac1 * max;
            let v2 = frac2 * v1;
            pairs.push([v1, v2]);
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_rows_are_unbiased() {
        let tau = [10.0, 10.0];
        let table = audit_table(tau, &default_value_pairs(tau));
        assert_eq!(table.len(), default_value_pairs(tau).len());
        // The rendered table carries the quadrature expectation next to the
        // truth; spot-check a couple of values directly.
        for &[v1, v2] in &default_value_pairs(tau)[..6] {
            let mean = pps2_expectation(&MaxLPps2, [v1, v2], tau);
            let truth = v1.max(v2);
            if truth > 0.0 {
                assert!((mean - truth).abs() / truth < 3e-3);
            }
        }
    }
}
