//! Figure 4: normalized variance of `max^(HT)` and `max^(L)` over two
//! independent PPS samples with known seeds and equal thresholds
//! `τ*₁ = τ*₂ = τ*`, plus their ratio, as functions of `min(v)/max(v)`
//! for several values of `ρ = max(v)/τ*`.

use pie_analysis::{pps2_variance, Series};
use pie_core::weighted::{MaxHtPps, MaxLPps2};

/// Panels (A)/(B): `VAR/τ*²` of both estimators as a function of `min/max`
/// for a single `ρ`.
#[must_use]
pub fn normalized_variance_curves(rho: f64, points: usize) -> Vec<Series> {
    let tau = 1.0f64;
    let v1 = rho * tau;
    let mut ht = Series::new(format!("var[HT]/(tau*)^2, max/tau* = {rho}"));
    let mut l = Series::new(format!("var[L]/(tau*)^2,  max/tau* = {rho}"));
    for i in 0..=points {
        let frac = i as f64 / points as f64;
        let v = [v1, frac * v1];
        ht.push(frac, pps2_variance(&MaxHtPps, v, [tau, tau]) / (tau * tau));
        l.push(frac, pps2_variance(&MaxLPps2, v, [tau, tau]) / (tau * tau));
    }
    vec![ht, l]
}

/// Panel (C): the ratio `VAR[HT]/VAR[L]` as a function of `min/max` for each
/// requested `ρ`.
#[must_use]
pub fn ratio_curves(rhos: &[f64], points: usize) -> Vec<Series> {
    let tau = 1.0f64;
    rhos.iter()
        .map(|&rho| {
            let v1 = rho * tau;
            let mut series = Series::new(format!("max/tau* = {rho}"));
            for i in 0..=points {
                let frac = i as f64 / points as f64;
                let v = [v1, frac * v1];
                let var_ht = pps2_variance(&MaxHtPps, v, [tau, tau]);
                let var_l = pps2_variance(&MaxLPps2, v, [tau, tau]);
                let ratio = if var_l > 0.0 {
                    var_ht / var_l
                } else {
                    f64::NAN
                };
                series.push(frac, ratio);
            }
            series
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_core::variance::max_ht_pps_normalized_variance;

    #[test]
    fn ht_curve_is_flat_and_matches_closed_form() {
        let curves = normalized_variance_curves(0.5, 8);
        let expected = max_ht_pps_normalized_variance(0.5);
        for &(_, y) in &curves[0].points {
            assert!(
                (y - expected).abs() < 1e-2,
                "HT normalized variance {y} vs {expected}"
            );
        }
    }

    #[test]
    fn l_dominates_ht_and_gains_grow_with_similarity() {
        let curves = normalized_variance_curves(0.5, 8);
        let (ht, l) = (&curves[0], &curves[1]);
        for i in 0..ht.points.len() {
            assert!(l.points[i].1 <= ht.points[i].1 + 1e-6);
        }
        // The L variance decreases as min/max grows (entries more similar).
        assert!(l.points.last().unwrap().1 < l.points[0].1);
    }

    #[test]
    fn ratio_curves_increase_with_similarity_and_with_smaller_rho_at_high_similarity() {
        let curves = ratio_curves(&[0.5, 0.1], 8);
        for series in &curves {
            let first = series.points[0].1;
            let last = series.points.last().unwrap().1;
            assert!(last > first, "ratio should grow with min/max similarity");
            assert!(
                first >= 1.0 - 1e-6,
                "L never loses to HT for equal thresholds"
            );
        }
        // At min/max = 1 the ratio is roughly 2/ρ(2−ρ)·(1−ρ²)/(1−ρ) …; what
        // matters for the figure's shape is that smaller ρ gives a larger
        // ratio at the similar-entries end.
        let at_one = |s: &Series| s.points.last().unwrap().1;
        assert!(at_one(&curves[1]) > at_one(&curves[0]));
    }
}
