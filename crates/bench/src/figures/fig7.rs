//! Figure 7: normalized variance of the max-dominance estimate
//! `Σ_h max(v₁(h), v₂(h))` over two independently PPS-sampled traffic
//! instances with known seeds, as a function of the fraction of keys sampled,
//! comparing the HT and L per-key estimators.
//!
//! The paper runs this on two consecutive hours of proprietary gateway
//! traffic; this harness uses the calibrated synthetic generator
//! (`pie_datagen::traffic`) — see DESIGN.md for the substitution rationale.
//!
//! As in the paper, the plotted quantity is the *exact* normalized variance
//! `Σ_h VAR[max̂(h)] / (Σ_h max(v(h)))²`: per-key estimates are independent, so
//! the aggregate variance is the sum of per-key variances.  The HT per-key
//! variance has a closed form; the L per-key variance is computed by
//! quadrature.

use std::sync::Arc;

use partial_info_estimators::{Pipeline, Scheme, Statistic};
use pie_analysis::{exact::pps2_mean_variance, Series, Table};
use pie_core::aggregate::true_max_dominance;
use pie_core::suite::max_weighted_suite;
use pie_core::weighted::MaxLPps2;
use pie_datagen::{generate_two_hours, Dataset, TrafficConfig};

/// Quadrature resolution used per key (coarser than the default because tens
/// of thousands of keys are evaluated per point).
const PER_KEY_PANELS: usize = 192;

/// One sampled point of the figure.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Point {
    /// Fraction of keys sampled per instance (the x-axis, in percent in the paper).
    pub sampled_fraction: f64,
    /// Normalized variance of the HT estimate, `Σ VAR / (Σ max)²`.
    pub ht_normalized_variance: f64,
    /// Normalized variance of the L estimate.
    pub l_normalized_variance: f64,
}

impl Fig7Point {
    /// The ratio `VAR[HT]/VAR[L]` at this sampling fraction.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.ht_normalized_variance / self.l_normalized_variance
    }
}

/// Chooses the PPS threshold that samples roughly `fraction` of an instance's
/// keys: per-key inclusion probability `min(1, v/τ*)`, solved so that the
/// expected sample size is `fraction · #keys`.
#[must_use]
pub fn tau_star_for_fraction(dataset: &Dataset, fraction: f64) -> f64 {
    let inst = &dataset.instances()[0];
    let target = fraction * inst.len() as f64;
    pie_sampling::PpsPoissonSampler::with_expected_size(inst, target)
        .map_or(f64::MIN_POSITIVE, |s| s.tau_star())
}

/// The exact per-key variance of the PPS `max^(HT)` estimator with equal
/// thresholds is `max(v)²·(1/p* − 1)` where `p* = ∏ min(1, max(v)/τ*)`.
fn ht_key_variance(v: [f64; 2], tau_star: f64) -> f64 {
    let mx = v[0].max(v[1]);
    if mx <= 0.0 {
        return 0.0;
    }
    let p_star: f64 = (0..2).map(|_| (mx / tau_star).min(1.0)).product();
    mx * mx * (1.0 / p_star - 1.0)
}

/// Computes the figure for the given traffic configuration and sampling
/// fractions, by exact per-key variance summation.
#[must_use]
pub fn compute(config: &TrafficConfig, fractions: &[f64]) -> Vec<Fig7Point> {
    let dataset = generate_two_hours(config);
    compute_on(&dataset, fractions)
}

/// Computes the figure on an explicit two-instance dataset.
///
/// # Panics
/// Panics if the dataset does not have exactly two instances.
#[must_use]
pub fn compute_on(dataset: &Dataset, fractions: &[f64]) -> Vec<Fig7Point> {
    assert_eq!(dataset.num_instances(), 2, "Figure 7 uses two instances");
    let truth = true_max_dominance(dataset.instances(), |_| true);
    let keys = dataset.keys();
    fractions
        .iter()
        .map(|&fraction| {
            let tau_star = tau_star_for_fraction(dataset, fraction);
            let mut var_ht = 0.0;
            let mut var_l = 0.0;
            for &key in &keys {
                let vec = dataset.value_vector(key);
                let v = [vec[0], vec[1]];
                if v[0].max(v[1]) <= 0.0 {
                    continue;
                }
                var_ht += ht_key_variance(v, tau_star);
                let (_, var) =
                    pps2_mean_variance(&MaxLPps2, v, [tau_star, tau_star], PER_KEY_PANELS);
                var_l += var;
            }
            Fig7Point {
                sampled_fraction: fraction,
                ht_normalized_variance: var_ht / (truth * truth),
                l_normalized_variance: var_l / (truth * truth),
            }
        })
        .collect()
}

/// Monte-Carlo version of [`compute_on`], run end to end through the
/// umbrella crate's [`Pipeline`]: datagen → PPS sampling → pooled outcome
/// assembly → batched estimation ([`pie_core::Estimator::estimate_batch`])
/// → max-dominance aggregation, repeated over `trials` sampling trials per
/// fraction.
///
/// Unlike [`compute_on`] (exact per-key variance summation), this measures
/// the *empirical* normalized variance of the whole aggregate, which is what
/// the production pipeline would observe.
///
/// # Panics
/// Panics if the dataset does not have exactly two instances.
#[must_use]
pub fn compute_monte_carlo_on(
    dataset: &Dataset,
    fractions: &[f64],
    trials: u64,
    base_salt: u64,
) -> Vec<Fig7Point> {
    assert_eq!(dataset.num_instances(), 2, "Figure 7 uses two instances");
    // One deep copy into a shared handle; each fraction's pipeline run then
    // borrows it instead of cloning the instances again.
    let shared = std::sync::Arc::new(dataset.clone());
    fractions
        .iter()
        .map(|&fraction| {
            let tau_star = tau_star_for_fraction(dataset, fraction);
            let report = Pipeline::new()
                .dataset(Arc::clone(&shared))
                .scheme(Scheme::pps(tau_star))
                .estimators(max_weighted_suite())
                .statistic(Statistic::max_dominance())
                .trials(trials)
                .base_salt(base_salt)
                .run()
                .expect("matched scheme and estimators");
            Fig7Point {
                sampled_fraction: fraction,
                ht_normalized_variance: report
                    .get("max_ht_pps")
                    .expect("HT in suite")
                    .normalized_variance(),
                l_normalized_variance: report
                    .get("max_l_pps_2")
                    .expect("L in suite")
                    .normalized_variance(),
            }
        })
        .collect()
}

/// Renders the points as the two series of the paper's figure.
#[must_use]
pub fn to_series(points: &[Fig7Point]) -> Vec<Series> {
    let mut ht = Series::new("HT");
    let mut l = Series::new("L");
    for p in points {
        ht.push(p.sampled_fraction * 100.0, p.ht_normalized_variance);
        l.push(p.sampled_fraction * 100.0, p.l_normalized_variance);
    }
    vec![ht, l]
}

/// Renders the points as a table with the variance ratio column.
#[must_use]
pub fn to_table(points: &[Fig7Point]) -> Table {
    let mut table = Table::new(
        "Figure 7: max dominance over two traffic instances",
        &["% sampled", "var[HT]/mu^2", "var[L]/mu^2", "var[HT]/var[L]"],
    );
    for p in points {
        table.push_values(
            &[
                p.sampled_fraction * 100.0,
                p.ht_normalized_variance,
                p.l_normalized_variance,
                p.ratio(),
            ],
            4,
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_monte_carlo_agrees_with_exact_variances() {
        let dataset = generate_two_hours(&TrafficConfig::small(3));
        let fractions = [0.05];
        let exact = compute_on(&dataset, &fractions);
        // Empirical variance over n trials of a heavy-tailed aggregate
        // converges slowly; 600 trials brings it within tens of percent of
        // the exact per-key sum (measured: HT within 16%, L within 10%).
        let mc = compute_monte_carlo_on(&dataset, &fractions, 600, 17);
        for (e, m) in exact.iter().zip(&mc) {
            assert!(
                (e.ht_normalized_variance - m.ht_normalized_variance).abs()
                    < 0.4 * e.ht_normalized_variance,
                "HT exact {} vs pipeline MC {}",
                e.ht_normalized_variance,
                m.ht_normalized_variance
            );
            assert!(
                (e.l_normalized_variance - m.l_normalized_variance).abs()
                    < 0.4 * e.l_normalized_variance,
                "L exact {} vs pipeline MC {}",
                e.l_normalized_variance,
                m.l_normalized_variance
            );
            assert!(m.l_normalized_variance < m.ht_normalized_variance);
        }
    }

    #[test]
    fn l_beats_ht_at_every_sampling_fraction() {
        let points = compute(&TrafficConfig::small(3), &[0.02, 0.1]);
        for p in &points {
            assert!(
                p.l_normalized_variance < p.ht_normalized_variance,
                "L should beat HT at fraction {}",
                p.sampled_fraction
            );
            assert!(
                p.ratio() > 1.8 && p.ratio() < 5.0,
                "ratio {} should be in the rough range the paper reports",
                p.ratio()
            );
        }
    }

    #[test]
    fn variance_decreases_with_more_sampling() {
        let points = compute(&TrafficConfig::small(5), &[0.02, 0.2]);
        assert!(points[1].ht_normalized_variance < points[0].ht_normalized_variance);
        assert!(points[1].l_normalized_variance < points[0].l_normalized_variance);
    }

    #[test]
    fn tau_star_hits_the_requested_fraction() {
        let dataset = generate_two_hours(&TrafficConfig::small(7));
        let tau = tau_star_for_fraction(&dataset, 0.1);
        let inst = &dataset.instances()[0];
        let expected: f64 = inst.iter().map(|(_, v)| (v / tau).min(1.0)).sum();
        assert!((expected - 0.1 * inst.len() as f64).abs() / (0.1 * inst.len() as f64) < 0.02);
    }

    #[test]
    fn ht_key_variance_closed_form() {
        // max = 4, tau* = 10 -> p* = 0.16, var = 16·(1/0.16 − 1) = 84.
        assert!((ht_key_variance([4.0, 2.0], 10.0) - 84.0).abs() < 1e-9);
        assert_eq!(ht_key_variance([0.0, 0.0], 10.0), 0.0);
        // Values above tau* are deterministic.
        assert_eq!(ht_key_variance([20.0, 3.0], 10.0), 0.0);
    }
}
