//! Figure 2: variance of `OR^(HT)`, `OR^(L)` and `OR^(U)` on the data vectors
//! `(1,1)` and `(1,0)` as a function of the sampling probability
//! `p = p₁ = p₂`.

use pie_analysis::{evaluate_oblivious_family, Series};
use pie_core::functions::boolean_or;
use pie_core::suite::or_oblivious_suite;
use pie_core::variance::{
    or_ht_variance, or_l_variance_change, or_l_variance_equal, or_u_variance_change,
    or_u_variance_equal,
};

/// The five curves of Figure 2 over a logarithmic sweep of `p` in
/// `[p_min, p_max]`.
#[must_use]
pub fn compute(p_min: f64, p_max: f64, points: usize) -> Vec<Series> {
    assert!(p_min > 0.0 && p_max <= 1.0 && p_min < p_max);
    let mut curves = vec![
        Series::new("HT on (1,0), (1,1)"),
        Series::new("L on (1,1)"),
        Series::new("L on (1,0)"),
        Series::new("U on (1,1)"),
        Series::new("U on (1,0)"),
    ];
    let log_min = p_min.ln();
    let log_max = p_max.ln();
    for i in 0..=points {
        let p = (log_min + (log_max - log_min) * i as f64 / points as f64).exp();
        curves[0].push(p, or_ht_variance(&[p, p]));
        curves[1].push(p, or_l_variance_equal(p, p));
        curves[2].push(p, or_l_variance_change(p, p));
        curves[3].push(p, or_u_variance_equal(p, p));
        curves[4].push(p, or_u_variance_change(p, p));
    }
    curves
}

/// Monte-Carlo cross-check of [`compute`] through the batched estimation
/// API: the `OR` family ([`or_oblivious_suite`]) runs over shared simulated
/// outcome batches via [`evaluate_oblivious_family`] on the two data vectors
/// of the figure, `(1,1)` and `(1,0)`.
#[must_use]
pub fn compute_monte_carlo(
    p_min: f64,
    p_max: f64,
    points: usize,
    trials: u64,
    seed: u64,
) -> Vec<Series> {
    assert!(p_min > 0.0 && p_max <= 1.0 && p_min < p_max);
    let mut curves = vec![
        Series::new("HT on (1,0), (1,1) (mc)"),
        Series::new("L on (1,1) (mc)"),
        Series::new("L on (1,0) (mc)"),
        Series::new("U on (1,1) (mc)"),
        Series::new("U on (1,0) (mc)"),
    ];
    let log_min = p_min.ln();
    let log_max = p_max.ln();
    for i in 0..=points {
        let p = (log_min + (log_max - log_min) * i as f64 / points as f64).exp();
        let registry = or_oblivious_suite(p, p);
        let probs = [p, p];
        let on_equal =
            evaluate_oblivious_family(&registry, boolean_or, &[1.0, 1.0], &probs, trials, seed);
        let on_change =
            evaluate_oblivious_family(&registry, boolean_or, &[1.0, 0.0], &probs, trials, seed + 1);
        let variance_of = |family: &[(String, pie_analysis::Evaluation)], name: &str| {
            family
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| e.variance)
                .expect("estimator in suite")
        };
        curves[0].push(p, variance_of(&on_change, "or_ht_oblivious"));
        curves[1].push(p, variance_of(&on_equal, "or_l_2"));
        curves[2].push(p, variance_of(&on_change, "or_l_2"));
        curves[3].push(p, variance_of(&on_equal, "or_u_2"));
        curves[4].push(p, variance_of(&on_change, "or_u_2"));
    }
    curves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monte_carlo_cross_check_tracks_closed_forms() {
        let exact = compute(0.2, 0.8, 3);
        let mc = compute_monte_carlo(0.2, 0.8, 3, 60_000, 7);
        for (e_series, m_series) in exact.iter().zip(&mc) {
            for (&(p, e), &(_, m)) in e_series.points.iter().zip(&m_series.points) {
                let tolerance = 0.05 * e.max(1.0);
                assert!(
                    (e - m).abs() < tolerance,
                    "p={p}: exact variance {e} vs monte-carlo {m}"
                );
            }
        }
    }

    #[test]
    fn curves_have_the_expected_ordering() {
        let curves = compute(0.05, 0.9, 40);
        for i in 0..curves[0].points.len() {
            let ht = curves[0].points[i].1;
            let l11 = curves[1].points[i].1;
            let l10 = curves[2].points[i].1;
            let u11 = curves[3].points[i].1;
            let u10 = curves[4].points[i].1;
            assert!(l11 <= ht + 1e-12);
            assert!(l10 <= ht + 1e-12);
            assert!(u11 <= ht + 1e-12);
            assert!(u10 <= ht + 1e-12);
            // L is best on (1,1); U is best on (1,0).
            assert!(l11 <= u11 + 1e-12);
            assert!(u10 <= l10 + 1e-12);
        }
    }

    #[test]
    fn small_p_asymptotics() {
        let curves = compute(0.001, 0.002, 1);
        let p: f64 = curves[0].points[0].0;
        assert!((curves[0].points[0].1 * p * p - 1.0).abs() < 0.01);
        assert!((curves[1].points[0].1 * 2.0 * p - 1.0).abs() < 0.01);
        assert!((curves[2].points[0].1 * 4.0 * p * p - 1.0).abs() < 0.02);
    }
}
