//! Figure 2: variance of `OR^(HT)`, `OR^(L)` and `OR^(U)` on the data vectors
//! `(1,1)` and `(1,0)` as a function of the sampling probability
//! `p = p₁ = p₂`.

use pie_analysis::Series;
use pie_core::variance::{
    or_ht_variance, or_l_variance_change, or_l_variance_equal, or_u_variance_change,
    or_u_variance_equal,
};

/// The five curves of Figure 2 over a logarithmic sweep of `p` in
/// `[p_min, p_max]`.
#[must_use]
pub fn compute(p_min: f64, p_max: f64, points: usize) -> Vec<Series> {
    assert!(p_min > 0.0 && p_max <= 1.0 && p_min < p_max);
    let mut curves = vec![
        Series::new("HT on (1,0), (1,1)"),
        Series::new("L on (1,1)"),
        Series::new("L on (1,0)"),
        Series::new("U on (1,1)"),
        Series::new("U on (1,0)"),
    ];
    let log_min = p_min.ln();
    let log_max = p_max.ln();
    for i in 0..=points {
        let p = (log_min + (log_max - log_min) * i as f64 / points as f64).exp();
        curves[0].push(p, or_ht_variance(&[p, p]));
        curves[1].push(p, or_l_variance_equal(p, p));
        curves[2].push(p, or_l_variance_change(p, p));
        curves[3].push(p, or_u_variance_equal(p, p));
        curves[4].push(p, or_u_variance_change(p, p));
    }
    curves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_the_expected_ordering() {
        let curves = compute(0.05, 0.9, 40);
        for i in 0..curves[0].points.len() {
            let ht = curves[0].points[i].1;
            let l11 = curves[1].points[i].1;
            let l10 = curves[2].points[i].1;
            let u11 = curves[3].points[i].1;
            let u10 = curves[4].points[i].1;
            assert!(l11 <= ht + 1e-12);
            assert!(l10 <= ht + 1e-12);
            assert!(u11 <= ht + 1e-12);
            assert!(u10 <= ht + 1e-12);
            // L is best on (1,1); U is best on (1,0).
            assert!(l11 <= u11 + 1e-12);
            assert!(u10 <= l10 + 1e-12);
        }
    }

    #[test]
    fn small_p_asymptotics() {
        let curves = compute(0.001, 0.002, 1);
        let p: f64 = curves[0].points[0].0;
        assert!((curves[0].points[0].1 * p * p - 1.0).abs() < 0.01);
        assert!((curves[1].points[0].1 * 2.0 * p - 1.0).abs() < 0.01);
        assert!((curves[2].points[0].1 * 4.0 * p * p - 1.0).abs() < 0.02);
    }
}
