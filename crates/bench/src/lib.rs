//! # pie-bench — benchmarks and figure-regeneration harnesses
//!
//! For every table and figure in the evaluation of Cohen & Kaplan (PODS 2011)
//! this crate provides:
//!
//! * a computation module under [`figures`] that produces the figure's data
//!   series / tables through the public API of the other workspace crates;
//! * a binary (`src/bin/fig*.rs`) that prints the regenerated rows
//!   (`cargo run -p pie-bench --release --bin fig1_max_oblivious`, …);
//! * a Criterion benchmark (`benches/`) that measures the cost of the
//!   underlying computation, plus throughput benchmarks for the samplers and
//!   the per-outcome estimators.
//!
//! EXPERIMENTS.md records the paper-reported versus regenerated values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod figures;
pub mod latency;

pub use figures::{fig1, fig2, fig3, fig4, fig6, fig7};
pub use latency::{percentile, LatencySummary};
