//! Ingest throughput of the streaming sampling API on a 1M-record traffic
//! workload: legacy single-stream batch ingestion (materialize an `Instance`
//! from the stream, then `sample()` it) versus sharded streaming sketch
//! ingestion (`ingest` → `merge` → `finalize`) at 1/2/4/8 shards, for the
//! PPS Poisson and bottom-k families.
//!
//! Two effects are measured:
//!
//! * **streaming vs. materialization** — the streaming path never builds the
//!   per-instance hash map, so even a single shard ingests far faster than
//!   the legacy batch path;
//! * **shard scaling** — each shard ingests on its own OS thread; on
//!   multi-core hosts the sharded rows drop further, while on a single
//!   hardware thread they only pay the (small) spawn + merge overhead.  The
//!   JSON records `threads_available` so the trajectory files stay
//!   interpretable across machines.
//!
//! Besides the console table, running this bench rewrites
//! `BENCH_stream_ingest_throughput.json` at the workspace root with the
//! machine-readable data points (uploaded as a CI artifact).
//!
//! ```text
//! cargo bench -p pie-bench --bench stream_ingest_throughput
//! ```

use std::time::Instant;

use partial_info_estimators::{ingest_merge_finalize, sketch_pools};
use pie_datagen::{generate_two_hours, ShardedStream, TrafficConfig};
use pie_sampling::{
    BottomKSampler, Instance, InstanceSample, PpsPoissonSampler, PpsRanks, SamplingScheme,
    SeedAssignment,
};

/// Target workload size: 2 instances × 500k keys = 1M records.
const KEYS_PER_INSTANCE: usize = 500_000;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ROUNDS: usize = 25;

/// One measured configuration.
struct Case {
    name: String,
    ms: f64,
    records_per_sec: f64,
}

fn measure_case(name: impl Into<String>, records: usize, mut pass: impl FnMut()) -> Case {
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        pass();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    Case {
        name: name.into(),
        ms: best,
        records_per_sec: records as f64 / (best / 1e3),
    }
}

/// The legacy path: the stream must be materialized into an `Instance`
/// (hash-map build over every record) before `sample()` can run.
fn legacy_single_stream<F>(stream: &ShardedStream, sample: F) -> Vec<InstanceSample>
where
    F: Fn(&Instance, u64) -> InstanceSample,
{
    (0..stream.num_instances())
        .map(|i| {
            let instance = Instance::from_pairs(stream.part(i, 0).iter().copied());
            sample(&instance, i as u64)
        })
        .collect()
}

fn run_family<S: SamplingScheme>(
    label: &str,
    scheme: &S,
    dataset: &pie_datagen::Dataset,
    seeds: &SeedAssignment,
    legacy: impl Fn(&Instance, u64) -> InstanceSample,
    cases: &mut Vec<Case>,
) {
    let single = ShardedStream::from_dataset(dataset, 1);
    let records = single.num_records();

    let case = measure_case(format!("{label}/single_stream_batch"), records, || {
        std::hint::black_box(legacy_single_stream(&single, &legacy));
    });
    let single_ms = case.ms;
    println!(
        "{:<44} {:>9.2} ms  ({:>5.1} Mrec/s)",
        case.name,
        case.ms,
        case.records_per_sec / 1e6
    );
    cases.push(case);

    // The shard counts are timed round-robin (every count once per round)
    // rather than in consecutive per-count blocks, so slow drift on the host
    // (frequency steps, steal time on shared vCPUs) lands on every count
    // equally instead of biasing whichever config ran last; the per-count
    // minimum across rounds is what each is judged by, exactly as before.
    let configs: Vec<(usize, ShardedStream)> = SHARD_COUNTS
        .iter()
        .map(|&shards| (shards, ShardedStream::from_dataset(dataset, shards)))
        .collect();
    // The streaming path shares the pipeline's sketch-lifecycle
    // implementation, so the bench measures the exact production pass.
    let mut pools: Vec<_> = configs
        .iter()
        .map(|(_, stream)| sketch_pools(scheme, stream, seeds))
        .collect();
    let mut best = [f64::INFINITY; SHARD_COUNTS.len()];
    let mut reference: Option<Vec<InstanceSample>> = None;
    for _ in 0..ROUNDS {
        for (c, (_, stream)) in configs.iter().enumerate() {
            let start = Instant::now();
            let out = ingest_merge_finalize(stream, &mut pools[c], seeds);
            best[c] = best[c].min(start.elapsed().as_secs_f64() * 1e3);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(r, &out, "shard count must not change the sample"),
            }
        }
    }
    for (c, (shards, _)) in configs.iter().enumerate() {
        let case = Case {
            name: format!("{label}/stream_ingest_shards_{shards}"),
            ms: best[c],
            records_per_sec: records as f64 / (best[c] / 1e3),
        };
        println!(
            "{:<44} {:>9.2} ms  ({:>5.1} Mrec/s, {:.2}x vs single-stream batch)",
            case.name,
            case.ms,
            case.records_per_sec / 1e6,
            single_ms / case.ms
        );
        cases.push(case);
    }
}

fn main() {
    let mut config = TrafficConfig::paper_scale();
    config.keys_per_hour = KEYS_PER_INSTANCE;
    config.flows_per_hour = 1.1e7;
    let dataset = generate_two_hours(&config);
    let total_records: usize = dataset.instances().iter().map(Instance::len).sum();
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "traffic workload: {total_records} records over {} instances, {threads} hardware thread(s)\n",
        dataset.num_instances()
    );

    let seeds = SeedAssignment::independent_known(0xBEEF);
    let mut cases: Vec<Case> = Vec::new();

    // ~50k of 1M records sampled per instance.
    let pps = PpsPoissonSampler::new(220.0);
    run_family(
        "pps_poisson",
        &pps,
        &dataset,
        &seeds,
        |inst, i| pps.sample(inst, &seeds, i),
        &mut cases,
    );
    println!();

    let bottomk = BottomKSampler::new(PpsRanks, 4096);
    run_family(
        "bottomk_pps_4096",
        &bottomk,
        &dataset,
        &seeds,
        |inst, i| bottomk.sample(inst, &seeds, i),
        &mut cases,
    );

    // Machine-readable trajectory point.
    let find = |name_prefix: &str| {
        cases
            .iter()
            .find(|c| c.name.starts_with(name_prefix))
            .expect("case measured")
    };
    let pps_single = find("pps_poisson/single_stream_batch");
    let pps_sharded4 = find("pps_poisson/stream_ingest_shards_4");
    // Regression guard for the bottom-k shard-scaling fix: with the
    // root-comparison rejection gate in `BottomKBuilder::offer` and the
    // single-pass bounded-selection `merge_many` (instead of a pairwise
    // re-heapifying merge tree, whose O(shards·k log k) cost grew with the
    // shard count and sank 8-shard throughput below 1-shard), adding bottom-k
    // shards must never cost throughput.  Scoped to the set-determined
    // family: the fix targets retention work that grows with the shard
    // count, which Poisson-style sketches never had.
    let monotone = find("bottomk_pps_4096/stream_ingest_shards_8").records_per_sec
        >= find("bottomk_pps_4096/stream_ingest_shards_1").records_per_sec;
    let rows: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{ \"case\": \"{}\", \"ms\": {:.2}, \"records_per_sec\": {:.0} }}",
                c.name, c.ms, c.records_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"stream_ingest_throughput\",\n  \"records\": {total_records},\n  \"threads_available\": {threads},\n  \"note\": \"single_stream_batch is the legacy ingest path (materialize an Instance from the stream, then batch sample()); stream_ingest_shards_N is the SamplingScheme sketch path with N key-partitioned shards, one thread per shard, merged per instance. Shard counts never change the resulting sample (asserted each run). shard_scaling_monotone records that bottom-k shards_8 throughput >= shards_1: bottom-k once violated this because non-surviving records paid a full O(log k) heap sift and the pairwise merge tree re-heapified O(shards*k log k) candidates; the offer-path root-comparison gate and the single-pass bounded-selection merge keep shard scaling monotone.\",\n  \"sharded_4_vs_single_stream_speedup\": {:.2},\n  \"shard_scaling_monotone\": {monotone},\n  \"results\": [\n{}\n  ]\n}}\n",
        pps_single.ms / pps_sharded4.ms,
        rows.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_stream_ingest_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    print!("{json}");
}
