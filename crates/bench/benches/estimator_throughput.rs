//! Criterion benchmarks for the per-outcome estimator costs across the whole
//! estimator family, plus the Algorithm 3 coefficient computation and the
//! Algorithm 1 derivation engine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pie_core::derive::{dense_first_order, derive_order_based, FiniteModel, ObliviousPoissonModel};
use pie_core::functions::boolean_or;
use pie_core::oblivious::{MaxLUniform, MaxU2Asymmetric};
use pie_core::quantile::{FullSampleHt, MinHtWeighted};
use pie_core::weighted::{OrLKnownSeeds, OrUKnownSeeds};
use pie_core::Estimator;
use pie_sampling::{ObliviousEntry, ObliviousOutcome, WeightedEntry, WeightedOutcome};

fn oblivious_outcome(r: usize) -> ObliviousOutcome {
    ObliviousOutcome::new(
        (0..r)
            .map(|i| ObliviousEntry {
                p: 0.4,
                value: if i % 3 != 0 {
                    Some(1.0 + i as f64)
                } else {
                    None
                },
            })
            .collect(),
    )
}

fn weighted_outcome() -> WeightedOutcome {
    WeightedOutcome::new(vec![
        WeightedEntry {
            tau_star: 4.0,
            seed: Some(0.2),
            value: Some(1.0),
        },
        WeightedEntry {
            tau_star: 4.0,
            seed: Some(0.7),
            value: None,
        },
    ])
}

fn bench_coefficients(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_alg3_coefficients");
    for r in [4usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| MaxLUniform::new(black_box(r), black_box(0.3)))
        });
    }
    group.finish();
}

fn bench_estimates(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_per_outcome");
    let o2 = oblivious_outcome(2);
    let o8 = oblivious_outcome(8);
    let uniform8 = MaxLUniform::new(8, 0.4);
    let asym = MaxU2Asymmetric::new(0.4, 0.4);
    let w = weighted_outcome();
    group.bench_function("max_l_uniform_r8", |b| {
        b.iter(|| uniform8.estimate(black_box(&o8)))
    });
    group.bench_function("max_u2_asymmetric", |b| {
        b.iter(|| asym.estimate(black_box(&o2)))
    });
    group.bench_function("full_sample_ht_range", |b| {
        b.iter(|| FullSampleHt::range().estimate(black_box(&o2)))
    });
    group.bench_function("or_l_known_seeds", |b| {
        b.iter(|| OrLKnownSeeds.estimate(black_box(&w)))
    });
    group.bench_function("or_u_known_seeds", |b| {
        b.iter(|| OrUKnownSeeds.estimate(black_box(&w)))
    });
    group.bench_function("min_ht_weighted", |b| {
        b.iter(|| MinHtWeighted.estimate(black_box(&w)))
    });
    group.finish();
}

fn bench_derivation_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_derivation");
    group.sample_size(20);
    for r in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("derive_or_l_binary", r), &r, |b, &r| {
            let model = ObliviousPoissonModel::binary(vec![0.4; r]);
            let order = dense_first_order(&model.data_vectors());
            b.iter(|| derive_order_based(&model, boolean_or, black_box(&order), 1e-12))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_coefficients,
    bench_estimates,
    bench_derivation_engine
);
criterion_main!(benches);
