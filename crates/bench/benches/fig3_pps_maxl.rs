//! Criterion benchmark for the Figure 3 machinery: the per-outcome cost of the
//! weighted known-seed `max^(L)` and `max^(HT)` estimators and the quadrature
//! audit behind the Figure 3 table.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use pie_analysis::pps2_expectation;
use pie_bench::fig3;
use pie_core::weighted::{MaxHtPps, MaxLPps2};
use pie_core::Estimator;
use pie_sampling::{WeightedEntry, WeightedOutcome};

fn outcome(v: [Option<f64>; 2], seeds: [f64; 2]) -> WeightedOutcome {
    WeightedOutcome::new(
        (0..2)
            .map(|i| WeightedEntry {
                tau_star: 10.0,
                seed: Some(seeds[i]),
                value: v[i],
            })
            .collect(),
    )
}

fn bench_estimators(c: &mut Criterion) {
    let both = outcome([Some(6.0), Some(3.0)], [0.3, 0.2]);
    let single = outcome([Some(6.0), None], [0.3, 0.4]);
    let mut group = c.benchmark_group("fig3_estimators");
    group.bench_function("max_l_pps2_both_sampled", |b| {
        b.iter(|| MaxLPps2.estimate(black_box(&both)))
    });
    group.bench_function("max_l_pps2_single_sampled", |b| {
        b.iter(|| MaxLPps2.estimate(black_box(&single)))
    });
    group.bench_function("max_ht_pps_both_sampled", |b| {
        b.iter(|| MaxHtPps.estimate(black_box(&both)))
    });
    group.finish();
}

fn bench_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_audit");
    group.sample_size(10);
    group.bench_function("quadrature_expectation_one_vector", |b| {
        b.iter(|| pps2_expectation(&MaxLPps2, black_box([6.0, 3.0]), black_box([10.0, 10.0])))
    });
    group.bench_function("audit_table_4_rows", |b| {
        b.iter(|| {
            fig3::audit_table(
                [10.0, 10.0],
                &[[1.0, 0.5], [3.0, 1.0], [5.0, 5.0], [8.0, 2.0]],
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_estimators, bench_audit);
criterion_main!(benches);
