//! Criterion benchmark for the Figure 6 computation (required-sample-size
//! curves) and the distinct-count estimators themselves on sampled set pairs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use pie_bench::fig6;
use pie_core::aggregate::{distinct_count_ht, distinct_count_l};
use pie_datagen::{generate_set_pair, SetPairConfig};
use pie_sampling::{sample_all, PpsPoissonSampler, SeedAssignment};

fn bench_fig6_curves(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    let grid = fig6::default_n_grid();
    group.bench_function("sample_size_curves_cv0.1", |b| {
        b.iter(|| fig6::sample_size_curves(black_box(0.1), black_box(&grid)))
    });
    group.bench_function("ratio_curves_cv0.02", |b| {
        b.iter(|| fig6::ratio_curves(black_box(0.02), black_box(&grid)))
    });
    group.finish();
}

fn bench_distinct_estimators(c: &mut Criterion) {
    let data = generate_set_pair(&SetPairConfig::new(50_000, 0.5));
    let seeds = SeedAssignment::independent_known(1);
    let samples = sample_all(
        &PpsPoissonSampler::new(1.0 / 0.05),
        data.instances(),
        &seeds,
    );
    let mut group = c.benchmark_group("fig6_estimators");
    group.bench_function("distinct_count_ht_50k_keys_p0.05", |b| {
        b.iter(|| {
            distinct_count_ht(
                black_box(&samples[0]),
                black_box(&samples[1]),
                &seeds,
                |_| true,
            )
        })
    });
    group.bench_function("distinct_count_l_50k_keys_p0.05", |b| {
        b.iter(|| {
            distinct_count_l(
                black_box(&samples[0]),
                black_box(&samples[1]),
                &seeds,
                |_| true,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6_curves, bench_distinct_estimators);
criterion_main!(benches);
