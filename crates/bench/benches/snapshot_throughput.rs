//! Snapshot codec throughput on a 1M-record traffic workload.
//!
//! Two questions, answered with machine-readable output:
//!
//! 1. **Codec speed** — encode / decode MB/s for every sketch family
//!    (oblivious Poisson, PPS Poisson, bottom-k, VarOpt), each filled from
//!    the same 1M-record stream.  Sketch snapshots are only useful
//!    operationally if serializing them is much cheaper than rebuilding
//!    them.
//! 2. **Checkpoint-restore vs recompute-from-scratch** — through the real
//!    `StreamPipeline` ingest-session API: time to re-ingest the whole
//!    stream versus time to restore the equivalent sketch state from
//!    snapshot files (plus the cost of writing the checkpoint itself).
//!    Restore is also asserted to reproduce the uninterrupted report bit
//!    for bit, so the speedup is measured on a path whose correctness is
//!    enforced in the same run.
//!
//! Besides the console table, running this bench rewrites
//! `BENCH_snapshot_throughput.json` at the workspace root (uploaded as a CI
//! artifact).
//!
//! ```text
//! cargo bench -p pie-bench --bench snapshot_throughput
//! ```

use std::sync::Arc;
use std::time::Instant;

use partial_info_estimators::core::suite::max_weighted_suite;
use partial_info_estimators::{Scheme, Statistic, StreamPipeline};
use pie_datagen::{generate_two_hours, Dataset, TrafficConfig};
use pie_sampling::{
    BottomKSampler, Instance, ObliviousPoissonSampler, PpsPoissonSampler, PpsRanks, SamplingScheme,
    SeedAssignment, Sketch, VarOptScheme,
};
use pie_store::{snapshot_from_slice, snapshot_to_vec, Decode, Encode};

const KEYS_PER_INSTANCE: usize = 500_000;
const ROUNDS: usize = 5;
const CHECKPOINT_SHARDS: usize = 4;
const CHECKPOINT_TRIALS: u64 = 8;

/// One measured codec row.
struct CodecCase {
    family: &'static str,
    encoded_bytes: usize,
    encode_mb_s: f64,
    decode_mb_s: f64,
}

fn best_of<T>(mut pass: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let out = pass();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("ROUNDS > 0"))
}

/// Fills one sketch per instance from the dataset's record stream and
/// measures encode/decode throughput over the combined snapshot bytes.
fn codec_case<S: SamplingScheme>(
    family: &'static str,
    scheme: &S,
    dataset: &Dataset,
    seeds: &SeedAssignment,
) -> CodecCase
where
    S::Sketch: Encode + Decode,
{
    let sketches: Vec<S::Sketch> = dataset
        .instances()
        .iter()
        .enumerate()
        .map(|(i, inst)| {
            let mut sketch = scheme.sketch(seeds, i as u64);
            for key in inst.sorted_keys() {
                sketch.ingest(key, inst.value(key));
            }
            sketch
        })
        .collect();

    let (encode_s, frames) = best_of(|| {
        sketches
            .iter()
            .map(|s| snapshot_to_vec(s).expect("encode sketch"))
            .collect::<Vec<_>>()
    });
    let encoded_bytes: usize = frames.iter().map(Vec::len).sum();
    let (decode_s, decoded) = best_of(|| {
        frames
            .iter()
            .map(|f| snapshot_from_slice::<S::Sketch>(f).expect("decode sketch"))
            .collect::<Vec<_>>()
    });
    // Decoded state must re-encode to the identical bytes (canonical codec).
    for (frame, sketch) in frames.iter().zip(&decoded) {
        assert_eq!(&snapshot_to_vec(sketch).unwrap(), frame, "{family}");
    }

    let mb = encoded_bytes as f64 / 1e6;
    CodecCase {
        family,
        encoded_bytes,
        encode_mb_s: mb / encode_s,
        decode_mb_s: mb / decode_s,
    }
}

fn main() {
    let mut config = TrafficConfig::paper_scale();
    config.keys_per_hour = KEYS_PER_INSTANCE;
    config.flows_per_hour = 1.1e7;
    let dataset = Arc::new(generate_two_hours(&config));
    let total_records: usize = dataset.instances().iter().map(Instance::len).sum();
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "traffic workload: {total_records} records over {} instances, {threads} hardware thread(s)\n",
        dataset.num_instances()
    );

    let seeds = SeedAssignment::independent_known(0xFEED);
    let cases = vec![
        codec_case(
            "oblivious_poisson_p0.1",
            &ObliviousPoissonSampler::new(0.1),
            &dataset,
            &seeds,
        ),
        codec_case(
            "pps_poisson_tau220",
            &PpsPoissonSampler::new(220.0),
            &dataset,
            &seeds,
        ),
        codec_case(
            "bottomk_pps_4096",
            &BottomKSampler::new(PpsRanks, 4096),
            &dataset,
            &seeds,
        ),
        codec_case("varopt_4096", &VarOptScheme::new(4096), &dataset, &seeds),
    ];
    for c in &cases {
        println!(
            "{:<24} {:>10} bytes   encode {:>8.1} MB/s   decode {:>8.1} MB/s",
            c.family, c.encoded_bytes, c.encode_mb_s, c.decode_mb_s
        );
    }

    // Checkpoint-restore vs recompute-from-scratch through the session API.
    let configure = || {
        StreamPipeline::new()
            .dataset(Arc::clone(&dataset))
            .scheme(Scheme::pps(220.0))
            .shards(CHECKPOINT_SHARDS)
            .estimators(max_weighted_suite())
            .statistic(Statistic::max_dominance())
            .trials(CHECKPOINT_TRIALS)
            .base_salt(3)
    };
    let dir = std::env::temp_dir().join(format!("pie-snapshot-bench-{}", std::process::id()));

    // Both recompute and restore pay the same fixed session setup
    // (partitioning the 1M-record stream, opening empty sketches); measure
    // it separately so the JSON can expose the net sketch-state cost too.
    let (setup_s, _) = best_of(|| configure().ingest_session().expect("configured"));
    let (recompute_s, full_session) = best_of(|| {
        let mut session = configure().ingest_session().expect("configured");
        session.ingest_all();
        session
    });
    let (checkpoint_s, ()) = best_of(|| full_session.checkpoint(&dir).expect("checkpoint"));
    let (restore_s, restored) = best_of(|| configure().resume(&dir).expect("resume"));
    let report = restored.finish().expect("complete");
    assert_eq!(
        report,
        configure().run().expect("configured"),
        "restored report must be bit-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();

    let setup_ms = setup_s * 1e3;
    let recompute_ms = recompute_s * 1e3;
    let checkpoint_ms = checkpoint_s * 1e3;
    let restore_ms = restore_s * 1e3;
    let speedup = recompute_ms / restore_ms;
    // Net of the shared session setup: re-ingesting all trials' sketch
    // state vs decoding it from snapshot files.
    let net_recompute_ms = (recompute_ms - setup_ms).max(0.0);
    let net_restore_ms = (restore_ms - setup_ms).max(0.01);
    let net_speedup = net_recompute_ms / net_restore_ms;
    println!(
        "\ncheckpoint/restore on the {total_records}-record stream ({CHECKPOINT_SHARDS} shards, {CHECKPOINT_TRIALS} trials):"
    );
    println!("  session setup (both paths)      : {setup_ms:8.2} ms");
    println!("  recompute from scratch          : {recompute_ms:8.2} ms");
    println!("  write checkpoint                : {checkpoint_ms:8.2} ms");
    println!(
        "  restore from snapshot           : {restore_ms:8.2} ms   ({speedup:.2}x vs recompute)"
    );
    println!(
        "  sketch state only (net of setup): {net_recompute_ms:8.2} ms re-ingest vs {net_restore_ms:8.2} ms decode ({net_speedup:.2}x)"
    );

    let rows: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{ \"family\": \"{}\", \"encoded_bytes\": {}, \"encode_mb_per_s\": {:.1}, \"decode_mb_per_s\": {:.1} }}",
                c.family, c.encoded_bytes, c.encode_mb_s, c.decode_mb_s
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"snapshot_throughput\",\n  \"records\": {total_records},\n  \"threads_available\": {threads},\n  \"note\": \"encode/decode MB/s of one full-stream sketch per instance and family (snapshot frame bytes, best of {ROUNDS}); checkpoint block times the StreamPipeline ingest-session path: recompute = fresh ingest of the whole stream, restore = load per-(instance, shard) snapshot files; both paths share session_setup_ms (stream partitioning), and the sketch_state_* fields net it out. The restored report is asserted bit-identical to the uninterrupted run.\",\n  \"codec\": [\n{}\n  ],\n  \"checkpoint\": {{ \"shards\": {CHECKPOINT_SHARDS}, \"trials\": {CHECKPOINT_TRIALS}, \"session_setup_ms\": {setup_ms:.2}, \"recompute_ms\": {recompute_ms:.2}, \"checkpoint_ms\": {checkpoint_ms:.2}, \"restore_ms\": {restore_ms:.2}, \"restore_vs_recompute_speedup\": {speedup:.2}, \"sketch_state_reingest_ms\": {net_recompute_ms:.2}, \"sketch_state_decode_ms\": {net_restore_ms:.2}, \"sketch_state_speedup\": {net_speedup:.2} }}\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_snapshot_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    print!("{json}");
}
