//! Million-user open-loop load harness for the multi-tenant query engine.
//!
//! One server hosts four finalized sketches covering all five estimator
//! suites.  Traffic is simulated from a population of 10^6 users whose
//! request frequencies follow a zipf law (exponent 1.1) — a hot head of
//! users re-asks the same few combinations, the long tail spreads across
//! the rest — and each user deterministically maps to one (sketch,
//! estimator, statistic) combination, so the estimate cache sees a
//! realistic skewed key distribution.  Arrivals are **open-loop**: each
//! request has a scheduled arrival time derived from the offered rate, and
//! latency is measured from that scheduled arrival to completion, so
//! server-side queueing shows up in the tail instead of silently
//! throttling the generator.
//!
//! Per offered-rate row the JSON reports achieved throughput,
//! p50/p99/p999 latency, typed `Overloaded` sheds, and the engine's
//! cumulative cache hit rate.  A separate cold-vs-warm section pins the
//! tentpole claim: serving a cached report must be at least 10x faster
//! than recomputing it (asserted in-run against a 128-trial sketch).
//!
//! Environment knobs: `PIE_LOAD_REQUESTS_PER_ROW` (default 1200) and
//! `PIE_LOAD_WORKERS` (default 8).
//!
//! ```text
//! cargo bench -p pie-bench --bench engine_load
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partial_info_estimators::datagen::{
    generate_set_pair, generate_two_hours, paper_example, SetPairConfig, TrafficConfig,
};
use partial_info_estimators::{CatalogEntry, Scheme};
use pie_bench::LatencySummary;
use pie_serve::{BatchQuery, ServeClient, ServeError, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated user population.
const USERS: usize = 1_000_000;
/// Zipf frequency exponent: user of popularity rank `i` is drawn with
/// probability proportional to `1 / i^s`.
const ZIPF_EXPONENT: f64 = 1.1;
/// Offered arrival rates, requests per second, one bench row each.
const OFFERED_RATES: [f64; 3] = [400.0, 1200.0, 2400.0];
/// Cold/warm comparison rounds (medians are reported).
const COLD_WARM_ROUNDS: usize = 5;

/// Inverse-CDF sampler over the zipf popularity ranks `0..n`.
struct ZipfUsers {
    cdf: Vec<f64>,
}

impl ZipfUsers {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += (rank as f64).powf(-exponent);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// splitmix64: a cheap, well-mixed hash from user rank to combination.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One servable (sketch, estimator, statistic) combination.
struct Combo {
    sketch: &'static str,
    estimator: &'static str,
    statistic: &'static str,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct RowResult {
    offered_rate: f64,
    summary: LatencySummary,
    sheds: u64,
    hit_rate: f64,
}

fn main() {
    let requests_per_row = env_usize("PIE_LOAD_REQUESTS_PER_ROW", 1200);
    let workers = env_usize("PIE_LOAD_WORKERS", 8).max(1);
    let threads_available = std::thread::available_parallelism().map_or(1, usize::from);

    // Four sketches spanning the five suites, small enough that a cache
    // miss is cheap — the load rows measure serving, not estimation.
    let server = Server::bind("127.0.0.1:0").expect("bind server");
    let addr = server.local_addr();
    let pair = Arc::new(paper_example().take_instances(2));
    let sets = Arc::new(generate_set_pair(&SetPairConfig::new(90, 0.5)));
    let traffic = Arc::new(generate_two_hours(&TrafficConfig::small(6)));
    server.catalog().insert(
        "pair",
        CatalogEntry::build(Arc::clone(&pair), Scheme::oblivious(0.5), 2, 8, 5).unwrap(),
    );
    server.catalog().insert(
        "sets_obl",
        CatalogEntry::build(Arc::clone(&sets), Scheme::oblivious(0.4), 2, 8, 9).unwrap(),
    );
    server.catalog().insert(
        "sets_pps",
        CatalogEntry::build(Arc::clone(&sets), Scheme::pps(1.5), 2, 8, 4).unwrap(),
    );
    server.catalog().insert(
        "traffic",
        CatalogEntry::build(Arc::clone(&traffic), Scheme::pps(150.0), 2, 8, 8).unwrap(),
    );
    let combos = [
        Combo {
            sketch: "pair",
            estimator: "max_oblivious",
            statistic: "max_dominance",
        },
        Combo {
            sketch: "pair",
            estimator: "max_oblivious",
            statistic: "distinct_count",
        },
        Combo {
            sketch: "pair",
            estimator: "max_oblivious_uniform",
            statistic: "max_dominance",
        },
        Combo {
            sketch: "sets_obl",
            estimator: "or_oblivious",
            statistic: "distinct_count",
        },
        Combo {
            sketch: "sets_pps",
            estimator: "or_weighted",
            statistic: "distinct_count",
        },
        Combo {
            sketch: "traffic",
            estimator: "max_weighted",
            statistic: "max_dominance",
        },
        Combo {
            sketch: "traffic",
            estimator: "max_weighted",
            statistic: "distinct_count",
        },
    ];

    println!(
        "zipf({ZIPF_EXPONENT}) traffic from {USERS} simulated users over {} combinations; \
         {workers} worker(s), {requests_per_row} requests/row, {threads_available} hardware thread(s)\n",
        combos.len()
    );
    let zipf = ZipfUsers::new(USERS, ZIPF_EXPONENT);

    // Warm every combination once so row-to-row comparisons measure a
    // steady-state cache, then snapshot the counters.
    {
        let mut client = ServeClient::connect(addr).expect("warmup connect");
        for combo in &combos {
            client
                .estimate(combo.sketch, combo.estimator, combo.statistic)
                .expect("warmup estimate");
        }
    }

    let mut rows = Vec::new();
    for offered_rate in OFFERED_RATES {
        // The request plan is drawn up front (zipf user → combination;
        // every 4th request is a whole-sketch BatchEstimate) so workers
        // only race on the shared arrival index.
        let mut rng = StdRng::seed_from_u64(0xE7617E + offered_rate as u64);
        let plan: Vec<(usize, bool)> = (0..requests_per_row)
            .map(|i| {
                let user = zipf.sample(&mut rng);
                (
                    (mix(user as u64) % combos.len() as u64) as usize,
                    i % 4 == 3,
                )
            })
            .collect();
        let before = {
            let mut client = ServeClient::connect(addr).expect("stats connect");
            client.stats().expect("stats")
        };

        let next = AtomicUsize::new(0);
        let sheds = AtomicUsize::new(0);
        let start = Instant::now();
        let latencies_ms: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let plan = &plan;
                    let next = &next;
                    let sheds = &sheds;
                    let combos = &combos;
                    scope.spawn(move || {
                        let mut client = ServeClient::connect(addr).expect("connect");
                        client.identify(format!("load_{worker}")).expect("identify");
                        let mut latencies = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= plan.len() {
                                break;
                            }
                            let scheduled = i as f64 / offered_rate;
                            let now = start.elapsed().as_secs_f64();
                            if scheduled > now {
                                std::thread::sleep(Duration::from_secs_f64(scheduled - now));
                            }
                            let (combo_index, batch) = plan[i];
                            let combo = &combos[combo_index];
                            let outcome = if batch {
                                let queries: Vec<BatchQuery> = combos
                                    .iter()
                                    .filter(|c| c.sketch == combo.sketch)
                                    .map(|c| BatchQuery {
                                        estimator: c.estimator.to_string(),
                                        statistic: c.statistic.to_string(),
                                    })
                                    .collect();
                                client.batch_estimate(combo.sketch, queries).map(|_| ())
                            } else {
                                client
                                    .estimate(combo.sketch, combo.estimator, combo.statistic)
                                    .map(|_| ())
                            };
                            match outcome {
                                Ok(()) => latencies
                                    .push((start.elapsed().as_secs_f64() - scheduled) * 1e3),
                                Err(ServeError::Overloaded { .. }) => {
                                    sheds.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => panic!("load request failed: {e}"),
                            }
                        }
                        latencies
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker thread"))
                .collect()
        });
        let elapsed = start.elapsed().as_secs_f64();
        let after = {
            let mut client = ServeClient::connect(addr).expect("stats connect");
            client.stats().expect("stats")
        };
        let lookups = (after.cache.hits + after.cache.misses)
            .saturating_sub(before.cache.hits + before.cache.misses);
        let hit_rate = if lookups > 0 {
            after.cache.hits.saturating_sub(before.cache.hits) as f64 / lookups as f64
        } else {
            f64::NAN
        };
        let row = RowResult {
            offered_rate,
            summary: LatencySummary::from_latencies_ms(latencies_ms, elapsed),
            sheds: sheds.load(Ordering::Relaxed) as u64,
            hit_rate,
        };
        println!(
            "offered {:>6.0} req/s: achieved {:>7.0} req/s   p50 {:>6.2} ms   p99 {:>6.2} ms   \
             p999 {:>6.2} ms   sheds {:>3}   cache hit rate {:>5.1}%",
            row.offered_rate,
            row.summary.throughput_per_s,
            row.summary.p50_ms,
            row.summary.p99_ms,
            row.summary.p999_ms,
            row.sheds,
            row.hit_rate * 100.0
        );
        rows.push(row);
    }

    // Cold vs. warm: against a deliberately heavy sketch (128 trials) the
    // cache-hit path must beat recomputation by at least 10x.
    server.catalog().insert(
        "heavy",
        CatalogEntry::build(Arc::clone(&traffic), Scheme::pps(150.0), 2, 128, 17).unwrap(),
    );
    let mut client = ServeClient::connect(addr).expect("cold/warm connect");
    let mut cold_ms = Vec::new();
    let mut warm_ms = Vec::new();
    for _ in 0..COLD_WARM_ROUNDS {
        server.engine().cache().invalidate_sketch("heavy");
        let t = Instant::now();
        client
            .estimate("heavy", "max_weighted", "max_dominance")
            .expect("cold estimate");
        cold_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        client
            .estimate("heavy", "max_weighted", "max_dominance")
            .expect("warm estimate");
        warm_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    cold_ms.sort_by(f64::total_cmp);
    warm_ms.sort_by(f64::total_cmp);
    let cold_median = cold_ms[cold_ms.len() / 2];
    let warm_median = warm_ms[warm_ms.len() / 2];
    let speedup = cold_median / warm_median;
    println!(
        "\ncold (recompute) median {cold_median:.3} ms, warm (cache hit) median {warm_median:.3} ms: {speedup:.1}x"
    );
    assert!(
        speedup >= 10.0,
        "cache-hit serving must be at least 10x faster than recompute \
         (cold {cold_median:.3} ms vs warm {warm_median:.3} ms)"
    );
    server.shutdown();

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"offered_rate_per_s\": {:.0}, \"completed\": {}, \"achieved_per_s\": {:.1}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"sheds\": {}, \
                 \"cache_hit_rate\": {:.4} }}",
                r.offered_rate,
                r.summary.count,
                r.summary.throughput_per_s,
                r.summary.p50_ms,
                r.summary.p99_ms,
                r.summary.p999_ms,
                r.sheds,
                r.hit_rate
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"engine_load\",\n  \"users\": {USERS},\n  \"zipf_exponent\": {ZIPF_EXPONENT},\n  \
         \"workers\": {workers},\n  \"requests_per_row\": {requests_per_row},\n  \
         \"threads_available\": {threads_available},\n  \
         \"note\": \"open-loop zipf traffic from 10^6 simulated users against one pie-serve server fronted by the pie-engine estimate cache and admission control; latency is measured from each request's scheduled arrival (queueing included); every 4th request is a whole-sketch BatchEstimate; cold/warm medians compare recompute vs cache-hit serving of a 128-trial sketch.\",\n  \
         \"rows\": [\n{}\n  ],\n  \"cold_vs_warm\": {{ \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup\": {:.1} }}\n}}\n",
        json_rows.join(",\n"),
        cold_median,
        warm_median,
        speedup
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine_load.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    print!("{json}");
}
