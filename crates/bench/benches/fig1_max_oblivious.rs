//! Criterion benchmark for the Figure 1 computation (exact variance ratios of
//! `max^(L)` / `max^(U)` vs `max^(HT)`) and for the per-outcome cost of the
//! two-instance oblivious `max` estimators.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use pie_bench::fig1;
use pie_core::oblivious::{MaxHtOblivious, MaxL2, MaxU2};
use pie_core::Estimator;
use pie_sampling::{ObliviousEntry, ObliviousOutcome};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");
    group.bench_function("compute_curves_p0.5_21pts", |b| {
        b.iter(|| fig1::compute(black_box(0.5), black_box(20)))
    });
    group.finish();
}

fn bench_estimators(c: &mut Criterion) {
    let outcome = ObliviousOutcome::new(vec![
        ObliviousEntry {
            p: 0.5,
            value: Some(8.0),
        },
        ObliviousEntry {
            p: 0.5,
            value: Some(3.0),
        },
    ]);
    let partial = ObliviousOutcome::new(vec![
        ObliviousEntry {
            p: 0.5,
            value: Some(8.0),
        },
        ObliviousEntry {
            p: 0.5,
            value: None,
        },
    ]);
    let l = MaxL2::new(0.5, 0.5);
    let u = MaxU2::new(0.5, 0.5);
    let mut group = c.benchmark_group("fig1_estimators");
    group.bench_function("max_ht_full_outcome", |b| {
        b.iter(|| MaxHtOblivious.estimate(black_box(&outcome)))
    });
    group.bench_function("max_l2_full_outcome", |b| {
        b.iter(|| l.estimate(black_box(&outcome)))
    });
    group.bench_function("max_l2_partial_outcome", |b| {
        b.iter(|| l.estimate(black_box(&partial)))
    });
    group.bench_function("max_u2_full_outcome", |b| {
        b.iter(|| u.estimate(black_box(&outcome)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1, bench_estimators);
criterion_main!(benches);
