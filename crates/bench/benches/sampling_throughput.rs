//! Criterion benchmarks for the sampling substrate: hashing, Poisson PPS,
//! bottom-k (priority), and VarOpt summarization throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use pie_sampling::{
    BottomKSampler, Hasher64, Instance, ObliviousPoissonSampler, PpsPoissonSampler, PpsRanks,
    SeedAssignment, VarOptSampler,
};

fn instance_of(n: u64) -> Instance {
    Instance::from_pairs((0..n).map(|k| (k, 1.0 + (k % 97) as f64)))
}

fn bench_hashing(c: &mut Criterion) {
    let h = Hasher64::new(42);
    let mut group = c.benchmark_group("sampling_hash");
    group.throughput(Throughput::Elements(1));
    group.bench_function("unit_pair", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            h.unit_pair(black_box(k), 1)
        })
    });
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_samplers");
    for &n in &[10_000u64, 100_000] {
        let inst = instance_of(n);
        let universe = inst.sorted_keys();
        let seeds = SeedAssignment::independent_known(7);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("pps_poisson", n), &inst, |b, inst| {
            let sampler = PpsPoissonSampler::new(1000.0);
            b.iter(|| sampler.sample(black_box(inst), &seeds, 0))
        });
        group.bench_with_input(
            BenchmarkId::new("oblivious_poisson", n),
            &inst,
            |b, inst| {
                let sampler = ObliviousPoissonSampler::new(0.05);
                b.iter(|| sampler.sample(black_box(inst), &universe, &seeds, 0))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bottom_k_priority_k1000", n),
            &inst,
            |b, inst| {
                let sampler = BottomKSampler::new(PpsRanks, 1000);
                b.iter(|| sampler.sample(black_box(inst), &seeds, 0))
            },
        );
        group.bench_with_input(BenchmarkId::new("varopt_k1000", n), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                VarOptSampler::sample(1000, black_box(inst), &mut rng, 0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hashing, bench_samplers);
criterion_main!(benches);
