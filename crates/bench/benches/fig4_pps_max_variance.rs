//! Criterion benchmark for the Figure 4 computation: quadrature variance
//! curves of the weighted known-seed `max` estimators.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use pie_analysis::pps2_variance;
use pie_bench::fig4;
use pie_core::weighted::{MaxHtPps, MaxLPps2};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("variance_point_l", |b| {
        b.iter(|| pps2_variance(&MaxLPps2, black_box([0.5, 0.25]), black_box([1.0, 1.0])))
    });
    group.bench_function("variance_point_ht", |b| {
        b.iter(|| pps2_variance(&MaxHtPps, black_box([0.5, 0.25]), black_box([1.0, 1.0])))
    });
    group.bench_function("normalized_variance_curves_rho0.5_9pts", |b| {
        b.iter(|| fig4::normalized_variance_curves(black_box(0.5), black_box(8)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
