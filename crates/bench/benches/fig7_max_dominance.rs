//! Criterion benchmark for the Figure 7 pipeline: summarizing the synthetic
//! two-hour traffic with PPS samples and estimating the max-dominance norm
//! with the HT and L per-key estimators.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use pie_core::aggregate::{max_dominance_ht, max_dominance_l};
use pie_datagen::{generate_two_hours, TrafficConfig};
use pie_sampling::{sample_all, PpsPoissonSampler, SeedAssignment};

fn bench_fig7(c: &mut Criterion) {
    let data = generate_two_hours(&TrafficConfig::small(1));
    let seeds = SeedAssignment::independent_known(1);
    let samples = sample_all(&PpsPoissonSampler::new(150.0), data.instances(), &seeds);

    let mut group = c.benchmark_group("fig7");
    group.bench_function("sample_two_instances_2k_keys", |b| {
        b.iter(|| {
            sample_all(
                &PpsPoissonSampler::new(black_box(150.0)),
                black_box(data.instances()),
                &seeds,
            )
        })
    });
    group.bench_function("max_dominance_ht_aggregate", |b| {
        b.iter(|| max_dominance_ht(black_box(&samples), &seeds, |_| true))
    });
    group.bench_function("max_dominance_l_aggregate", |b| {
        b.iter(|| max_dominance_l(black_box(&samples), &seeds, |_| true))
    });
    group.bench_function("generate_two_hours_2k_keys", |b| {
        b.iter(|| generate_two_hours(black_box(&TrafficConfig::small(7))))
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
