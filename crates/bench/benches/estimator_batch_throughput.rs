//! Throughput of the batched estimation hot path versus the per-outcome
//! path, for both outcome regimes, through dynamic dispatch (the shape the
//! `EstimatorRegistry` / `Pipeline` use in production).
//!
//! Besides the Criterion groups, running this bench rewrites
//! `BENCH_estimator_batch_throughput.json` at the workspace root with a
//! machine-readable data point, so the perf trajectory of the hot path is
//! tracked in-repo.
//!
//! ```text
//! cargo bench -p pie-bench --bench estimator_batch_throughput
//! ```

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion, Throughput};

use pie_core::oblivious::{MaxHtOblivious, MaxL2};
use pie_core::weighted::MaxLPps2;
use pie_core::Estimator;
use pie_sampling::{ObliviousEntry, ObliviousOutcome, WeightedEntry, WeightedOutcome};

/// Number of outcomes per batch: large enough to amortize dispatch, the
/// scale of one key-range shard in a production sweep.
const BATCH: usize = 4096;

fn oblivious_batch() -> Vec<ObliviousOutcome> {
    (0..BATCH)
        .map(|i| {
            ObliviousOutcome::new(vec![
                ObliviousEntry {
                    p: 0.5,
                    value: (i % 3 != 0).then_some(1.0 + (i % 17) as f64),
                },
                ObliviousEntry {
                    p: 0.5,
                    value: (i % 2 != 0).then_some(0.5 + (i % 11) as f64),
                },
            ])
        })
        .collect()
}

fn weighted_batch() -> Vec<WeightedOutcome> {
    (0..BATCH)
        .map(|i| {
            let u1 = 0.05 + 0.9 * ((i * 7919) % 1000) as f64 / 1000.0;
            let u2 = 0.05 + 0.9 * ((i * 104_729) % 1000) as f64 / 1000.0;
            let v1 = 1.0 + (i % 13) as f64;
            let v2 = (i % 9) as f64;
            let tau = 10.0;
            WeightedOutcome::new(vec![
                WeightedEntry {
                    tau_star: tau,
                    seed: Some(u1),
                    value: (v1 >= u1 * tau).then_some(v1),
                },
                WeightedEntry {
                    tau_star: tau,
                    seed: Some(u2),
                    value: (v2 > 0.0 && v2 >= u2 * tau).then_some(v2),
                },
            ])
        })
        .collect()
}

/// Fills `out` with one dynamic call per outcome: the historical shape of
/// every evaluation loop in this workspace.
fn per_outcome_path<O>(estimator: &dyn Estimator<O>, outcomes: &[O], out: &mut [f64]) {
    for (slot, outcome) in out.iter_mut().zip(outcomes) {
        *slot = estimator.estimate(outcome);
    }
}

/// Fills `out` with one dynamic call per batch; inside `estimate_batch` the
/// receiver is concrete, so the inner per-outcome calls devirtualize.
fn batched_path<O>(estimator: &dyn Estimator<O>, outcomes: &[O], out: &mut [f64]) {
    estimator.estimate_batch(outcomes, out);
}

fn bench_oblivious(c: &mut Criterion) {
    let outcomes = oblivious_batch();
    let estimator = MaxL2::new(0.5, 0.5);
    let dyn_est: &dyn Estimator<ObliviousOutcome> = &estimator;
    let mut out = vec![0.0; outcomes.len()];
    let mut group = c.benchmark_group("estimator_batch_throughput/oblivious_max_l_2");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("per_outcome", |b| {
        b.iter(|| {
            per_outcome_path(dyn_est, black_box(&outcomes), &mut out);
            black_box(out.last().copied())
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            batched_path(dyn_est, black_box(&outcomes), &mut out);
            black_box(out.last().copied())
        })
    });
    group.finish();
}

fn bench_weighted(c: &mut Criterion) {
    let outcomes = weighted_batch();
    let dyn_est: &dyn Estimator<WeightedOutcome> = &MaxLPps2;
    let mut out = vec![0.0; outcomes.len()];
    let mut group = c.benchmark_group("estimator_batch_throughput/weighted_max_l_pps_2");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("per_outcome", |b| {
        b.iter(|| {
            per_outcome_path(dyn_est, black_box(&outcomes), &mut out);
            black_box(out.last().copied())
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            batched_path(dyn_est, black_box(&outcomes), &mut out);
            black_box(out.last().copied())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oblivious, bench_weighted);

/// Fastest observed ns per *outcome* for the two paths, measured in
/// interleaved A/B rounds (so clock-frequency drift affects both equally)
/// with the loops written inline — wrapper functions around the timed region
/// perturb codegen enough to skew a ~7 ns/outcome measurement.  The minimum
/// is the standard microbenchmark statistic: it reflects the code's cost
/// with the least scheduler/frequency noise.
fn measure_pair<O>(
    estimator: &dyn Estimator<O>,
    outcomes: &[O],
    out: &mut [f64],
    rounds: usize,
    iters: usize,
) -> (f64, f64) {
    let mut best_per_outcome = f64::INFINITY;
    let mut best_batched = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            for (slot, outcome) in out.iter_mut().zip(black_box(outcomes)) {
                *slot = estimator.estimate(outcome);
            }
            black_box(out.last().copied());
        }
        best_per_outcome =
            best_per_outcome.min(start.elapsed().as_nanos() as f64 / (iters * BATCH) as f64);
        let start = Instant::now();
        for _ in 0..iters {
            estimator.estimate_batch(black_box(outcomes), out);
            black_box(out.last().copied());
        }
        best_batched = best_batched.min(start.elapsed().as_nanos() as f64 / (iters * BATCH) as f64);
    }
    (best_per_outcome, best_batched)
}

/// End-to-end evaluation-loop comparison: the *legacy* per-outcome shape
/// (assemble a fresh outcome — one `Vec` allocation — then estimate it, as
/// the pre-batch evaluators did every trial) against the *batched* hot loop
/// (rewrite a reusable outcome buffer in place, then one `estimate_batch`
/// call).  This, not raw dispatch, is where the batch-first API wins.
fn measure_eval_loop(rounds: usize, iters: usize) -> (f64, f64) {
    let estimator = MaxL2::new(0.5, 0.5);
    let dyn_est: &dyn Estimator<ObliviousOutcome> = &estimator;
    let mut out = vec![0.0; BATCH];
    // Raw per-outcome data the loops assemble outcomes from.
    let sampled: Vec<[Option<f64>; 2]> = (0..BATCH)
        .map(|i| {
            [
                (i % 3 != 0).then_some(1.0 + (i % 17) as f64),
                (i % 2 != 0).then_some(0.5 + (i % 11) as f64),
            ]
        })
        .collect();
    let mut best_legacy = f64::INFINITY;
    let mut best_batched = f64::INFINITY;
    let mut buffer = oblivious_batch();
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            for (slot, values) in out.iter_mut().zip(black_box(&sampled)) {
                let outcome = ObliviousOutcome::new(vec![
                    ObliviousEntry {
                        p: 0.5,
                        value: values[0],
                    },
                    ObliviousEntry {
                        p: 0.5,
                        value: values[1],
                    },
                ]);
                *slot = dyn_est.estimate(&outcome);
            }
            black_box(out.last().copied());
        }
        best_legacy = best_legacy.min(start.elapsed().as_nanos() as f64 / (iters * BATCH) as f64);
        let start = Instant::now();
        for _ in 0..iters {
            for (outcome, values) in buffer.iter_mut().zip(black_box(&sampled)) {
                outcome.entries[0].value = values[0];
                outcome.entries[1].value = values[1];
            }
            dyn_est.estimate_batch(&buffer, &mut out);
            black_box(out.last().copied());
        }
        best_batched = best_batched.min(start.elapsed().as_nanos() as f64 / (iters * BATCH) as f64);
    }
    (best_legacy, best_batched)
}

/// Writes the machine-readable perf data point consumed by the repo's
/// BENCH_* trajectory files.
fn emit_json() {
    let outcomes = oblivious_batch();
    let mut out = vec![0.0; outcomes.len()];

    let ht = MaxHtOblivious;
    let ht_dyn: &dyn Estimator<ObliviousOutcome> = &ht;
    let (ht_per_outcome_ns, ht_batched_ns) = measure_pair(ht_dyn, &outcomes, &mut out, 15, 100);

    let estimator = MaxL2::new(0.5, 0.5);
    let dyn_est: &dyn Estimator<ObliviousOutcome> = &estimator;
    let (per_outcome_ns, batched_ns) = measure_pair(dyn_est, &outcomes, &mut out, 15, 100);

    let w_outcomes = weighted_batch();
    let w_dyn: &dyn Estimator<WeightedOutcome> = &MaxLPps2;
    let mut w_out = vec![0.0; w_outcomes.len()];
    let (w_per_outcome_ns, w_batched_ns) = measure_pair(w_dyn, &w_outcomes, &mut w_out, 15, 100);

    let (legacy_loop_ns, batched_loop_ns) = measure_eval_loop(15, 100);

    let case = |name: &str, per: f64, batched: f64| {
        format!(
            "    {{ \"case\": \"{name}\", \"per_outcome_ns\": {per:.2}, \"batched_ns\": {batched:.2}, \"batched_speedup\": {:.3} }}",
            per / batched
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"estimator_batch_throughput\",\n  \"batch_outcomes\": {BATCH},\n  \"note\": \"estimate_* cases compare raw dispatch (parity expected: the estimate itself dominates); eval_loop compares the legacy allocating per-outcome evaluation loop against the reusable-buffer batched hot loop\",\n  \"results\": [\n{},\n{},\n{},\n{}\n  ]\n}}\n",
        case("estimate_oblivious_max_ht", ht_per_outcome_ns, ht_batched_ns),
        case("estimate_oblivious_max_l_2", per_outcome_ns, batched_ns),
        case("estimate_weighted_max_l_pps_2", w_per_outcome_ns, w_batched_ns),
        case("eval_loop_oblivious_max_l_2", legacy_loop_ns, batched_loop_ns),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_estimator_batch_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn main() {
    let _args: Vec<String> = std::env::args().collect();
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    emit_json();
}
