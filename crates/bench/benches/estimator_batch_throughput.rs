//! Throughput of the struct-of-arrays lane hot path versus the per-outcome
//! path, for both outcome regimes, through dynamic dispatch (the shape the
//! `EstimatorRegistry` / `Pipeline` use in production).
//!
//! Besides the Criterion groups, running this bench rewrites
//! `BENCH_estimator_batch_throughput.json` at the workspace root with a
//! machine-readable data point, so the perf trajectory of the hot path is
//! tracked in-repo.
//!
//! ```text
//! cargo bench -p pie-bench --bench estimator_batch_throughput
//! ```

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion, Throughput};

use pie_core::oblivious::{MaxHtOblivious, MaxL2};
use pie_core::weighted::MaxLPps2;
use pie_core::Estimator;
use pie_sampling::{
    LaneOutcome, ObliviousEntry, ObliviousLanes, ObliviousOutcome, WeightedEntry, WeightedLanes,
    WeightedOutcome,
};

/// Number of outcomes per batch: the scale of one key-range shard in a
/// production replay sweep.  Deliberately larger than what a branch
/// predictor can memorize across bench iterations — at a few thousand
/// outcomes the scalar path's data-dependent branches become perfectly
/// predicted replays, which production estimate streams are not.
const BATCH: usize = 16_384;

fn oblivious_batch() -> Vec<ObliviousOutcome> {
    (0..BATCH)
        .map(|i| {
            ObliviousOutcome::new(vec![
                ObliviousEntry {
                    p: 0.5,
                    value: (i % 3 != 0).then_some(1.0 + (i % 17) as f64),
                },
                ObliviousEntry {
                    p: 0.5,
                    value: (i % 2 != 0).then_some(0.5 + (i % 11) as f64),
                },
            ])
        })
        .collect()
}

/// A splitmix-style hash mapped to `[0, 1)`, for deterministic but
/// pattern-free workload draws (periodic index arithmetic hands the scalar
/// path's branch predictor an unrealistically easy time).
fn unit_hash(i: usize, salt: u64) -> f64 {
    let mut x = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A production-shaped PPS batch mirroring what the pipeline's weighted
/// replay feeds the estimators: the sampled-key union of two instances of a
/// heavy-tailed stream.  Every outcome has at least one sampled entry —
/// one-sided (the key is heavy in one instance, below threshold in the
/// other) and two-sided keys are mixed in comparable proportion, and a
/// ~1.5 % minority are "lucky" tail keys that squeaked in under the
/// threshold, exercising the logarithmic closed form at its realistic
/// (rare, 1-2 % on skewed streams) rate.
fn weighted_batch() -> Vec<WeightedOutcome> {
    let tau = 10.0;
    (0..BATCH)
        .map(|i| {
            let class = (unit_hash(i, 1) * 1000.0) as u32;
            let u1 = 0.02 + 0.96 * unit_hash(i, 2);
            let u2 = 0.02 + 0.96 * unit_hash(i, 3);
            // Heavy values τ*..40τ*, skewed toward the low end; light
            // values sit strictly below the entry's sampling cut `u·τ*`.
            let heavy = |t: f64| tau * (1.0 + 39.0 * t * t);
            let light = |u: f64, t: f64| u * tau * (0.3 + 0.6 * t);
            let (v1, s1, v2, s2) = match class {
                // Sampled in instance 1 only.
                0..=327 => (
                    heavy(unit_hash(i, 4)),
                    true,
                    light(u2, unit_hash(i, 5)),
                    false,
                ),
                // Sampled in instance 2 only.
                328..=655 => (
                    light(u1, unit_hash(i, 4)),
                    false,
                    heavy(unit_hash(i, 5)),
                    true,
                ),
                // Heavy in both instances.
                656..=984 => (heavy(unit_hash(i, 4)), true, heavy(unit_hash(i, 5)), true),
                // Lucky tail key: sampled below threshold in instance 1.
                _ => (
                    tau * (0.2 + 0.7 * unit_hash(i, 4)),
                    true,
                    light(u2, unit_hash(i, 5)),
                    false,
                ),
            };
            // A lucky key's seed must fall under v/τ* for the PPS rule to
            // have admitted it.
            let u1 = if s1 { u1.min(0.8 * v1 / tau) } else { u1 };
            let u2 = if s2 { u2.min(0.8 * v2 / tau) } else { u2 };
            debug_assert_eq!(s1, v1 >= u1 * tau);
            debug_assert_eq!(s2, v2 >= u2 * tau);
            WeightedOutcome::new(vec![
                WeightedEntry {
                    tau_star: tau,
                    seed: Some(u1),
                    value: s1.then_some(v1),
                },
                WeightedEntry {
                    tau_star: tau,
                    seed: Some(u2),
                    value: s2.then_some(v2),
                },
            ])
        })
        .collect()
}

/// Fills `out` with one dynamic call per outcome: the historical shape of
/// every evaluation loop in this workspace.
fn per_outcome_path<O>(estimator: &dyn Estimator<O>, outcomes: &[O], out: &mut [f64]) {
    for (slot, outcome) in out.iter_mut().zip(outcomes) {
        *slot = estimator.estimate(outcome);
    }
}

/// Fills `out` with one dynamic call over the prebuilt lane pool; inside
/// `estimate_lanes` the receiver is concrete and the lanes are contiguous,
/// so the chunked kernels autovectorize.
fn lane_path<O: LaneOutcome>(estimator: &dyn Estimator<O>, lanes: &O::Lanes, out: &mut [f64]) {
    estimator.estimate_lanes(lanes, out);
}

fn bench_oblivious(c: &mut Criterion) {
    let outcomes = oblivious_batch();
    let mut lanes = ObliviousLanes::new();
    lanes.fill_from_outcomes(&outcomes);
    let estimator = MaxL2::new(0.5, 0.5);
    let dyn_est: &dyn Estimator<ObliviousOutcome> = &estimator;
    let mut out = vec![0.0; outcomes.len()];
    let mut group = c.benchmark_group("estimator_batch_throughput/oblivious_max_l_2");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("per_outcome", |b| {
        b.iter(|| {
            per_outcome_path(dyn_est, black_box(&outcomes), &mut out);
            black_box(out.last().copied())
        })
    });
    group.bench_function("lanes", |b| {
        b.iter(|| {
            lane_path(dyn_est, black_box(&lanes), &mut out);
            black_box(out.last().copied())
        })
    });
    group.finish();
}

fn bench_weighted(c: &mut Criterion) {
    let outcomes = weighted_batch();
    let mut lanes = WeightedLanes::new();
    lanes.fill_from_outcomes(&outcomes);
    let dyn_est: &dyn Estimator<WeightedOutcome> = &MaxLPps2;
    let mut out = vec![0.0; outcomes.len()];
    let mut group = c.benchmark_group("estimator_batch_throughput/weighted_max_l_pps_2");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("per_outcome", |b| {
        b.iter(|| {
            per_outcome_path(dyn_est, black_box(&outcomes), &mut out);
            black_box(out.last().copied())
        })
    });
    group.bench_function("lanes", |b| {
        b.iter(|| {
            lane_path(dyn_est, black_box(&lanes), &mut out);
            black_box(out.last().copied())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oblivious, bench_weighted);

/// Fastest observed ns per *outcome* for the two paths, measured in
/// interleaved A/B rounds (so clock-frequency drift affects both equally)
/// with the loops written inline — wrapper functions around the timed region
/// perturb codegen enough to skew a ~7 ns/outcome measurement.  The minimum
/// is the standard microbenchmark statistic: it reflects the code's cost
/// with the least scheduler/frequency noise.  The lane side runs over a
/// pool filled once outside the timed region — the production shape, where
/// one fill per trial is shared by every registered estimator; the fill's
/// own cost is measured separately and reported as `lane_fill_ns`.
fn measure_pair<O: LaneOutcome>(
    estimator: &dyn Estimator<O>,
    outcomes: &[O],
    lanes: &O::Lanes,
    out: &mut [f64],
    rounds: usize,
    iters: usize,
) -> (f64, f64) {
    let mut best_per_outcome = f64::INFINITY;
    let mut best_lanes = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            for (slot, outcome) in out.iter_mut().zip(black_box(outcomes)) {
                *slot = estimator.estimate(outcome);
            }
            black_box(out.last().copied());
        }
        best_per_outcome =
            best_per_outcome.min(start.elapsed().as_nanos() as f64 / (iters * BATCH) as f64);
        let start = Instant::now();
        for _ in 0..iters {
            estimator.estimate_lanes(black_box(lanes), out);
            black_box(out.last().copied());
        }
        best_lanes = best_lanes.min(start.elapsed().as_nanos() as f64 / (iters * BATCH) as f64);
    }
    (best_per_outcome, best_lanes)
}

/// Fastest observed ns per outcome to rebuild a lane pool from an outcome
/// slice — the once-per-trial cost amortized across every estimator that
/// shares the pool.
fn measure_fill<L>(mut fill: impl FnMut() -> L, rounds: usize, iters: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(fill());
        }
        best = best.min(start.elapsed().as_nanos() as f64 / (iters * BATCH) as f64);
    }
    best
}

/// End-to-end evaluation-loop comparison: the *legacy* per-outcome shape
/// (assemble a fresh outcome — one `Vec` allocation — then estimate it, as
/// the pre-batch evaluators did every trial) against the *lane* hot loop the
/// pipeline now runs (refill a reusable struct-of-arrays pool in place, then
/// one `estimate_lanes` call; the fill is inside the timed region, as it is
/// in production).
fn measure_eval_loop(rounds: usize, iters: usize) -> (f64, f64) {
    let estimator = MaxL2::new(0.5, 0.5);
    let dyn_est: &dyn Estimator<ObliviousOutcome> = &estimator;
    let mut out = vec![0.0; BATCH];
    // Raw per-outcome data the loops assemble outcomes from.
    let sampled: Vec<[Option<f64>; 2]> = (0..BATCH)
        .map(|i| {
            [
                (i % 3 != 0).then_some(1.0 + (i % 17) as f64),
                (i % 2 != 0).then_some(0.5 + (i % 11) as f64),
            ]
        })
        .collect();
    let mut best_legacy = f64::INFINITY;
    let mut best_lanes = f64::INFINITY;
    let mut buffer = oblivious_batch();
    let mut lanes = ObliviousLanes::new();
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            for (slot, values) in out.iter_mut().zip(black_box(&sampled)) {
                let outcome = ObliviousOutcome::new(vec![
                    ObliviousEntry {
                        p: 0.5,
                        value: values[0],
                    },
                    ObliviousEntry {
                        p: 0.5,
                        value: values[1],
                    },
                ]);
                *slot = dyn_est.estimate(&outcome);
            }
            black_box(out.last().copied());
        }
        best_legacy = best_legacy.min(start.elapsed().as_nanos() as f64 / (iters * BATCH) as f64);
        let start = Instant::now();
        for _ in 0..iters {
            for (outcome, values) in buffer.iter_mut().zip(black_box(&sampled)) {
                outcome.entries[0].value = values[0];
                outcome.entries[1].value = values[1];
            }
            lanes.fill_from_outcomes(&buffer);
            dyn_est.estimate_lanes(&lanes, &mut out);
            black_box(out.last().copied());
        }
        best_lanes = best_lanes.min(start.elapsed().as_nanos() as f64 / (iters * BATCH) as f64);
    }
    (best_legacy, best_lanes)
}

/// Writes the machine-readable perf data point consumed by the repo's
/// BENCH_* trajectory files.
fn emit_json() {
    let outcomes = oblivious_batch();
    let mut out = vec![0.0; outcomes.len()];
    let mut o_lanes = ObliviousLanes::new();
    o_lanes.fill_from_outcomes(&outcomes);
    let o_fill_ns = measure_fill(
        || {
            let mut l = ObliviousLanes::new();
            l.fill_from_outcomes(black_box(&outcomes));
            l
        },
        15,
        8,
    );

    let ht = MaxHtOblivious;
    let ht_dyn: &dyn Estimator<ObliviousOutcome> = &ht;
    let (ht_per_outcome_ns, ht_lanes_ns) =
        measure_pair(ht_dyn, &outcomes, &o_lanes, &mut out, 15, 8);

    let estimator = MaxL2::new(0.5, 0.5);
    let dyn_est: &dyn Estimator<ObliviousOutcome> = &estimator;
    let (per_outcome_ns, lanes_ns) = measure_pair(dyn_est, &outcomes, &o_lanes, &mut out, 15, 8);

    let w_outcomes = weighted_batch();
    let mut w_lanes = WeightedLanes::new();
    w_lanes.fill_from_outcomes(&w_outcomes);
    let w_fill_ns = measure_fill(
        || {
            let mut l = WeightedLanes::new();
            l.fill_from_outcomes(black_box(&w_outcomes));
            l
        },
        15,
        8,
    );
    let w_dyn: &dyn Estimator<WeightedOutcome> = &MaxLPps2;
    let mut w_out = vec![0.0; w_outcomes.len()];
    let (w_per_outcome_ns, w_lanes_ns) =
        measure_pair(w_dyn, &w_outcomes, &w_lanes, &mut w_out, 15, 8);

    let (legacy_loop_ns, lanes_loop_ns) = measure_eval_loop(15, 8);

    let case = |name: &str, per: f64, batched: f64, fill: Option<f64>| {
        let fill_field = match fill {
            Some(f) => format!(", \"lane_fill_ns\": {f:.2}"),
            None => String::new(),
        };
        format!(
            "    {{ \"case\": \"{name}\", \"per_outcome_ns\": {per:.2}, \"batched_ns\": {batched:.2}, \"batched_speedup\": {:.3}{fill_field} }}",
            per / batched
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"estimator_batch_throughput\",\n  \"batch_outcomes\": {BATCH},\n  \"note\": \"estimate_* cases compare per-outcome dispatch against the estimate_lanes kernel over a struct-of-arrays pool filled once per trial and shared by every registered estimator (fill cost reported separately as lane_fill_ns, per outcome); eval_loop compares the legacy allocating per-outcome evaluation loop against the lane hot loop with the refill inside the timed region; the weighted batch is the sampled-key union of two heavy-tailed PPS instances (one-sided and two-sided keys in comparable proportion, ~1.5% lucky tail keys hitting the max^(L) logarithmic closed form at its realistic rare rate) and is sized at one key-range shard so per-outcome timings are not flattered by branch-predictor memorization of a small replayed batch\",\n  \"results\": [\n{},\n{},\n{},\n{}\n  ]\n}}\n",
        case("estimate_oblivious_max_ht", ht_per_outcome_ns, ht_lanes_ns, Some(o_fill_ns)),
        case("estimate_oblivious_max_l_2", per_outcome_ns, lanes_ns, Some(o_fill_ns)),
        case("estimate_weighted_max_l_pps_2", w_per_outcome_ns, w_lanes_ns, Some(w_fill_ns)),
        case("eval_loop_oblivious_max_l_2", legacy_loop_ns, lanes_loop_ns, None),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_estimator_batch_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn main() {
    let _args: Vec<String> = std::env::args().collect();
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    emit_json();
}
