//! Trial-loop throughput of the parallel deterministic trial engine on the
//! Figure 7 traffic workload (max-dominance over two hours of heavy-tailed
//! traffic, PPS sampling): the legacy bespoke sequential trial loop versus
//! the `Pipeline` running on `TrialRunner` at 1/2/4/8 worker threads.
//!
//! Two effects are measured:
//!
//! * **engine vs. bespoke loop** — even single-threaded, the engine's
//!   pooled outcome buffers and batched `estimate_batch` hot path beat the
//!   legacy per-trial loop (fresh per-key outcome construction, one virtual
//!   call per key per estimator);
//! * **thread scaling** — trial chunks run one per worker thread; on
//!   multi-core hosts the threaded rows drop proportionally, while on a
//!   single hardware thread they only pay the (small) spawn + merge
//!   overhead.  The JSON records `threads_available` so trajectory files
//!   stay interpretable across machines.
//!
//! Reports are asserted bit-identical across every thread count each run —
//! the speedup is never bought with a different answer.
//!
//! Besides the console table, running this bench rewrites
//! `BENCH_parallel_trials_throughput.json` at the workspace root (uploaded
//! as a CI artifact).
//!
//! ```text
//! cargo bench -p pie-bench --bench parallel_trials_throughput
//! ```

use std::sync::Arc;
use std::time::Instant;

use partial_info_estimators::{Pipeline, PipelineReport, Scheme, Statistic};
use pie_analysis::RunningStats;
use pie_core::aggregate::{max_dominance_ht, max_dominance_l, true_max_dominance};
use pie_core::suite::max_weighted_suite;
use pie_datagen::{generate_two_hours, TrafficConfig};
use pie_sampling::{sample_all, Instance, PpsPoissonSampler, SeedAssignment};

/// Figure 7 regime, scaled up: 2 instances × 100k keys.
const KEYS_PER_INSTANCE: usize = 100_000;
const TAU_STAR: f64 = 200.0;
/// 160 trials = 10 reduction chunks at the default chunk width, enough to
/// keep 8 workers fed (the chunk partition is fixed by the trial count, so
/// parallelism is capped at `trials / TRIAL_CHUNK` chunks).
const TRIALS: u64 = 160;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ROUNDS: usize = 3;

struct Case {
    name: String,
    ms: f64,
    trials_per_sec: f64,
}

fn measure_case(name: impl Into<String>, trials: u64, mut pass: impl FnMut()) -> Case {
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        pass();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    Case {
        name: name.into(),
        ms: best,
        trials_per_sec: trials as f64 / (best / 1e3),
    }
}

/// The legacy trial loop this PR's engine replaced: one bespoke pass per
/// trial — fresh samples, per-key aggregate estimators called one key at a
/// time, straight sequential accumulation.
fn legacy_sequential_loop(dataset: &pie_datagen::Dataset, base_salt: u64) -> (f64, f64) {
    let sampler = PpsPoissonSampler::new(TAU_STAR);
    let mut l_stats = RunningStats::new();
    let mut ht_stats = RunningStats::new();
    for t in 0..TRIALS {
        let seeds = SeedAssignment::independent_known(base_salt.wrapping_add(t));
        let samples = sample_all(&sampler, dataset.instances(), &seeds);
        l_stats.push(max_dominance_l(&samples, &seeds, |_| true));
        ht_stats.push(max_dominance_ht(&samples, &seeds, |_| true));
    }
    (l_stats.variance(), ht_stats.variance())
}

fn pipeline_at(data: &Arc<pie_datagen::Dataset>, threads: usize, base_salt: u64) -> PipelineReport {
    Pipeline::new()
        .dataset(Arc::clone(data))
        .scheme(Scheme::pps(TAU_STAR))
        .estimators(max_weighted_suite())
        .statistic(Statistic::max_dominance())
        .trials(TRIALS)
        .base_salt(base_salt)
        .threads(threads)
        .run()
        .expect("pipeline runs")
}

fn main() {
    let mut config = TrafficConfig::paper_scale();
    config.keys_per_hour = KEYS_PER_INSTANCE;
    config.flows_per_hour = 2.2e6;
    let data = Arc::new(generate_two_hours(&config));
    let records: usize = data.instances().iter().map(Instance::len).sum();
    let truth = true_max_dominance(data.instances(), |_| true);
    let threads_available = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "fig7 traffic workload: {records} records over {} instances, {TRIALS} trials, \
         truth {truth:.3e}, {threads_available} hardware thread(s)\n",
        data.num_instances()
    );

    let base_salt = 0xF1_60_07;
    let mut cases: Vec<Case> = Vec::new();

    let case = measure_case("legacy_sequential_trial_loop", TRIALS, || {
        std::hint::black_box(legacy_sequential_loop(&data, base_salt));
    });
    let legacy_ms = case.ms;
    println!(
        "{:<36} {:>9.2} ms  ({:>7.1} trials/s)",
        case.name, case.ms, case.trials_per_sec
    );
    cases.push(case);

    let mut reference: Option<PipelineReport> = None;
    for threads in THREAD_COUNTS {
        let mut report: Option<PipelineReport> = None;
        let case = measure_case(format!("pipeline_trials_threads_{threads}"), TRIALS, || {
            report = Some(pipeline_at(&data, threads, base_salt));
        });
        let report = report.expect("measured at least one pass");
        match &reference {
            None => reference = Some(report),
            Some(r) => assert_eq!(
                r, &report,
                "thread count must not change the report ({threads} threads)"
            ),
        }
        println!(
            "{:<36} {:>9.2} ms  ({:>7.1} trials/s, {:.2}x vs legacy loop)",
            case.name,
            case.ms,
            case.trials_per_sec,
            legacy_ms / case.ms
        );
        cases.push(case);
    }

    let find = |name: &str| {
        cases
            .iter()
            .find(|c| c.name == name)
            .expect("case measured")
    };
    let p1 = find("pipeline_trials_threads_1");
    let p8 = find("pipeline_trials_threads_8");
    let rows: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{ \"case\": \"{}\", \"ms\": {:.2}, \"trials_per_sec\": {:.1} }}",
                c.name, c.ms, c.trials_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"parallel_trials_throughput\",\n  \"workload\": \"fig7_traffic\",\n  \
         \"records\": {records},\n  \"trials\": {TRIALS},\n  \
         \"threads_available\": {threads_available},\n  \
         \"note\": \"legacy_sequential_trial_loop is the bespoke pre-engine trial loop \
         (per-trial sample_all + per-key aggregate estimators + sequential accumulation); \
         pipeline_trials_threads_N is the TrialRunner-backed Pipeline with N worker threads, \
         pooled outcome buffers, and the batched estimate_batch hot path. Reports are asserted \
         bit-identical across all thread counts each run. Thread rows only scale with \
         threads_available; on a single hardware thread they measure engine overhead.\",\n  \
         \"speedup_threads8_vs_legacy_loop\": {:.2},\n  \
         \"speedup_threads8_vs_threads1\": {:.2},\n  \"results\": [\n{}\n  ]\n}}\n",
        legacy_ms / p8.ms,
        p1.ms / p8.ms,
        rows.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel_trials_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    print!("{json}");
}
