//! Criterion benchmark for the Figure 2 computation (OR estimator variance
//! curves) and the per-outcome cost of the OR estimators, including the
//! general-r Algorithm 3 specialization.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pie_bench::fig2;
use pie_core::oblivious::{OrL2, OrLUniform, OrU2};
use pie_core::Estimator;
use pie_sampling::{ObliviousEntry, ObliviousOutcome};

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.bench_function("compute_curves_31pts", |b| {
        b.iter(|| fig2::compute(black_box(0.01), black_box(0.9), black_box(30)))
    });
    group.finish();
}

fn binary_outcome(r: usize, p: f64) -> ObliviousOutcome {
    ObliviousOutcome::new(
        (0..r)
            .map(|i| ObliviousEntry {
                p,
                value: if i % 2 == 0 { Some(1.0) } else { None },
            })
            .collect(),
    )
}

fn bench_or_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_or_estimators");
    let o2 = binary_outcome(2, 0.3);
    let l2 = OrL2::new(0.3, 0.3);
    let u2 = OrU2::new(0.3, 0.3);
    group.bench_function("or_l2", |b| b.iter(|| l2.estimate(black_box(&o2))));
    group.bench_function("or_u2", |b| b.iter(|| u2.estimate(black_box(&o2))));
    for r in [4usize, 8, 16] {
        let est = OrLUniform::new(r, 0.3);
        let outcome = binary_outcome(r, 0.3);
        group.bench_with_input(BenchmarkId::new("or_l_uniform", r), &outcome, |b, o| {
            b.iter(|| est.estimate(black_box(o)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2, bench_or_estimators);
criterion_main!(benches);
