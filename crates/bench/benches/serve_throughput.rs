//! Serving throughput: queries/sec and latency of the `pie-serve` stack at
//! 1/4/8 concurrent client threads, at 1024 held-open connections, and
//! through a 3-node replicated cluster router.
//!
//! One server hosts a finalized traffic sketch; each client thread runs a
//! closed loop of `Estimate` queries over its own connection.  Per-query
//! wall times are collected so the JSON can report p50/p99 alongside
//! throughput, and one response per thread count is asserted bit-identical
//! to the in-process pipeline — the bench measures a path whose
//! correctness is enforced in the same run.
//!
//! The 1024-connection row holds every socket open simultaneously in the
//! server's one poll set (the multiplexed event loop's reason to exist:
//! the old thread-per-connection server would need 1024 OS threads) while
//! eight driver threads issue queries round-robin; its throughput must
//! stay at least at the 8-client row's level — scale-out in connections
//! must not cost serving rate.  The cluster row routes every query
//! through a consistent-hash router over three real nodes (replication
//! factor 2).
//!
//! Besides the console table, running this bench rewrites
//! `BENCH_serve_throughput.json` at the workspace root (uploaded as a CI
//! artifact).  `threads_available` is recorded: on a single-core container
//! the multi-client rows measure connection multiplexing, not parallel
//! speedup.
//!
//! ```text
//! cargo bench -p pie-bench --bench serve_throughput
//! ```

use std::sync::Arc;
use std::time::Instant;

use partial_info_estimators::core::suite::max_weighted_suite;
use partial_info_estimators::datagen::{generate_two_hours, TrafficConfig};
use partial_info_estimators::{CatalogEntry, Pipeline, PipelineReport, Scheme, Statistic};
use pie_bench::LatencySummary;
use pie_cluster::LocalCluster;
use pie_serve::{EngineConfig, ObsConfig, ServeClient, Server};

const TRIALS: u64 = 8;
const QUERIES_PER_THREAD: usize = 60;
const CLIENT_THREADS: [usize; 3] = [1, 4, 8];
/// Held-open connections in the multiplex row.
const CONNECTIONS: usize = 1024;
/// Threads driving those connections round-robin.
const DRIVERS: usize = 8;
/// Timed closed-loop rounds over all held connections (queries = rounds ×
/// conns); one extra untimed round first serves every socket once, so the
/// row measures steady-state multiplexing rather than per-socket
/// first-touch costs (kernel buffers, cache warmth).
const MULTIPLEX_ROUNDS: usize = 4;
/// Router-path queries in the cluster row.
const CLUSTER_QUERIES: usize = 120;
/// Client threads in the observability-overhead comparison.
const OBS_CLIENTS: usize = 4;
/// Best-of-N runs per mode in the overhead comparison (takes the max, so
/// a one-off scheduler hiccup in either mode cannot fake a regression).
const OBS_RUNS: usize = 3;
/// The metrics-on row must keep at least this fraction of the
/// metrics-off throughput.
const OBS_MIN_RATIO: f64 = 0.95;

struct Row {
    clients: usize,
    summary: LatencySummary,
}

/// One closed-loop run: `clients` threads × [`QUERIES_PER_THREAD`]
/// queries against `addr`, returning the aggregate throughput (q/s).
fn closed_loop_qps(addr: std::net::SocketAddr, clients: usize, reference: &PipelineReport) -> f64 {
    let start = Instant::now();
    let total: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    for _ in 0..QUERIES_PER_THREAD {
                        let report = client
                            .estimate("traffic", "max_weighted", "max_dominance")
                            .expect("estimate");
                        assert_eq!(&report, reference, "served response diverged");
                    }
                    QUERIES_PER_THREAD
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    total as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let data = Arc::new(generate_two_hours(&TrafficConfig::small(5)));
    let threads_available = std::thread::available_parallelism().map_or(1, usize::from);

    let scheme = Scheme::pps(180.0);
    let reference = Pipeline::new()
        .dataset(Arc::clone(&data))
        .scheme(scheme)
        .estimators(max_weighted_suite())
        .statistic(Statistic::max_dominance())
        .trials(TRIALS)
        .base_salt(5)
        .run()
        .expect("reference pipeline");

    // Cache disabled: this bench has always measured the recompute path
    // (wire + estimation); the cached path is `engine_load`'s subject.
    let server = Server::bind_with(
        "127.0.0.1:0",
        EngineConfig {
            cache_capacity: 0,
            ..EngineConfig::default()
        },
    )
    .expect("bind server");
    let entry =
        CatalogEntry::build(Arc::clone(&data), scheme, 2, TRIALS, 5).expect("catalog entry");
    server.catalog().insert("traffic", entry);
    let addr = server.local_addr();

    let total_records: usize = data
        .instances()
        .iter()
        .map(partial_info_estimators::sampling::Instance::len)
        .sum();
    println!(
        "serving a {total_records}-record, {TRIALS}-trial sketch on {addr}; {threads_available} hardware thread(s)\n"
    );

    let mut rows = Vec::new();
    for &clients in &CLIENT_THREADS {
        // Warm up connections and code paths once per thread count.
        {
            let mut client = ServeClient::connect(addr).expect("warmup connect");
            let report = client
                .estimate("traffic", "max_weighted", "max_dominance")
                .expect("warmup query");
            assert_eq!(
                report, reference,
                "served report must be bit-identical to the in-process pipeline"
            );
        }
        let start = Instant::now();
        let latencies_ms: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    scope.spawn(|| {
                        let mut client = ServeClient::connect(addr).expect("connect");
                        let mut latencies = Vec::with_capacity(QUERIES_PER_THREAD);
                        for _ in 0..QUERIES_PER_THREAD {
                            let t = Instant::now();
                            let report = client
                                .estimate("traffic", "max_weighted", "max_dominance")
                                .expect("estimate");
                            latencies.push(t.elapsed().as_secs_f64() * 1e3);
                            debug_assert_eq!(report.trials, TRIALS);
                        }
                        latencies
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let elapsed = start.elapsed().as_secs_f64();
        let row = Row {
            clients,
            summary: LatencySummary::from_latencies_ms(latencies_ms, elapsed),
        };
        println!(
            "{:>2} client thread(s): {:>6} queries  {:>8.0} q/s   p50 {:>6.2} ms   p99 {:>6.2} ms",
            row.clients,
            row.summary.count,
            row.summary.throughput_per_s,
            row.summary.p50_ms,
            row.summary.p99_ms
        );
        rows.push(row);
    }

    // ---- 1024 held-open connections, 8 driver threads ----------------
    let multiplex = {
        let mut clients: Vec<ServeClient> = (0..CONNECTIONS)
            .map(|i| ServeClient::connect(addr).unwrap_or_else(|e| panic!("conn {i}: {e}")))
            .collect();
        // Every socket proves live before timing starts.
        for client in &mut clients {
            client.ping().expect("ping at scale");
        }
        // Untimed first round: every connection serves one query before the
        // clock starts (and proves bit-identity at scale).
        for client in &mut clients {
            let report = client
                .estimate("traffic", "max_weighted", "max_dominance")
                .expect("warmup query at scale");
            assert_eq!(report, reference, "multiplexed response diverged");
        }
        let start = Instant::now();
        let latencies_ms: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = clients
                .chunks_mut(CONNECTIONS / DRIVERS)
                .map(|slice| {
                    scope.spawn(|| {
                        let mut latencies = Vec::with_capacity(MULTIPLEX_ROUNDS * slice.len());
                        for _ in 0..MULTIPLEX_ROUNDS {
                            for client in slice.iter_mut() {
                                let t = Instant::now();
                                let report = client
                                    .estimate("traffic", "max_weighted", "max_dominance")
                                    .expect("estimate at scale");
                                latencies.push(t.elapsed().as_secs_f64() * 1e3);
                                debug_assert_eq!(report.trials, TRIALS);
                            }
                        }
                        latencies
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("driver thread"))
                .collect()
        });
        let summary =
            LatencySummary::from_latencies_ms(latencies_ms, start.elapsed().as_secs_f64());
        println!(
            "{CONNECTIONS:>4} connections ({DRIVERS} drivers): {:>6} queries  {:>8.0} q/s   p50 {:>6.2} ms   p99 {:>6.2} ms",
            summary.count, summary.throughput_per_s, summary.p50_ms, summary.p99_ms
        );
        summary
    };
    server.shutdown();

    // Scale-out in connections must not cost serving rate: the 1024-row
    // keeps at least the 8-client row's throughput (0.9 tolerance for
    // same-run measurement noise; both raw numbers land in the JSON).
    let eight_row = rows
        .iter()
        .find(|r| r.clients == 8)
        .expect("8-client row present");
    assert!(
        multiplex.throughput_per_s >= 0.9 * eight_row.summary.throughput_per_s,
        "1024-connection throughput {:.1} q/s fell below the 8-client row {:.1} q/s",
        multiplex.throughput_per_s,
        eight_row.summary.throughput_per_s
    );

    // ---- 3-node replicated cluster through the router -----------------
    let cluster_summary = {
        let cluster = LocalCluster::launch_with(
            3,
            EngineConfig {
                cache_capacity: 0,
                ..EngineConfig::default()
            },
        )
        .expect("launch cluster");
        let mut router = cluster.router(2).expect("router");
        let entry =
            CatalogEntry::build(Arc::clone(&data), scheme, 2, TRIALS, 5).expect("catalog entry");
        router.publish_entry("traffic", &entry).expect("publish");
        let report = router
            .estimate("traffic", "max_weighted", "max_dominance")
            .expect("cluster warmup");
        assert_eq!(report, reference, "cluster-served response diverged");
        let start = Instant::now();
        let mut latencies = Vec::with_capacity(CLUSTER_QUERIES);
        for _ in 0..CLUSTER_QUERIES {
            let t = Instant::now();
            let report = router
                .estimate("traffic", "max_weighted", "max_dominance")
                .expect("cluster estimate");
            latencies.push(t.elapsed().as_secs_f64() * 1e3);
            debug_assert_eq!(report.trials, TRIALS);
        }
        let summary = LatencySummary::from_latencies_ms(latencies, start.elapsed().as_secs_f64());
        println!(
            "3-node cluster (R=2, router): {:>6} queries  {:>8.0} q/s   p50 {:>6.2} ms   p99 {:>6.2} ms",
            summary.count, summary.throughput_per_s, summary.p50_ms, summary.p99_ms
        );
        summary
    };

    // ---- observability overhead: metrics-off vs metrics-on ------------
    // One fresh server per mode (same engine tunables, cache disabled),
    // best-of-N closed-loop runs each; recording counters, histograms,
    // and spans on every request must keep >= OBS_MIN_RATIO of the
    // uninstrumented throughput.
    let measure_mode = |obs: ObsConfig| -> f64 {
        let server = Server::bind_with_obs(
            "127.0.0.1:0",
            EngineConfig {
                cache_capacity: 0,
                ..EngineConfig::default()
            },
            obs,
        )
        .expect("bind overhead server");
        let entry =
            CatalogEntry::build(Arc::clone(&data), scheme, 2, TRIALS, 5).expect("catalog entry");
        server.catalog().insert("traffic", entry);
        let addr = server.local_addr();
        // Warm up the socket path and prove bit-identity in this mode.
        let mut warm = ServeClient::connect(addr).expect("warmup connect");
        let report = warm
            .estimate("traffic", "max_weighted", "max_dominance")
            .expect("warmup query");
        assert_eq!(report, reference, "overhead-mode response diverged");
        let best = (0..OBS_RUNS)
            .map(|_| closed_loop_qps(addr, OBS_CLIENTS, &reference))
            .fold(0.0f64, f64::max);
        server.shutdown();
        best
    };
    let metrics_off_qps = measure_mode(ObsConfig::disabled());
    let metrics_on_qps = measure_mode(ObsConfig::default());
    let obs_ratio = metrics_on_qps / metrics_off_qps;
    println!(
        "obs overhead ({OBS_CLIENTS} clients, best of {OBS_RUNS}): metrics off {metrics_off_qps:>8.0} q/s   metrics on {metrics_on_qps:>8.0} q/s   ratio {obs_ratio:.3}"
    );
    assert!(
        obs_ratio >= OBS_MIN_RATIO,
        "metrics-on throughput {metrics_on_qps:.1} q/s fell below {OBS_MIN_RATIO}x the metrics-off row {metrics_off_qps:.1} q/s"
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"client_threads\": {}, \"queries\": {}, \"queries_per_s\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3} }}",
                r.clients, r.summary.count, r.summary.throughput_per_s, r.summary.p50_ms, r.summary.p99_ms
            )
        })
        .collect();
    let multiplex_row = format!(
        "  \"multiplex_row\": {{ \"connections\": {CONNECTIONS}, \"driver_threads\": {DRIVERS}, \"queries\": {}, \"queries_per_s\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3} }}",
        multiplex.count, multiplex.throughput_per_s, multiplex.p50_ms, multiplex.p99_ms
    );
    let cluster_row = format!(
        "  \"cluster_row\": {{ \"nodes\": 3, \"replication\": 2, \"queries\": {}, \"queries_per_s\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3} }}",
        cluster_summary.count,
        cluster_summary.throughput_per_s,
        cluster_summary.p50_ms,
        cluster_summary.p99_ms
    );
    let obs_row = format!(
        "  \"obs_overhead\": {{ \"client_threads\": {OBS_CLIENTS}, \"runs_per_mode\": {OBS_RUNS}, \"metrics_off_qps\": {metrics_off_qps:.1}, \"metrics_on_qps\": {metrics_on_qps:.1}, \"on_over_off_ratio\": {obs_ratio:.3}, \"min_ratio_asserted\": {OBS_MIN_RATIO} }}"
    );
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"records\": {total_records},\n  \"trials\": {TRIALS},\n  \"threads_available\": {threads_available},\n  \"note\": \"closed-loop Estimate queries (max_weighted / max_dominance over a {TRIALS}-trial PPS traffic sketch) against one pie-serve server; each client thread owns one connection; per-query latency measured client-side; responses asserted bit-identical to the in-process Pipeline. multiplex_row holds {CONNECTIONS} simultaneously open connections in the server's poll set with {DRIVERS} driver threads (throughput asserted >= 0.9x the 8-client row); cluster_row routes through a consistent-hash router over a 3-node, replication-2 in-process cluster. obs_overhead compares best-of-{OBS_RUNS} closed-loop throughput with observability disabled vs enabled (on_over_off_ratio asserted >= {OBS_MIN_RATIO}). On threads_available=1 hosts the multi-client rows measure connection multiplexing, not parallel speedup.\",\n  \"rows\": [\n{}\n  ],\n{multiplex_row},\n{cluster_row},\n{obs_row}\n}}\n",
        json_rows.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    print!("{json}");
}
