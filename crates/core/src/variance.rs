//! Closed-form variance expressions from the paper, plus exact
//! enumeration-based evaluation for weight-oblivious outcomes.
//!
//! The closed forms are used three ways: as oracle values in the test-suite,
//! to regenerate the analytic figures (Figures 1, 2, 4 and 6) without
//! Monte-Carlo noise, and to compute the required-sample-size curves of
//! Section 8.1.

use pie_sampling::{ObliviousEntry, ObliviousOutcome};

use crate::estimate::Estimator;

// ---------------------------------------------------------------------------
// Generic inverse-probability variance (Section 2.2)
// ---------------------------------------------------------------------------

/// Equation (1): the variance of an inverse-probability estimate of a value
/// `f ≥ 0` observed with probability `p`: `f² (1/p − 1)`.
#[must_use]
pub fn ht_variance(f: f64, p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0,1], got {p}");
    f * f * (1.0 / p - 1.0)
}

/// Equation (10): the variance of the full-sample HT estimator over
/// weight-oblivious Poisson samples with probabilities `probs`.
#[must_use]
pub fn full_sample_ht_variance(f: f64, probs: &[f64]) -> f64 {
    let p: f64 = probs.iter().product();
    ht_variance(f, p)
}

// ---------------------------------------------------------------------------
// Boolean OR over weight-oblivious samples (Section 4.3)
// ---------------------------------------------------------------------------

/// Equation (23): `VAR[OR^(HT)]` on any data with `OR(v) = 1`.
#[must_use]
pub fn or_ht_variance(probs: &[f64]) -> f64 {
    1.0 / probs.iter().product::<f64>() - 1.0
}

/// Equation (24): `VAR[OR^(L)]` on the "no change" vector `(1,1)`.
#[must_use]
pub fn or_l_variance_equal(p1: f64, p2: f64) -> f64 {
    1.0 / (p1 + p2 - p1 * p2) - 1.0
}

/// `VAR[OR^(L)]` on the "change" vector `(1,0)` (the explicit expression after
/// Equation (24)).
#[must_use]
pub fn or_l_variance_change(p1: f64, p2: f64) -> f64 {
    let p_any = p1 + p2 - p1 * p2;
    (1.0 - p1)
        + p1 * (1.0 - p2) * (1.0 / p_any - 1.0).powi(2)
        + p1 * p2 * (1.0 / (p1 * p_any) - 1.0).powi(2)
}

/// `VAR[OR^(U)]` on the "no change" vector `(1,1)`, by direct expansion of the
/// Section 4.2 estimator over the four outcomes.
#[must_use]
pub fn or_u_variance_equal(p1: f64, p2: f64) -> f64 {
    let denom = 1.0 + (1.0 - p1 - p2).max(0.0);
    let e1 = 1.0 / (p1 * denom); // S = {1}
    let e2 = 1.0 / (p2 * denom); // S = {2}
    let e12 = (1.0 - ((1.0 - p2) + (1.0 - p1)) / denom) / (p1 * p2); // S = {1,2}
    let second_moment = p1 * (1.0 - p2) * e1 * e1 + p2 * (1.0 - p1) * e2 * e2 + p1 * p2 * e12 * e12;
    second_moment - 1.0
}

/// `VAR[OR^(U)]` on the "change" vector `(1,0)`, by direct expansion.
#[must_use]
pub fn or_u_variance_change(p1: f64, p2: f64) -> f64 {
    let denom = 1.0 + (1.0 - p1 - p2).max(0.0);
    let e1 = 1.0 / (p1 * denom); // S = {1}, entry 2 unsampled
    let e12 = (1.0 - (1.0 - p2) / denom) / (p1 * p2); // both sampled, values (1, 0)
    let second_moment = p1 * (1.0 - p2) * e1 * e1 + p1 * p2 * e12 * e12;
    second_moment - 1.0
}

// ---------------------------------------------------------------------------
// max over weight-oblivious samples with p1 = p2 = 1/2 (Figure 1 box)
// ---------------------------------------------------------------------------

/// Figure 1: `VAR[max^(HT)] = 3·max²` for `p1 = p2 = 1/2`.
#[must_use]
pub fn max_ht_variance_half(v1: f64, v2: f64) -> f64 {
    let mx = v1.max(v2);
    3.0 * mx * mx
}

/// Figure 1: `VAR[max^(L)] = 11/9·max² + 8/9·min² − 16/9·max·min` for
/// `p1 = p2 = 1/2`.
#[must_use]
pub fn max_l_variance_half(v1: f64, v2: f64) -> f64 {
    let (mx, mn) = (v1.max(v2), v1.min(v2));
    11.0 / 9.0 * mx * mx + 8.0 / 9.0 * mn * mn - 16.0 / 9.0 * mx * mn
}

/// `VAR[max^(U)]` for `p1 = p2 = 1/2`, evaluated from the estimator table of
/// Figure 1: `max² + 2·min² − 2·max·min`.
///
/// Note: the paper's Figure 1 box states `3/4·max² + 2·min² − 2·max·min`, but
/// direct evaluation of the `max^(U)` estimator printed in the *same* figure
/// (`2v_i` on single-entry outcomes, `2·max − 2·min` on full outcomes) gives a
/// `max²` coefficient of 1, and no unbiased nonnegative estimator can do
/// better than variance `1/p − 1 = 1` on `(1, 0)` at `p = 1/2`.  We therefore
/// treat the paper's `3/4` as a typo and use the value implied by the
/// estimator; see EXPERIMENTS.md.
#[must_use]
pub fn max_u_variance_half(v1: f64, v2: f64) -> f64 {
    let (mx, mn) = (v1.max(v2), v1.min(v2));
    mx * mx + 2.0 * mn * mn - 2.0 * mx * mn
}

/// The variance expression for `max^(U)` at `p1 = p2 = 1/2` *as printed* in
/// the paper's Figure 1 box (`3/4·max² + 2·min² − 2·max·min`).  Kept for
/// side-by-side comparison in the figure harness; see
/// [`max_u_variance_half`] for why the implementation uses a different
/// `max²` coefficient.
#[must_use]
pub fn max_u_variance_half_as_printed(v1: f64, v2: f64) -> f64 {
    let (mx, mn) = (v1.max(v2), v1.min(v2));
    0.75 * mx * mx + 2.0 * mn * mn - 2.0 * mx * mn
}

// ---------------------------------------------------------------------------
// max over PPS samples with known seeds (Section 5.2, Figure 4)
// ---------------------------------------------------------------------------

/// Section 5.2: normalized variance `VAR[max^(HT)]/τ*²  = ρ²(1/ρ² − 1) = 1 − ρ²`
/// for `τ*_1 = τ*_2 = τ*` and `ρ = max(v)/τ* ≤ 1`; independent of `min(v)`.
#[must_use]
pub fn max_ht_pps_normalized_variance(rho: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rho),
        "rho must be in [0,1], got {rho}"
    );
    if rho == 0.0 {
        0.0
    } else {
        1.0 - rho * rho
    }
}

/// Section 5.2's *claimed* normalized variance of `max^(L)` on the extreme
/// vector `(ρτ*, 0)`: `ρ − ρ²`.
///
/// Note: the paper arrives at this by asserting that on `(ρτ*, 0)` the
/// `max^(L)` estimator "equals τ* with probability ρ and 0 otherwise".  The
/// Figure 3 estimator does not actually behave that way (its value on the
/// determining vector `(ρτ*, ρτ*)` is `τ*²·/(2τ*−ρτ*) < τ*`), and exact
/// quadrature of the Figure 3 closed form gives a larger variance on this
/// vector.  The function is kept as the paper's reference value for the
/// figure harness; see EXPERIMENTS.md for measured-vs-claimed numbers.
#[must_use]
pub fn max_l_pps_normalized_variance_extreme_claimed(rho: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rho),
        "rho must be in [0,1], got {rho}"
    );
    rho - rho * rho
}

/// Section 5.2's claimed lower bound `(1+ρ)/ρ` on
/// `VAR[max^(HT)]/VAR[max^(L)]` for `0 < ρ < 1`.
///
/// The bound is derived from
/// [`max_l_pps_normalized_variance_extreme_claimed`]; for vectors whose
/// entries are similar it holds with a lot of room to spare, while at the
/// `min = 0` extreme the measured ratio of the Figure 3 estimator is close to
/// (and for large ρ slightly below) 2.  See EXPERIMENTS.md.
#[must_use]
pub fn max_pps_variance_ratio_lower_bound_claimed(rho: f64) -> f64 {
    assert!(rho > 0.0, "rho must be positive, got {rho}");
    (1.0 + rho) / rho
}

// ---------------------------------------------------------------------------
// Exact evaluation over weight-oblivious outcomes (2^r enumeration)
// ---------------------------------------------------------------------------

/// Enumerates all `2^r` outcomes of weight-oblivious Poisson sampling of the
/// data vector `v` with probabilities `probs`, as `(probability, outcome)`
/// pairs.
///
/// # Panics
/// Panics if `v` and `probs` differ in length or `r > 24` (the enumeration
/// would be enormous).
#[must_use]
pub fn enumerate_oblivious_outcomes(v: &[f64], probs: &[f64]) -> Vec<(f64, ObliviousOutcome)> {
    assert_eq!(
        v.len(),
        probs.len(),
        "value and probability vectors must align"
    );
    let r = v.len();
    assert!(r <= 24, "exact enumeration limited to r ≤ 24, got {r}");
    let mut out = Vec::with_capacity(1usize << r);
    for mask in 0u32..(1u32 << r) {
        let mut prob = 1.0;
        let mut entries = Vec::with_capacity(r);
        for i in 0..r {
            let sampled = mask & (1 << i) != 0;
            prob *= if sampled { probs[i] } else { 1.0 - probs[i] };
            entries.push(ObliviousEntry {
                p: probs[i],
                value: if sampled { Some(v[i]) } else { None },
            });
        }
        if prob > 0.0 {
            out.push((prob, ObliviousOutcome::new(entries)));
        }
    }
    out
}

/// The exact expectation of an estimator over weight-oblivious Poisson
/// sampling of `v` with probabilities `probs`.
#[must_use]
pub fn exact_oblivious_expectation<E: Estimator<ObliviousOutcome>>(
    est: &E,
    v: &[f64],
    probs: &[f64],
) -> f64 {
    enumerate_oblivious_outcomes(v, probs)
        .iter()
        .map(|(p, o)| p * est.estimate(o))
        .sum()
}

/// The exact variance of an estimator over weight-oblivious Poisson sampling
/// of `v` with probabilities `probs`.
#[must_use]
pub fn exact_oblivious_variance<E: Estimator<ObliviousOutcome>>(
    est: &E,
    v: &[f64],
    probs: &[f64],
) -> f64 {
    let outcomes = enumerate_oblivious_outcomes(v, probs);
    let mean: f64 = outcomes.iter().map(|(p, o)| p * est.estimate(o)).sum();
    outcomes
        .iter()
        .map(|(p, o)| {
            let x = est.estimate(o);
            p * (x - mean) * (x - mean)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oblivious::{MaxHtOblivious, MaxL2, MaxU2, OrHtOblivious, OrL2, OrU2};

    #[test]
    fn ht_variance_basics() {
        assert_eq!(ht_variance(2.0, 1.0), 0.0);
        assert!((ht_variance(2.0, 0.5) - 4.0).abs() < 1e-12);
        assert!((full_sample_ht_variance(1.0, &[0.5, 0.5]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn or_formulas_match_enumeration() {
        for &(p1, p2) in &[(0.5, 0.5), (0.2, 0.7), (0.05, 0.1)] {
            let e_ht = exact_oblivious_variance(&OrHtOblivious, &[1.0, 1.0], &[p1, p2]);
            assert!((e_ht - or_ht_variance(&[p1, p2])).abs() < 1e-10);

            let e_l_11 = exact_oblivious_variance(&OrL2::new(p1, p2), &[1.0, 1.0], &[p1, p2]);
            assert!((e_l_11 - or_l_variance_equal(p1, p2)).abs() < 1e-10);

            let e_l_10 = exact_oblivious_variance(&OrL2::new(p1, p2), &[1.0, 0.0], &[p1, p2]);
            assert!((e_l_10 - or_l_variance_change(p1, p2)).abs() < 1e-10);

            let e_u_11 = exact_oblivious_variance(&OrU2::new(p1, p2), &[1.0, 1.0], &[p1, p2]);
            assert!((e_u_11 - or_u_variance_equal(p1, p2)).abs() < 1e-10);

            let e_u_10 = exact_oblivious_variance(&OrU2::new(p1, p2), &[1.0, 0.0], &[p1, p2]);
            assert!((e_u_10 - or_u_variance_change(p1, p2)).abs() < 1e-10);
        }
    }

    #[test]
    fn figure1_formulas_match_enumeration() {
        for &(v1, v2) in &[(1.0, 0.0), (1.0, 0.3), (1.0, 1.0), (5.0, 2.0)] {
            let p = [0.5, 0.5];
            let ht = exact_oblivious_variance(&MaxHtOblivious, &[v1, v2], &p);
            let l = exact_oblivious_variance(&MaxL2::new(0.5, 0.5), &[v1, v2], &p);
            let u = exact_oblivious_variance(&MaxU2::new(0.5, 0.5), &[v1, v2], &p);
            assert!((ht - max_ht_variance_half(v1, v2)).abs() < 1e-9);
            assert!((l - max_l_variance_half(v1, v2)).abs() < 1e-9);
            assert!((u - max_u_variance_half(v1, v2)).abs() < 1e-9);
        }
    }

    #[test]
    fn pps_normalized_variance_shapes() {
        // HT normalized variance is 1 − ρ², independent of min; the paper's
        // claimed max^(L) variance on the extreme (min = 0) vector is ρ − ρ²,
        // so the claimed ratio is (1+ρ)/ρ.
        for &rho in &[0.01, 0.1, 0.5, 0.99] {
            let ht = max_ht_pps_normalized_variance(rho);
            let l = max_l_pps_normalized_variance_extreme_claimed(rho);
            assert!((ht / l - max_pps_variance_ratio_lower_bound_claimed(rho)).abs() < 1e-9);
            assert!(max_pps_variance_ratio_lower_bound_claimed(rho) >= 2.0 - 1e-12);
        }
        assert_eq!(max_ht_pps_normalized_variance(1.0), 0.0);
        assert_eq!(max_ht_pps_normalized_variance(0.0), 0.0);
    }

    #[test]
    fn printed_and_corrected_u_variance_differ_only_in_the_max_term() {
        for &(v1, v2) in &[(1.0, 0.0), (1.0, 0.4), (3.0, 2.0)] {
            let diff = max_u_variance_half(v1, v2) - max_u_variance_half_as_printed(v1, v2);
            let mx = v1.max(v2);
            assert!((diff - 0.25 * mx * mx).abs() < 1e-12);
        }
    }

    #[test]
    fn enumeration_skips_zero_probability_outcomes() {
        // With p = 1 the only outcome is "everything sampled".
        let outcomes = enumerate_oblivious_outcomes(&[1.0, 2.0], &[1.0, 1.0]);
        assert_eq!(outcomes.len(), 1);
        assert!((outcomes[0].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_expectation_reproduces_truth_for_unbiased_estimators() {
        let v = [4.0, 1.0];
        let p = [0.3, 0.6];
        let e = exact_oblivious_expectation(&MaxL2::new(0.3, 0.6), &v, &p);
        assert!((e - 4.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_rejected() {
        let _ = enumerate_oblivious_outcomes(&[1.0], &[0.5, 0.5]);
    }
}
