//! Estimator traits, the batched estimation hot path, and the properties the
//! paper cares about.
//!
//! An estimator (Section 2.1) is a function applied to an *outcome* — what
//! sampling revealed about one key's value vector.  The properties of
//! interest are unbiasedness, nonnegativity, bounded variance, monotonicity,
//! and (Pareto) dominance; the concrete estimators in this crate document
//! which of these they satisfy, and the test-suite and the `pie-analysis`
//! crate verify them numerically.
//!
//! # Batch-first design
//!
//! In production these estimators run per key over millions of keys, so the
//! API is shaped around that regime rather than around one outcome at a
//! time:
//!
//! * [`Estimator::estimate_lanes`] is the hot path: it maps a
//!   struct-of-arrays lane batch ([`pie_sampling::lanes`]) into a
//!   caller-provided output slice.  The lanes are built once per trial and
//!   shared by every registered estimator; estimators with branch-light
//!   arithmetic override this with chunked kernels that LLVM autovectorizes,
//!   and the default replays the scalar [`Estimator::estimate`] over
//!   outcomes rebuilt from the lanes — bit-identical by construction.
//! * [`Estimator::estimate_batch`] is the array-of-structs batch path: it
//!   maps a slice of outcomes into a caller-provided output slice, so a
//!   whole key range is estimated with zero allocation and one virtual
//!   dispatch.  The default implementation loops over
//!   [`Estimator::estimate`].
//! * [`Estimator`] is object-safe: pipelines, benches, and CLIs hold
//!   `Box<dyn Estimator<O>>` and dispatch dynamically.
//! * [`EstimatorRegistry`] is the name-keyed collection used to enumerate
//!   estimator families dynamically (reports, benchmark matrices,
//!   `Pipeline::estimators` in the umbrella crate).
//!
//! Outcomes themselves are read through the allocation-free
//! [`pie_sampling::OutcomeView`] accessors; the old `Vec`-returning
//! accessors remain as deprecated shims.

use pie_sampling::{LaneOutcome, ObliviousOutcome, WeightedOutcome};

/// An estimator of a multi-instance function from outcomes of type `O`.
///
/// Implementations must be deterministic functions of the outcome: all the
/// randomness lives in the sampling, none in the estimation.
///
/// The trait is object-safe; `&dyn Estimator<O>` and `Box<dyn Estimator<O>>`
/// estimate through the same batched hot path as concrete types.
pub trait Estimator<O> {
    /// Returns the estimate for the given outcome.
    fn estimate(&self, outcome: &O) -> f64;

    /// A short, stable name used in reports and benchmark output.
    fn name(&self) -> &'static str;

    /// Estimates every outcome of a batch, writing `outcomes[i]`'s estimate
    /// to `out[i]`.
    ///
    /// This is the allocation-free hot path: callers own both slices and
    /// reuse them across batches.  The default delegates to
    /// [`estimate`](Self::estimate) per outcome; implementations whose
    /// per-outcome work shares setup may override it, but must produce
    /// exactly the same values (the workspace property tests assert this for
    /// every registered estimator).
    ///
    /// # Panics
    /// Panics if `outcomes` and `out` have different lengths.
    fn estimate_batch(&self, outcomes: &[O], out: &mut [f64]) {
        check_batch_len(outcomes, out);
        for (slot, outcome) in out.iter_mut().zip(outcomes) {
            *slot = self.estimate(outcome);
        }
    }

    /// Estimates every outcome of a struct-of-arrays lane batch, writing
    /// outcome `i`'s estimate to `out[i]`.
    ///
    /// This is the vectorization-friendly hot path: the caller builds the
    /// lanes once per trial (see [`pie_sampling::lanes`]) and shares them
    /// across every registered estimator.  The default implementation
    /// rebuilds one scratch outcome per slot and applies the scalar
    /// [`estimate`](Self::estimate) — bit-identical to the per-outcome path
    /// by construction.  Overrides replace this with branch-light chunked
    /// lane kernels, and must still produce exactly the same bits in the
    /// same summation order (the workspace property tests assert this for
    /// every registered estimator).
    ///
    /// # Panics
    /// Panics if the lane batch and `out` have different lengths.
    fn estimate_lanes(&self, lanes: &O::Lanes, out: &mut [f64])
    where
        O: LaneOutcome,
    {
        check_lanes_len(O::lanes_len(lanes), out);
        let mut scratch = O::lane_scratch(lanes);
        for (index, slot) in out.iter_mut().enumerate() {
            O::read_lane(lanes, index, &mut scratch);
            *slot = self.estimate(&scratch);
        }
    }
}

/// Block size of the lane kernels: every `estimate_lanes` override processes
/// outcomes in blocks of up to this many `f64` slots.  The inner loops run the
/// full block length, which is the shape LLVM's loop vectorizer handles
/// reliably without any `unsafe` or explicit SIMD (fixed short trip counts go
/// to the SLP vectorizer instead, which gives up on these select chains), and
/// the block bound keeps per-block scratch and rescans inside L1.
pub(crate) const LANE_BLOCK: usize = 256;

/// Asserts that a batch's outcome and output slices have equal lengths.
///
/// Every [`Estimator::estimate_batch`] override must call this first (the
/// default implementation does): the loops below are written with `zip`,
/// which would otherwise silently truncate to the shorter slice.  The
/// message formatting lives behind the branch in a `#[cold]` helper, so the
/// happy path costs one comparison.
///
/// # Panics
/// Panics if the lengths differ.
pub fn check_batch_len<O>(outcomes: &[O], out: &[f64]) {
    if outcomes.len() != out.len() {
        batch_len_mismatch(outcomes.len(), out.len());
    }
}

#[cold]
#[inline(never)]
fn batch_len_mismatch(outcomes: usize, out: usize) -> ! {
    panic!("estimate_batch: {outcomes} outcomes but {out} output slots");
}

/// Asserts that a lane batch of `lanes_len` outcomes matches the output
/// slice length; every [`Estimator::estimate_lanes`] override must call this
/// first (the default implementation does).
///
/// # Panics
/// Panics if the lengths differ.
pub fn check_lanes_len(lanes_len: usize, out: &[f64]) {
    if lanes_len != out.len() {
        lanes_len_mismatch(lanes_len, out.len());
    }
}

#[cold]
#[inline(never)]
fn lanes_len_mismatch(lanes: usize, out: usize) -> ! {
    panic!("estimate_lanes: {lanes} lane outcomes but {out} output slots");
}

/// Convenience alias for estimators over weight-oblivious Poisson outcomes
/// (Section 4 of the paper).
pub trait ObliviousEstimator: Estimator<ObliviousOutcome> {}
impl<T: Estimator<ObliviousOutcome>> ObliviousEstimator for T {}

/// Convenience alias for estimators over weighted (PPS) outcomes
/// (Sections 5–6 of the paper).
pub trait WeightedEstimator: Estimator<WeightedOutcome> {}
impl<T: Estimator<WeightedOutcome>> WeightedEstimator for T {}

/// Blanket impl so `&E`, `Box<E>`, … can be used wherever an estimator is
/// expected.
impl<O, E: Estimator<O> + ?Sized> Estimator<O> for &E {
    fn estimate(&self, outcome: &O) -> f64 {
        (**self).estimate(outcome)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn estimate_batch(&self, outcomes: &[O], out: &mut [f64]) {
        (**self).estimate_batch(outcomes, out);
    }
    fn estimate_lanes(&self, lanes: &O::Lanes, out: &mut [f64])
    where
        O: LaneOutcome,
    {
        (**self).estimate_lanes(lanes, out);
    }
}

impl<O, E: Estimator<O> + ?Sized> Estimator<O> for Box<E> {
    fn estimate(&self, outcome: &O) -> f64 {
        (**self).estimate(outcome)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn estimate_batch(&self, outcomes: &[O], out: &mut [f64]) {
        (**self).estimate_batch(outcomes, out);
    }
    fn estimate_lanes(&self, lanes: &O::Lanes, out: &mut [f64])
    where
        O: LaneOutcome,
    {
        (**self).estimate_lanes(lanes, out);
    }
}

/// The qualitative properties an estimator may satisfy (Section 2.1).
///
/// This is a *claims record* attached to estimators for documentation and for
/// driving property tests; it does not by itself prove anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EstimatorProperties {
    /// `E[f̂ | v] = f(v)` for every data vector.
    pub unbiased: bool,
    /// `f̂ ≥ 0` on every outcome.
    pub nonnegative: bool,
    /// `Var[f̂ | v] < ∞` for every data vector.
    pub bounded_variance: bool,
    /// Non-decreasing with information: more informative outcomes never
    /// decrease the estimate.
    pub monotone: bool,
    /// Pareto optimal: no unbiased nonnegative estimator dominates it.
    pub pareto_optimal: bool,
}

impl EstimatorProperties {
    /// Properties of an inverse-probability (HT-style) estimator: unbiased,
    /// nonnegative, bounded variance, monotone — but not necessarily Pareto
    /// optimal for multi-instance functions.
    #[must_use]
    pub fn ht() -> Self {
        Self {
            unbiased: true,
            nonnegative: true,
            bounded_variance: true,
            monotone: true,
            pareto_optimal: false,
        }
    }

    /// Properties of the paper's order-based optimal estimators.
    #[must_use]
    pub fn pareto() -> Self {
        Self {
            unbiased: true,
            nonnegative: true,
            bounded_variance: true,
            monotone: true,
            pareto_optimal: true,
        }
    }
}

/// An estimator bundled with the properties it claims; used by reports.
pub trait DocumentedEstimator<O>: Estimator<O> {
    /// The properties this estimator claims to satisfy.
    fn properties(&self) -> EstimatorProperties;
}

/// The boxed, dynamically dispatched estimator type held by registries and
/// pipelines.
pub type DynEstimator<O> = Box<dyn Estimator<O> + Send + Sync>;

/// A name-keyed, insertion-ordered collection of estimators over one outcome
/// type.
///
/// This is how benches, reports, and CLIs enumerate estimator families
/// dynamically instead of hard-coding one struct per call site: build a
/// registry once, then iterate it, look estimators up by name, and run each
/// through the batched hot path ([`Estimator::estimate_batch`]).
///
/// ```
/// use pie_core::{Estimator, EstimatorRegistry};
/// use pie_core::oblivious::{MaxHtOblivious, MaxL2};
/// use pie_sampling::{ObliviousEntry, ObliviousOutcome};
///
/// let registry = EstimatorRegistry::new()
///     .with(MaxHtOblivious)
///     .with(MaxL2::new(0.5, 0.5));
/// assert_eq!(
///     registry.names().collect::<Vec<_>>(),
///     ["max_ht_oblivious", "max_l_2"]
/// );
///
/// let outcomes = vec![ObliviousOutcome::new(vec![
///     ObliviousEntry { p: 0.5, value: Some(8.0) },
///     ObliviousEntry { p: 0.5, value: None },
/// ])];
/// let mut out = vec![0.0; outcomes.len()];
/// for (name, estimator) in registry.iter() {
///     estimator.estimate_batch(&outcomes, &mut out);
///     println!("{name}: {}", out[0]);
/// }
/// ```
pub struct EstimatorRegistry<O> {
    entries: Vec<(String, DynEstimator<O>)>,
}

impl<O> Default for EstimatorRegistry<O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O> EstimatorRegistry<O> {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Registers `estimator` under its own [`Estimator::name`].
    ///
    /// # Panics
    /// Panics if an estimator with the same name is already registered —
    /// duplicate names would make name-keyed reports ambiguous.
    pub fn register<E>(&mut self, estimator: E) -> &mut Self
    where
        E: Estimator<O> + Send + Sync + 'static,
    {
        self.register_named(estimator.name().to_string(), estimator)
    }

    /// Registers `estimator` under an explicit name (e.g. to distinguish two
    /// parameterizations of the same estimator type).
    ///
    /// # Panics
    /// Panics if the name is already taken.
    pub fn register_named<E>(&mut self, name: impl Into<String>, estimator: E) -> &mut Self
    where
        E: Estimator<O> + Send + Sync + 'static,
    {
        let name = name.into();
        assert!(
            self.get(&name).is_none(),
            "estimator name {name:?} registered twice"
        );
        self.entries.push((name, Box::new(estimator)));
        self
    }

    /// Builder-style [`register`](Self::register).
    #[must_use]
    pub fn with<E>(mut self, estimator: E) -> Self
    where
        E: Estimator<O> + Send + Sync + 'static,
    {
        self.register(estimator);
        self
    }

    /// Builder-style [`register_named`](Self::register_named).
    #[must_use]
    pub fn with_named<E>(mut self, name: impl Into<String>, estimator: E) -> Self
    where
        E: Estimator<O> + Send + Sync + 'static,
    {
        self.register_named(name, estimator);
        self
    }

    /// Looks an estimator up by registered name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&(dyn Estimator<O> + Send + Sync)> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| &**e)
    }

    /// The registered names, in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Iterates `(name, estimator)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &(dyn Estimator<O> + Send + Sync))> {
        self.entries.iter().map(|(n, e)| (n.as_str(), &**e))
    }

    /// Number of registered estimators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_sampling::{ObliviousEntry, ObliviousOutcome};

    struct Always7;
    impl Estimator<ObliviousOutcome> for Always7 {
        fn estimate(&self, _o: &ObliviousOutcome) -> f64 {
            7.0
        }
        fn name(&self) -> &'static str {
            "always7"
        }
    }

    #[test]
    fn default_estimate_batch_matches_per_outcome() {
        let outcomes: Vec<ObliviousOutcome> = (0..5)
            .map(|i| {
                ObliviousOutcome::new(vec![ObliviousEntry {
                    p: 0.5,
                    value: (i % 2 == 0).then_some(f64::from(i)),
                }])
            })
            .collect();
        let mut out = vec![f64::NAN; outcomes.len()];
        Always7.estimate_batch(&outcomes, &mut out);
        for (o, &batch) in outcomes.iter().zip(&out) {
            assert_eq!(batch, Always7.estimate(o));
        }
    }

    #[test]
    #[should_panic(expected = "output slots")]
    fn estimate_batch_rejects_length_mismatch() {
        let outcomes = vec![ObliviousOutcome::new(vec![ObliviousEntry {
            p: 0.5,
            value: None,
        }])];
        let mut out = vec![0.0; 2];
        Always7.estimate_batch(&outcomes, &mut out);
    }

    #[test]
    fn default_estimate_lanes_matches_scalar_and_is_object_safe() {
        let outcomes: Vec<ObliviousOutcome> = (0..5)
            .map(|i| {
                ObliviousOutcome::new(vec![ObliviousEntry {
                    p: 0.5,
                    value: (i % 2 == 0).then_some(f64::from(i)),
                }])
            })
            .collect();
        let mut lanes = pie_sampling::ObliviousLanes::new();
        lanes.fill_from_outcomes(&outcomes);
        let mut out = vec![f64::NAN; outcomes.len()];
        // Dispatch through a trait object: estimate_lanes must stay
        // available behind `dyn Estimator<O>`.
        let dyn_est: &dyn Estimator<ObliviousOutcome> = &Always7;
        dyn_est.estimate_lanes(&lanes, &mut out);
        for (o, &lane) in outcomes.iter().zip(&out) {
            assert_eq!(lane, Always7.estimate(o));
        }
    }

    #[test]
    #[should_panic(expected = "output slots")]
    fn estimate_lanes_rejects_length_mismatch() {
        let outcomes = vec![ObliviousOutcome::new(vec![ObliviousEntry {
            p: 0.5,
            value: None,
        }])];
        let mut lanes = pie_sampling::ObliviousLanes::new();
        lanes.fill_from_outcomes(&outcomes);
        let mut out = vec![0.0; 2];
        Always7.estimate_lanes(&lanes, &mut out);
    }

    #[test]
    fn registry_is_name_keyed_and_insertion_ordered() {
        struct Always(f64, &'static str);
        impl Estimator<ObliviousOutcome> for Always {
            fn estimate(&self, _o: &ObliviousOutcome) -> f64 {
                self.0
            }
            fn name(&self) -> &'static str {
                self.1
            }
        }
        let registry = EstimatorRegistry::new()
            .with(Always(1.0, "one"))
            .with(Always(2.0, "two"))
            .with_named("custom", Always(3.0, "ignored"));
        assert_eq!(registry.len(), 3);
        assert!(!registry.is_empty());
        assert_eq!(
            registry.names().collect::<Vec<_>>(),
            ["one", "two", "custom"]
        );
        let o = ObliviousOutcome::new(vec![ObliviousEntry {
            p: 0.5,
            value: None,
        }]);
        assert_eq!(registry.get("two").unwrap().estimate(&o), 2.0);
        assert!(registry.get("missing").is_none());
        let estimates: Vec<f64> = registry.iter().map(|(_, e)| e.estimate(&o)).collect();
        assert_eq!(estimates, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn registry_rejects_duplicate_names() {
        let _ = EstimatorRegistry::new().with(Always7).with(Always7);
    }

    #[test]
    fn blanket_impls_delegate() {
        let o = ObliviousOutcome::new(vec![ObliviousEntry {
            p: 0.5,
            value: None,
        }]);
        let e = Always7;
        let by_ref: &dyn Estimator<ObliviousOutcome> = &e;
        assert_eq!(by_ref.estimate(&o), 7.0);
        assert_eq!(by_ref.name(), "always7");
        let boxed: Box<dyn Estimator<ObliviousOutcome>> = Box::new(Always7);
        assert_eq!(boxed.estimate(&o), 7.0);
        assert_eq!(boxed.name(), "always7");
    }

    #[test]
    fn property_presets() {
        let ht = EstimatorProperties::ht();
        assert!(ht.unbiased && ht.nonnegative && ht.monotone && !ht.pareto_optimal);
        let p = EstimatorProperties::pareto();
        assert!(p.pareto_optimal && p.unbiased);
        assert_eq!(
            EstimatorProperties::default(),
            EstimatorProperties {
                unbiased: false,
                nonnegative: false,
                bounded_variance: false,
                monotone: false,
                pareto_optimal: false
            }
        );
    }
}
