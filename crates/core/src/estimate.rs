//! Estimator traits and the properties the paper cares about.
//!
//! An estimator (Section 2.1) is a function applied to an *outcome* — what
//! sampling revealed about one key's value vector.  The properties of
//! interest are unbiasedness, nonnegativity, bounded variance, monotonicity,
//! and (Pareto) dominance; the concrete estimators in this crate document
//! which of these they satisfy, and the test-suite and the `pie-analysis`
//! crate verify them numerically.

use pie_sampling::{ObliviousOutcome, WeightedOutcome};

/// An estimator of a multi-instance function from outcomes of type `O`.
///
/// Implementations must be deterministic functions of the outcome: all the
/// randomness lives in the sampling, none in the estimation.
pub trait Estimator<O> {
    /// Returns the estimate for the given outcome.
    fn estimate(&self, outcome: &O) -> f64;

    /// A short, stable name used in reports and benchmark output.
    fn name(&self) -> &'static str;
}

/// Convenience alias for estimators over weight-oblivious Poisson outcomes
/// (Section 4 of the paper).
pub trait ObliviousEstimator: Estimator<ObliviousOutcome> {}
impl<T: Estimator<ObliviousOutcome>> ObliviousEstimator for T {}

/// Convenience alias for estimators over weighted (PPS) outcomes
/// (Sections 5–6 of the paper).
pub trait WeightedEstimator: Estimator<WeightedOutcome> {}
impl<T: Estimator<WeightedOutcome>> WeightedEstimator for T {}

/// Blanket impl so `&E`, `Box<E>`, … can be used wherever an estimator is
/// expected.
impl<O, E: Estimator<O> + ?Sized> Estimator<O> for &E {
    fn estimate(&self, outcome: &O) -> f64 {
        (**self).estimate(outcome)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<O, E: Estimator<O> + ?Sized> Estimator<O> for Box<E> {
    fn estimate(&self, outcome: &O) -> f64 {
        (**self).estimate(outcome)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The qualitative properties an estimator may satisfy (Section 2.1).
///
/// This is a *claims record* attached to estimators for documentation and for
/// driving property tests; it does not by itself prove anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EstimatorProperties {
    /// `E[f̂ | v] = f(v)` for every data vector.
    pub unbiased: bool,
    /// `f̂ ≥ 0` on every outcome.
    pub nonnegative: bool,
    /// `Var[f̂ | v] < ∞` for every data vector.
    pub bounded_variance: bool,
    /// Non-decreasing with information: more informative outcomes never
    /// decrease the estimate.
    pub monotone: bool,
    /// Pareto optimal: no unbiased nonnegative estimator dominates it.
    pub pareto_optimal: bool,
}

impl EstimatorProperties {
    /// Properties of an inverse-probability (HT-style) estimator: unbiased,
    /// nonnegative, bounded variance, monotone — but not necessarily Pareto
    /// optimal for multi-instance functions.
    #[must_use]
    pub fn ht() -> Self {
        Self {
            unbiased: true,
            nonnegative: true,
            bounded_variance: true,
            monotone: true,
            pareto_optimal: false,
        }
    }

    /// Properties of the paper's order-based optimal estimators.
    #[must_use]
    pub fn pareto() -> Self {
        Self {
            unbiased: true,
            nonnegative: true,
            bounded_variance: true,
            monotone: true,
            pareto_optimal: true,
        }
    }
}

/// An estimator bundled with the properties it claims; used by reports.
pub trait DocumentedEstimator<O>: Estimator<O> {
    /// The properties this estimator claims to satisfy.
    fn properties(&self) -> EstimatorProperties;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_sampling::{ObliviousEntry, ObliviousOutcome};

    struct Always7;
    impl Estimator<ObliviousOutcome> for Always7 {
        fn estimate(&self, _o: &ObliviousOutcome) -> f64 {
            7.0
        }
        fn name(&self) -> &'static str {
            "always7"
        }
    }

    #[test]
    fn blanket_impls_delegate() {
        let o = ObliviousOutcome::new(vec![ObliviousEntry {
            p: 0.5,
            value: None,
        }]);
        let e = Always7;
        let by_ref: &dyn Estimator<ObliviousOutcome> = &e;
        assert_eq!(by_ref.estimate(&o), 7.0);
        assert_eq!(by_ref.name(), "always7");
        let boxed: Box<dyn Estimator<ObliviousOutcome>> = Box::new(Always7);
        assert_eq!(boxed.estimate(&o), 7.0);
        assert_eq!(boxed.name(), "always7");
    }

    #[test]
    fn property_presets() {
        let ht = EstimatorProperties::ht();
        assert!(ht.unbiased && ht.nonnegative && ht.monotone && !ht.pareto_optimal);
        let p = EstimatorProperties::pareto();
        assert!(p.pareto_optimal && p.unbiased);
        assert_eq!(EstimatorProperties::default(), EstimatorProperties {
            unbiased: false,
            nonnegative: false,
            bounded_variance: false,
            monotone: false,
            pareto_optimal: false
        });
    }
}
