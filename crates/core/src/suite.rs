//! Standard estimator suites: prebuilt [`EstimatorRegistry`]s for the
//! families the paper compares.
//!
//! Benches, figure harnesses, and the umbrella crate's `Pipeline` enumerate
//! estimators dynamically through a registry instead of hard-coding one
//! struct per call site; these constructors bundle the canonical line-ups
//! (HT baseline vs. the Pareto-optimal `L`/`U` estimators) per target
//! function and sampling regime.

use pie_sampling::{ObliviousOutcome, WeightedOutcome};

use crate::estimate::EstimatorRegistry;
use crate::oblivious::{MaxHtOblivious, MaxL2, MaxLUniform, MaxU2, OrHtOblivious, OrL2, OrU2};
use crate::weighted::{MaxHtPps, MaxLPps2, OrHtKnownSeeds, OrLKnownSeeds, OrUKnownSeeds};

/// The `max` estimators over two weight-oblivious Poisson instances sampled
/// with probabilities `p1`, `p2`: the HT baseline and the Pareto-optimal
/// `max^(L)` / `max^(U)` (Section 4, Figure 1).
#[must_use]
pub fn max_oblivious_suite(p1: f64, p2: f64) -> EstimatorRegistry<ObliviousOutcome> {
    EstimatorRegistry::new()
        .with(MaxHtOblivious)
        .with(MaxL2::new(p1, p2))
        .with(MaxU2::new(p1, p2))
}

/// The `max` estimators over `r` weight-oblivious instances with uniform
/// sampling probability `p`: the HT baseline and the Algorithm 3 `max^(L)`
/// (Section 4.2).
#[must_use]
pub fn max_oblivious_uniform_suite(r: usize, p: f64) -> EstimatorRegistry<ObliviousOutcome> {
    EstimatorRegistry::new()
        .with(MaxHtOblivious)
        .with(MaxLUniform::new(r, p))
}

/// The Boolean `OR` estimators over two weight-oblivious instances
/// (Section 4.3, Figure 2).
#[must_use]
pub fn or_oblivious_suite(p1: f64, p2: f64) -> EstimatorRegistry<ObliviousOutcome> {
    EstimatorRegistry::new()
        .with(OrHtOblivious)
        .with(OrL2::new(p1, p2))
        .with(OrU2::new(p1, p2))
}

/// The `max` estimators over weighted (PPS) samples with known seeds: the HT
/// baseline and the Figure 3 closed-form `max^(L)` (Sections 5–6).
#[must_use]
pub fn max_weighted_suite() -> EstimatorRegistry<WeightedOutcome> {
    EstimatorRegistry::new().with(MaxHtPps).with(MaxLPps2)
}

/// The Boolean `OR` estimators over weighted samples with known seeds
/// (Section 5.1).
#[must_use]
pub fn or_weighted_suite() -> EstimatorRegistry<WeightedOutcome> {
    EstimatorRegistry::new()
        .with(OrHtKnownSeeds)
        .with(OrLKnownSeeds)
        .with(OrUKnownSeeds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_enumerate_expected_line_ups() {
        assert_eq!(
            max_oblivious_suite(0.5, 0.5).names().collect::<Vec<_>>(),
            ["max_ht_oblivious", "max_l_2", "max_u_2"]
        );
        assert_eq!(max_oblivious_uniform_suite(4, 0.3).len(), 2);
        assert_eq!(
            or_oblivious_suite(0.4, 0.6).names().collect::<Vec<_>>(),
            ["or_ht_oblivious", "or_l_2", "or_u_2"]
        );
        assert_eq!(
            max_weighted_suite().names().collect::<Vec<_>>(),
            ["max_ht_pps", "max_l_pps_2"]
        );
        assert_eq!(or_weighted_suite().len(), 3);
    }
}
