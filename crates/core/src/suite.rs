//! Standard estimator suites: prebuilt [`EstimatorRegistry`]s for the
//! families the paper compares.
//!
//! Benches, figure harnesses, and the umbrella crate's `Pipeline` enumerate
//! estimators dynamically through a registry instead of hard-coding one
//! struct per call site; these constructors bundle the canonical line-ups
//! (HT baseline vs. the Pareto-optimal `L`/`U` estimators) per target
//! function and sampling regime.
//!
//! For callers that receive a suite choice as *data* — a CLI flag, a served
//! `Estimate` request naming its estimator family — the module also exposes
//! a name-keyed lookup surface: [`SUITE_NAMES`], [`suite_regime`],
//! [`oblivious_suite_by_name`], and [`weighted_suite_by_name`].

use pie_sampling::{ObliviousOutcome, WeightedOutcome};

use crate::estimate::EstimatorRegistry;
use crate::oblivious::{MaxHtOblivious, MaxL2, MaxLUniform, MaxU2, OrHtOblivious, OrL2, OrU2};
use crate::weighted::{MaxHtPps, MaxLPps2, OrHtKnownSeeds, OrLKnownSeeds, OrUKnownSeeds};

/// The `max` estimators over two weight-oblivious Poisson instances sampled
/// with probabilities `p1`, `p2`: the HT baseline and the Pareto-optimal
/// `max^(L)` / `max^(U)` (Section 4, Figure 1).
#[must_use]
pub fn max_oblivious_suite(p1: f64, p2: f64) -> EstimatorRegistry<ObliviousOutcome> {
    EstimatorRegistry::new()
        .with(MaxHtOblivious)
        .with(MaxL2::new(p1, p2))
        .with(MaxU2::new(p1, p2))
}

/// The `max` estimators over `r` weight-oblivious instances with uniform
/// sampling probability `p`: the HT baseline and the Algorithm 3 `max^(L)`
/// (Section 4.2).
#[must_use]
pub fn max_oblivious_uniform_suite(r: usize, p: f64) -> EstimatorRegistry<ObliviousOutcome> {
    EstimatorRegistry::new()
        .with(MaxHtOblivious)
        .with(MaxLUniform::new(r, p))
}

/// The Boolean `OR` estimators over two weight-oblivious instances
/// (Section 4.3, Figure 2).
#[must_use]
pub fn or_oblivious_suite(p1: f64, p2: f64) -> EstimatorRegistry<ObliviousOutcome> {
    EstimatorRegistry::new()
        .with(OrHtOblivious)
        .with(OrL2::new(p1, p2))
        .with(OrU2::new(p1, p2))
}

/// The `max` estimators over weighted (PPS) samples with known seeds: the HT
/// baseline and the Figure 3 closed-form `max^(L)` (Sections 5–6).
#[must_use]
pub fn max_weighted_suite() -> EstimatorRegistry<WeightedOutcome> {
    EstimatorRegistry::new().with(MaxHtPps).with(MaxLPps2)
}

/// The Boolean `OR` estimators over weighted samples with known seeds
/// (Section 5.1).
#[must_use]
pub fn or_weighted_suite() -> EstimatorRegistry<WeightedOutcome> {
    EstimatorRegistry::new()
        .with(OrHtKnownSeeds)
        .with(OrLKnownSeeds)
        .with(OrUKnownSeeds)
}

/// The outcome regime a named suite consumes — which sampling scheme it can
/// estimate over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteRegime {
    /// Estimators over weight-oblivious Poisson outcomes.
    Oblivious,
    /// Estimators over weighted (known-seed PPS) outcomes.
    Weighted,
}

/// Every suite name resolvable through [`oblivious_suite_by_name`] /
/// [`weighted_suite_by_name`], in a stable order.
pub const SUITE_NAMES: [&str; 5] = [
    "max_oblivious",
    "max_oblivious_uniform",
    "or_oblivious",
    "max_weighted",
    "or_weighted",
];

/// The regime of a named suite, or `None` for an unknown name.
#[must_use]
pub fn suite_regime(name: &str) -> Option<SuiteRegime> {
    match name {
        "max_oblivious" | "max_oblivious_uniform" | "or_oblivious" => Some(SuiteRegime::Oblivious),
        "max_weighted" | "or_weighted" => Some(SuiteRegime::Weighted),
        _ => None,
    }
}

/// Resolves an oblivious-regime suite by name: `r` is the instance count and
/// `p` the (shared) sampling probability.
///
/// The pairwise suites (`max_oblivious`, `or_oblivious`) use `p` for both
/// instances; `max_oblivious_uniform` uses Algorithm 3 over all `r`
/// instances.  Returns `None` for unknown or weighted-regime names.
#[must_use]
pub fn oblivious_suite_by_name(
    name: &str,
    r: usize,
    p: f64,
) -> Option<EstimatorRegistry<ObliviousOutcome>> {
    match name {
        "max_oblivious" => Some(max_oblivious_suite(p, p)),
        "max_oblivious_uniform" => Some(max_oblivious_uniform_suite(r, p)),
        "or_oblivious" => Some(or_oblivious_suite(p, p)),
        _ => None,
    }
}

/// Resolves a weighted-regime suite by name; `None` for unknown or
/// oblivious-regime names.
#[must_use]
pub fn weighted_suite_by_name(name: &str) -> Option<EstimatorRegistry<WeightedOutcome>> {
    match name {
        "max_weighted" => Some(max_weighted_suite()),
        "or_weighted" => Some(or_weighted_suite()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_enumerate_expected_line_ups() {
        assert_eq!(
            max_oblivious_suite(0.5, 0.5).names().collect::<Vec<_>>(),
            ["max_ht_oblivious", "max_l_2", "max_u_2"]
        );
        assert_eq!(max_oblivious_uniform_suite(4, 0.3).len(), 2);
        assert_eq!(
            or_oblivious_suite(0.4, 0.6).names().collect::<Vec<_>>(),
            ["or_ht_oblivious", "or_l_2", "or_u_2"]
        );
        assert_eq!(
            max_weighted_suite().names().collect::<Vec<_>>(),
            ["max_ht_pps", "max_l_pps_2"]
        );
        assert_eq!(or_weighted_suite().len(), 3);
    }

    #[test]
    fn lookup_surface_covers_every_name_exactly_once() {
        for name in SUITE_NAMES {
            let regime = suite_regime(name).expect(name);
            match regime {
                SuiteRegime::Oblivious => {
                    assert!(oblivious_suite_by_name(name, 2, 0.5).is_some(), "{name}");
                    assert!(weighted_suite_by_name(name).is_none(), "{name}");
                }
                SuiteRegime::Weighted => {
                    assert!(weighted_suite_by_name(name).is_some(), "{name}");
                    assert!(oblivious_suite_by_name(name, 2, 0.5).is_none(), "{name}");
                }
            }
        }
        assert!(suite_regime("nope").is_none());
        assert!(oblivious_suite_by_name("nope", 2, 0.5).is_none());
        assert!(weighted_suite_by_name("nope").is_none());
    }

    #[test]
    fn named_lookup_matches_direct_constructors() {
        assert_eq!(
            oblivious_suite_by_name("max_oblivious", 2, 0.4)
                .unwrap()
                .names()
                .collect::<Vec<_>>(),
            max_oblivious_suite(0.4, 0.4).names().collect::<Vec<_>>()
        );
        assert_eq!(
            weighted_suite_by_name("or_weighted")
                .unwrap()
                .names()
                .collect::<Vec<_>>(),
            or_weighted_suite().names().collect::<Vec<_>>()
        );
    }
}
