//! # pie-core — optimal unbiased estimators using partial information
//!
//! A faithful implementation of the estimators and derivation methodology of
//! Cohen & Kaplan, *"Get the Most out of Your Sample: Optimal Unbiased
//! Estimators using Partial Information"* (PODS 2011):
//!
//! * multi-instance primitive functions ([`functions`]);
//! * the estimator abstraction — including the batched
//!   [`Estimator::estimate_batch`] hot path and the name-keyed
//!   [`EstimatorRegistry`] — and its properties ([`estimate`]);
//! * prebuilt estimator suites for the families the paper compares
//!   ([`suite`]);
//! * Horvitz–Thompson baselines and the paper's Pareto-optimal `L`/`U`
//!   estimators for `max` and Boolean `OR` over weight-oblivious Poisson
//!   samples ([`oblivious`]);
//! * the known-seed estimators for weighted (PPS) Poisson samples
//!   ([`weighted`]), including the Figure 3 closed form for `max^(L)`;
//! * quantile / range inverse-probability estimators ([`quantile`]);
//! * the order-based derivation engine of Algorithm 1 over finite models
//!   ([`derive`]);
//! * the impossibility results for unknown seeds ([`negative`]);
//! * closed-form variance expressions and exact enumeration ([`variance`]);
//! * sum aggregates: distinct counts, dominance norms, distances
//!   ([`aggregate`]).
//!
//! Sampling itself (Poisson, bottom-k, VarOpt, seed assignments, outcomes)
//! lives in the companion crate `pie-sampling`; workload generation and the
//! evaluation harness live in `pie-datagen` and `pie-analysis`.
//!
//! ## Quick example
//!
//! ```
//! use pie_core::oblivious::{MaxHtOblivious, MaxL2};
//! use pie_core::Estimator;
//! use pie_sampling::{ObliviousEntry, ObliviousOutcome};
//!
//! // One key's outcome over two instances sampled with probability 1/2:
//! // instance 1 revealed the value 8.0, instance 2 was not sampled.
//! let outcome = ObliviousOutcome::new(vec![
//!     ObliviousEntry { p: 0.5, value: Some(8.0) },
//!     ObliviousEntry { p: 0.5, value: None },
//! ]);
//!
//! // The HT estimator ignores the partial information…
//! assert_eq!(MaxHtOblivious.estimate(&outcome), 0.0);
//! // …while the Pareto-optimal max^(L) estimator uses it.
//! let est = MaxL2::new(0.5, 0.5).estimate(&outcome);
//! assert!(est > 8.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod derive;
pub mod estimate;
pub mod functions;
pub mod negative;
pub mod oblivious;
pub mod quantile;
pub mod suite;
pub mod variance;
pub mod weighted;

pub use estimate::{
    check_batch_len, check_lanes_len, DocumentedEstimator, DynEstimator, Estimator,
    EstimatorProperties, EstimatorRegistry,
};
pub use functions::MultiInstanceFn;
