//! Impossibility results for weighted sampling with unknown seeds (Section 6).
//!
//! Theorem 6.1: over independent weighted samples whose seeds are *not*
//! available to the estimator, no unbiased nonnegative estimator exists for
//! any ℓ-th order statistic with `ℓ < r` (in particular the maximum / Boolean
//! OR), nor for the exponentiated range / XOR — even on binary data.
//!
//! The functions here make the argument computational and quantitative:
//! because estimators are functions of the outcome and the binary two-instance
//! outcome space has just four elements, unbiasedness pins the estimator down
//! uniquely, and one can simply inspect the forced values.

/// The unique unbiased estimator of `OR(v_1, v_2)` over independent weighted
/// binary samples with unknown seeds, as values on the four outcomes
/// `[∅, {1}, {2}, {1,2}]` (a sampled entry always has value 1 in this model).
///
/// Derivation: nonnegativity on data `(0,0)` forces the `∅` estimate to 0,
/// unbiasedness on `(1,0)` / `(0,1)` forces `1/p_1` / `1/p_2` on the singleton
/// outcomes, and unbiasedness on `(1,1)` then forces
/// `(p_1 + p_2 − 1)/(p_1 p_2)` on the doubleton — which is negative exactly
/// when `p_1 + p_2 < 1`.
///
/// # Panics
/// Panics unless both probabilities are in `(0, 1]`.
#[must_use]
pub fn or_unknown_seeds_forced_estimator(p1: f64, p2: f64) -> [f64; 4] {
    assert!(p1 > 0.0 && p1 <= 1.0, "p1 must be in (0,1], got {p1}");
    assert!(p2 > 0.0 && p2 <= 1.0, "p2 must be in (0,1], got {p2}");
    [0.0, 1.0 / p1, 1.0 / p2, (p1 + p2 - 1.0) / (p1 * p2)]
}

/// Whether an unbiased *nonnegative* OR estimator exists over independent
/// weighted binary samples with unknown seeds: true iff `p_1 + p_2 ≥ 1`
/// (Theorem 6.1 shows the sharp threshold).
#[must_use]
pub fn or_unknown_seeds_nonnegative_exists(p1: f64, p2: f64) -> bool {
    or_unknown_seeds_forced_estimator(p1, p2)
        .iter()
        .all(|&x| x >= 0.0)
}

/// The forced estimate on the "both entries sampled" outcome for the ℓ-th
/// order statistic construction of Theorem 6.1 (general `r`, `ℓ < r`).
///
/// The theorem embeds the two-instance OR argument by fixing
/// `v_3 = … = v_{ℓ+1} = 1` and `v_{ℓ+2} = … = v_r = 0`; on such vectors
/// `ℓ-th(v) = OR(v_1, v_2)`, the relevant outcomes must additionally sample
/// entries `3..ℓ+1` (probability `∏_{h=3}^{ℓ+1} p_h`), and the forced value on
/// the outcome sampling both of the first two entries is
/// `(p_1 + p_2 − 1) / (p_1 p_2 ∏_{h=3}^{ℓ+1} p_h)` — negative whenever
/// `p_1 + p_2 < 1`.
///
/// # Panics
/// Panics unless `1 ≤ l < probs.len()` and all probabilities are in `(0,1]`.
#[must_use]
pub fn lth_unknown_seeds_forced_value(probs: &[f64], l: usize) -> f64 {
    let r = probs.len();
    assert!(r >= 2, "need at least two instances");
    assert!(
        l >= 1 && l < r,
        "theorem applies to 1 ≤ l < r, got l={l}, r={r}"
    );
    for &p in probs {
        assert!(
            p > 0.0 && p <= 1.0,
            "probabilities must be in (0,1], got {p}"
        );
    }
    let (p1, p2) = (probs[0], probs[1]);
    // Entries 3..=l+1 (0-based indices 2..=l) carry value 1 and must all be
    // sampled for the outcome to be informative about the ℓ-th statistic.
    let aux: f64 = if l >= 2 {
        probs[2..=l].iter().product()
    } else {
        1.0
    };
    (p1 + p2 - 1.0) / (p1 * p2 * aux)
}

/// Demonstrates the XOR / exponentiated-range impossibility (Section 6, last
/// paragraph): returns the expectation that any *nonnegative* unbiased
/// estimator would be forced to have on data `(1, 0)`, which is 0 — a
/// contradiction with `XOR(1,0) = 1`.
///
/// The argument: nonnegativity on `(0,0)` and `(1,1)` forces the estimate to
/// be 0 on the empty outcome and on single-sample outcomes (each is consistent
/// with a vector whose XOR is 0); for data `(1,0)` only those outcomes can
/// occur, so the expectation is 0 regardless of `p_1, p_2`.
#[must_use]
pub fn xor_unknown_seeds_forced_expectation_on_change() -> f64 {
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::{
        derive_order_based, sparse_first_order, FiniteModel, WeightedUnknownSeedsBinaryModel,
    };
    use crate::functions::boolean_or;

    #[test]
    fn forced_estimator_is_negative_below_threshold() {
        let est = or_unknown_seeds_forced_estimator(0.3, 0.4);
        assert_eq!(est[0], 0.0);
        assert!((est[1] - 1.0 / 0.3).abs() < 1e-12);
        assert!((est[2] - 1.0 / 0.4).abs() < 1e-12);
        assert!(est[3] < 0.0);
        assert!(!or_unknown_seeds_nonnegative_exists(0.3, 0.4));
    }

    #[test]
    fn forced_estimator_is_nonnegative_above_threshold() {
        assert!(or_unknown_seeds_nonnegative_exists(0.6, 0.5));
        assert!(or_unknown_seeds_nonnegative_exists(1.0, 0.1));
        // Boundary: p1 + p2 = 1 exactly.
        assert!(or_unknown_seeds_nonnegative_exists(0.5, 0.5));
    }

    #[test]
    fn forced_estimator_matches_derivation_engine() {
        for &(p1, p2) in &[(0.2, 0.3), (0.45, 0.45), (0.7, 0.8)] {
            let model = WeightedUnknownSeedsBinaryModel::new(vec![p1, p2]);
            let order = sparse_first_order(&model.data_vectors());
            let derived = derive_order_based(&model, boolean_or, &order, 1e-12)
                .expect_success("unknown-seed OR");
            let forced = or_unknown_seeds_forced_estimator(p1, p2);
            assert!((derived.estimate(&vec![0, 0]) - forced[0]).abs() < 1e-10);
            assert!((derived.estimate(&vec![1, 0]) - forced[1]).abs() < 1e-10);
            assert!((derived.estimate(&vec![0, 1]) - forced[2]).abs() < 1e-10);
            assert!((derived.estimate(&vec![1, 1]) - forced[3]).abs() < 1e-10);
        }
    }

    #[test]
    fn lth_statistic_forced_value_sign() {
        // r = 4, l = 2, auxiliary entries sampled with probability 0.5 each.
        let probs = vec![0.3, 0.4, 0.5, 0.5];
        let forced = lth_unknown_seeds_forced_value(&probs, 2);
        assert!(forced < 0.0, "forced value should be negative: {forced}");
        // Scaling: dividing by the auxiliary probability makes it more negative
        // than the two-instance case.
        let base = or_unknown_seeds_forced_estimator(0.3, 0.4)[3];
        assert!(forced < base);
        // With large probabilities the construction no longer forces negativity.
        let ok = lth_unknown_seeds_forced_value(&[0.8, 0.7, 0.5, 0.5], 2);
        assert!(ok > 0.0);
    }

    #[test]
    fn l_equals_one_ignores_auxiliary_entries() {
        // For l = 1 (the maximum) no auxiliary entries are needed.
        let a = lth_unknown_seeds_forced_value(&[0.3, 0.4, 0.9, 0.9], 1);
        let b = or_unknown_seeds_forced_estimator(0.3, 0.4)[3];
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "1 ≤ l < r")]
    fn lth_rejects_l_equal_r() {
        let _ = lth_unknown_seeds_forced_value(&[0.5, 0.5], 2);
    }

    #[test]
    fn xor_contradiction() {
        assert_eq!(xor_unknown_seeds_forced_expectation_on_change(), 0.0);
    }
}
