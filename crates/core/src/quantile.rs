//! Quantile and range estimators (Sections 2.2 and 4).
//!
//! For several functions the best available unbiased nonnegative estimator is
//! the plain inverse-probability estimator that is positive only when *every*
//! entry is sampled:
//!
//! * the minimum and (for `r = 2`) the range over weight-oblivious samples —
//!   for these the full-sample HT estimator is in fact Pareto optimal, because
//!   any outcome with a missing entry is consistent with `f(v) = 0`;
//! * any ℓ-th order statistic over weight-oblivious samples (not optimal for
//!   `ℓ < r`, but well defined);
//! * the minimum over *weighted* samples, where `S = [r]` has positive
//!   probability whenever `min(v) > 0`.
//!
//! [`FullSampleHt`] packages the weight-oblivious version for any
//! [`MultiInstanceFn`]; [`MinHtWeighted`] is the weighted-sampling minimum
//! estimator.

use pie_sampling::{ObliviousOutcome, WeightedOutcome};

use crate::estimate::{DocumentedEstimator, Estimator, EstimatorProperties};
use crate::functions::MultiInstanceFn;

/// The full-sample inverse-probability estimator for an arbitrary
/// multi-instance function over weight-oblivious Poisson samples
/// (Section 2.2, Equation (10)).
///
/// `f̂ = f(v)/∏_i p_i` when every entry is sampled and 0 otherwise.  Unbiased,
/// nonnegative (for nonnegative `f`), monotone.  Pareto optimal for
/// `f = min` and for `f = range` with `r = 2`; *not* optimal for `max`, `OR`,
/// other quantiles, or the range with `r > 2` — that is precisely the gap the
/// paper's L/U estimators close.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullSampleHt {
    f: MultiInstanceFn,
}

impl FullSampleHt {
    /// Creates the estimator for the given function.
    #[must_use]
    pub fn new(f: MultiInstanceFn) -> Self {
        Self { f }
    }

    /// The estimated function.
    #[must_use]
    pub fn function(&self) -> MultiInstanceFn {
        self.f
    }

    /// Convenience constructor: minimum.
    #[must_use]
    pub fn min() -> Self {
        Self::new(MultiInstanceFn::Min)
    }

    /// Convenience constructor: range.
    #[must_use]
    pub fn range() -> Self {
        Self::new(MultiInstanceFn::Range)
    }

    /// Convenience constructor: ℓ-th largest entry.
    #[must_use]
    pub fn lth_largest(l: usize) -> Self {
        Self::new(MultiInstanceFn::LthLargest(l))
    }
}

impl Estimator<ObliviousOutcome> for FullSampleHt {
    fn estimate(&self, outcome: &ObliviousOutcome) -> f64 {
        if !outcome.all_sampled() {
            return 0.0;
        }
        let values: Vec<f64> = outcome.entries.iter().filter_map(|e| e.value).collect();
        self.f.eval(&values) / outcome.all_sampled_probability()
    }

    fn name(&self) -> &'static str {
        "full_sample_ht"
    }
}

impl DocumentedEstimator<ObliviousOutcome> for FullSampleHt {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::ht()
    }
}

/// The inverse-probability estimator for `min(v)` over weighted (PPS) Poisson
/// samples (Section 6, closing discussion).
///
/// The minimum is the one quantile that remains estimable even with *unknown*
/// seeds: the set `S* = {S = [r]}` (all entries sampled) has positive
/// probability whenever `min(v) > 0`, and on it `min(v)` and
/// `Pr[S = [r] | v] = ∏_i min(1, v_i/τ*_i)` are both computable from the
/// outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinHtWeighted;

impl Estimator<WeightedOutcome> for MinHtWeighted {
    fn estimate(&self, outcome: &WeightedOutcome) -> f64 {
        if outcome.num_sampled() != outcome.num_instances() {
            return 0.0;
        }
        let mut min_v = f64::INFINITY;
        let mut prob = 1.0;
        for e in &outcome.entries {
            let v = e.value.expect("all entries sampled");
            min_v = min_v.min(v);
            prob *= e.inclusion_probability(v);
        }
        if prob > 0.0 {
            min_v / prob
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "min_ht_weighted"
    }
}

impl DocumentedEstimator<WeightedOutcome> for MinHtWeighted {
    fn properties(&self) -> EstimatorProperties {
        // Pareto optimal: any nonnegative estimator must vanish on outcomes
        // missing an entry (they are consistent with min = 0).
        EstimatorProperties::pareto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_sampling::{ObliviousEntry, WeightedEntry};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn enumerate_outcomes(v: &[f64], p: &[f64]) -> Vec<(f64, ObliviousOutcome)> {
        let r = v.len();
        let mut out = Vec::with_capacity(1 << r);
        for mask in 0u32..(1 << r) {
            let mut prob = 1.0;
            let mut entries = Vec::with_capacity(r);
            for i in 0..r {
                let sampled = mask & (1 << i) != 0;
                prob *= if sampled { p[i] } else { 1.0 - p[i] };
                entries.push(ObliviousEntry {
                    p: p[i],
                    value: if sampled { Some(v[i]) } else { None },
                });
            }
            out.push((prob, ObliviousOutcome::new(entries)));
        }
        out
    }

    fn expectation<E: Estimator<ObliviousOutcome>>(est: &E, v: &[f64], p: &[f64]) -> f64 {
        enumerate_outcomes(v, p)
            .iter()
            .map(|(prob, o)| prob * est.estimate(o))
            .sum()
    }

    #[test]
    fn full_sample_ht_is_unbiased_for_min_range_lth() {
        let data = [[3.0, 1.0, 2.0], [0.0, 5.0, 1.0], [2.0, 2.0, 2.0]];
        let p = [0.5, 0.4, 0.8];
        for v in &data {
            for (f, truth) in [
                (MultiInstanceFn::Min, crate::functions::minimum(v)),
                (MultiInstanceFn::Range, crate::functions::range(v)),
                (
                    MultiInstanceFn::LthLargest(2),
                    crate::functions::lth_largest(v, 2),
                ),
                (MultiInstanceFn::Max, crate::functions::maximum(v)),
            ] {
                let e = expectation(&FullSampleHt::new(f), v, &p);
                assert!(
                    (e - truth).abs() < 1e-10,
                    "{f:?} biased on {v:?}: {e} vs {truth}"
                );
            }
        }
    }

    #[test]
    fn full_sample_ht_variance_matches_eq_10() {
        // VAR = f(v)² (1/∏p − 1).
        let v = [3.0, 1.0];
        let p = [0.5, 0.4];
        let est = FullSampleHt::range();
        let truth = 2.0;
        let outcomes = enumerate_outcomes(&v, &p);
        let mean: f64 = outcomes.iter().map(|(pr, o)| pr * est.estimate(o)).sum();
        let var: f64 = outcomes
            .iter()
            .map(|(pr, o)| pr * (est.estimate(o) - mean).powi(2))
            .sum();
        let expected = truth * truth * (1.0 / (0.5 * 0.4) - 1.0);
        assert!((var - expected).abs() < 1e-10);
    }

    #[test]
    fn full_sample_ht_zero_when_not_all_sampled() {
        let o = ObliviousOutcome::new(vec![
            ObliviousEntry {
                p: 0.5,
                value: Some(4.0),
            },
            ObliviousEntry {
                p: 0.5,
                value: None,
            },
        ]);
        assert_eq!(FullSampleHt::min().estimate(&o), 0.0);
        assert_eq!(FullSampleHt::range().estimate(&o), 0.0);
    }

    #[test]
    fn min_ht_weighted_is_unbiased_monte_carlo() {
        let tau = [10.0, 8.0];
        let mut rng = StdRng::seed_from_u64(17);
        for v in &[[5.0f64, 3.0], [2.0, 6.0], [1.0, 1.0]] {
            let truth = v[0].min(v[1]);
            let trials = 300_000;
            let mut sum = 0.0;
            for _ in 0..trials {
                let entries = (0..2)
                    .map(|i| {
                        let u: f64 = rng.gen_range(1e-12..1.0);
                        let sampled = v[i] >= u * tau[i];
                        WeightedEntry {
                            tau_star: tau[i],
                            seed: Some(u),
                            value: if sampled { Some(v[i]) } else { None },
                        }
                    })
                    .collect();
                sum += MinHtWeighted.estimate(&WeightedOutcome::new(entries));
            }
            let mean = sum / trials as f64;
            assert!(
                (mean - truth).abs() / truth < 0.03,
                "min HT biased on {v:?}: {mean} vs {truth}"
            );
        }
    }

    #[test]
    fn min_ht_weighted_zero_when_an_entry_is_missing() {
        let o = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 10.0,
                seed: Some(0.2),
                value: Some(5.0),
            },
            WeightedEntry {
                tau_star: 10.0,
                seed: Some(0.9),
                value: None,
            },
        ]);
        assert_eq!(MinHtWeighted.estimate(&o), 0.0);
    }

    #[test]
    fn constructors_pick_the_right_function() {
        assert_eq!(FullSampleHt::min().function(), MultiInstanceFn::Min);
        assert_eq!(FullSampleHt::range().function(), MultiInstanceFn::Range);
        assert_eq!(
            FullSampleHt::lth_largest(2).function(),
            MultiInstanceFn::LthLargest(2)
        );
    }

    #[test]
    fn documented_properties() {
        assert!(FullSampleHt::min().properties().unbiased);
        assert!(MinHtWeighted.properties().pareto_optimal);
    }
}
