//! Multi-instance primitive functions `f(v_1, …, v_r)` (Section 2).
//!
//! These are the quantities the paper estimates from samples: quantiles of the
//! per-key value vector (maximum, minimum, ℓ-th largest), the range and
//! exponentiated range, and the Boolean OR / XOR used for distinct counting
//! and change detection.
//!
//! [`MultiInstanceFn`] packages the common ones behind a single enum so that
//! generic machinery (the HT estimator, the derivation engine, the evaluation
//! harness) can be parameterized by "which function is being estimated"
//! without generics spreading everywhere.

/// The maximum entry `max_i v_i` (0 for an empty vector).
#[must_use]
pub fn maximum(v: &[f64]) -> f64 {
    v.iter().copied().fold(0.0, f64::max)
}

/// The minimum entry `min_i v_i` (0 for an empty vector).
#[must_use]
pub fn minimum(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// The ℓ-th largest entry (1-based): `lth_largest(v, 1)` is the maximum and
/// `lth_largest(v, v.len())` is the minimum.
///
/// # Panics
/// Panics if `l` is 0 or exceeds `v.len()`.
#[must_use]
pub fn lth_largest(v: &[f64], l: usize) -> f64 {
    assert!(
        l >= 1 && l <= v.len(),
        "l must be in 1..={}, got {l}",
        v.len()
    );
    let mut sorted = v.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("values must not be NaN"));
    sorted[l - 1]
}

/// The range `RG(v) = max(v) − min(v)`.
#[must_use]
pub fn range(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        maximum(v) - minimum(v)
    }
}

/// The exponentiated range `RG^d(v) = (max(v) − min(v))^d` for `d > 0`.
#[must_use]
pub fn range_pow(v: &[f64], d: f64) -> f64 {
    range(v).powf(d)
}

/// Boolean OR of the entries, treating any positive value as true.
/// Returns 1.0 or 0.0.
#[must_use]
pub fn boolean_or(v: &[f64]) -> f64 {
    if v.iter().any(|&x| x > 0.0) {
        1.0
    } else {
        0.0
    }
}

/// Boolean AND of the entries, treating any positive value as true.
/// Returns 1.0 or 0.0.
#[must_use]
pub fn boolean_and(v: &[f64]) -> f64 {
    if !v.is_empty() && v.iter().all(|&x| x > 0.0) {
        1.0
    } else {
        0.0
    }
}

/// Boolean XOR (parity) of the entries, treating any positive value as true.
/// Returns 1.0 or 0.0.
#[must_use]
pub fn boolean_xor(v: &[f64]) -> f64 {
    let ones = v.iter().filter(|&&x| x > 0.0).count();
    if ones % 2 == 1 {
        1.0
    } else {
        0.0
    }
}

/// The built-in multi-instance functions, usable where a first-class function
/// value is convenient (derivation engine, evaluation harness, reports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MultiInstanceFn {
    /// `max_i v_i`
    Max,
    /// `min_i v_i`
    Min,
    /// The ℓ-th largest entry (1-based).
    LthLargest(usize),
    /// `max(v) − min(v)`
    Range,
    /// `(max(v) − min(v))^d`
    RangePow(f64),
    /// Boolean OR (any entry positive).
    Or,
    /// Boolean AND (all entries positive).
    And,
    /// Boolean XOR (odd number of positive entries).
    Xor,
}

impl MultiInstanceFn {
    /// Evaluates the function on a value vector.
    #[must_use]
    pub fn eval(&self, v: &[f64]) -> f64 {
        match *self {
            MultiInstanceFn::Max => maximum(v),
            MultiInstanceFn::Min => minimum(v),
            MultiInstanceFn::LthLargest(l) => lth_largest(v, l),
            MultiInstanceFn::Range => range(v),
            MultiInstanceFn::RangePow(d) => range_pow(v, d),
            MultiInstanceFn::Or => boolean_or(v),
            MultiInstanceFn::And => boolean_and(v),
            MultiInstanceFn::Xor => boolean_xor(v),
        }
    }

    /// A short name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MultiInstanceFn::Max => "max",
            MultiInstanceFn::Min => "min",
            MultiInstanceFn::LthLargest(_) => "lth",
            MultiInstanceFn::Range => "range",
            MultiInstanceFn::RangePow(_) => "range^d",
            MultiInstanceFn::Or => "or",
            MultiInstanceFn::And => "and",
            MultiInstanceFn::Xor => "xor",
        }
    }

    /// Whether the function is symmetric (invariant to permuting entries).
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        true // all built-ins are symmetric
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_min_range_basic() {
        let v = [3.0, 1.0, 7.0, 2.0];
        assert_eq!(maximum(&v), 7.0);
        assert_eq!(minimum(&v), 1.0);
        assert_eq!(range(&v), 6.0);
        assert_eq!(range_pow(&v, 2.0), 36.0);
    }

    #[test]
    fn empty_vector_conventions() {
        assert_eq!(maximum(&[]), 0.0);
        assert_eq!(minimum(&[]), 0.0);
        assert_eq!(range(&[]), 0.0);
        assert_eq!(boolean_or(&[]), 0.0);
        assert_eq!(boolean_and(&[]), 0.0);
        assert_eq!(boolean_xor(&[]), 0.0);
    }

    #[test]
    fn lth_largest_orders_correctly() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(lth_largest(&v, 1), 5.0);
        assert_eq!(lth_largest(&v, 2), 3.0);
        assert_eq!(lth_largest(&v, 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "l must be")]
    fn lth_largest_rejects_out_of_range() {
        let _ = lth_largest(&[1.0, 2.0], 3);
    }

    #[test]
    fn boolean_functions() {
        assert_eq!(boolean_or(&[0.0, 0.0]), 0.0);
        assert_eq!(boolean_or(&[0.0, 2.0]), 1.0);
        assert_eq!(boolean_and(&[1.0, 2.0]), 1.0);
        assert_eq!(boolean_and(&[1.0, 0.0]), 0.0);
        assert_eq!(boolean_xor(&[1.0, 0.0]), 1.0);
        assert_eq!(boolean_xor(&[1.0, 1.0]), 0.0);
        assert_eq!(boolean_xor(&[1.0, 1.0, 1.0]), 1.0);
    }

    #[test]
    fn enum_matches_free_functions() {
        let v = [4.0, 0.0, 9.0];
        assert_eq!(MultiInstanceFn::Max.eval(&v), maximum(&v));
        assert_eq!(MultiInstanceFn::Min.eval(&v), minimum(&v));
        assert_eq!(MultiInstanceFn::LthLargest(2).eval(&v), 4.0);
        assert_eq!(MultiInstanceFn::Range.eval(&v), 9.0);
        assert_eq!(MultiInstanceFn::RangePow(2.0).eval(&v), 81.0);
        assert_eq!(MultiInstanceFn::Or.eval(&v), 1.0);
        assert_eq!(MultiInstanceFn::And.eval(&v), 0.0);
        assert_eq!(MultiInstanceFn::Xor.eval(&v), 0.0);
    }

    #[test]
    fn paper_figure5_example_values() {
        // Figure 5 (A): per-key example aggregates for the 3×6 example matrix.
        let rows = [
            [15.0, 0.0, 10.0, 5.0, 10.0, 10.0],
            [20.0, 10.0, 12.0, 20.0, 0.0, 10.0],
            [10.0, 15.0, 15.0, 0.0, 15.0, 10.0],
        ];
        let col = |j: usize| [rows[0][j], rows[1][j], rows[2][j]];
        // max(v1,v2) row of the figure
        let max12: Vec<f64> = (0..6).map(|j| maximum(&col(j)[..2])).collect();
        assert_eq!(max12, vec![20.0, 10.0, 12.0, 20.0, 10.0, 10.0]);
        // max(v1,v2,v3)
        let max123: Vec<f64> = (0..6).map(|j| maximum(&col(j))).collect();
        assert_eq!(max123, vec![20.0, 15.0, 15.0, 20.0, 15.0, 10.0]);
        // min(v1,v2)
        let min12: Vec<f64> = (0..6).map(|j| minimum(&col(j)[..2])).collect();
        assert_eq!(min12, vec![15.0, 0.0, 10.0, 5.0, 0.0, 10.0]);
        // RG(v1,v2,v3)
        let rg: Vec<f64> = (0..6).map(|j| range(&col(j))).collect();
        assert_eq!(rg, vec![10.0, 15.0, 5.0, 20.0, 15.0, 0.0]);
    }
}
