//! The order-based estimator derivation engine (Section 3, Algorithm 1).
//!
//! The paper's methodology derives an estimator from three ingredients: the
//! sampling scheme, the estimated function, and an order `≺` over data
//! vectors.  Processing data vectors in `≺`-order, each vector's
//! still-unassigned consistent outcomes receive the single value that makes
//! the estimator unbiased for that vector, conditioned on everything assigned
//! so far (Equation (6)).  The result — when it exists — is unbiased and
//! Pareto optimal.
//!
//! This module implements the derivation *exactly*, for **finite** models:
//! finitely many data vectors and a finite sample space.  That covers the
//! regimes the paper itself reasons about discretely (binary domains for OR,
//! XOR and the negative results; small discrete value domains for sanity
//! checks of the closed-form `max` estimators) and serves three purposes:
//!
//! 1. independent validation of the closed-form estimators (`max^(L)`,
//!    `OR^(L)`, the known-seed reductions);
//! 2. constructive evidence for the impossibility results of Section 6
//!    (the engine either fails or is forced into negative estimates);
//! 3. a tool for deriving estimators for *new* functions over small domains.

use std::collections::HashMap;

/// The observable outcome of one sample point applied to one data vector,
/// encoded as one code per entry.  Two `(σ, v)` pairs that an estimator cannot
/// distinguish must map to the same key.
pub type OutcomeKey = Vec<u32>;

/// A finite sampling model: a finite data domain, a finite sample space, and
/// the outcome each sample point produces on each data vector.
pub trait FiniteModel {
    /// All data vectors of the domain `V`.
    fn data_vectors(&self) -> Vec<Vec<f64>>;

    /// The probabilities of the sample points (must sum to 1).
    fn sample_probabilities(&self) -> Vec<f64>;

    /// The outcome produced by sample point `point` on data vector `v`.
    fn outcome_key(&self, point: usize, v: &[f64]) -> OutcomeKey;
}

/// Weight-oblivious Poisson sampling over an explicit finite value domain per
/// entry (Section 4 in a discrete setting).
///
/// Sample points are the `2^r` subsets of sampled entries; the outcome reveals
/// the exact value of each sampled entry and nothing else.
#[derive(Debug, Clone)]
pub struct ObliviousPoissonModel {
    probs: Vec<f64>,
    domains: Vec<Vec<f64>>,
}

impl ObliviousPoissonModel {
    /// Creates the model with per-entry inclusion probabilities and per-entry
    /// finite value domains.
    ///
    /// # Panics
    /// Panics if lengths mismatch, probabilities are outside `(0,1]`, or any
    /// domain is empty.
    #[must_use]
    pub fn new(probs: Vec<f64>, domains: Vec<Vec<f64>>) -> Self {
        assert_eq!(probs.len(), domains.len(), "probs and domains must align");
        assert!(!probs.is_empty(), "need at least one entry");
        for &p in &probs {
            assert!(
                p > 0.0 && p <= 1.0,
                "probabilities must be in (0,1], got {p}"
            );
        }
        for d in &domains {
            assert!(!d.is_empty(), "every entry needs a nonempty domain");
        }
        Self { probs, domains }
    }

    /// A binary-domain model (`{0,1}` per entry).
    #[must_use]
    pub fn binary(probs: Vec<f64>) -> Self {
        let r = probs.len();
        Self::new(probs, vec![vec![0.0, 1.0]; r])
    }

    fn value_code(&self, entry: usize, value: f64) -> u32 {
        let idx = self.domains[entry]
            .iter()
            .position(|&x| x == value)
            .expect("value not in the declared domain");
        // 0 is reserved for "not sampled".
        (idx + 1) as u32
    }

    fn r(&self) -> usize {
        self.probs.len()
    }
}

impl FiniteModel for ObliviousPoissonModel {
    fn data_vectors(&self) -> Vec<Vec<f64>> {
        cartesian_product(&self.domains)
    }

    fn sample_probabilities(&self) -> Vec<f64> {
        subset_probabilities(&self.probs)
    }

    fn outcome_key(&self, point: usize, v: &[f64]) -> OutcomeKey {
        (0..self.r())
            .map(|i| {
                if point & (1 << i) != 0 {
                    self.value_code(i, v[i])
                } else {
                    0
                }
            })
            .collect()
    }
}

/// Weighted (PPS) sampling over the binary domain with **known** seeds
/// (Section 5.1 in a discrete setting).
///
/// Entry `i` with value 1 is sampled with probability `p_i`; value 0 is never
/// sampled, but when the seed is "low" (`u_i ≤ p_i`) the estimator learns the
/// value is 0.  Sample points are the `2^r` low/high seed patterns.
#[derive(Debug, Clone)]
pub struct WeightedKnownSeedsBinaryModel {
    probs: Vec<f64>,
}

impl WeightedKnownSeedsBinaryModel {
    /// Creates the model with per-entry sampling probabilities for value 1.
    #[must_use]
    pub fn new(probs: Vec<f64>) -> Self {
        for &p in &probs {
            assert!(
                p > 0.0 && p <= 1.0,
                "probabilities must be in (0,1], got {p}"
            );
        }
        Self { probs }
    }
}

impl FiniteModel for WeightedKnownSeedsBinaryModel {
    fn data_vectors(&self) -> Vec<Vec<f64>> {
        cartesian_product(&vec![vec![0.0, 1.0]; self.probs.len()])
    }

    fn sample_probabilities(&self) -> Vec<f64> {
        subset_probabilities(&self.probs)
    }

    fn outcome_key(&self, point: usize, v: &[f64]) -> OutcomeKey {
        (0..self.probs.len())
            .map(|i| {
                let low_seed = point & (1 << i) != 0;
                if low_seed {
                    if v[i] > 0.0 {
                        2 // sampled, value 1
                    } else {
                        1 // not sampled, but known to be 0
                    }
                } else {
                    0 // no information
                }
            })
            .collect()
    }
}

/// Weighted (PPS) sampling over the binary domain with **unknown** seeds
/// (Section 6): the outcome reveals only which entries were sampled.
#[derive(Debug, Clone)]
pub struct WeightedUnknownSeedsBinaryModel {
    probs: Vec<f64>,
}

impl WeightedUnknownSeedsBinaryModel {
    /// Creates the model with per-entry sampling probabilities for value 1.
    #[must_use]
    pub fn new(probs: Vec<f64>) -> Self {
        for &p in &probs {
            assert!(
                p > 0.0 && p <= 1.0,
                "probabilities must be in (0,1], got {p}"
            );
        }
        Self { probs }
    }
}

impl FiniteModel for WeightedUnknownSeedsBinaryModel {
    fn data_vectors(&self) -> Vec<Vec<f64>> {
        cartesian_product(&vec![vec![0.0, 1.0]; self.probs.len()])
    }

    fn sample_probabilities(&self) -> Vec<f64> {
        subset_probabilities(&self.probs)
    }

    fn outcome_key(&self, point: usize, v: &[f64]) -> OutcomeKey {
        (0..self.probs.len())
            .map(|i| {
                let low_seed = point & (1 << i) != 0;
                if low_seed && v[i] > 0.0 {
                    1 // sampled (value 1)
                } else {
                    0 // not sampled — no further information
                }
            })
            .collect()
    }
}

fn cartesian_product(domains: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut out: Vec<Vec<f64>> = vec![vec![]];
    for d in domains {
        let mut next = Vec::with_capacity(out.len() * d.len());
        for prefix in &out {
            for &x in d {
                let mut v = prefix.clone();
                v.push(x);
                next.push(v);
            }
        }
        out = next;
    }
    out
}

fn subset_probabilities(probs: &[f64]) -> Vec<f64> {
    let r = probs.len();
    (0..(1usize << r))
        .map(|mask| {
            (0..r)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        probs[i]
                    } else {
                        1.0 - probs[i]
                    }
                })
                .product()
        })
        .collect()
}

/// The estimator produced by Algorithm 1: a value per outcome.
#[derive(Debug, Clone)]
pub struct DerivedEstimator {
    estimates: HashMap<OutcomeKey, f64>,
}

impl DerivedEstimator {
    /// The estimate assigned to an outcome (0 for outcomes never reachable).
    #[must_use]
    pub fn estimate(&self, key: &OutcomeKey) -> f64 {
        self.estimates.get(key).copied().unwrap_or(0.0)
    }

    /// All `(outcome, estimate)` pairs.
    #[must_use]
    pub fn estimates(&self) -> &HashMap<OutcomeKey, f64> {
        &self.estimates
    }

    /// The most negative estimate value (0 if all are nonnegative).
    #[must_use]
    pub fn most_negative(&self) -> f64 {
        self.estimates.values().copied().fold(0.0, f64::min)
    }

    /// Whether every estimate is nonnegative (up to `tol`).
    #[must_use]
    pub fn is_nonnegative(&self, tol: f64) -> bool {
        self.most_negative() >= -tol
    }

    /// The exact expectation of the estimator on data vector `v` under `model`.
    #[must_use]
    pub fn expectation<M: FiniteModel>(&self, model: &M, v: &[f64]) -> f64 {
        model
            .sample_probabilities()
            .iter()
            .enumerate()
            .map(|(point, &prob)| prob * self.estimate(&model.outcome_key(point, v)))
            .sum()
    }

    /// The exact variance of the estimator on data vector `v` under `model`.
    #[must_use]
    pub fn variance<M: FiniteModel>(&self, model: &M, v: &[f64]) -> f64 {
        let mean = self.expectation(model, v);
        model
            .sample_probabilities()
            .iter()
            .enumerate()
            .map(|(point, &prob)| {
                let x = self.estimate(&model.outcome_key(point, v));
                prob * (x - mean) * (x - mean)
            })
            .sum()
    }

    /// The largest absolute bias `|E[f̂|v] − f(v)|` over all data vectors.
    #[must_use]
    pub fn max_bias<M: FiniteModel, F: Fn(&[f64]) -> f64>(&self, model: &M, f: F) -> f64 {
        model
            .data_vectors()
            .iter()
            .map(|v| (self.expectation(model, v) - f(v)).abs())
            .fold(0.0, f64::max)
    }
}

/// The result of running Algorithm 1.
#[derive(Debug, Clone)]
pub enum DerivationResult {
    /// A (unique, order-optimal) unbiased estimator exists for the given
    /// order.  It may still assume negative values — check
    /// [`DerivedEstimator::is_nonnegative`]; a negative value means *this
    /// order* does not yield a nonnegative estimator (and for the Section 6
    /// models, that none exists).
    Success(DerivedEstimator),
    /// Algorithm 1 failed: some data vector has no unprocessed consistent
    /// outcomes but its expectation is already pinned to the wrong value
    /// (`f0 ≠ f(v)` with `Pr[S'|v] = 0`), so *no* unbiased estimator exists.
    Failure {
        /// The data vector at which the contradiction arose.
        vector: Vec<f64>,
        /// The function value that must be matched.
        required: f64,
        /// The expectation already forced by previously assigned outcomes.
        forced: f64,
    },
}

impl DerivationResult {
    /// Unwraps the success case.
    ///
    /// # Panics
    /// Panics on failure.
    #[must_use]
    pub fn expect_success(self, msg: &str) -> DerivedEstimator {
        match self {
            DerivationResult::Success(e) => e,
            DerivationResult::Failure {
                vector,
                required,
                forced,
            } => {
                panic!("{msg}: derivation failed at {vector:?} (needs {required}, forced {forced})")
            }
        }
    }

    /// Whether the derivation failed.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        matches!(self, DerivationResult::Failure { .. })
    }
}

/// Runs Algorithm 1: derives the order-based estimator `f̂^(≺)` of `f` under
/// `model`, processing data vectors in the order given by `order`
/// (a permutation of `model.data_vectors()`).
///
/// `tol` is the absolute tolerance used to decide that a probability or a
/// bias is zero.
#[must_use]
pub fn derive_order_based<M, F>(model: &M, f: F, order: &[Vec<f64>], tol: f64) -> DerivationResult
where
    M: FiniteModel,
    F: Fn(&[f64]) -> f64,
{
    let sample_probs = model.sample_probabilities();
    let mut estimates: HashMap<OutcomeKey, f64> = HashMap::new();

    for v in order {
        // Partition this vector's consistent outcomes into already-assigned
        // and new, accumulating probabilities.
        let mut assigned_contribution = 0.0;
        let mut new_prob = 0.0;
        let mut new_keys: Vec<OutcomeKey> = Vec::new();
        let mut outcome_prob: HashMap<OutcomeKey, f64> = HashMap::new();
        for (point, &prob) in sample_probs.iter().enumerate() {
            if prob <= 0.0 {
                continue;
            }
            let key = model.outcome_key(point, v);
            *outcome_prob.entry(key).or_insert(0.0) += prob;
        }
        for (key, prob) in outcome_prob {
            if let Some(&val) = estimates.get(&key) {
                assigned_contribution += val * prob;
            } else {
                new_prob += prob;
                new_keys.push(key);
            }
        }

        let target = f(v);
        if new_prob <= tol {
            if (target - assigned_contribution).abs() > tol {
                return DerivationResult::Failure {
                    vector: v.clone(),
                    required: target,
                    forced: assigned_contribution,
                };
            }
            continue;
        }
        let value = (target - assigned_contribution) / new_prob;
        for key in new_keys {
            estimates.insert(key, value);
        }
    }

    DerivationResult::Success(DerivedEstimator { estimates })
}

/// The "dense-first" order used for the `max^(L)` / `OR^(L)` estimators:
/// the all-zero vector first, then vectors sorted by the number of entries
/// strictly below their maximum.
#[must_use]
pub fn dense_first_order(vectors: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut order = vectors.to_vec();
    order.sort_by_key(|v| {
        let max = v.iter().copied().fold(0.0, f64::max);
        if max == 0.0 {
            (0usize, 0usize)
        } else {
            let below = v.iter().filter(|&&x| x < max).count();
            (1, below + 1)
        }
    });
    order
}

/// The "sparse-first" order used for the `max^(U)` / `OR^(U)` estimators:
/// vectors sorted by their number of *positive* entries.
#[must_use]
pub fn sparse_first_order(vectors: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut order = vectors.to_vec();
    order.sort_by_key(|v| v.iter().filter(|&&x| x > 0.0).count());
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Estimator;
    use crate::functions::{boolean_or, boolean_xor, maximum};

    #[test]
    fn oblivious_binary_or_matches_closed_form() {
        // Deriving OR with the dense-first order over the weight-oblivious
        // binary model must reproduce OR^(L) (Section 4.3).
        let (p1, p2) = (0.5, 0.3);
        let model = ObliviousPoissonModel::binary(vec![p1, p2]);
        let order = dense_first_order(&model.data_vectors());
        let est = derive_order_based(&model, boolean_or, &order, 1e-12)
            .expect_success("OR^(L) derivation");
        assert!(est.is_nonnegative(1e-12));
        assert!(est.max_bias(&model, boolean_or) < 1e-12);

        let p_any = p1 + p2 - p1 * p2;
        // Outcome "only entry 1 sampled, value 1": key [1+1, 0] = [2, 0]
        // (value code = index in domain + 1, domain [0,1] so value 1 -> 2).
        assert!((est.estimate(&vec![2, 0]) - 1.0 / p_any).abs() < 1e-10);
        // Outcome "both sampled, values (1,1)": the OR^(L) estimate is also 1/p_any.
        assert!((est.estimate(&vec![2, 2]) - 1.0 / p_any).abs() < 1e-10);
        // Outcome "both sampled, values (1,0)":
        // OR/(p1p2) − (1/p2 − 1)/p_any  (determining-vector formula with v=(1,0)).
        let expected = 1.0 / (p1 * p2) - (1.0 / p2 - 1.0) / p_any;
        assert!((est.estimate(&vec![2, 1]) - expected).abs() < 1e-10);
    }

    #[test]
    fn oblivious_discrete_max_matches_max_l2() {
        // Small discrete domain {0, 1, 2}²: the derived dense-first estimator
        // must agree with the closed-form MaxL2 on every reachable outcome.
        use crate::oblivious::MaxL2;
        use pie_sampling::{ObliviousEntry, ObliviousOutcome};

        let (p1, p2) = (0.4, 0.7);
        let model = ObliviousPoissonModel::new(
            vec![p1, p2],
            vec![vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]],
        );
        let order = dense_first_order(&model.data_vectors());
        let est =
            derive_order_based(&model, maximum, &order, 1e-12).expect_success("max^(L) derivation");
        assert!(est.max_bias(&model, maximum) < 1e-10);
        assert!(est.is_nonnegative(1e-10));

        let closed = MaxL2::new(p1, p2);
        let domain = [0.0, 1.0, 2.0];
        // Compare on outcomes where at least one entry is sampled.
        for (i, &v1) in domain.iter().enumerate() {
            for (j, &v2) in domain.iter().enumerate() {
                // both sampled
                let key = vec![(i + 1) as u32, (j + 1) as u32];
                let o = ObliviousOutcome::new(vec![
                    ObliviousEntry {
                        p: p1,
                        value: Some(v1),
                    },
                    ObliviousEntry {
                        p: p2,
                        value: Some(v2),
                    },
                ]);
                assert!(
                    (est.estimate(&key) - closed.estimate(&o)).abs() < 1e-9,
                    "mismatch on sampled values ({v1},{v2})"
                );
                // only entry 1 sampled
                let key = vec![(i + 1) as u32, 0];
                let o = ObliviousOutcome::new(vec![
                    ObliviousEntry {
                        p: p1,
                        value: Some(v1),
                    },
                    ObliviousEntry { p: p2, value: None },
                ]);
                assert!(
                    (est.estimate(&key) - closed.estimate(&o)).abs() < 1e-9,
                    "mismatch on single sampled value {v1}"
                );
            }
        }
    }

    #[test]
    fn known_seeds_or_matches_oblivious_reduction() {
        // Section 5: with known seeds the weighted binary model is
        // information-equivalent to the oblivious model, so the derived
        // estimators coincide outcome-by-outcome under the natural mapping.
        let (p1, p2) = (0.25, 0.5);
        let weighted = WeightedKnownSeedsBinaryModel::new(vec![p1, p2]);
        let order = dense_first_order(&weighted.data_vectors());
        let est = derive_order_based(&weighted, boolean_or, &order, 1e-12)
            .expect_success("known-seed OR derivation");
        assert!(est.is_nonnegative(1e-12));
        assert!(est.max_bias(&weighted, boolean_or) < 1e-12);
        let p_any = p1 + p2 - p1 * p2;
        // "entry 1 sampled (code 2), entry 2 high seed (code 0)" -> 1/p_any
        assert!((est.estimate(&vec![2, 0]) - 1.0 / p_any).abs() < 1e-10);
        // "entry 1 sampled, entry 2 known zero (code 1)" -> 1/(p1 p_any)
        assert!((est.estimate(&vec![2, 1]) - 1.0 / (p1 * p_any)).abs() < 1e-10);
    }

    #[test]
    fn unknown_seeds_or_is_forced_negative() {
        // Theorem 6.1: with unknown seeds and p1 + p2 < 1 the unique unbiased
        // estimator takes a negative value on the both-sampled outcome.
        let (p1, p2) = (0.3, 0.4);
        let model = WeightedUnknownSeedsBinaryModel::new(vec![p1, p2]);
        let order = sparse_first_order(&model.data_vectors());
        let est = derive_order_based(&model, boolean_or, &order, 1e-12)
            .expect_success("unknown-seed OR derivation");
        assert!(est.max_bias(&model, boolean_or) < 1e-10);
        assert!(
            !est.is_nonnegative(1e-9),
            "estimator should be forced negative"
        );
        let forced = est.estimate(&vec![1, 1]);
        let expected = (p1 + p2 - 1.0) / (p1 * p2);
        assert!(
            (forced - expected).abs() < 1e-9,
            "forced value {forced} vs expected {expected}"
        );
    }

    #[test]
    fn unknown_seeds_or_is_fine_when_p_large() {
        // When p1 + p2 ≥ 1 the same construction is nonnegative: the negative
        // result is specifically about aggressive sampling.
        let (p1, p2) = (0.7, 0.6);
        let model = WeightedUnknownSeedsBinaryModel::new(vec![p1, p2]);
        let order = sparse_first_order(&model.data_vectors());
        let est = derive_order_based(&model, boolean_or, &order, 1e-12)
            .expect_success("unknown-seed OR derivation");
        assert!(est.is_nonnegative(1e-9));
        assert!(est.max_bias(&model, boolean_or) < 1e-10);
    }

    #[test]
    fn unknown_seeds_xor_derivation_fails_or_is_biased() {
        // Section 6: XOR (= RG on binary data) admits no unbiased estimator at
        // all with unknown seeds: the outcome of (1,0) cannot be told apart
        // from outcomes of (0,0)/(1,1) often enough.
        let (p1, p2) = (0.3, 0.4);
        let model = WeightedUnknownSeedsBinaryModel::new(vec![p1, p2]);
        let order = sparse_first_order(&model.data_vectors());
        let result = derive_order_based(&model, boolean_xor, &order, 1e-12);
        match result {
            DerivationResult::Failure { .. } => {}
            DerivationResult::Success(est) => {
                // If the order happened to produce values, they cannot be
                // simultaneously unbiased and nonnegative.
                assert!(
                    est.max_bias(&model, boolean_xor) > 1e-6 || !est.is_nonnegative(1e-9),
                    "XOR should not admit an unbiased nonnegative estimator"
                );
            }
        }
    }

    #[test]
    fn derived_estimator_variance_matches_closed_form_for_or_l() {
        let (p1, p2) = (0.2, 0.6);
        let model = ObliviousPoissonModel::binary(vec![p1, p2]);
        let order = dense_first_order(&model.data_vectors());
        let est = derive_order_based(&model, boolean_or, &order, 1e-12)
            .expect_success("OR^(L) derivation");
        let var_11 = est.variance(&model, &[1.0, 1.0]);
        assert!((var_11 - crate::variance::or_l_variance_equal(p1, p2)).abs() < 1e-10);
        let var_10 = est.variance(&model, &[1.0, 0.0]);
        assert!((var_10 - crate::variance::or_l_variance_change(p1, p2)).abs() < 1e-10);
    }

    #[test]
    fn orders_are_permutations() {
        let model = ObliviousPoissonModel::binary(vec![0.5, 0.5, 0.5]);
        let vectors = model.data_vectors();
        assert_eq!(vectors.len(), 8);
        let dense = dense_first_order(&vectors);
        let sparse = sparse_first_order(&vectors);
        assert_eq!(dense.len(), 8);
        assert_eq!(sparse.len(), 8);
        assert_eq!(dense[0], vec![0.0, 0.0, 0.0]);
        assert_eq!(sparse[0], vec![0.0, 0.0, 0.0]);
        // Dense-first puts the all-ones vector before the single-one vectors.
        let pos_all_ones = dense
            .iter()
            .position(|v| v == &vec![1.0, 1.0, 1.0])
            .unwrap();
        let pos_single = dense
            .iter()
            .position(|v| v == &vec![1.0, 0.0, 0.0])
            .unwrap();
        assert!(pos_all_ones < pos_single);
        // Sparse-first does the opposite.
        let pos_all_ones = sparse
            .iter()
            .position(|v| v == &vec![1.0, 1.0, 1.0])
            .unwrap();
        let pos_single = sparse
            .iter()
            .position(|v| v == &vec![1.0, 0.0, 0.0])
            .unwrap();
        assert!(pos_single < pos_all_ones);
    }

    #[test]
    fn sample_probabilities_sum_to_one() {
        for model_probs in [
            vec![0.3, 0.4],
            vec![0.5, 0.5, 0.5],
            vec![0.1, 0.9, 0.2, 0.7],
        ] {
            let model = ObliviousPoissonModel::binary(model_probs);
            let total: f64 = model.sample_probabilities().iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn three_instance_binary_or_derivation_is_unbiased_and_nonnegative() {
        let model = ObliviousPoissonModel::binary(vec![0.4, 0.4, 0.4]);
        let order = dense_first_order(&model.data_vectors());
        let est =
            derive_order_based(&model, boolean_or, &order, 1e-12).expect_success("r=3 OR^(L)");
        assert!(est.max_bias(&model, boolean_or) < 1e-10);
        assert!(est.is_nonnegative(1e-10));
        // It must agree with the Algorithm 3 closed form.
        let closed = crate::oblivious::OrLUniform::new(3, 0.4);
        use pie_sampling::{ObliviousEntry, ObliviousOutcome};
        for mask in 0u32..8 {
            for vbits in 0u32..8 {
                let key: OutcomeKey = (0..3)
                    .map(|i| {
                        if mask & (1 << i) != 0 {
                            if vbits & (1 << i) != 0 {
                                2
                            } else {
                                1
                            }
                        } else {
                            0
                        }
                    })
                    .collect();
                let o = ObliviousOutcome::new(
                    (0..3)
                        .map(|i| ObliviousEntry {
                            p: 0.4,
                            value: if mask & (1 << i) != 0 {
                                Some(if vbits & (1 << i) != 0 { 1.0 } else { 0.0 })
                            } else {
                                None
                            },
                        })
                        .collect(),
                );
                assert!(
                    (est.estimate(&key) - closed.estimate(&o)).abs() < 1e-9,
                    "mismatch at mask={mask} values={vbits}"
                );
            }
        }
    }
}
