//! Estimators for Boolean `OR(v)` under weighted (PPS) Poisson sampling with
//! known seeds (Section 5.1).
//!
//! On a binary domain, PPS sampling with threshold `τ*_i` samples a key with
//! value 1 with probability `p_i = min(1, 1/τ*_i)` and never samples a key
//! with value 0.  When the seeds are *known*, the outcome "entry `i` was not
//! sampled although `u_i ≤ p_i`" reveals that `v_i = 0` — so the weighted,
//! known-seed outcome carries exactly the same information as a
//! weight-oblivious outcome with probabilities `p_i`.  The estimators below
//! implement that reduction (the 1-1 outcome mapping of Section 5) and then
//! delegate to the Section 4.3 estimators.
//!
//! Without known seeds no unbiased nonnegative OR estimator exists at all
//! (Theorem 6.1, implemented in [`crate::negative`]).

use pie_sampling::{ObliviousEntry, ObliviousOutcome, WeightedLanes, WeightedOutcome};

use crate::estimate::{DocumentedEstimator, Estimator, EstimatorProperties, LANE_BLOCK};
use crate::oblivious::max::MaxLUniform;
use crate::oblivious::or::{OrHtOblivious, OrL2, OrU2};

/// Maps a weighted known-seed outcome over binary data to the equivalent
/// weight-oblivious outcome (the information-preserving bijection of
/// Section 5).
///
/// # Panics
/// Panics if any sampled value is not 0/1 or if any seed is missing (the
/// reduction requires the known-seeds model).
#[must_use]
pub fn to_oblivious_binary(outcome: &WeightedOutcome) -> ObliviousOutcome {
    let entries = outcome
        .entries
        .iter()
        .map(|e| {
            let p = (1.0 / e.tau_star).min(1.0);
            let value = match e.value {
                Some(v) => {
                    assert!(
                        v == 0.0 || v == 1.0,
                        "binary OR estimators require 0/1 values, got {v}"
                    );
                    Some(v)
                }
                None => {
                    let u = e
                        .seed
                        .expect("known-seed OR estimators require visible seeds");
                    // Not sampled: if the seed would have admitted a 1, the
                    // value must be 0 — that fact is part of the outcome.
                    if u <= p {
                        Some(0.0)
                    } else {
                        None
                    }
                }
            };
            ObliviousEntry { p, value }
        })
        .collect();
    ObliviousOutcome::new(entries)
}

/// The effective per-entry sampling probabilities `p_i = min(1, 1/τ*_i)`.
#[must_use]
pub fn effective_probabilities(outcome: &WeightedOutcome) -> Vec<f64> {
    outcome
        .entries
        .iter()
        .map(|e| (1.0 / e.tau_star).min(1.0))
        .collect()
}

/// Lane counterpart of the validation half of [`to_oblivious_binary`]: a
/// blocked flag-accumulation pass asserting every sampled value is 0/1 and
/// every unsampled entry has a visible seed — eager `&`/`|` so each block
/// reduces to one branch-free mask — and the (cold) panic path rescans the
/// failing block in outcome-major order so the raised message matches the
/// first offender the per-outcome mapping would have seen.
fn validate_binary_lanes(lanes: &WeightedLanes) {
    let r = lanes.num_instances();
    let len = lanes.len();
    let mut start = 0usize;
    while start < len {
        let n = LANE_BLOCK.min(len - start);
        let mut ok = true;
        for j in 0..r {
            let v = &lanes.value_lane(j)[start..start + n];
            let s = &lanes.present_lane(j)[start..start + n];
            let k = &lanes.seed_known_lane(j)[start..start + n];
            for i in 0..n {
                let sampled = s[i] > 0.0;
                let binary = (v[i] == 0.0) | (v[i] == 1.0);
                ok &= if sampled { binary } else { k[i] > 0.0 };
            }
        }
        if !ok {
            binary_mapping_violation(lanes, start, n);
        }
        start += n;
    }
}

#[cold]
#[inline(never)]
fn binary_mapping_violation(lanes: &WeightedLanes, start: usize, n: usize) -> ! {
    for i in start..start + n {
        for j in 0..lanes.num_instances() {
            if lanes.present_lane(j)[i] != 0.0 {
                let v = lanes.value_lane(j)[i];
                assert!(
                    v == 0.0 || v == 1.0,
                    "binary OR estimators require 0/1 values, got {v}"
                );
            } else {
                assert!(
                    lanes.seed_known_lane(j)[i] != 0.0,
                    "known-seed OR estimators require visible seeds"
                );
            }
        }
    }
    unreachable!("binary mapping violation flagged but not found on rescan");
}

/// `OR^(HT)` for weighted known-seed samples: positive (`1/∏p_i`) only on
/// outcomes where every seed satisfies `u_i ≤ p_i` (so every value is known
/// exactly) and at least one value is 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrHtKnownSeeds;

impl Estimator<WeightedOutcome> for OrHtKnownSeeds {
    fn estimate(&self, outcome: &WeightedOutcome) -> f64 {
        OrHtOblivious.estimate(&to_oblivious_binary(outcome))
    }

    fn name(&self) -> &'static str {
        "or_ht_known_seeds"
    }

    /// Lane-kernel hot path: inlines the Section 5 outcome mapping — the
    /// effective probability `min(1, 1/τ*)`, the revealed-zero rule
    /// `u ≤ p ⇒ v = 0` — into one blocked pass that also accumulates the
    /// `OR^(HT)` product, maximum, and all-known mask, after a validation
    /// pass mirroring [`to_oblivious_binary`]'s asserts.  Expressions and
    /// accumulation order match the mapped scalar path exactly, so results
    /// are bit-identical.
    fn estimate_lanes(&self, lanes: &WeightedLanes, out: &mut [f64]) {
        crate::estimate::check_lanes_len(lanes.len(), out);
        validate_binary_lanes(lanes);
        let r = lanes.num_instances();
        let len = lanes.len();
        if r == 0 {
            out.fill(0.0);
            return;
        }
        let mut prod = [0.0f64; LANE_BLOCK];
        let mut max = [0.0f64; LANE_BLOCK];
        let mut all = [true; LANE_BLOCK];
        let mut start = 0usize;
        while start < len {
            let n = LANE_BLOCK.min(len - start);
            for i in 0..n {
                prod[i] = 1.0;
                max[i] = 0.0;
                all[i] = true;
            }
            for j in 0..r {
                let v = &lanes.value_lane(j)[start..start + n];
                let s = &lanes.present_lane(j)[start..start + n];
                let u = &lanes.seed_lane(j)[start..start + n];
                let t = &lanes.tau_lane(j)[start..start + n];
                for i in 0..n {
                    let p = (1.0 / t[i]).min(1.0);
                    let sampled = s[i] > 0.0;
                    // Unsampled with a low seed reveals the value 0 exactly;
                    // the revealed-zero never changes the running maximum.
                    let eff_known = sampled | (u[i] <= p);
                    let eff_v = if sampled { v[i] } else { 0.0 };
                    prod[i] *= p;
                    max[i] = if j == 0 { eff_v } else { max[i].max(eff_v) };
                    all[i] &= eff_known;
                }
            }
            let o = &mut out[start..start + n];
            for i in 0..n {
                o[i] = if all[i] { max[i] / prod[i] } else { 0.0 };
            }
            start += n;
        }
    }
}

impl DocumentedEstimator<WeightedOutcome> for OrHtKnownSeeds {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::ht()
    }
}

/// `OR^(L)` for two weighted known-seed samples (Section 5.1): Pareto optimal,
/// minimum variance on the "no change" vector `(1,1)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrLKnownSeeds;

impl Estimator<WeightedOutcome> for OrLKnownSeeds {
    fn estimate(&self, outcome: &WeightedOutcome) -> f64 {
        assert_eq!(
            outcome.num_instances(),
            2,
            "OrLKnownSeeds is defined for exactly two instances"
        );
        let p = effective_probabilities(outcome);
        OrL2::new(p[0], p[1]).estimate(&to_oblivious_binary(outcome))
    }

    fn name(&self) -> &'static str {
        "or_l_known_seeds"
    }

    /// Lane-kernel hot path: inlines the outcome mapping and the `OR^(L)`
    /// closed form into one full-length pass.  Unlike the weight-oblivious
    /// [`OrL2`], the effective probabilities derive from the per-outcome
    /// thresholds, so `p_any` and the reciprocal coefficients are computed
    /// per slot (still branch-free); every expression matches the scalar
    /// [`estimate`](Self::estimate) delegation chain verbatim, so results
    /// are bit-identical.
    fn estimate_lanes(&self, lanes: &WeightedLanes, out: &mut [f64]) {
        crate::estimate::check_lanes_len(lanes.len(), out);
        if lanes.is_empty() {
            // An empty batch has no outcomes to assert the instance count on.
            return;
        }
        assert_eq!(
            lanes.num_instances(),
            2,
            "OrLKnownSeeds is defined for exactly two instances"
        );
        validate_binary_lanes(lanes);
        let len = lanes.len();
        let v1l = &lanes.value_lane(0)[..len];
        let v2l = &lanes.value_lane(1)[..len];
        let s1l = &lanes.present_lane(0)[..len];
        let s2l = &lanes.present_lane(1)[..len];
        let u1l = &lanes.seed_lane(0)[..len];
        let u2l = &lanes.seed_lane(1)[..len];
        let t1l = &lanes.tau_lane(0)[..len];
        let t2l = &lanes.tau_lane(1)[..len];
        for i in 0..len {
            let p1 = (1.0 / t1l[i]).min(1.0);
            let p2 = (1.0 / t2l[i]).min(1.0);
            let p_any = p1 + p2 - p1 * p2;
            let s1 = s1l[i] > 0.0;
            let s2 = s2l[i] > 0.0;
            let known1 = s1 | (u1l[i] <= p1);
            let known2 = s2 | (u2l[i] <= p2);
            let v1 = if s1 { v1l[i] } else { 0.0 };
            let v2 = if s2 { v2l[i] } else { 0.0 };
            let both =
                v1.max(v2) / (p1 * p2) - ((1.0 / p2 - 1.0) * v1 + (1.0 / p1 - 1.0) * v2) / p_any;
            out[i] = if known1 {
                if known2 {
                    both
                } else {
                    v1 / p_any
                }
            } else if known2 {
                v2 / p_any
            } else {
                0.0
            };
        }
    }
}

impl DocumentedEstimator<WeightedOutcome> for OrLKnownSeeds {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

/// `OR^(U)` for two weighted known-seed samples (Section 5.1): Pareto optimal,
/// minimum variance on the "change" vectors `(1,0)` and `(0,1)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrUKnownSeeds;

impl Estimator<WeightedOutcome> for OrUKnownSeeds {
    fn estimate(&self, outcome: &WeightedOutcome) -> f64 {
        assert_eq!(
            outcome.num_instances(),
            2,
            "OrUKnownSeeds is defined for exactly two instances"
        );
        let p = effective_probabilities(outcome);
        OrU2::new(p[0], p[1]).estimate(&to_oblivious_binary(outcome))
    }

    fn name(&self) -> &'static str {
        "or_u_known_seeds"
    }

    /// Lane-kernel hot path: inlines the outcome mapping and the `OR^(U)`
    /// closed form into one full-length pass with per-slot effective
    /// probabilities; every expression matches the scalar
    /// [`estimate`](Self::estimate) delegation chain verbatim, so results
    /// are bit-identical.
    fn estimate_lanes(&self, lanes: &WeightedLanes, out: &mut [f64]) {
        crate::estimate::check_lanes_len(lanes.len(), out);
        if lanes.is_empty() {
            // An empty batch has no outcomes to assert the instance count on.
            return;
        }
        assert_eq!(
            lanes.num_instances(),
            2,
            "OrUKnownSeeds is defined for exactly two instances"
        );
        validate_binary_lanes(lanes);
        let len = lanes.len();
        let v1l = &lanes.value_lane(0)[..len];
        let v2l = &lanes.value_lane(1)[..len];
        let s1l = &lanes.present_lane(0)[..len];
        let s2l = &lanes.present_lane(1)[..len];
        let u1l = &lanes.seed_lane(0)[..len];
        let u2l = &lanes.seed_lane(1)[..len];
        let t1l = &lanes.tau_lane(0)[..len];
        let t2l = &lanes.tau_lane(1)[..len];
        for i in 0..len {
            let p1 = (1.0 / t1l[i]).min(1.0);
            let p2 = (1.0 / t2l[i]).min(1.0);
            let denom = 1.0 + (1.0 - p1 - p2).max(0.0);
            let s1 = s1l[i] > 0.0;
            let s2 = s2l[i] > 0.0;
            let known1 = s1 | (u1l[i] <= p1);
            let known2 = s2 | (u2l[i] <= p2);
            let v1 = if s1 { v1l[i] } else { 0.0 };
            let v2 = if s2 { v2l[i] } else { 0.0 };
            let both = (v1.max(v2) - (v1 * (1.0 - p2) + v2 * (1.0 - p1)) / denom) / (p1 * p2);
            out[i] = if known1 {
                if known2 {
                    both
                } else {
                    v1 / (p1 * denom)
                }
            } else if known2 {
                v2 / (p2 * denom)
            } else {
                0.0
            };
        }
    }
}

impl DocumentedEstimator<WeightedOutcome> for OrUKnownSeeds {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

/// `OR^(L)` for `r ≥ 2` weighted known-seed samples with equal thresholds
/// (uniform effective probability), via Algorithm 3.
#[derive(Debug, Clone, PartialEq)]
pub struct OrLKnownSeedsUniform {
    inner: MaxLUniform,
}

impl OrLKnownSeedsUniform {
    /// Creates the estimator for `r` instances, all with effective sampling
    /// probability `p = min(1, 1/τ*)`.
    #[must_use]
    pub fn new(r: usize, p: f64) -> Self {
        Self {
            inner: MaxLUniform::new(r, p),
        }
    }
}

impl Estimator<WeightedOutcome> for OrLKnownSeedsUniform {
    fn estimate(&self, outcome: &WeightedOutcome) -> f64 {
        let mapped = to_oblivious_binary(outcome);
        for e in &mapped.entries {
            assert!(
                (e.p - self.inner.p()).abs() < 1e-9,
                "outcome probability {} does not match estimator probability {}",
                e.p,
                self.inner.p()
            );
        }
        self.inner.estimate(&mapped)
    }

    fn name(&self) -> &'static str {
        "or_l_known_seeds_uniform"
    }
}

impl DocumentedEstimator<WeightedOutcome> for OrLKnownSeedsUniform {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_sampling::WeightedEntry;

    /// Enumerates the outcome distribution of PPS sampling of a binary vector
    /// `v` with thresholds `tau` and known seeds, by integrating over the seed
    /// space on a grid (the outcome only depends on whether `u_i ≤ p_i`, so a
    /// two-point partition per entry is exact).
    fn enumerate_binary_weighted(v: &[f64], tau: &[f64]) -> Vec<(f64, WeightedOutcome)> {
        let r = v.len();
        let p: Vec<f64> = tau.iter().map(|&t| (1.0 / t).min(1.0)).collect();
        let mut out = Vec::new();
        // For each entry independently: with probability p_i the seed is "low"
        // (u_i ≤ p_i), otherwise "high".  Within each region we pick a
        // representative seed; the estimators only use the low/high distinction
        // for binary data.
        for mask in 0u32..(1 << r) {
            let mut prob = 1.0;
            let mut entries = Vec::with_capacity(r);
            for i in 0..r {
                let low = mask & (1 << i) != 0;
                prob *= if low { p[i] } else { 1.0 - p[i] };
                let seed = if low {
                    p[i] * 0.5
                } else {
                    p[i] + (1.0 - p[i]) * 0.5
                };
                // Sampled iff v_i = 1 and the seed is low.
                let sampled = v[i] == 1.0 && low;
                entries.push(WeightedEntry {
                    tau_star: tau[i],
                    seed: Some(seed),
                    value: if sampled { Some(v[i]) } else { None },
                });
            }
            if prob > 0.0 {
                out.push((prob, WeightedOutcome::new(entries)));
            }
        }
        out
    }

    fn expectation<E: Estimator<WeightedOutcome>>(est: &E, v: &[f64], tau: &[f64]) -> f64 {
        enumerate_binary_weighted(v, tau)
            .iter()
            .map(|(prob, o)| prob * est.estimate(o))
            .sum()
    }

    fn variance<E: Estimator<WeightedOutcome>>(est: &E, v: &[f64], tau: &[f64]) -> f64 {
        let mean = expectation(est, v, tau);
        enumerate_binary_weighted(v, tau)
            .iter()
            .map(|(prob, o)| {
                let x = est.estimate(o);
                prob * (x - mean) * (x - mean)
            })
            .sum()
    }

    fn or_of(v: &[f64]) -> f64 {
        if v.iter().any(|&x| x > 0.0) {
            1.0
        } else {
            0.0
        }
    }

    const BINARY_2: &[[f64; 2]] = &[[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]];

    #[test]
    fn mapping_reveals_zero_values_for_low_seeds() {
        let o = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 4.0, // p = 0.25
                seed: Some(0.1),
                value: None,
            },
            WeightedEntry {
                tau_star: 4.0,
                seed: Some(0.9),
                value: None,
            },
        ]);
        let mapped = to_oblivious_binary(&o);
        assert_eq!(mapped.entries[0].value, Some(0.0)); // low seed, unsampled => 0
        assert_eq!(mapped.entries[1].value, None); // high seed => no information
        assert!((mapped.entries[0].p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn known_seed_or_estimators_are_unbiased() {
        for &(t1, t2) in &[(2.0, 2.0), (4.0, 1.5), (10.0, 3.0)] {
            for v in BINARY_2 {
                let truth = or_of(v);
                for est in [
                    Box::new(OrHtKnownSeeds) as Box<dyn Estimator<WeightedOutcome>>,
                    Box::new(OrLKnownSeeds),
                    Box::new(OrUKnownSeeds),
                ] {
                    let e = expectation(&est, v, &[t1, t2]);
                    assert!(
                        (e - truth).abs() < 1e-10,
                        "{} biased on {v:?} tau=({t1},{t2}): {e}",
                        est.name()
                    );
                }
            }
        }
    }

    #[test]
    fn known_seed_or_estimators_are_nonnegative() {
        for &(t1, t2) in &[(2.0, 2.0), (4.0, 1.5), (10.0, 3.0)] {
            for v in BINARY_2 {
                for (_, o) in enumerate_binary_weighted(v, &[t1, t2]) {
                    assert!(OrHtKnownSeeds.estimate(&o) >= 0.0);
                    assert!(OrLKnownSeeds.estimate(&o) >= -1e-12);
                    assert!(OrUKnownSeeds.estimate(&o) >= -1e-12);
                }
            }
        }
    }

    #[test]
    fn variance_matches_oblivious_case() {
        // Section 5.1: the variance is the same as in the weight-oblivious case.
        let (t1, t2) = (4.0, 2.5);
        let (p1, p2) = (0.25, 0.4);
        let var_l_11 = variance(&OrLKnownSeeds, &[1.0, 1.0], &[t1, t2]);
        assert!((var_l_11 - (1.0 / (p1 + p2 - p1 * p2) - 1.0)).abs() < 1e-10);
        let var_ht = variance(&OrHtKnownSeeds, &[1.0, 0.0], &[t1, t2]);
        assert!((var_ht - (1.0 / (p1 * p2) - 1.0)).abs() < 1e-10);
    }

    #[test]
    fn l_and_u_dominate_ht() {
        for &(t1, t2) in &[(2.0, 2.0), (4.0, 1.5), (10.0, 3.0)] {
            for v in &[[1.0, 0.0], [1.0, 1.0]] {
                let var_ht = variance(&OrHtKnownSeeds, v, &[t1, t2]);
                let var_l = variance(&OrLKnownSeeds, v, &[t1, t2]);
                let var_u = variance(&OrUKnownSeeds, v, &[t1, t2]);
                assert!(var_l <= var_ht + 1e-9);
                assert!(var_u <= var_ht + 1e-9);
            }
        }
    }

    #[test]
    fn paper_table_values_for_or_l() {
        // Section 5.1 table: S={1} ∧ u2 ≤ p2  ⇒  1/(p1(p1+p2−p1p2)).
        let (t1, t2) = (4.0, 2.0); // p1 = 0.25, p2 = 0.5
        let (p1, p2) = (0.25, 0.5);
        let p_any = p1 + p2 - p1 * p2;
        let o = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: t1,
                seed: Some(0.2),
                value: Some(1.0),
            },
            WeightedEntry {
                tau_star: t2,
                seed: Some(0.3), // u2 ≤ p2, unsampled ⇒ v2 = 0 revealed
                value: None,
            },
        ]);
        let got = OrLKnownSeeds.estimate(&o);
        assert!((got - 1.0 / (p1 * p_any)).abs() < 1e-12, "{got}");
        // S={1} ∧ u2 > p2  ⇒  1/(p1+p2−p1p2).
        let o2 = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: t1,
                seed: Some(0.2),
                value: Some(1.0),
            },
            WeightedEntry {
                tau_star: t2,
                seed: Some(0.8),
                value: None,
            },
        ]);
        assert!((OrLKnownSeeds.estimate(&o2) - 1.0 / p_any).abs() < 1e-12);
    }

    #[test]
    fn uniform_known_seed_or_is_unbiased_r3() {
        let tau = 3.0; // p = 1/3
        let est = OrLKnownSeedsUniform::new(3, 1.0 / 3.0);
        for v in &[
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 0.0],
            [1.0, 1.0, 1.0],
        ] {
            let e = expectation(&est, v, &[tau, tau, tau]);
            assert!((e - or_of(v)).abs() < 1e-9, "bias on {v:?}: {e}");
        }
    }

    #[test]
    #[should_panic(expected = "visible seeds")]
    fn unknown_seeds_rejected() {
        let o = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 2.0,
                seed: None,
                value: None,
            },
            WeightedEntry {
                tau_star: 2.0,
                seed: None,
                value: Some(1.0),
            },
        ]);
        let _ = OrLKnownSeeds.estimate(&o);
    }

    #[test]
    fn documented_properties() {
        assert!(OrHtKnownSeeds.properties().unbiased);
        assert!(OrLKnownSeeds.properties().pareto_optimal);
        assert!(OrUKnownSeeds.properties().pareto_optimal);
    }

    /// Deterministic adversarial binary batch: thresholds on both sides of 1,
    /// all four value patterns, and seeds in both the revealed-zero (low) and
    /// no-information (high) regions, at lengths exercising chunk boundaries.
    fn adversarial_binary_batch(len: usize) -> Vec<WeightedOutcome> {
        let taus = [(4.0, 2.0), (1.5, 3.0), (1.25, 8.0)];
        (0..len)
            .map(|k| {
                let (t1, t2) = taus[k % taus.len()];
                let entry = |t: f64, v: f64, low: bool| {
                    let p = (1.0 / t).min(1.0);
                    let seed = if low { p * 0.5 } else { p + (1.0 - p) * 0.5 };
                    WeightedEntry {
                        tau_star: t,
                        seed: Some(seed),
                        // Sampled iff the value is 1 and the seed is low.
                        value: (v == 1.0 && low).then_some(v),
                    }
                };
                let v1 = f64::from(u32::from(k % 3 == 0));
                let v2 = f64::from(u32::from(k % 5 != 0));
                WeightedOutcome::new(vec![entry(t1, v1, k % 2 == 0), entry(t2, v2, k % 4 < 2)])
            })
            .collect()
    }

    #[test]
    fn known_seed_or_lane_kernels_bit_identical_to_scalar() {
        use pie_sampling::WeightedLanes;
        for len in [0usize, 1, 7, 8, 9, 16, 33] {
            let outcomes = adversarial_binary_batch(len);
            let mut lanes = WeightedLanes::new();
            lanes.fill_from_outcomes(&outcomes);
            let mut out = vec![f64::NAN; len];
            for est in [
                Box::new(OrHtKnownSeeds) as Box<dyn Estimator<WeightedOutcome>>,
                Box::new(OrLKnownSeeds),
                Box::new(OrUKnownSeeds),
            ] {
                est.estimate_lanes(&lanes, &mut out);
                for (k, o) in outcomes.iter().enumerate() {
                    assert_eq!(
                        out[k].to_bits(),
                        est.estimate(o).to_bits(),
                        "{} k={k} len={len}",
                        est.name()
                    );
                }
            }
        }
    }

    #[test]
    fn ht_known_seeds_lane_kernel_handles_r3() {
        use pie_sampling::WeightedLanes;
        let outcomes: Vec<WeightedOutcome> = (0..19)
            .map(|k| {
                WeightedOutcome::new(
                    (0..3)
                        .map(|j| {
                            let t = 2.0 + j as f64;
                            let p = 1.0 / t;
                            let low = (k + j) % 3 != 0;
                            let one = (k + 2 * j) % 4 != 0;
                            WeightedEntry {
                                tau_star: t,
                                seed: Some(if low { p * 0.5 } else { p + (1.0 - p) * 0.5 }),
                                value: (one && low).then_some(1.0),
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let mut lanes = WeightedLanes::new();
        lanes.fill_from_outcomes(&outcomes);
        let mut out = vec![f64::NAN; outcomes.len()];
        OrHtKnownSeeds.estimate_lanes(&lanes, &mut out);
        for (k, o) in outcomes.iter().enumerate() {
            assert_eq!(
                out[k].to_bits(),
                OrHtKnownSeeds.estimate(o).to_bits(),
                "k={k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "visible seeds")]
    fn unknown_seeds_rejected_by_lane_kernel() {
        use pie_sampling::WeightedLanes;
        let o = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 2.0,
                seed: None,
                value: None,
            },
            WeightedEntry {
                tau_star: 2.0,
                seed: None,
                value: Some(1.0),
            },
        ]);
        let mut lanes = WeightedLanes::new();
        lanes.fill_from_outcomes(std::slice::from_ref(&o));
        let mut out = vec![0.0; 1];
        OrLKnownSeeds.estimate_lanes(&lanes, &mut out);
    }

    #[test]
    #[should_panic(expected = "0/1 values")]
    fn non_binary_values_rejected_by_lane_kernel() {
        use pie_sampling::WeightedLanes;
        let o = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 2.0,
                seed: Some(0.1),
                value: Some(2.0),
            },
            WeightedEntry {
                tau_star: 2.0,
                seed: Some(0.9),
                value: None,
            },
        ]);
        let mut lanes = WeightedLanes::new();
        lanes.fill_from_outcomes(std::slice::from_ref(&o));
        let mut out = vec![0.0; 1];
        OrUKnownSeeds.estimate_lanes(&lanes, &mut out);
    }
}
