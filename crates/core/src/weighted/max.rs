//! Estimators for `max(v)` under weighted (PPS) Poisson sampling with known
//! seeds (Section 5.2 and Appendix A).
//!
//! Entry `i` is sampled iff `v_i ≥ u_i·τ*_i` (probability `min(1, v_i/τ*_i)`),
//! and the seeds `u_i` are available to the estimator.  The key consequence is
//! that an *unsampled* entry still reveals the upper bound `v_i < u_i·τ*_i`.
//!
//! * [`MaxHtPps`] is the optimal inverse-probability estimator of
//!   Cohen–Kaplan–Sen: positive exactly on outcomes from which `max(v)` can be
//!   recovered (every unsampled entry's upper bound is below the sampled
//!   maximum).
//! * [`MaxLPps2`] is the paper's Pareto-optimal order-based estimator for two
//!   instances (Figure 3): it maps each outcome to its ≺-minimal consistent
//!   ("determining") vector and applies a closed-form expression with four
//!   regimes, derived in Appendix A.  With equal thresholds it dominates
//!   [`MaxHtPps`], with the largest gains (factor ≈ 2/ρ, `ρ = max(v)/τ*`) when
//!   the two entries are similar; see EXPERIMENTS.md for how the measured
//!   ratios compare with the paper's §5.2 claims.

use pie_sampling::{WeightedLanes, WeightedOutcome};

use crate::estimate::{DocumentedEstimator, Estimator, EstimatorProperties, LANE_BLOCK};

/// The optimal inverse-probability estimator `max^(HT)` for PPS samples with
/// known seeds, any number of instances (Section 5.2, after [17, 18]).
///
/// Positive exactly when `max_{i∉S} u_i·τ*_i ≤ max_{i∈S} v_i`, in which case
/// the estimate is `max_{i∈S} v_i / ∏_{i∈[r]} min(1, max_{i∈S} v_i / τ*_i)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxHtPps;

impl Estimator<WeightedOutcome> for MaxHtPps {
    fn estimate(&self, outcome: &WeightedOutcome) -> f64 {
        let Some(max_sampled) = outcome.max_sampled() else {
            return 0.0;
        };
        let bound = outcome
            .max_unsampled_bound()
            .expect("max^(HT) for PPS requires known seeds");
        if bound > max_sampled {
            return 0.0;
        }
        let mut prob = 1.0;
        for e in &outcome.entries {
            prob *= (max_sampled / e.tau_star).min(1.0);
        }
        if prob > 0.0 {
            max_sampled / prob
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "max_ht_pps"
    }

    /// Lane-kernel hot path: two fused blocked passes over the
    /// struct-of-arrays lanes.  The first accumulates the sampled maximum
    /// (same fold order as [`WeightedOutcome::max_sampled`]), the largest
    /// unsampled upper bound `u·τ*`, and a seed-visibility flag — as
    /// branch-free selects, so the accumulation loop vectorizes; the second
    /// accumulates the inclusion-probability product at the sampled maximum,
    /// in entry order exactly as [`estimate`](Self::estimate) does (its
    /// running product also starts from `1.0`), so results are
    /// bit-identical.  Bounds and products of outcomes that estimate to zero
    /// are computed speculatively and discarded by the final select, and the
    /// missing-seed panic (which, as in the scalar path, only outcomes with
    /// at least one sampled entry can raise) is deferred to one reduced
    /// check per block.
    fn estimate_lanes(&self, lanes: &WeightedLanes, out: &mut [f64]) {
        crate::estimate::check_lanes_len(lanes.len(), out);
        let r = lanes.num_instances();
        let len = lanes.len();
        if r == 0 {
            out.fill(0.0);
            return;
        }
        let mut max = [0.0f64; LANE_BLOCK];
        let mut has = [false; LANE_BLOCK];
        let mut bound = [0.0f64; LANE_BLOCK];
        let mut seeds_ok = [true; LANE_BLOCK];
        let mut prob = [0.0f64; LANE_BLOCK];
        let mut start = 0usize;
        while start < len {
            let n = LANE_BLOCK.min(len - start);
            for i in 0..n {
                max[i] = 0.0;
                has[i] = false;
                bound[i] = 0.0;
                seeds_ok[i] = true;
            }
            for j in 0..r {
                let v = &lanes.value_lane(j)[start..start + n];
                let s = &lanes.present_lane(j)[start..start + n];
                let u = &lanes.seed_lane(j)[start..start + n];
                let k = &lanes.seed_known_lane(j)[start..start + n];
                let t = &lanes.tau_lane(j)[start..start + n];
                for i in 0..n {
                    let sampled = s[i] > 0.0;
                    let new_max = if has[i] { max[i].max(v[i]) } else { v[i] };
                    let new_bound = bound[i].max(u[i] * t[i]);
                    max[i] = if sampled { new_max } else { max[i] };
                    bound[i] = if sampled { bound[i] } else { new_bound };
                    seeds_ok[i] &= sampled | (k[i] > 0.0);
                    has[i] |= sampled;
                }
            }
            let mut block_ok = true;
            for i in 0..n {
                block_ok &= !has[i] | seeds_ok[i];
            }
            if !block_ok {
                missing_ht_seeds();
            }
            prob[..n].fill(1.0);
            for j in 0..r {
                let t = &lanes.tau_lane(j)[start..start + n];
                for i in 0..n {
                    prob[i] *= (max[i] / t[i]).min(1.0);
                }
            }
            let o = &mut out[start..start + n];
            for i in 0..n {
                // Mirrors the scalar `bound > max_sampled` rejection exactly,
                // negation included, so incomparable pairs behave the same.
                let exceeded = bound[i] > max[i];
                o[i] = if has[i] & !exceeded & (prob[i] > 0.0) {
                    max[i] / prob[i]
                } else {
                    0.0
                };
            }
            start += n;
        }
    }
}

#[cold]
#[inline(never)]
fn missing_ht_seeds() -> ! {
    panic!("max^(HT) for PPS requires known seeds");
}

impl DocumentedEstimator<WeightedOutcome> for MaxHtPps {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::ht()
    }
}

/// The Pareto-optimal `max^(L)` estimator for two PPS-sampled instances with
/// known seeds (Section 5.2, Figure 3, Appendix A).
///
/// The outcome is first mapped to its determining vector `φ(S)`
/// (unsampled entries replaced by `min(u_i·τ*_i, max sampled value)`), then a
/// four-case closed form is evaluated.  The estimator is unbiased,
/// nonnegative and monotone; with equal thresholds it dominates [`MaxHtPps`],
/// with the gain growing as the two entries become similar and as the
/// sampling rate increases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxLPps2;

impl MaxLPps2 {
    /// The determining vector `φ(S)` of a two-instance outcome.
    ///
    /// * `S = ∅` → `(0, 0)`
    /// * `S = {1}` → `(v_1, min(u_2·τ*_2, v_1))`
    /// * `S = {2}` → `(min(u_1·τ*_1, v_2), v_2)`
    /// * `S = {1,2}` → `(v_1, v_2)`
    ///
    /// # Panics
    /// Panics if the outcome does not have exactly two entries or seeds are
    /// missing for unsampled entries.
    #[must_use]
    pub fn determining_vector(outcome: &WeightedOutcome) -> [f64; 2] {
        assert_eq!(
            outcome.num_instances(),
            2,
            "MaxLPps2 is defined for exactly two instances"
        );
        let e1 = &outcome.entries[0];
        let e2 = &outcome.entries[1];
        match (e1.value, e2.value) {
            (None, None) => [0.0, 0.0],
            (Some(v1), None) => {
                let bound = e2
                    .unsampled_upper_bound()
                    .expect("max^(L) for PPS requires known seeds");
                [v1, bound.min(v1)]
            }
            (None, Some(v2)) => {
                let bound = e1
                    .unsampled_upper_bound()
                    .expect("max^(L) for PPS requires known seeds");
                [bound.min(v2), v2]
            }
            (Some(v1), Some(v2)) => [v1, v2],
        }
    }

    /// Evaluates the Figure 3 closed form on a determining vector `(v1, v2)`
    /// with thresholds `(tau1, tau2)`, assuming `v1 ≥ v2` (the caller swaps
    /// indices otherwise).
    fn closed_form(v1: f64, v2: f64, tau1: f64, tau2: f64) -> f64 {
        debug_assert!(v1 >= v2);
        if v1 <= 0.0 {
            return 0.0;
        }
        if v2 >= tau2 {
            // Case: v1 ≥ v2 ≥ τ*_2.
            return v2 + (v1 - v2) / (v1 / tau1).min(1.0);
        }
        if v1 >= tau1 {
            // Case: v1 ≥ τ*_1, v2 ≤ min(τ*_2, v1).
            return v1;
        }
        let s = tau1 + tau2;
        if v1 <= tau2 {
            // Case: v2 ≤ v1 ≤ min(τ*_1, τ*_2).
            let a = tau1 * tau2 / (s - v1);
            let b = tau1 * tau2 * (tau1 - v1) / (v1 * s);
            let log_arg = (s - v2) * v1 / (v2 * (s - v1));
            let d = (v1 - v2) * tau1 * tau2 * (tau1 - v1) / (v1 * (s - v2) * (s - v1));
            a + b * log_arg.ln() + d
        } else {
            // Case: v2 ≤ τ*_2 ≤ v1 ≤ τ*_1 (Equation (30) / last row of Figure 3).
            //
            // Note on the logarithm's argument: the paper prints
            // `(τ1+τ2−v2)·τ1 / (τ2·(τ1+τ2−v1))`, but evaluating the
            // antiderivative of Footnote 2 at the lower limit `x = v1 − τ2`
            // (where the case-(26) boundary value must be recovered) gives
            // `(τ1+τ2−v2)·τ2 / (τ1·v2)`; the printed form does not reduce to
            // the boundary value at `v2 = τ2` and breaks unbiasedness, so we
            // use the re-derived argument.  See EXPERIMENTS.md.
            let e = tau1 + tau2 - tau1 * tau2 / v1;
            let f = tau1 * tau2 * (tau1 - v1) / (v1 * s);
            let log_arg = (s - v2) * tau2 / (tau1 * v2);
            let h = tau2 * (tau1 - v1) * (tau2 - v2) / ((s - v2) * v1);
            e + f * log_arg.ln() + h
        }
    }
}

impl Estimator<WeightedOutcome> for MaxLPps2 {
    fn estimate(&self, outcome: &WeightedOutcome) -> f64 {
        let phi = Self::determining_vector(outcome);
        let tau1 = outcome.entries[0].tau_star;
        let tau2 = outcome.entries[1].tau_star;
        if phi[0] >= phi[1] {
            Self::closed_form(phi[0], phi[1], tau1, tau2)
        } else {
            // Symmetric expression with the roles of the instances exchanged.
            Self::closed_form(phi[1], phi[0], tau2, tau1)
        }
    }

    fn name(&self) -> &'static str {
        "max_l_pps_2"
    }

    /// Two-phase lane-kernel hot path.  Phase one is a select-only pass —
    /// multiplies, compares and mask selects, no divisions and no side
    /// exits — that computes the determining vector, the ordered swap, and
    /// the dominant deterministic cases (`x ≤ 0 → 0`, `x ≥ τ*_x → x`, and
    /// the division arm when its divisor is exactly 1.0), writing a NaN
    /// sentinel for the lanes that fall into the logarithmic or
    /// truly-dividing regimes; the seed validity check rides along as a
    /// mask reduction in the same loop, and LLVM turns the whole thing
    /// into masked-blend vector code.  Phase two rescans just the sentinel
    /// lanes — rare on production workloads, where almost every key is
    /// either unsampled or above its threshold — recomputing the
    /// determining vector and calling the exact scalar
    /// [`closed_form`](Self::closed_form).  Every expression matches
    /// [`estimate`](Self::estimate) verbatim, so results are bit-identical.
    fn estimate_lanes(&self, lanes: &WeightedLanes, out: &mut [f64]) {
        crate::estimate::check_lanes_len(lanes.len(), out);
        if lanes.is_empty() {
            // An empty batch has no outcomes to assert the instance count on.
            return;
        }
        assert_eq!(
            lanes.num_instances(),
            2,
            "MaxLPps2 is defined for exactly two instances"
        );
        let len = lanes.len();
        let v1l = &lanes.value_lane(0)[..len];
        let v2l = &lanes.value_lane(1)[..len];
        let s1l = &lanes.present_lane(0)[..len];
        let s2l = &lanes.present_lane(1)[..len];
        let u1l = &lanes.seed_lane(0)[..len];
        let u2l = &lanes.seed_lane(1)[..len];
        let t1l = &lanes.tau_lane(0)[..len];
        let t2l = &lanes.tau_lane(1)[..len];
        let k1l = &lanes.seed_known_lane(0)[..len];
        let k2l = &lanes.seed_known_lane(1)[..len];
        // Accumulated seed-validity mask: an unsampled entry paired with a
        // sampled one must expose its seed, exactly as `determining_vector`
        // requires.  Checked once after the batch — the panic unwinds
        // before any caller can observe `out`.
        let mut seeds_ok = true;
        let mut start = 0usize;
        while start < len {
            let m = LANE_BLOCK.min(len - start);
            let v1c = &v1l[start..start + m];
            let v2c = &v2l[start..start + m];
            let s1c = &s1l[start..start + m];
            let s2c = &s2l[start..start + m];
            let u1c = &u1l[start..start + m];
            let u2c = &u2l[start..start + m];
            let t1c = &t1l[start..start + m];
            let t2c = &t2l[start..start + m];
            let k1c = &k1l[start..start + m];
            let k2c = &k2l[start..start + m];
            let o = &mut out[start..start + m];
            // Phase one.  The present and seed-known lanes hold exactly
            // 0.0 or 1.0, so the ordered `> 0.0` test (one vector compare,
            // no NaN parity fixup) is the scalar path's presence check;
            // the case logic uses eager `&`/`|` — short-circuit booleans
            // would reintroduce control flow and defeat if-conversion.
            for c in 0..m {
                let s1 = s1c[c] > 0.0;
                let s2 = s2c[c] > 0.0;
                let k1 = k1c[c] > 0.0;
                let k2 = k2c[c] > 0.0;
                seeds_ok &= (!s1 | s2 | k2) & (s1 | !s2 | k1);
                let (v1, v2) = (v1c[c], v2c[c]);
                let (tau1, tau2) = (t1c[c], t2c[c]);
                let m1 = (u1c[c] * tau1).min(v2);
                let m2 = (u2c[c] * tau2).min(v1);
                let phi0 = if s1 {
                    v1
                } else if s2 {
                    m1
                } else {
                    0.0
                };
                let phi1 = if s2 {
                    v2
                } else if s1 {
                    m2
                } else {
                    0.0
                };
                let swap = phi0 >= phi1;
                let x = if swap { phi0 } else { phi1 };
                let y = if swap { phi1 } else { phi0 };
                let tx = if swap { tau1 } else { tau2 };
                let ty = if swap { tau2 } else { tau1 };
                // Case order as in `closed_form`: zero, division (y ≥ τ*_y),
                // deterministic x, logarithmic.  When the division arm
                // fires with x ≥ τ*_x > 0 — in practice almost always,
                // since x is the larger coordinate — its divisor
                // `(x / τ*_x).min(1.0)` is exactly 1.0 and the arm reduces
                // bit-for-bit to `y + (x - y)`, so the kernel needs no
                // division at all (`vdivpd` throughput would otherwise
                // dominate).  The remaining lanes — logarithmic regime or a
                // truly-dividing division arm (unequal thresholds with
                // τ*_y ≤ y ≤ x < τ*_x) — get a NaN sentinel and defer to
                // phase two.  A lane whose *inputs* already produce NaN is
                // also caught by the sentinel scan and recomputed through
                // the scalar chain, so the sentinel never masks a real
                // result.
                let zero = x <= 0.0;
                let div = !zero & (y >= ty);
                let easy_div = (x >= tx) & (tx > 0.0);
                let take_x = !zero & !div & (x >= tx);
                let det = y + (x - y);
                o[c] = if div & easy_div {
                    det
                } else if take_x {
                    x
                } else if zero {
                    0.0
                } else {
                    f64::NAN
                };
            }
            // Phase two: sentinel lanes (logarithmic regime or a
            // truly-dividing division arm) rerun the full scalar chain.
            // On skewed workloads both regimes are rare, so the scan branch
            // is almost never taken and predicts well.
            for c in 0..m {
                if o[c].is_nan() {
                    let s1 = s1c[c] > 0.0;
                    let s2 = s2c[c] > 0.0;
                    let (tau1, tau2) = (t1c[c], t2c[c]);
                    let phi0 = if s1 {
                        v1c[c]
                    } else if s2 {
                        (u1c[c] * tau1).min(v2c[c])
                    } else {
                        0.0
                    };
                    let phi1 = if s2 {
                        v2c[c]
                    } else if s1 {
                        (u2c[c] * tau2).min(v1c[c])
                    } else {
                        0.0
                    };
                    o[c] = if phi0 >= phi1 {
                        Self::closed_form(phi0, phi1, tau1, tau2)
                    } else {
                        Self::closed_form(phi1, phi0, tau2, tau1)
                    };
                }
            }
            start += m;
        }
        if !seeds_ok {
            missing_l_seeds();
        }
    }
}

#[cold]
#[inline(never)]
fn missing_l_seeds() -> ! {
    panic!("max^(L) for PPS requires known seeds");
}

impl DocumentedEstimator<WeightedOutcome> for MaxLPps2 {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

/// The closed-form estimate on a determining vector with two *equal* entries
/// (Equation (25)): `v / (q_1 + (1−q_1) q_2)` where `q_i = min(1, v/τ*_i)`.
///
/// Exposed for tests and for the derivation walk-through example.
#[must_use]
pub fn max_l_pps2_equal_entries(v: f64, tau1: f64, tau2: f64) -> f64 {
    if v <= 0.0 {
        return 0.0;
    }
    let q1 = (v / tau1).min(1.0);
    let q2 = (v / tau2).min(1.0);
    v / (q1 + (1.0 - q1) * q2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_sampling::WeightedEntry;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Scales Monte-Carlo trial counts down in debug builds so that
    /// `cargo test` (unoptimized) stays fast; tolerances below are set for the
    /// scaled counts.
    fn trials(n: usize) -> usize {
        if cfg!(debug_assertions) {
            n / 10
        } else {
            n
        }
    }

    /// Simulates PPS sampling with known seeds for a two-entry data vector and
    /// returns the outcome.
    fn simulate(v: &[f64; 2], tau: &[f64; 2], u: [f64; 2]) -> WeightedOutcome {
        let entries = (0..2)
            .map(|i| {
                let sampled = v[i] > 0.0 && v[i] >= u[i] * tau[i];
                WeightedEntry {
                    tau_star: tau[i],
                    seed: Some(u[i]),
                    value: if sampled { Some(v[i]) } else { None },
                }
            })
            .collect();
        WeightedOutcome::new(entries)
    }

    fn monte_carlo_mean_var<E: Estimator<WeightedOutcome>>(
        est: &E,
        v: &[f64; 2],
        tau: &[f64; 2],
        trials: usize,
        seed: u64,
    ) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..trials {
            let u = [rng.gen_range(1e-12..1.0), rng.gen_range(1e-12..1.0)];
            let x = est.estimate(&simulate(v, tau, u));
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / trials as f64;
        (mean, sum_sq / trials as f64 - mean * mean)
    }

    #[test]
    fn determining_vector_cases() {
        let tau = [10.0, 8.0];
        // Both sampled.
        let o = simulate(&[6.0, 3.0], &tau, [0.5, 0.3]);
        assert_eq!(o.num_sampled(), 2);
        assert_eq!(MaxLPps2::determining_vector(&o), [6.0, 3.0]);
        // Only entry 1 sampled, bound below v1.
        let o = simulate(&[6.0, 3.0], &tau, [0.5, 0.6]); // u2*tau2 = 4.8 > 3 -> not sampled
        assert_eq!(o.num_sampled(), 1);
        assert_eq!(MaxLPps2::determining_vector(&o), [6.0, 4.8]);
        // Only entry 1 sampled, bound above v1 -> capped at v1.
        let o = simulate(&[6.0, 3.0], &tau, [0.5, 0.9]); // u2*tau2 = 7.2 > 6
        assert_eq!(MaxLPps2::determining_vector(&o), [6.0, 6.0]);
        // Nothing sampled.
        let o = simulate(&[6.0, 3.0], &tau, [0.7, 0.9]);
        assert_eq!(o.num_sampled(), 0);
        assert_eq!(MaxLPps2::determining_vector(&o), [0.0, 0.0]);
    }

    #[test]
    fn ht_pps_is_unbiased_monte_carlo() {
        let tau = [10.0, 10.0];
        for v in &[[5.0f64, 3.0], [2.0, 2.0], [9.0, 0.5], [4.0, 0.0]] {
            let truth = v[0].max(v[1]);
            // The HT estimate is heavy-tailed (a large value with small
            // probability), so this check keeps the full trial count even in
            // debug builds; each trial is just a comparison and a division.
            let (mean, _) = monte_carlo_mean_var(&MaxHtPps, v, &tau, 400_000, 7);
            assert!(
                (mean - truth).abs() / truth.max(1.0) < 0.02,
                "HT biased on {v:?}: {mean} vs {truth}"
            );
        }
    }

    #[test]
    fn max_l_pps2_is_unbiased_monte_carlo() {
        let cases: &[([f64; 2], [f64; 2])] = &[
            ([5.0, 3.0], [10.0, 10.0]),
            ([2.0, 2.0], [10.0, 8.0]),
            ([9.0, 0.5], [10.0, 10.0]),
            ([4.0, 0.0], [10.0, 6.0]),
            ([12.0, 3.0], [10.0, 10.0]), // v1 above tau*: always sampled
            ([7.0, 6.5], [8.0, 6.0]),    // v2 above tau2*
            ([0.5, 0.2], [10.0, 10.0]),  // tiny values, heavy subsampling
        ];
        for (i, (v, tau)) in cases.iter().enumerate() {
            let truth = v[0].max(v[1]);
            let (mean, _) =
                monte_carlo_mean_var(&MaxLPps2, v, tau, trials(600_000), 100 + i as u64);
            assert!(
                (mean - truth).abs() / truth < 0.02,
                "max^L biased on {v:?} tau {tau:?}: {mean} vs {truth}"
            );
        }
    }

    #[test]
    fn max_l_pps2_is_nonnegative_and_monotone_under_information() {
        // Nonnegativity on a grid of outcomes.
        let tau = [10.0, 7.0];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = [rng.gen_range(0.0..12.0), rng.gen_range(0.0..12.0)];
            let u = [rng.gen_range(1e-9..1.0), rng.gen_range(1e-9..1.0)];
            let o = simulate(&v, &tau, u);
            let est = MaxLPps2.estimate(&o);
            assert!(est >= -1e-9, "negative estimate {est} for v={v:?} u={u:?}");
        }
    }

    #[test]
    fn max_l_dominates_ht_in_variance() {
        let tau = [10.0, 10.0];
        for v in &[[5.0, 3.0], [5.0, 5.0], [5.0, 0.0], [2.0, 1.0]] {
            let (_, var_ht) = monte_carlo_mean_var(&MaxHtPps, v, &tau, trials(300_000), 11);
            let (_, var_l) = monte_carlo_mean_var(&MaxLPps2, v, &tau, trials(300_000), 13);
            assert!(
                var_l <= var_ht * 1.05,
                "L variance {var_l} should not exceed HT variance {var_ht} on {v:?}"
            );
        }
    }

    #[test]
    fn variance_ratio_bound_section_5_2() {
        // Section 5.2 claims VAR[HT]/VAR[L] ≥ (1+ρ)/ρ where ρ = max(v)/τ*.
        // For vectors whose entries are similar the measured ratio of the
        // Figure 3 estimator comfortably exceeds that bound; on the extreme
        // vector (ρτ*, 0) the Figure 3 estimator is more variable than the
        // paper's back-of-envelope analysis assumes (see EXPERIMENTS.md), so
        // there we only assert clear dominance over HT (ratio near 2).
        let tau = [10.0, 10.0];
        for v in &[[5.0f64, 2.0], [2.0, 2.0]] {
            let rho: f64 = v[0].max(v[1]) / tau[0];
            let (_, var_ht) = monte_carlo_mean_var(&MaxHtPps, v, &tau, trials(400_000), 21);
            let (_, var_l) = monte_carlo_mean_var(&MaxLPps2, v, &tau, trials(400_000), 23);
            let ratio = var_ht / var_l;
            let bound = (1.0 + rho) / rho;
            assert!(
                ratio > bound * 0.9,
                "ratio {ratio} should be at least about {bound} on {v:?}"
            );
        }
        let (_, var_ht) = monte_carlo_mean_var(&MaxHtPps, &[5.0, 0.0], &tau, trials(400_000), 21);
        let (_, var_l) = monte_carlo_mean_var(&MaxLPps2, &[5.0, 0.0], &tau, trials(400_000), 23);
        let ratio = var_ht / var_l;
        assert!(
            ratio > 1.8,
            "ratio on the extreme vector should stay near 2, got {ratio}"
        );
    }

    #[test]
    fn closed_form_matches_equal_entry_formula() {
        // Equation (25) specializations.
        let (tau1, tau2) = (10.0, 6.0);
        for &v in &[0.5, 2.0, 5.0, 7.0, 12.0] {
            let expected = max_l_pps2_equal_entries(v, tau1, tau2);
            let got = MaxLPps2::closed_form(v, v, tau1, tau2);
            assert!(
                (got - expected).abs() < 1e-9,
                "equal-entry mismatch at v={v}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn deterministic_regime_when_values_exceed_thresholds() {
        // If max(v) ≥ τ* in both instances the maximum is known with certainty
        // and both estimators return it exactly (zero variance).
        let tau = [5.0, 4.0];
        let v = [7.0, 6.0];
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let u = [rng.gen_range(1e-9..1.0), rng.gen_range(1e-9..1.0)];
            let o = simulate(&v, &tau, u);
            assert!((MaxLPps2.estimate(&o) - 7.0).abs() < 1e-9);
            assert!((MaxHtPps.estimate(&o) - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ht_requires_known_seeds() {
        let o = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 10.0,
                seed: None,
                value: Some(3.0),
            },
            WeightedEntry {
                tau_star: 10.0,
                seed: None,
                value: None,
            },
        ]);
        let result = std::panic::catch_unwind(|| MaxHtPps.estimate(&o));
        assert!(result.is_err(), "HT for PPS must require known seeds");
    }

    #[test]
    fn zero_vector_estimates_zero() {
        let o = simulate(&[0.0, 0.0], &[10.0, 10.0], [0.4, 0.6]);
        assert_eq!(MaxHtPps.estimate(&o), 0.0);
        assert_eq!(MaxLPps2.estimate(&o), 0.0);
    }

    #[test]
    fn documented_properties() {
        assert!(MaxHtPps.properties().unbiased);
        assert!(!MaxHtPps.properties().pareto_optimal);
        assert!(MaxLPps2.properties().pareto_optimal);
    }

    /// Deterministic adversarial batch covering all four determining-vector
    /// cases and all four closed-form regimes: values straddling both
    /// thresholds, zeros, extremes, and near-ties.
    fn adversarial_batch(len: usize) -> Vec<WeightedOutcome> {
        let values = [0.0, 0.5, 2.0, 5.999, 6.0, 9.0, 12.0, 1e-12, 1e12];
        let seeds = [0.001, 0.25, 0.5, 0.75, 0.999];
        (0..len)
            .map(|k| {
                let v = [values[k % values.len()], values[(k / 3 + 2) % values.len()]];
                let tau = [10.0, 6.0];
                let u = [seeds[k % seeds.len()], seeds[(k / 2 + 1) % seeds.len()]];
                simulate(&v, &tau, u)
            })
            .collect()
    }

    #[test]
    fn weighted_lane_kernels_bit_identical_to_scalar() {
        use pie_sampling::WeightedLanes;
        for len in [0usize, 1, 7, 8, 9, 16, 33] {
            let outcomes = adversarial_batch(len);
            let mut lanes = WeightedLanes::new();
            lanes.fill_from_outcomes(&outcomes);
            let mut out = vec![f64::NAN; len];
            MaxHtPps.estimate_lanes(&lanes, &mut out);
            for (k, o) in outcomes.iter().enumerate() {
                assert_eq!(
                    out[k].to_bits(),
                    MaxHtPps.estimate(o).to_bits(),
                    "ht k={k} len={len}"
                );
            }
            MaxLPps2.estimate_lanes(&lanes, &mut out);
            for (k, o) in outcomes.iter().enumerate() {
                assert_eq!(
                    out[k].to_bits(),
                    MaxLPps2.estimate(o).to_bits(),
                    "l k={k} len={len}"
                );
            }
        }
    }

    #[test]
    fn lane_kernels_require_known_seeds_like_scalar() {
        use pie_sampling::WeightedLanes;
        let o = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 10.0,
                seed: None,
                value: Some(3.0),
            },
            WeightedEntry {
                tau_star: 10.0,
                seed: None,
                value: None,
            },
        ]);
        let mut lanes = WeightedLanes::new();
        lanes.fill_from_outcomes(std::slice::from_ref(&o));
        let mut out = vec![0.0; 1];
        let ht = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            MaxHtPps.estimate_lanes(&lanes, &mut out)
        }));
        assert!(ht.is_err(), "HT lane kernel must require known seeds");
        let mut out = vec![0.0; 1];
        let l = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            MaxLPps2.estimate_lanes(&lanes, &mut out)
        }));
        assert!(l.is_err(), "L lane kernel must require known seeds");
        // Fully-unsampled outcomes never consult the seeds in either path.
        let quiet = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 10.0,
                seed: None,
                value: None,
            },
            WeightedEntry {
                tau_star: 10.0,
                seed: None,
                value: None,
            },
        ]);
        let mut lanes = WeightedLanes::new();
        lanes.fill_from_outcomes(std::slice::from_ref(&quiet));
        let mut out = vec![f64::NAN; 1];
        MaxHtPps.estimate_lanes(&lanes, &mut out);
        assert_eq!(out[0], 0.0);
        MaxLPps2.estimate_lanes(&lanes, &mut out);
        assert_eq!(out[0], 0.0);
    }
}
