//! Estimators for `max(v)` under weighted (PPS) Poisson sampling with known
//! seeds (Section 5.2 and Appendix A).
//!
//! Entry `i` is sampled iff `v_i ≥ u_i·τ*_i` (probability `min(1, v_i/τ*_i)`),
//! and the seeds `u_i` are available to the estimator.  The key consequence is
//! that an *unsampled* entry still reveals the upper bound `v_i < u_i·τ*_i`.
//!
//! * [`MaxHtPps`] is the optimal inverse-probability estimator of
//!   Cohen–Kaplan–Sen: positive exactly on outcomes from which `max(v)` can be
//!   recovered (every unsampled entry's upper bound is below the sampled
//!   maximum).
//! * [`MaxLPps2`] is the paper's Pareto-optimal order-based estimator for two
//!   instances (Figure 3): it maps each outcome to its ≺-minimal consistent
//!   ("determining") vector and applies a closed-form expression with four
//!   regimes, derived in Appendix A.  With equal thresholds it dominates
//!   [`MaxHtPps`], with the largest gains (factor ≈ 2/ρ, `ρ = max(v)/τ*`) when
//!   the two entries are similar; see EXPERIMENTS.md for how the measured
//!   ratios compare with the paper's §5.2 claims.

use pie_sampling::WeightedOutcome;

use crate::estimate::{DocumentedEstimator, Estimator, EstimatorProperties};

/// The optimal inverse-probability estimator `max^(HT)` for PPS samples with
/// known seeds, any number of instances (Section 5.2, after [17, 18]).
///
/// Positive exactly when `max_{i∉S} u_i·τ*_i ≤ max_{i∈S} v_i`, in which case
/// the estimate is `max_{i∈S} v_i / ∏_{i∈[r]} min(1, max_{i∈S} v_i / τ*_i)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxHtPps;

impl Estimator<WeightedOutcome> for MaxHtPps {
    fn estimate(&self, outcome: &WeightedOutcome) -> f64 {
        let Some(max_sampled) = outcome.max_sampled() else {
            return 0.0;
        };
        let bound = outcome
            .max_unsampled_bound()
            .expect("max^(HT) for PPS requires known seeds");
        if bound > max_sampled {
            return 0.0;
        }
        let mut prob = 1.0;
        for e in &outcome.entries {
            prob *= (max_sampled / e.tau_star).min(1.0);
        }
        if prob > 0.0 {
            max_sampled / prob
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "max_ht_pps"
    }
}

impl DocumentedEstimator<WeightedOutcome> for MaxHtPps {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::ht()
    }
}

/// The Pareto-optimal `max^(L)` estimator for two PPS-sampled instances with
/// known seeds (Section 5.2, Figure 3, Appendix A).
///
/// The outcome is first mapped to its determining vector `φ(S)`
/// (unsampled entries replaced by `min(u_i·τ*_i, max sampled value)`), then a
/// four-case closed form is evaluated.  The estimator is unbiased,
/// nonnegative and monotone; with equal thresholds it dominates [`MaxHtPps`],
/// with the gain growing as the two entries become similar and as the
/// sampling rate increases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxLPps2;

impl MaxLPps2 {
    /// The determining vector `φ(S)` of a two-instance outcome.
    ///
    /// * `S = ∅` → `(0, 0)`
    /// * `S = {1}` → `(v_1, min(u_2·τ*_2, v_1))`
    /// * `S = {2}` → `(min(u_1·τ*_1, v_2), v_2)`
    /// * `S = {1,2}` → `(v_1, v_2)`
    ///
    /// # Panics
    /// Panics if the outcome does not have exactly two entries or seeds are
    /// missing for unsampled entries.
    #[must_use]
    pub fn determining_vector(outcome: &WeightedOutcome) -> [f64; 2] {
        assert_eq!(
            outcome.num_instances(),
            2,
            "MaxLPps2 is defined for exactly two instances"
        );
        let e1 = &outcome.entries[0];
        let e2 = &outcome.entries[1];
        match (e1.value, e2.value) {
            (None, None) => [0.0, 0.0],
            (Some(v1), None) => {
                let bound = e2
                    .unsampled_upper_bound()
                    .expect("max^(L) for PPS requires known seeds");
                [v1, bound.min(v1)]
            }
            (None, Some(v2)) => {
                let bound = e1
                    .unsampled_upper_bound()
                    .expect("max^(L) for PPS requires known seeds");
                [bound.min(v2), v2]
            }
            (Some(v1), Some(v2)) => [v1, v2],
        }
    }

    /// Evaluates the Figure 3 closed form on a determining vector `(v1, v2)`
    /// with thresholds `(tau1, tau2)`, assuming `v1 ≥ v2` (the caller swaps
    /// indices otherwise).
    fn closed_form(v1: f64, v2: f64, tau1: f64, tau2: f64) -> f64 {
        debug_assert!(v1 >= v2);
        if v1 <= 0.0 {
            return 0.0;
        }
        if v2 >= tau2 {
            // Case: v1 ≥ v2 ≥ τ*_2.
            return v2 + (v1 - v2) / (v1 / tau1).min(1.0);
        }
        if v1 >= tau1 {
            // Case: v1 ≥ τ*_1, v2 ≤ min(τ*_2, v1).
            return v1;
        }
        let s = tau1 + tau2;
        if v1 <= tau2 {
            // Case: v2 ≤ v1 ≤ min(τ*_1, τ*_2).
            let a = tau1 * tau2 / (s - v1);
            let b = tau1 * tau2 * (tau1 - v1) / (v1 * s);
            let log_arg = (s - v2) * v1 / (v2 * (s - v1));
            let d = (v1 - v2) * tau1 * tau2 * (tau1 - v1) / (v1 * (s - v2) * (s - v1));
            a + b * log_arg.ln() + d
        } else {
            // Case: v2 ≤ τ*_2 ≤ v1 ≤ τ*_1 (Equation (30) / last row of Figure 3).
            //
            // Note on the logarithm's argument: the paper prints
            // `(τ1+τ2−v2)·τ1 / (τ2·(τ1+τ2−v1))`, but evaluating the
            // antiderivative of Footnote 2 at the lower limit `x = v1 − τ2`
            // (where the case-(26) boundary value must be recovered) gives
            // `(τ1+τ2−v2)·τ2 / (τ1·v2)`; the printed form does not reduce to
            // the boundary value at `v2 = τ2` and breaks unbiasedness, so we
            // use the re-derived argument.  See EXPERIMENTS.md.
            let e = tau1 + tau2 - tau1 * tau2 / v1;
            let f = tau1 * tau2 * (tau1 - v1) / (v1 * s);
            let log_arg = (s - v2) * tau2 / (tau1 * v2);
            let h = tau2 * (tau1 - v1) * (tau2 - v2) / ((s - v2) * v1);
            e + f * log_arg.ln() + h
        }
    }
}

impl Estimator<WeightedOutcome> for MaxLPps2 {
    fn estimate(&self, outcome: &WeightedOutcome) -> f64 {
        let phi = Self::determining_vector(outcome);
        let tau1 = outcome.entries[0].tau_star;
        let tau2 = outcome.entries[1].tau_star;
        if phi[0] >= phi[1] {
            Self::closed_form(phi[0], phi[1], tau1, tau2)
        } else {
            // Symmetric expression with the roles of the instances exchanged.
            Self::closed_form(phi[1], phi[0], tau2, tau1)
        }
    }

    fn name(&self) -> &'static str {
        "max_l_pps_2"
    }
}

impl DocumentedEstimator<WeightedOutcome> for MaxLPps2 {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

/// The closed-form estimate on a determining vector with two *equal* entries
/// (Equation (25)): `v / (q_1 + (1−q_1) q_2)` where `q_i = min(1, v/τ*_i)`.
///
/// Exposed for tests and for the derivation walk-through example.
#[must_use]
pub fn max_l_pps2_equal_entries(v: f64, tau1: f64, tau2: f64) -> f64 {
    if v <= 0.0 {
        return 0.0;
    }
    let q1 = (v / tau1).min(1.0);
    let q2 = (v / tau2).min(1.0);
    v / (q1 + (1.0 - q1) * q2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_sampling::WeightedEntry;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Scales Monte-Carlo trial counts down in debug builds so that
    /// `cargo test` (unoptimized) stays fast; tolerances below are set for the
    /// scaled counts.
    fn trials(n: usize) -> usize {
        if cfg!(debug_assertions) {
            n / 10
        } else {
            n
        }
    }

    /// Simulates PPS sampling with known seeds for a two-entry data vector and
    /// returns the outcome.
    fn simulate(v: &[f64; 2], tau: &[f64; 2], u: [f64; 2]) -> WeightedOutcome {
        let entries = (0..2)
            .map(|i| {
                let sampled = v[i] > 0.0 && v[i] >= u[i] * tau[i];
                WeightedEntry {
                    tau_star: tau[i],
                    seed: Some(u[i]),
                    value: if sampled { Some(v[i]) } else { None },
                }
            })
            .collect();
        WeightedOutcome::new(entries)
    }

    fn monte_carlo_mean_var<E: Estimator<WeightedOutcome>>(
        est: &E,
        v: &[f64; 2],
        tau: &[f64; 2],
        trials: usize,
        seed: u64,
    ) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..trials {
            let u = [rng.gen_range(1e-12..1.0), rng.gen_range(1e-12..1.0)];
            let x = est.estimate(&simulate(v, tau, u));
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / trials as f64;
        (mean, sum_sq / trials as f64 - mean * mean)
    }

    #[test]
    fn determining_vector_cases() {
        let tau = [10.0, 8.0];
        // Both sampled.
        let o = simulate(&[6.0, 3.0], &tau, [0.5, 0.3]);
        assert_eq!(o.num_sampled(), 2);
        assert_eq!(MaxLPps2::determining_vector(&o), [6.0, 3.0]);
        // Only entry 1 sampled, bound below v1.
        let o = simulate(&[6.0, 3.0], &tau, [0.5, 0.6]); // u2*tau2 = 4.8 > 3 -> not sampled
        assert_eq!(o.num_sampled(), 1);
        assert_eq!(MaxLPps2::determining_vector(&o), [6.0, 4.8]);
        // Only entry 1 sampled, bound above v1 -> capped at v1.
        let o = simulate(&[6.0, 3.0], &tau, [0.5, 0.9]); // u2*tau2 = 7.2 > 6
        assert_eq!(MaxLPps2::determining_vector(&o), [6.0, 6.0]);
        // Nothing sampled.
        let o = simulate(&[6.0, 3.0], &tau, [0.7, 0.9]);
        assert_eq!(o.num_sampled(), 0);
        assert_eq!(MaxLPps2::determining_vector(&o), [0.0, 0.0]);
    }

    #[test]
    fn ht_pps_is_unbiased_monte_carlo() {
        let tau = [10.0, 10.0];
        for v in &[[5.0f64, 3.0], [2.0, 2.0], [9.0, 0.5], [4.0, 0.0]] {
            let truth = v[0].max(v[1]);
            // The HT estimate is heavy-tailed (a large value with small
            // probability), so this check keeps the full trial count even in
            // debug builds; each trial is just a comparison and a division.
            let (mean, _) = monte_carlo_mean_var(&MaxHtPps, v, &tau, 400_000, 7);
            assert!(
                (mean - truth).abs() / truth.max(1.0) < 0.02,
                "HT biased on {v:?}: {mean} vs {truth}"
            );
        }
    }

    #[test]
    fn max_l_pps2_is_unbiased_monte_carlo() {
        let cases: &[([f64; 2], [f64; 2])] = &[
            ([5.0, 3.0], [10.0, 10.0]),
            ([2.0, 2.0], [10.0, 8.0]),
            ([9.0, 0.5], [10.0, 10.0]),
            ([4.0, 0.0], [10.0, 6.0]),
            ([12.0, 3.0], [10.0, 10.0]), // v1 above tau*: always sampled
            ([7.0, 6.5], [8.0, 6.0]),    // v2 above tau2*
            ([0.5, 0.2], [10.0, 10.0]),  // tiny values, heavy subsampling
        ];
        for (i, (v, tau)) in cases.iter().enumerate() {
            let truth = v[0].max(v[1]);
            let (mean, _) =
                monte_carlo_mean_var(&MaxLPps2, v, tau, trials(600_000), 100 + i as u64);
            assert!(
                (mean - truth).abs() / truth < 0.02,
                "max^L biased on {v:?} tau {tau:?}: {mean} vs {truth}"
            );
        }
    }

    #[test]
    fn max_l_pps2_is_nonnegative_and_monotone_under_information() {
        // Nonnegativity on a grid of outcomes.
        let tau = [10.0, 7.0];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = [rng.gen_range(0.0..12.0), rng.gen_range(0.0..12.0)];
            let u = [rng.gen_range(1e-9..1.0), rng.gen_range(1e-9..1.0)];
            let o = simulate(&v, &tau, u);
            let est = MaxLPps2.estimate(&o);
            assert!(est >= -1e-9, "negative estimate {est} for v={v:?} u={u:?}");
        }
    }

    #[test]
    fn max_l_dominates_ht_in_variance() {
        let tau = [10.0, 10.0];
        for v in &[[5.0, 3.0], [5.0, 5.0], [5.0, 0.0], [2.0, 1.0]] {
            let (_, var_ht) = monte_carlo_mean_var(&MaxHtPps, v, &tau, trials(300_000), 11);
            let (_, var_l) = monte_carlo_mean_var(&MaxLPps2, v, &tau, trials(300_000), 13);
            assert!(
                var_l <= var_ht * 1.05,
                "L variance {var_l} should not exceed HT variance {var_ht} on {v:?}"
            );
        }
    }

    #[test]
    fn variance_ratio_bound_section_5_2() {
        // Section 5.2 claims VAR[HT]/VAR[L] ≥ (1+ρ)/ρ where ρ = max(v)/τ*.
        // For vectors whose entries are similar the measured ratio of the
        // Figure 3 estimator comfortably exceeds that bound; on the extreme
        // vector (ρτ*, 0) the Figure 3 estimator is more variable than the
        // paper's back-of-envelope analysis assumes (see EXPERIMENTS.md), so
        // there we only assert clear dominance over HT (ratio near 2).
        let tau = [10.0, 10.0];
        for v in &[[5.0f64, 2.0], [2.0, 2.0]] {
            let rho: f64 = v[0].max(v[1]) / tau[0];
            let (_, var_ht) = monte_carlo_mean_var(&MaxHtPps, v, &tau, trials(400_000), 21);
            let (_, var_l) = monte_carlo_mean_var(&MaxLPps2, v, &tau, trials(400_000), 23);
            let ratio = var_ht / var_l;
            let bound = (1.0 + rho) / rho;
            assert!(
                ratio > bound * 0.9,
                "ratio {ratio} should be at least about {bound} on {v:?}"
            );
        }
        let (_, var_ht) = monte_carlo_mean_var(&MaxHtPps, &[5.0, 0.0], &tau, trials(400_000), 21);
        let (_, var_l) = monte_carlo_mean_var(&MaxLPps2, &[5.0, 0.0], &tau, trials(400_000), 23);
        let ratio = var_ht / var_l;
        assert!(
            ratio > 1.8,
            "ratio on the extreme vector should stay near 2, got {ratio}"
        );
    }

    #[test]
    fn closed_form_matches_equal_entry_formula() {
        // Equation (25) specializations.
        let (tau1, tau2) = (10.0, 6.0);
        for &v in &[0.5, 2.0, 5.0, 7.0, 12.0] {
            let expected = max_l_pps2_equal_entries(v, tau1, tau2);
            let got = MaxLPps2::closed_form(v, v, tau1, tau2);
            assert!(
                (got - expected).abs() < 1e-9,
                "equal-entry mismatch at v={v}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn deterministic_regime_when_values_exceed_thresholds() {
        // If max(v) ≥ τ* in both instances the maximum is known with certainty
        // and both estimators return it exactly (zero variance).
        let tau = [5.0, 4.0];
        let v = [7.0, 6.0];
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let u = [rng.gen_range(1e-9..1.0), rng.gen_range(1e-9..1.0)];
            let o = simulate(&v, &tau, u);
            assert!((MaxLPps2.estimate(&o) - 7.0).abs() < 1e-9);
            assert!((MaxHtPps.estimate(&o) - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ht_requires_known_seeds() {
        let o = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 10.0,
                seed: None,
                value: Some(3.0),
            },
            WeightedEntry {
                tau_star: 10.0,
                seed: None,
                value: None,
            },
        ]);
        let result = std::panic::catch_unwind(|| MaxHtPps.estimate(&o));
        assert!(result.is_err(), "HT for PPS must require known seeds");
    }

    #[test]
    fn zero_vector_estimates_zero() {
        let o = simulate(&[0.0, 0.0], &[10.0, 10.0], [0.4, 0.6]);
        assert_eq!(MaxHtPps.estimate(&o), 0.0);
        assert_eq!(MaxLPps2.estimate(&o), 0.0);
    }

    #[test]
    fn documented_properties() {
        assert!(MaxHtPps.properties().unbiased);
        assert!(!MaxHtPps.properties().pareto_optimal);
        assert!(MaxLPps2.properties().pareto_optimal);
    }
}
