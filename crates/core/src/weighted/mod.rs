//! Estimators over weighted (PPS) Poisson samples with known seeds
//! (Sections 5 of the paper).
//!
//! "Known seeds" means the hash-generated randomness used for sampling can be
//! recomputed by the estimator, so an unsampled entry still reveals an upper
//! bound on its value.  The paper shows this substantially increases
//! estimation power: the Boolean OR and the maximum admit Pareto-optimal
//! unbiased nonnegative estimators here, while with unknown seeds they admit
//! none at all (see [`crate::negative`]).

pub mod max;
pub mod or;

pub use max::{max_l_pps2_equal_entries, MaxHtPps, MaxLPps2};
pub use or::{
    effective_probabilities, to_oblivious_binary, OrHtKnownSeeds, OrLKnownSeeds,
    OrLKnownSeedsUniform, OrUKnownSeeds,
};
