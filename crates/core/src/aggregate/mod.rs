//! Sum aggregates over selected keys (Sections 7 and 8).
//!
//! Multi-instance queries such as distinct counts, dominance norms and
//! distance measures are sums of per-key primitives over a selected key set.
//! They are estimated by summing the per-key estimators of Sections 4 and 5
//! over the keys present in at least one sample; unbiasedness is preserved by
//! linearity and the relative error shrinks with the aggregate size.

pub mod distinct;
pub mod dominance;

pub use distinct::{
    classify_key, distinct_count_ht, distinct_count_l, distinct_ht_variance, distinct_l_variance,
    required_sample_size_ht, required_sample_size_l, ClassCounts, KeyClass,
};
pub use dominance::{
    l1_distance_estimate, max_dominance_ht, max_dominance_l, min_dominance_ht, sum_aggregate,
    true_l1_distance, true_max_dominance, true_min_dominance,
};
