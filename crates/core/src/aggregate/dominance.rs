//! Dominance norms and distance aggregates over sampled instances
//! (Sections 7 and 8.2).
//!
//! A sum aggregate `Σ_{h ∈ K'} f(v(h))` is estimated by summing per-key
//! estimates over the keys that appear in at least one sample; keys sampled
//! nowhere contribute 0 to every nonnegative estimator.  Because the per-key
//! estimators are unbiased and keys are sampled (conditionally) independently,
//! the aggregate estimate is unbiased and its relative error shrinks as the
//! aggregate grows.
//!
//! This module provides the max-dominance norm `Σ max_i v_i(h)` (the paper's
//! Section 8.2 experiment), the min-dominance norm, and the L1 distance, plus
//! exact ground-truth helpers.

use pie_sampling::{key_union, Instance, InstanceSample, Key, SeedAssignment, WeightedOutcome};

use crate::estimate::Estimator;
use crate::quantile::MinHtWeighted;
use crate::weighted::max::{MaxHtPps, MaxLPps2};

/// Sums a per-key weighted-outcome estimator over all selected keys appearing
/// in at least one of the samples.
///
/// This is the generic sum-aggregate driver of Section 7: any
/// `Estimator<WeightedOutcome>` can be plugged in.
#[must_use]
pub fn sum_aggregate<E, F>(
    estimator: &E,
    samples: &[InstanceSample],
    seeds: &SeedAssignment,
    select: F,
) -> f64
where
    E: Estimator<WeightedOutcome>,
    F: Fn(Key) -> bool,
{
    let keys = pie_sampling::sampled_key_union(samples);
    keys.into_iter()
        .filter(|&k| select(k))
        .map(|k| estimator.estimate(&WeightedOutcome::from_samples(k, samples, seeds)))
        .sum()
}

/// Estimates the max-dominance norm `Σ_h max_i v_i(h)` with the Pareto-optimal
/// `max^(L)` per-key estimator (two instances, PPS samples, known seeds).
#[must_use]
pub fn max_dominance_l<F: Fn(Key) -> bool>(
    samples: &[InstanceSample],
    seeds: &SeedAssignment,
    select: F,
) -> f64 {
    assert_eq!(
        samples.len(),
        2,
        "max^(L) dominance is defined for two instances"
    );
    sum_aggregate(&MaxLPps2, samples, seeds, select)
}

/// Estimates the max-dominance norm with the HT per-key estimator
/// (any number of instances, PPS samples, known seeds).
#[must_use]
pub fn max_dominance_ht<F: Fn(Key) -> bool>(
    samples: &[InstanceSample],
    seeds: &SeedAssignment,
    select: F,
) -> f64 {
    sum_aggregate(&MaxHtPps, samples, seeds, select)
}

/// Estimates the min-dominance norm `Σ_h min_i v_i(h)` with the HT per-key
/// estimator (which is Pareto optimal for the minimum).
#[must_use]
pub fn min_dominance_ht<F: Fn(Key) -> bool>(
    samples: &[InstanceSample],
    seeds: &SeedAssignment,
    select: F,
) -> f64 {
    sum_aggregate(&MinHtWeighted, samples, seeds, select)
}

/// Estimates the L1 distance `Σ_h |v_1(h) − v_2(h)|` as the difference of the
/// max-dominance and min-dominance estimates.
///
/// The estimate is unbiased (difference of unbiased estimates) but — unlike
/// the per-key estimators it is built from — it is *not* guaranteed
/// nonnegative; Section 2.3 shows no nonnegative unbiased range estimator
/// exists over weighted samples without the machinery of the follow-up paper.
#[must_use]
pub fn l1_distance_estimate<F: Fn(Key) -> bool + Copy>(
    samples: &[InstanceSample],
    seeds: &SeedAssignment,
    select: F,
) -> f64 {
    assert_eq!(
        samples.len(),
        2,
        "the L1 distance is defined for two instances"
    );
    max_dominance_l(samples, seeds, select) - min_dominance_ht(samples, seeds, select)
}

// ---------------------------------------------------------------------------
// Ground truth
// ---------------------------------------------------------------------------

/// The exact max-dominance norm of a set of instances over selected keys.
#[must_use]
pub fn true_max_dominance<F: Fn(Key) -> bool>(instances: &[Instance], select: F) -> f64 {
    key_union(instances)
        .into_iter()
        .filter(|&k| select(k))
        .map(|k| {
            instances
                .iter()
                .map(|inst| inst.value(k))
                .fold(0.0, f64::max)
        })
        .sum()
}

/// The exact min-dominance norm of a set of instances over selected keys.
#[must_use]
pub fn true_min_dominance<F: Fn(Key) -> bool>(instances: &[Instance], select: F) -> f64 {
    key_union(instances)
        .into_iter()
        .filter(|&k| select(k))
        .map(|k| {
            instances
                .iter()
                .map(|inst| inst.value(k))
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

/// The exact L1 distance between two instances over selected keys.
#[must_use]
pub fn true_l1_distance<F: Fn(Key) -> bool>(a: &Instance, b: &Instance, select: F) -> f64 {
    key_union(&[a.clone(), b.clone()])
        .into_iter()
        .filter(|&k| select(k))
        .map(|k| (a.value(k) - b.value(k)).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_sampling::{sample_all, PpsPoissonSampler};

    fn example_instances() -> Vec<Instance> {
        // Figure 5 (A): 3 instances × 6 keys; we use the first two instances.
        let i1 = Instance::from_pairs([
            (1, 15.0),
            (2, 0.0),
            (3, 10.0),
            (4, 5.0),
            (5, 10.0),
            (6, 10.0),
        ]);
        let i2 = Instance::from_pairs([
            (1, 20.0),
            (2, 10.0),
            (3, 12.0),
            (4, 20.0),
            (5, 0.0),
            (6, 10.0),
        ]);
        vec![i1, i2]
    }

    #[test]
    fn ground_truth_matches_paper_example() {
        let instances = example_instances();
        // Max dominance over even keys {2,4,6} and instances {1,2} is 10+20+10 = 40.
        let even = |k: Key| k.is_multiple_of(2);
        assert_eq!(true_max_dominance(&instances, even), 40.0);
        // Full max dominance: 20+10+12+20+10+10 = 82.
        assert_eq!(true_max_dominance(&instances, |_| true), 82.0);
        // Min dominance: 15+0+10+5+0+10 = 40.
        assert_eq!(true_min_dominance(&instances, |_| true), 40.0);
        // L1 distance: 5+10+2+15+10+0 = 42.
        assert_eq!(
            true_l1_distance(&instances[0], &instances[1], |_| true),
            42.0
        );
    }

    #[test]
    fn max_dominance_estimators_are_unbiased() {
        // Larger synthetic instances; check the average estimate over many
        // sampling repetitions approaches the truth.
        let i1 = Instance::from_pairs((0..800u64).map(|k| (k, 1.0 + (k % 17) as f64)));
        let i2 = Instance::from_pairs((100..900u64).map(|k| (k, 1.0 + (k % 13) as f64)));
        let instances = vec![i1, i2];
        let truth = true_max_dominance(&instances, |_| true);
        let tau_star = 30.0;
        let reps = 200;
        let (mut sum_l, mut sum_ht) = (0.0, 0.0);
        for salt in 0..reps {
            let seeds = SeedAssignment::independent_known(salt);
            let samples = sample_all(&PpsPoissonSampler::new(tau_star), &instances, &seeds);
            sum_l += max_dominance_l(&samples, &seeds, |_| true);
            sum_ht += max_dominance_ht(&samples, &seeds, |_| true);
        }
        let mean_l = sum_l / reps as f64;
        let mean_ht = sum_ht / reps as f64;
        assert!(
            (mean_l - truth).abs() / truth < 0.05,
            "L bias: {mean_l} vs {truth}"
        );
        assert!(
            (mean_ht - truth).abs() / truth < 0.05,
            "HT bias: {mean_ht} vs {truth}"
        );
    }

    #[test]
    fn l_estimator_has_lower_empirical_variance_than_ht() {
        let i1 = Instance::from_pairs((0..600u64).map(|k| (k, 1.0 + (k % 11) as f64)));
        let i2 = Instance::from_pairs((0..600u64).map(|k| (k, 1.0 + ((k + 3) % 11) as f64)));
        let instances = vec![i1, i2];
        let truth = true_max_dominance(&instances, |_| true);
        let tau_star = 40.0;
        let reps = 300;
        let (mut sq_l, mut sq_ht) = (0.0, 0.0);
        for salt in 0..reps {
            let seeds = SeedAssignment::independent_known(10_000 + salt);
            let samples = sample_all(&PpsPoissonSampler::new(tau_star), &instances, &seeds);
            sq_l += (max_dominance_l(&samples, &seeds, |_| true) - truth).powi(2);
            sq_ht += (max_dominance_ht(&samples, &seeds, |_| true) - truth).powi(2);
        }
        let var_l = sq_l / reps as f64;
        let var_ht = sq_ht / reps as f64;
        assert!(
            var_l < var_ht,
            "Σmax^(L) variance {var_l} should be below Σmax^(HT) variance {var_ht}"
        );
        // The paper reports ratios well above 2 on its traffic data; on this
        // synthetic data we at least expect a clear improvement.
        assert!(var_ht / var_l > 1.5, "ratio {}", var_ht / var_l);
    }

    #[test]
    fn min_dominance_estimator_is_unbiased() {
        let i1 = Instance::from_pairs((0..500u64).map(|k| (k, 2.0 + (k % 7) as f64)));
        let i2 = Instance::from_pairs((0..500u64).map(|k| (k, 2.0 + ((k + 2) % 7) as f64)));
        let instances = vec![i1, i2];
        let truth = true_min_dominance(&instances, |_| true);
        let reps = 300;
        let mut sum = 0.0;
        for salt in 0..reps {
            let seeds = SeedAssignment::independent_known(salt);
            let samples = sample_all(&PpsPoissonSampler::new(25.0), &instances, &seeds);
            sum += min_dominance_ht(&samples, &seeds, |_| true);
        }
        let mean = sum / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "min-dominance bias: {mean} vs {truth}"
        );
    }

    #[test]
    fn l1_distance_estimate_is_unbiased() {
        let i1 = Instance::from_pairs((0..400u64).map(|k| (k, 1.0 + (k % 5) as f64)));
        let i2 = Instance::from_pairs((0..400u64).map(|k| (k, 1.0 + ((k + 1) % 5) as f64)));
        let truth = true_l1_distance(&i1, &i2, |_| true);
        let instances = vec![i1, i2];
        let reps = 400;
        let mut sum = 0.0;
        for salt in 0..reps {
            let seeds = SeedAssignment::independent_known(salt);
            let samples = sample_all(&PpsPoissonSampler::new(20.0), &instances, &seeds);
            sum += l1_distance_estimate(&samples, &seeds, |_| true);
        }
        let mean = sum / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.08,
            "L1 bias: {mean} vs {truth}"
        );
    }

    #[test]
    fn selection_predicates_partition_the_estimate() {
        let instances = example_instances();
        let seeds = SeedAssignment::independent_known(5);
        let samples = sample_all(&PpsPoissonSampler::new(15.0), &instances, &seeds);
        let all = max_dominance_l(&samples, &seeds, |_| true);
        let even = max_dominance_l(&samples, &seeds, |k| k % 2 == 0);
        let odd = max_dominance_l(&samples, &seeds, |k| k % 2 == 1);
        assert!((all - (even + odd)).abs() < 1e-9);
    }

    #[test]
    fn independent_sampling_is_required_for_the_l_estimator() {
        // The Section 5 estimators are derived for *independently* sampled
        // instances.  Feeding them coordinated (shared-seed) samples of
        // identical instances under-estimates the max dominance, because a key
        // is then either sampled in both instances or in neither, while the
        // estimator credits outcomes assuming independent seeds.  This test
        // documents that requirement.
        let inst = Instance::from_pairs((0..500u64).map(|k| (k, 1.0 + (k % 9) as f64)));
        let instances = vec![inst.clone(), inst];
        let truth = true_max_dominance(&instances, |_| true);
        let reps = 200;
        let (mut sum_coord, mut sum_indep) = (0.0, 0.0);
        for salt in 0..reps {
            let shared = SeedAssignment::shared(salt);
            let samples = sample_all(&PpsPoissonSampler::new(20.0), &instances, &shared);
            sum_coord += max_dominance_l(&samples, &shared, |_| true);
            let indep = SeedAssignment::independent_known(salt);
            let samples = sample_all(&PpsPoissonSampler::new(20.0), &instances, &indep);
            sum_indep += max_dominance_l(&samples, &indep, |_| true);
        }
        let mean_coord = sum_coord / reps as f64;
        let mean_indep = sum_indep / reps as f64;
        assert!(
            (mean_indep - truth).abs() / truth < 0.05,
            "independent sampling should be unbiased: {mean_indep} vs {truth}"
        );
        assert!(
            mean_coord < 0.8 * truth,
            "coordinated sampling should visibly break the independence assumption: {mean_coord} vs {truth}"
        );
    }
}
