//! Distinct-count (set-union size) estimation over two independently sampled
//! sets with known seeds (Section 8.1).
//!
//! Two periodic logs each have a set `N_i` of active keys, summarized by
//! Poisson sampling with probability `p_i` and hash-derived seeds.  The number
//! of distinct keys `|(N_1 ∪ N_2) ∩ A|` satisfying a selection predicate `A`
//! is the sum aggregate of `OR` over keys, and is estimated by summing the
//! per-key OR estimators of Section 5.1.
//!
//! Per the paper, sampled keys are first classified by the information
//! available about their membership in the two sets:
//!
//! | class | condition                                     | what is known            |
//! |-------|-----------------------------------------------|--------------------------|
//! | `F1?` | `h ∈ S_1 ∧ u_2(h) > p_2`                      | in `N_1`; `N_2` unknown  |
//! | `F?1` | `h ∈ S_2 ∧ u_1(h) > p_1`                      | in `N_2`; `N_1` unknown  |
//! | `F11` | `h ∈ S_1 ∩ S_2`                               | in both                  |
//! | `F10` | `h ∈ S_1 ∧ u_2(h) < p_2` (and `h ∉ S_2`)      | in `N_1`, not in `N_2`   |
//! | `F01` | `h ∈ S_2 ∧ u_1(h) < p_1` (and `h ∉ S_1`)      | in `N_2`, not in `N_1`   |
//!
//! and then the HT estimator counts only keys whose membership in the union is
//! certain, while the `L` estimator also credits the partially-informative
//! classes.

use pie_sampling::{InstanceSample, Key, SampleScheme, SeedAssignment};

use crate::variance::{or_l_variance_change, or_l_variance_equal};

/// The information class of a sampled key (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyClass {
    /// In `N_1`; membership in `N_2` unknown.
    F1Unknown,
    /// In `N_2`; membership in `N_1` unknown.
    FUnknown1,
    /// In both sets.
    F11,
    /// In `N_1` and certainly not in `N_2`.
    F10,
    /// In `N_2` and certainly not in `N_1`.
    F01,
}

/// The effective sampling probability of a set sample: `min(1, 1/τ*)` for a
/// PPS sample of binary data, or `p` for an explicitly weight-oblivious one.
///
/// # Panics
/// Panics for sample schemes that do not describe per-key Bernoulli sampling
/// of a set (bottom-k samples should be converted by using the `(k+1)`-st
/// rank as the effective threshold, which their `InstanceSample` already does).
#[must_use]
pub fn effective_probability(sample: &InstanceSample) -> f64 {
    match sample.scheme {
        SampleScheme::ObliviousPoisson { p } => p,
        SampleScheme::PpsPoisson { tau_star } => (1.0 / tau_star).min(1.0),
        SampleScheme::BottomK { .. } => sample.inclusion_probability(1.0),
        SampleScheme::VarOpt { .. } => {
            panic!("distinct-count estimators require per-key independent sampling")
        }
    }
}

/// Classifies a key given the two set samples and the seed assignment.
///
/// Returns `None` if the key is in neither sample (no information — such keys
/// contribute 0 to every nonnegative estimator).
#[must_use]
pub fn classify_key(
    key: Key,
    s1: &InstanceSample,
    s2: &InstanceSample,
    seeds: &SeedAssignment,
) -> Option<KeyClass> {
    let p1 = effective_probability(s1);
    let p2 = effective_probability(s2);
    let in1 = s1.contains(key);
    let in2 = s2.contains(key);
    match (in1, in2) {
        (true, true) => Some(KeyClass::F11),
        (true, false) => {
            let u2 = seeds
                .visible_seed(key, s2.instance_index)
                .expect("distinct-count L/HT estimators require known seeds");
            if u2 < p2 {
                Some(KeyClass::F10)
            } else {
                Some(KeyClass::F1Unknown)
            }
        }
        (false, true) => {
            let u1 = seeds
                .visible_seed(key, s1.instance_index)
                .expect("distinct-count L/HT estimators require known seeds");
            if u1 < p1 {
                Some(KeyClass::F01)
            } else {
                Some(KeyClass::FUnknown1)
            }
        }
        (false, false) => None,
    }
}

/// Per-class counts of selected sampled keys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// `|A ∩ F1?|`
    pub f1_unknown: usize,
    /// `|A ∩ F?1|`
    pub funknown_1: usize,
    /// `|A ∩ F11|`
    pub f11: usize,
    /// `|A ∩ F10|`
    pub f10: usize,
    /// `|A ∩ F01|`
    pub f01: usize,
}

impl ClassCounts {
    /// Tallies the classes of all keys appearing in either sample and passing
    /// the selection predicate.
    #[must_use]
    pub fn tally<F: Fn(Key) -> bool>(
        s1: &InstanceSample,
        s2: &InstanceSample,
        seeds: &SeedAssignment,
        select: F,
    ) -> Self {
        let mut counts = Self::default();
        let mut keys: Vec<Key> = s1
            .iter()
            .map(|(k, _)| k)
            .chain(s2.iter().map(|(k, _)| k))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            if !select(key) {
                continue;
            }
            match classify_key(key, s1, s2, seeds) {
                Some(KeyClass::F1Unknown) => counts.f1_unknown += 1,
                Some(KeyClass::FUnknown1) => counts.funknown_1 += 1,
                Some(KeyClass::F11) => counts.f11 += 1,
                Some(KeyClass::F10) => counts.f10 += 1,
                Some(KeyClass::F01) => counts.f01 += 1,
                None => {}
            }
        }
        counts
    }

    /// Total number of classified (i.e. sampled and selected) keys.
    #[must_use]
    pub fn total(&self) -> usize {
        self.f1_unknown + self.funknown_1 + self.f11 + self.f10 + self.f01
    }
}

/// The HT distinct-count estimate `|A ∩ (F11 ∪ F10 ∪ F01)| / (p_1 p_2)`
/// (Section 8.1).
#[must_use]
pub fn distinct_count_ht<F: Fn(Key) -> bool>(
    s1: &InstanceSample,
    s2: &InstanceSample,
    seeds: &SeedAssignment,
    select: F,
) -> f64 {
    let p1 = effective_probability(s1);
    let p2 = effective_probability(s2);
    let counts = ClassCounts::tally(s1, s2, seeds, select);
    (counts.f11 + counts.f10 + counts.f01) as f64 / (p1 * p2)
}

/// The `L` distinct-count estimate (Section 8.1):
///
/// ```text
/// |A ∩ (F1? ∪ F?1 ∪ F11)| / (p1+p2−p1p2)
///   + |A ∩ F10| / (p1 (p1+p2−p1p2))
///   + |A ∩ F01| / (p2 (p1+p2−p1p2))
/// ```
#[must_use]
pub fn distinct_count_l<F: Fn(Key) -> bool>(
    s1: &InstanceSample,
    s2: &InstanceSample,
    seeds: &SeedAssignment,
    select: F,
) -> f64 {
    let p1 = effective_probability(s1);
    let p2 = effective_probability(s2);
    let p_any = p1 + p2 - p1 * p2;
    let counts = ClassCounts::tally(s1, s2, seeds, select);
    (counts.f1_unknown + counts.funknown_1 + counts.f11) as f64 / p_any
        + counts.f10 as f64 / (p1 * p_any)
        + counts.f01 as f64 / (p2 * p_any)
}

// ---------------------------------------------------------------------------
// Variance and sample-size planning (Section 8.1 / Figure 6)
// ---------------------------------------------------------------------------

/// `VAR[D̂^(HT)_A] = |D_A| (1/(p_1 p_2) − 1)`.
#[must_use]
pub fn distinct_ht_variance(distinct: f64, p1: f64, p2: f64) -> f64 {
    distinct * (1.0 / (p1 * p2) - 1.0)
}

/// `VAR[D̂^(L)_A] = |D_A| ( J·VAR[OR^(L)|(1,1)] + (1−J)·VAR[OR^(L)|(1,0)] )`
/// where `J` is the Jaccard coefficient of the two selected sets.
#[must_use]
pub fn distinct_l_variance(distinct: f64, jaccard: f64, p1: f64, p2: f64) -> f64 {
    assert!((0.0..=1.0).contains(&jaccard), "Jaccard must be in [0,1]");
    distinct
        * (jaccard * or_l_variance_equal(p1, p2) + (1.0 - jaccard) * or_l_variance_change(p1, p2))
}

/// Coefficient of variation of the HT distinct-count estimator for union size
/// `n_union` and sampling probability `p = p_1 = p_2`.
#[must_use]
pub fn distinct_ht_cv(n_union: f64, p: f64) -> f64 {
    (distinct_ht_variance(n_union, p, p)).sqrt() / n_union
}

/// Coefficient of variation of the L distinct-count estimator.
#[must_use]
pub fn distinct_l_cv(n_union: f64, jaccard: f64, p: f64) -> f64 {
    (distinct_l_variance(n_union, jaccard, p, p)).sqrt() / n_union
}

/// The smallest sampling probability `p` at which an estimator's coefficient
/// of variation drops to `cv_target`, found by bisection of a monotone
/// CV-vs-p function.  Returns 1.0 if even full sampling misses the target
/// (it never does for these estimators: at `p = 1` the CV is 0).
fn solve_probability<F: Fn(f64) -> f64>(cv_of_p: F, cv_target: f64) -> f64 {
    let mut lo = 1e-9;
    let mut hi = 1.0;
    if cv_of_p(hi) > cv_target {
        return 1.0;
    }
    if cv_of_p(lo) <= cv_target {
        return lo;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cv_of_p(mid) > cv_target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Figure 6: the expected per-instance sample size (`p · n`) needed by the HT
/// estimator to reach coefficient of variation `cv_target`, when both sets
/// have `n` keys and Jaccard coefficient `jaccard`.
#[must_use]
pub fn required_sample_size_ht(n: f64, jaccard: f64, cv_target: f64) -> f64 {
    let n_union = 2.0 * n / (1.0 + jaccard);
    let p = solve_probability(|p| distinct_ht_cv(n_union, p), cv_target);
    p * n
}

/// Figure 6: the expected per-instance sample size (`p · n`) needed by the L
/// estimator to reach coefficient of variation `cv_target`.
#[must_use]
pub fn required_sample_size_l(n: f64, jaccard: f64, cv_target: f64) -> f64 {
    let n_union = 2.0 * n / (1.0 + jaccard);
    let p = solve_probability(|p| distinct_l_cv(n_union, jaccard, p), cv_target);
    p * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Estimator;
    use crate::weighted::or::OrLKnownSeeds;
    use pie_sampling::{Instance, PpsPoissonSampler, WeightedOutcome};

    /// Builds two set instances with |N1| = |N2| = n and the given overlap.
    fn set_pair(n: u64, overlap: u64) -> (Instance, Instance) {
        // Keys 0..overlap shared; N1 also has [overlap, n); N2 has [n, 2n-overlap).
        let n1 = Instance::from_pairs((0..n).map(|k| (k, 1.0)));
        let n2 = Instance::from_pairs((0..overlap).chain(n..(2 * n - overlap)).map(|k| (k, 1.0)));
        (n1, n2)
    }

    fn sample_sets(
        n1: &Instance,
        n2: &Instance,
        p: f64,
        salt: u64,
    ) -> (InstanceSample, InstanceSample, SeedAssignment) {
        let seeds = SeedAssignment::independent_known(salt);
        let sampler = PpsPoissonSampler::new(1.0 / p);
        (
            sampler.sample(n1, &seeds, 0),
            sampler.sample(n2, &seeds, 1),
            seeds,
        )
    }

    #[test]
    fn classification_covers_all_sampled_keys() {
        let (n1, n2) = set_pair(500, 200);
        let (s1, s2, seeds) = sample_sets(&n1, &n2, 0.4, 7);
        let counts = ClassCounts::tally(&s1, &s2, &seeds, |_| true);
        let sampled_union = {
            let mut ks: Vec<Key> = s1
                .iter()
                .map(|(k, _)| k)
                .chain(s2.iter().map(|(k, _)| k))
                .collect();
            ks.sort_unstable();
            ks.dedup();
            ks.len()
        };
        assert_eq!(counts.total(), sampled_union);
    }

    #[test]
    fn estimators_are_unbiased_over_repetitions() {
        let (n1, n2) = set_pair(400, 100);
        let truth = 2.0 * 400.0 - 100.0; // |union|
        let p = 0.3;
        let reps = 300;
        let (mut sum_ht, mut sum_l) = (0.0, 0.0);
        for salt in 0..reps {
            let (s1, s2, seeds) = sample_sets(&n1, &n2, p, salt);
            sum_ht += distinct_count_ht(&s1, &s2, &seeds, |_| true);
            sum_l += distinct_count_l(&s1, &s2, &seeds, |_| true);
        }
        let mean_ht = sum_ht / reps as f64;
        let mean_l = sum_l / reps as f64;
        assert!(
            (mean_ht - truth).abs() / truth < 0.05,
            "HT bias: {mean_ht} vs {truth}"
        );
        assert!(
            (mean_l - truth).abs() / truth < 0.05,
            "L bias: {mean_l} vs {truth}"
        );
    }

    #[test]
    fn l_estimate_equals_sum_of_per_key_or_estimates() {
        // The counting form must agree with summing the per-key OR^(L)
        // estimator over the union of sampled keys.
        let (n1, n2) = set_pair(300, 120);
        let p = 0.35;
        let (s1, s2, seeds) = sample_sets(&n1, &n2, p, 42);
        let by_counting = distinct_count_l(&s1, &s2, &seeds, |_| true);
        let mut keys: Vec<Key> = s1
            .iter()
            .map(|(k, _)| k)
            .chain(s2.iter().map(|(k, _)| k))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let by_summing: f64 = keys
            .iter()
            .map(|&k| {
                let o = WeightedOutcome::from_samples(k, &[s1.clone(), s2.clone()], &seeds);
                OrLKnownSeeds.estimate(&o)
            })
            .sum();
        assert!(
            (by_counting - by_summing).abs() < 1e-6,
            "counting {by_counting} vs per-key sum {by_summing}"
        );
    }

    #[test]
    fn selection_predicate_restricts_the_estimate() {
        let (n1, n2) = set_pair(400, 100);
        let p = 0.5;
        let (s1, s2, seeds) = sample_sets(&n1, &n2, p, 3);
        let all = distinct_count_l(&s1, &s2, &seeds, |_| true);
        let even = distinct_count_l(&s1, &s2, &seeds, |k| k % 2 == 0);
        let odd = distinct_count_l(&s1, &s2, &seeds, |k| k % 2 == 1);
        assert!((all - (even + odd)).abs() < 1e-9);
        assert!(even > 0.0 && odd > 0.0);
    }

    #[test]
    fn l_variance_is_lower_than_ht_variance_in_practice() {
        let (n1, n2) = set_pair(400, 200);
        let truth = 600.0;
        let p = 0.2;
        let reps = 400;
        let (mut ht_sq, mut l_sq) = (0.0, 0.0);
        for salt in 1000..(1000 + reps) {
            let (s1, s2, seeds) = sample_sets(&n1, &n2, p, salt);
            ht_sq += (distinct_count_ht(&s1, &s2, &seeds, |_| true) - truth).powi(2);
            l_sq += (distinct_count_l(&s1, &s2, &seeds, |_| true) - truth).powi(2);
        }
        let var_ht = ht_sq / reps as f64;
        let var_l = l_sq / reps as f64;
        assert!(
            var_l < var_ht,
            "L variance {var_l} should be below HT variance {var_ht}"
        );
        // And the analytic prediction should be in the right ballpark.
        let jaccard = 200.0 / 600.0;
        let pred_ht = distinct_ht_variance(truth, p, p);
        let pred_l = distinct_l_variance(truth, jaccard, p, p);
        assert!(
            (var_ht / pred_ht - 1.0).abs() < 0.35,
            "{var_ht} vs {pred_ht}"
        );
        assert!((var_l / pred_l - 1.0).abs() < 0.35, "{var_l} vs {pred_l}");
    }

    #[test]
    fn sample_size_planning_matches_asymptotics() {
        // Section 8.1: for small p the L estimator needs about √(1−J)/2 times
        // the HT sample size.
        let n = 1e7;
        let cv = 0.1;
        for &j in &[0.0, 0.5, 0.9] {
            let s_ht = required_sample_size_ht(n, j, cv);
            let s_l = required_sample_size_l(n, j, cv);
            let ratio = s_l / s_ht;
            let expected = (1.0 - j).sqrt() / 2.0;
            assert!(
                (ratio - expected).abs() < 0.12,
                "J={j}: ratio {ratio} vs expected ≈ {expected}"
            );
            assert!(s_l <= s_ht, "L must never need more samples than HT");
        }
    }

    #[test]
    fn sample_size_for_identical_sets_is_tiny() {
        // J = 1: Θ(1) samples suffice for a fixed CV once p > (1−J)/(2J) = 0.
        let s_l = required_sample_size_l(1e8, 1.0, 0.1);
        let s_ht = required_sample_size_ht(1e8, 1.0, 0.1);
        assert!(s_l < 0.01 * s_ht, "L: {s_l}, HT: {s_ht}");
    }

    #[test]
    fn cv_decreases_with_p() {
        let n_union = 1e6;
        assert!(distinct_ht_cv(n_union, 0.2) < distinct_ht_cv(n_union, 0.1));
        assert!(distinct_l_cv(n_union, 0.5, 0.2) < distinct_l_cv(n_union, 0.5, 0.1));
    }
}
