//! Estimators for `max(v)` under weight-oblivious Poisson sampling (Section 4).
//!
//! Entry `i` of the value vector is sampled independently with probability
//! `p_i`, regardless of its value.  Three families of estimators are provided:
//!
//! * [`MaxHtOblivious`] — the inverse-probability (HT) baseline: positive only
//!   when *every* entry is sampled.
//! * [`MaxL2`] / [`MaxLUniform`] — the paper's `max^(L)` estimator
//!   (Section 4.1), order-optimal with respect to an order that prioritizes
//!   *dense* vectors (entries close to the maximum).  `MaxL2` is the explicit
//!   two-instance form with arbitrary probabilities; `MaxLUniform` implements
//!   Algorithm 3 (Theorem 4.2) for any number of instances with a uniform
//!   sampling probability, with coefficients computed in `O(r²)`.
//! * [`MaxU2`] / [`MaxU2Asymmetric`] — the paper's `max^(U)` estimators
//!   (Section 4.2), locally optimal for an ordered partition that prioritizes
//!   *sparse* vectors (few positive entries).  The symmetric variant is the
//!   one plotted in Figure 1; the asymmetric one illustrates the
//!   order-sensitivity of the `f̂^(+≺)` construction.
//!
//! All estimators consume an [`ObliviousOutcome`].

use pie_sampling::{ObliviousLanes, ObliviousOutcome};

use crate::estimate::{DocumentedEstimator, Estimator, EstimatorProperties, LANE_BLOCK};

/// Extracts the two-instance view (p, value) pairs from an outcome.
///
/// # Panics
/// Panics if the outcome does not have exactly two entries.
fn two_entries(outcome: &ObliviousOutcome) -> [(f64, Option<f64>); 2] {
    assert_eq!(
        outcome.num_instances(),
        2,
        "this estimator is defined for exactly two instances, got {}",
        outcome.num_instances()
    );
    [
        (outcome.entries[0].p, outcome.entries[0].value),
        (outcome.entries[1].p, outcome.entries[1].value),
    ]
}

/// The Horvitz–Thompson (inverse-probability) estimator for `max(v)` over
/// weight-oblivious Poisson samples, for any number of instances.
///
/// `max^(HT)` is positive only on outcomes where every entry is sampled
/// (`S = [r]`), in which case it equals `max(v) / ∏_i p_i`; it is unbiased,
/// nonnegative and monotone, but *not* Pareto optimal — it ignores the partial
/// information carried by outcomes that sample only some entries
/// (Section 2.2, Equation (10)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxHtOblivious;

impl Estimator<ObliviousOutcome> for MaxHtOblivious {
    fn estimate(&self, outcome: &ObliviousOutcome) -> f64 {
        if outcome.all_sampled() {
            let max = outcome.max_sampled().unwrap_or(0.0);
            max / outcome.all_sampled_probability()
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "max_ht_oblivious"
    }

    /// Lane-kernel hot path: one fused blocked pass over the
    /// struct-of-arrays lanes accumulating the probability product, running
    /// maximum, and all-sampled mask per outcome, with no per-outcome
    /// branches.  Accumulation order matches [`estimate`](Self::estimate)
    /// exactly (the iterator `product` starts from `1.0`, which is exact
    /// under f64 multiplication), so results are bit-identical; the product
    /// and maximum of a not-all-sampled outcome are computed speculatively
    /// and discarded by the mask select.  Presence lanes hold exactly `0.0`
    /// or `1.0`, so `> 0.0` is the same test as `!= 0.0` but compiles to the
    /// comparison form the vectorizer's cost model prefers.
    fn estimate_lanes(&self, lanes: &ObliviousLanes, out: &mut [f64]) {
        crate::estimate::check_lanes_len(lanes.len(), out);
        let r = lanes.num_instances();
        let len = lanes.len();
        if r == 0 {
            out.fill(0.0);
            return;
        }
        let mut prod = [0.0f64; LANE_BLOCK];
        let mut max = [0.0f64; LANE_BLOCK];
        let mut all = [true; LANE_BLOCK];
        let mut start = 0usize;
        while start < len {
            let n = LANE_BLOCK.min(len - start);
            let p0 = &lanes.p_lane(0)[start..start + n];
            let v0 = &lanes.value_lane(0)[start..start + n];
            let s0 = &lanes.present_lane(0)[start..start + n];
            for i in 0..n {
                prod[i] = p0[i];
                max[i] = v0[i];
                all[i] = s0[i] > 0.0;
            }
            for j in 1..r {
                let pj = &lanes.p_lane(j)[start..start + n];
                let vj = &lanes.value_lane(j)[start..start + n];
                let sj = &lanes.present_lane(j)[start..start + n];
                for i in 0..n {
                    prod[i] *= pj[i];
                    max[i] = max[i].max(vj[i]);
                    all[i] &= sj[i] > 0.0;
                }
            }
            let o = &mut out[start..start + n];
            for i in 0..n {
                o[i] = if all[i] { max[i] / prod[i] } else { 0.0 };
            }
            start += n;
        }
    }
}

impl DocumentedEstimator<ObliviousOutcome> for MaxHtOblivious {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::ht()
    }
}

/// The `max^(L)` estimator for two instances with arbitrary sampling
/// probabilities `p_1, p_2` (Section 4.1).
///
/// Derived with Algorithm 1 from the order that places vectors whose entries
/// are all close to the maximum first; it is Pareto optimal, monotone,
/// nonnegative, and dominates [`MaxHtOblivious`] (Lemma 4.1).  It has its
/// lowest variance when the two entries are similar ("no change" data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxL2 {
    p1: f64,
    p2: f64,
}

impl MaxL2 {
    /// Creates the estimator for inclusion probabilities `p1, p2 ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if either probability lies outside `(0, 1]`.
    #[must_use]
    pub fn new(p1: f64, p2: f64) -> Self {
        assert!(p1 > 0.0 && p1 <= 1.0, "p1 must be in (0,1], got {p1}");
        assert!(p2 > 0.0 && p2 <= 1.0, "p2 must be in (0,1], got {p2}");
        Self { p1, p2 }
    }

    /// Probability that at least one entry is sampled, `p_1 + p_2 − p_1 p_2`.
    #[must_use]
    pub fn p_any(&self) -> f64 {
        self.p1 + self.p2 - self.p1 * self.p2
    }
}

impl Estimator<ObliviousOutcome> for MaxL2 {
    fn estimate(&self, outcome: &ObliviousOutcome) -> f64 {
        let [(_, e1), (_, e2)] = two_entries(outcome);
        let (p1, p2) = (self.p1, self.p2);
        let p_any = self.p_any();
        match (e1, e2) {
            (None, None) => 0.0,
            (Some(v1), None) => v1 / p_any,
            (None, Some(v2)) => v2 / p_any,
            (Some(v1), Some(v2)) => {
                v1.max(v2) / (p1 * p2) - ((1.0 / p2 - 1.0) * v1 + (1.0 / p1 - 1.0) * v2) / p_any
            }
        }
    }

    fn name(&self) -> &'static str {
        "max_l_2"
    }

    /// Lane-kernel hot path with the per-call setup — `p_any`, `p₁p₂`, and
    /// the two reciprocal coefficients (each a division) — hoisted out of the
    /// loop.  Every expression is written exactly as in
    /// [`estimate`](Self::estimate) (hoisting reuses the identical float
    /// subexpressions), so the results are bit-identical; the four presence
    /// cases become a select chain that LLVM if-converts, and the single
    /// full-length loop is the shape its loop vectorizer takes.
    fn estimate_lanes(&self, lanes: &ObliviousLanes, out: &mut [f64]) {
        crate::estimate::check_lanes_len(lanes.len(), out);
        if lanes.is_empty() {
            // An empty batch has no outcomes to assert the instance count on.
            return;
        }
        assert_eq!(
            lanes.num_instances(),
            2,
            "this estimator is defined for exactly two instances, got {}",
            lanes.num_instances()
        );
        let (p1, p2) = (self.p1, self.p2);
        let p_any = self.p_any();
        let p12 = p1 * p2;
        let c1 = 1.0 / p2 - 1.0;
        let c2 = 1.0 / p1 - 1.0;
        let len = lanes.len();
        let v1 = &lanes.value_lane(0)[..len];
        let v2 = &lanes.value_lane(1)[..len];
        let s1 = &lanes.present_lane(0)[..len];
        let s2 = &lanes.present_lane(1)[..len];
        for i in 0..len {
            let both = v1[i].max(v2[i]) / p12 - (c1 * v1[i] + c2 * v2[i]) / p_any;
            out[i] = if s1[i] > 0.0 {
                if s2[i] > 0.0 {
                    both
                } else {
                    v1[i] / p_any
                }
            } else if s2[i] > 0.0 {
                v2[i] / p_any
            } else {
                0.0
            };
        }
    }
}

impl DocumentedEstimator<ObliviousOutcome> for MaxL2 {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

/// The symmetric `max^(U)` estimator for two instances (Section 4.2).
///
/// Derived with Algorithm 2 from the ordered partition by number of positive
/// entries; it prioritizes *sparse* vectors and has its lowest variance when
/// one of the entries is zero.  Pareto optimal, nonnegative, dominates
/// [`MaxHtOblivious`]; incomparable with [`MaxL2`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxU2 {
    p1: f64,
    p2: f64,
}

impl MaxU2 {
    /// Creates the estimator for inclusion probabilities `p1, p2 ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if either probability lies outside `(0, 1]`.
    #[must_use]
    pub fn new(p1: f64, p2: f64) -> Self {
        assert!(p1 > 0.0 && p1 <= 1.0, "p1 must be in (0,1], got {p1}");
        assert!(p2 > 0.0 && p2 <= 1.0, "p2 must be in (0,1], got {p2}");
        Self { p1, p2 }
    }

    /// The slack term `max{0, 1 − p_1 − p_2}` appearing in the estimator.
    #[must_use]
    pub fn slack(&self) -> f64 {
        (1.0 - self.p1 - self.p2).max(0.0)
    }
}

impl Estimator<ObliviousOutcome> for MaxU2 {
    fn estimate(&self, outcome: &ObliviousOutcome) -> f64 {
        let [(_, e1), (_, e2)] = two_entries(outcome);
        let (p1, p2) = (self.p1, self.p2);
        let denom = 1.0 + self.slack();
        match (e1, e2) {
            (None, None) => 0.0,
            (Some(v1), None) => v1 / (p1 * denom),
            (None, Some(v2)) => v2 / (p2 * denom),
            (Some(v1), Some(v2)) => {
                (v1.max(v2) - (v1 * (1.0 - p2) + v2 * (1.0 - p1)) / denom) / (p1 * p2)
            }
        }
    }

    fn name(&self) -> &'static str {
        "max_u_2"
    }

    /// Lane-kernel hot path with the per-call setup (`denom`, `p₁p₂`, and
    /// the per-branch products) hoisted out of the loop; expressions
    /// match [`estimate`](Self::estimate) exactly, so results are
    /// bit-identical; the four presence cases become a select chain that
    /// LLVM if-converts, and the single full-length loop is the shape its
    /// loop vectorizer takes.
    fn estimate_lanes(&self, lanes: &ObliviousLanes, out: &mut [f64]) {
        crate::estimate::check_lanes_len(lanes.len(), out);
        if lanes.is_empty() {
            // An empty batch has no outcomes to assert the instance count on.
            return;
        }
        assert_eq!(
            lanes.num_instances(),
            2,
            "this estimator is defined for exactly two instances, got {}",
            lanes.num_instances()
        );
        let (p1, p2) = (self.p1, self.p2);
        let denom = 1.0 + self.slack();
        let d1 = p1 * denom;
        let d2 = p2 * denom;
        let p12 = p1 * p2;
        let len = lanes.len();
        let v1 = &lanes.value_lane(0)[..len];
        let v2 = &lanes.value_lane(1)[..len];
        let s1 = &lanes.present_lane(0)[..len];
        let s2 = &lanes.present_lane(1)[..len];
        for i in 0..len {
            let both = (v1[i].max(v2[i]) - (v1[i] * (1.0 - p2) + v2[i] * (1.0 - p1)) / denom) / p12;
            out[i] = if s1[i] > 0.0 {
                if s2[i] > 0.0 {
                    both
                } else {
                    v1[i] / d1
                }
            } else if s2[i] > 0.0 {
                v2[i] / d2
            } else {
                0.0
            };
        }
    }
}

impl DocumentedEstimator<ObliviousOutcome> for MaxU2 {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

/// The *asymmetric* `max^(Uas)` estimator for two instances (Section 4.2).
///
/// Produced by running the nonnegativity-constrained order-based construction
/// `f̂^(+≺)` with vectors of the form `(v, 0)` processed before `(0, v)`.  It
/// is Pareto optimal but treats the two instances asymmetrically; it is
/// provided to reproduce the paper's illustration of why the ordered-partition
/// construction (Algorithm 2) is needed to recover symmetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxU2Asymmetric {
    p1: f64,
    p2: f64,
}

impl MaxU2Asymmetric {
    /// Creates the estimator for inclusion probabilities `p1, p2 ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if either probability lies outside `(0, 1]`.
    #[must_use]
    pub fn new(p1: f64, p2: f64) -> Self {
        assert!(p1 > 0.0 && p1 <= 1.0, "p1 must be in (0,1], got {p1}");
        assert!(p2 > 0.0 && p2 <= 1.0, "p2 must be in (0,1], got {p2}");
        Self { p1, p2 }
    }
}

impl Estimator<ObliviousOutcome> for MaxU2Asymmetric {
    fn estimate(&self, outcome: &ObliviousOutcome) -> f64 {
        let [(_, e1), (_, e2)] = two_entries(outcome);
        let (p1, p2) = (self.p1, self.p2);
        let d = (1.0 - p1).max(p2);
        match (e1, e2) {
            (None, None) => 0.0,
            (Some(v1), None) => v1 / p1,
            (None, Some(v2)) => v2 / d,
            (Some(v1), Some(v2)) => {
                (v1.max(v2) - p2 * (1.0 - p1) / d * v2 - (1.0 - p2) * v1) / (p1 * p2)
            }
        }
    }

    fn name(&self) -> &'static str {
        "max_u_2_asymmetric"
    }
}

impl DocumentedEstimator<ObliviousOutcome> for MaxU2Asymmetric {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

/// The `max^(L)` estimator for `r ≥ 2` instances with a *uniform* sampling
/// probability `p` (Algorithm 3 / Theorem 4.2).
///
/// The estimate is a fixed linear combination `Σ_i α_i u_i` of the sorted
/// determining vector `u` of the outcome (sampled values sorted
/// non-increasing, with every unsampled entry imputed as the largest sampled
/// value).  The coefficients are computed once, in `O(r²)`, from the paper's
/// triangular recursion on the prefix sums `A_h`.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxLUniform {
    r: usize,
    p: f64,
    /// Coefficients α_1, …, α_r of the sorted determining vector.
    alpha: Vec<f64>,
    /// Prefix sums A_1, …, A_r (A_h = Σ_{i≤h} α_i), kept for inspection/tests.
    prefix: Vec<f64>,
}

impl MaxLUniform {
    /// Creates the estimator for `r ≥ 2` instances sampled with uniform
    /// probability `p ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if `r < 2` or `p` lies outside `(0, 1]`.
    #[must_use]
    pub fn new(r: usize, p: f64) -> Self {
        assert!(r >= 2, "max^(L) needs at least two instances, got r={r}");
        assert!(p > 0.0 && p <= 1.0, "p must be in (0,1], got {p}");
        let prefix = Self::prefix_sums(r, p);
        let mut alpha = vec![0.0; r];
        alpha[0] = prefix[0];
        for h in 1..r {
            alpha[h] = prefix[h] - prefix[h - 1];
        }
        Self {
            r,
            p,
            alpha,
            prefix,
        }
    }

    /// The prefix sums `A_1, …, A_r` of Theorem 4.2 (`prefix[h-1]` is `A_h`).
    ///
    /// `A_r = 1 / (1 − (1−p)^r)` and, for `k = 0, …, r−2`,
    ///
    /// ```text
    /// A_{r−k−1} = ( A_{r−k} + Σ_{ℓ=1}^{k} C(k,ℓ) ((1−p)/p)^ℓ ·
    ///               (A_{r−k+ℓ} − (1 − (1−p)^{r−k−1}) A_{r−k+ℓ−1}) )
    ///             / (1 − (1−p)^{r−k−1})
    /// ```
    fn prefix_sums(r: usize, p: f64) -> Vec<f64> {
        let q = 1.0 - p;
        let mut a = vec![0.0; r + 1]; // a[h] = A_h for h = 1..=r; a[0] unused
        a[r] = 1.0 / (1.0 - q.powi(r as i32));
        for k in 0..=(r.saturating_sub(2)) {
            if r < k + 2 {
                break;
            }
            let target = r - k - 1; // computing A_{r-k-1}
            let denom = 1.0 - q.powi(target as i32);
            let mut t = 0.0;
            let mut binom = 1.0f64; // C(k, l) built incrementally
            for l in 1..=k {
                binom = binom * (k - l + 1) as f64 / l as f64;
                let factor = (q / p).powi(l as i32);
                t += binom * factor * (a[r - k + l] - denom * a[r - k + l - 1]);
            }
            a[target] = (a[r - k] + t) / denom;
        }
        a.remove(0);
        a
    }

    /// The number of instances `r`.
    #[must_use]
    pub fn r(&self) -> usize {
        self.r
    }

    /// The uniform sampling probability `p`.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The coefficients `α_1, …, α_r` applied to the sorted determining vector.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.alpha
    }

    /// The prefix sums `A_1, …, A_r`.
    #[must_use]
    pub fn prefix_sums_slice(&self) -> &[f64] {
        &self.prefix
    }

    /// Applies the estimator to a multiset of sampled values (the values of
    /// the sampled entries, in any order).  Returns 0 for an empty sample.
    ///
    /// # Panics
    /// Panics if more than `r` values are supplied.
    #[must_use]
    pub fn estimate_from_sampled_values(&self, sampled: &[f64]) -> f64 {
        assert!(
            sampled.len() <= self.r,
            "got {} sampled values for r = {}",
            sampled.len(),
            self.r
        );
        if sampled.is_empty() {
            return 0.0;
        }
        let mut z = sampled.to_vec();
        z.sort_by(|a, b| b.partial_cmp(a).expect("values must not be NaN"));
        let top = z[0];
        let missing = self.r - z.len();
        // Sorted determining vector: `missing` copies of the top value,
        // followed by the sorted sampled values.
        let mut estimate = 0.0;
        for (i, &alpha) in self.alpha.iter().enumerate() {
            let u = if i < missing { top } else { z[i - missing] };
            estimate += alpha * u;
        }
        estimate
    }
}

impl Estimator<ObliviousOutcome> for MaxLUniform {
    fn estimate(&self, outcome: &ObliviousOutcome) -> f64 {
        assert_eq!(
            outcome.num_instances(),
            self.r,
            "outcome has {} instances, estimator was built for {}",
            outcome.num_instances(),
            self.r
        );
        let sampled: Vec<f64> = outcome.entries.iter().filter_map(|e| e.value).collect();
        self.estimate_from_sampled_values(&sampled)
    }

    fn name(&self) -> &'static str {
        "max_l_uniform"
    }
}

impl DocumentedEstimator<ObliviousOutcome> for MaxLUniform {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_sampling::ObliviousEntry;

    /// Enumerates all 2^r outcomes of weight-oblivious Poisson sampling of the
    /// data vector `v` with probabilities `p`, returning `(probability, outcome)`.
    fn enumerate_outcomes(v: &[f64], p: &[f64]) -> Vec<(f64, ObliviousOutcome)> {
        let r = v.len();
        let mut out = Vec::with_capacity(1 << r);
        for mask in 0u32..(1 << r) {
            let mut prob = 1.0;
            let mut entries = Vec::with_capacity(r);
            for i in 0..r {
                let sampled = mask & (1 << i) != 0;
                prob *= if sampled { p[i] } else { 1.0 - p[i] };
                entries.push(ObliviousEntry {
                    p: p[i],
                    value: if sampled { Some(v[i]) } else { None },
                });
            }
            out.push((prob, ObliviousOutcome::new(entries)));
        }
        out
    }

    fn expectation<E: Estimator<ObliviousOutcome>>(est: &E, v: &[f64], p: &[f64]) -> f64 {
        enumerate_outcomes(v, p)
            .iter()
            .map(|(prob, o)| prob * est.estimate(o))
            .sum()
    }

    fn variance<E: Estimator<ObliviousOutcome>>(est: &E, v: &[f64], p: &[f64]) -> f64 {
        let mean = expectation(est, v, p);
        enumerate_outcomes(v, p)
            .iter()
            .map(|(prob, o)| {
                let x = est.estimate(o);
                prob * (x - mean) * (x - mean)
            })
            .sum()
    }

    fn max_of(v: &[f64]) -> f64 {
        v.iter().copied().fold(0.0, f64::max)
    }

    const DATA_2: &[[f64; 2]] = &[
        [0.0, 0.0],
        [1.0, 0.0],
        [0.0, 1.0],
        [1.0, 1.0],
        [3.0, 1.0],
        [1.0, 3.0],
        [5.0, 5.0],
        [10.0, 0.1],
    ];

    #[test]
    fn ht_is_unbiased_r2() {
        for &[v1, v2] in DATA_2 {
            for &(p1, p2) in &[(0.5, 0.5), (0.3, 0.8), (0.1, 0.9)] {
                let e = expectation(&MaxHtOblivious, &[v1, v2], &[p1, p2]);
                assert!(
                    (e - max_of(&[v1, v2])).abs() < 1e-10,
                    "bias for ({v1},{v2})"
                );
            }
        }
    }

    #[test]
    fn max_l2_is_unbiased() {
        for &[v1, v2] in DATA_2 {
            for &(p1, p2) in &[(0.5, 0.5), (0.3, 0.8), (0.1, 0.9), (0.25, 0.25)] {
                let est = MaxL2::new(p1, p2);
                let e = expectation(&est, &[v1, v2], &[p1, p2]);
                assert!(
                    (e - max_of(&[v1, v2])).abs() < 1e-10,
                    "bias for ({v1},{v2}) p=({p1},{p2}): {e}"
                );
            }
        }
    }

    #[test]
    fn max_u2_is_unbiased() {
        for &[v1, v2] in DATA_2 {
            for &(p1, p2) in &[(0.5, 0.5), (0.3, 0.8), (0.1, 0.9), (0.2, 0.3)] {
                let est = MaxU2::new(p1, p2);
                let e = expectation(&est, &[v1, v2], &[p1, p2]);
                assert!(
                    (e - max_of(&[v1, v2])).abs() < 1e-10,
                    "bias for ({v1},{v2}) p=({p1},{p2}): {e}"
                );
            }
        }
    }

    #[test]
    fn max_u2_asymmetric_is_unbiased() {
        for &[v1, v2] in DATA_2 {
            for &(p1, p2) in &[(0.5, 0.5), (0.3, 0.8), (0.2, 0.3)] {
                let est = MaxU2Asymmetric::new(p1, p2);
                let e = expectation(&est, &[v1, v2], &[p1, p2]);
                assert!(
                    (e - max_of(&[v1, v2])).abs() < 1e-10,
                    "bias for ({v1},{v2}) p=({p1},{p2}): {e}"
                );
            }
        }
    }

    #[test]
    fn max_l2_and_u2_are_nonnegative() {
        for &[v1, v2] in DATA_2 {
            for &(p1, p2) in &[(0.5, 0.5), (0.3, 0.8), (0.1, 0.9), (0.2, 0.3)] {
                for (_, o) in enumerate_outcomes(&[v1, v2], &[p1, p2]) {
                    assert!(MaxL2::new(p1, p2).estimate(&o) >= -1e-12);
                    assert!(MaxU2::new(p1, p2).estimate(&o) >= -1e-12);
                    assert!(MaxU2Asymmetric::new(p1, p2).estimate(&o) >= -1e-12);
                }
            }
        }
    }

    #[test]
    fn max_l2_and_u2_dominate_ht() {
        // Lemma 4.1 and the discussion after the U construction.
        for &[v1, v2] in DATA_2 {
            for &(p1, p2) in &[(0.5, 0.5), (0.3, 0.8), (0.2, 0.3)] {
                let var_ht = variance(&MaxHtOblivious, &[v1, v2], &[p1, p2]);
                let var_l = variance(&MaxL2::new(p1, p2), &[v1, v2], &[p1, p2]);
                let var_u = variance(&MaxU2::new(p1, p2), &[v1, v2], &[p1, p2]);
                assert!(
                    var_l <= var_ht + 1e-9,
                    "L should dominate HT on ({v1},{v2})"
                );
                assert!(
                    var_u <= var_ht + 1e-9,
                    "U should dominate HT on ({v1},{v2})"
                );
            }
        }
    }

    #[test]
    fn figure1_example_values_p_half() {
        // Figure 1's explicit tables for p1 = p2 = 1/2.
        let l = MaxL2::new(0.5, 0.5);
        let u = MaxU2::new(0.5, 0.5);
        let (v1, v2) = (3.0f64, 2.0f64);
        let o = |e1: Option<f64>, e2: Option<f64>| {
            ObliviousOutcome::new(vec![
                ObliviousEntry { p: 0.5, value: e1 },
                ObliviousEntry { p: 0.5, value: e2 },
            ])
        };
        // max^(L): only entry 1 sampled -> 4 v1 / 3
        assert!((l.estimate(&o(Some(v1), None)) - 4.0 * v1 / 3.0).abs() < 1e-12);
        // both sampled -> (8 max - 4 min) / 3
        assert!((l.estimate(&o(Some(v1), Some(v2))) - (8.0 * v1 - 4.0 * v2) / 3.0).abs() < 1e-12);
        // max^(U): only entry 1 sampled -> 2 v1 ; both -> 2 max - 2 min
        assert!((u.estimate(&o(Some(v1), None)) - 2.0 * v1).abs() < 1e-12);
        assert!((u.estimate(&o(Some(v1), Some(v2))) - (2.0 * v1 - 2.0 * v2)).abs() < 1e-12);
    }

    #[test]
    fn figure1_variance_formulas_p_half() {
        // VAR[max^(L)] = 11/9 max² + 8/9 min² − 16/9 max·min (as in the paper);
        // VAR[max^(U)] = max² + 2 min² − 2 max·min, i.e. the value implied by
        // the estimator table printed in Figure 1 (the paper's box states a
        // 3/4 coefficient on max², which the estimator itself cannot achieve —
        // 1/p − 1 = 1 is the floor on (1,0) at p = 1/2).
        for &[v1, v2] in &[[1.0f64, 0.0], [1.0, 0.5], [1.0, 1.0], [4.0, 3.0]] {
            let (mx, mn) = (v1.max(v2), v1.min(v2));
            let var_l = variance(&MaxL2::new(0.5, 0.5), &[v1, v2], &[0.5, 0.5]);
            let var_u = variance(&MaxU2::new(0.5, 0.5), &[v1, v2], &[0.5, 0.5]);
            let var_ht = variance(&MaxHtOblivious, &[v1, v2], &[0.5, 0.5]);
            let expect_l = 11.0 / 9.0 * mx * mx + 8.0 / 9.0 * mn * mn - 16.0 / 9.0 * mx * mn;
            let expect_u = mx * mx + 2.0 * mn * mn - 2.0 * mx * mn;
            assert!(
                (var_l - expect_l).abs() < 1e-9,
                "L variance {var_l} vs {expect_l}"
            );
            assert!(
                (var_u - expect_u).abs() < 1e-9,
                "U variance {var_u} vs {expect_u}"
            );
            assert!((var_ht - 3.0 * mx * mx).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_coefficients_match_paper_r2() {
        // α = (1/(p²(2−p)), −(1−p)/(p²(2−p))) for r = 2.
        for &p in &[0.1, 0.3, 0.5, 0.9] {
            let est = MaxLUniform::new(2, p);
            let denom = p * p * (2.0 - p);
            assert!((est.coefficients()[0] - 1.0 / denom).abs() < 1e-12);
            assert!((est.coefficients()[1] + (1.0 - p) / denom).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_prefix_sums_match_paper_r3() {
        // A_3 = 1/(p(p²−3p+3)), A_2 = A_3 / (p(2−p)), A_1 = (2+p²−2p)/(p³(p²−3p+3)(2−p)).
        for &p in &[0.2, 0.5, 0.8] {
            let est = MaxLUniform::new(3, p);
            let a = est.prefix_sums_slice();
            let a3 = 1.0 / (p * (p * p - 3.0 * p + 3.0));
            let a2 = a3 / (p * (2.0 - p));
            let a1 = (2.0 + p * p - 2.0 * p) / (p.powi(3) * (p * p - 3.0 * p + 3.0) * (2.0 - p));
            assert!((a[2] - a3).abs() < 1e-10, "A3 mismatch at p={p}");
            assert!((a[1] - a2).abs() < 1e-10, "A2 mismatch at p={p}");
            assert!(
                (a[0] - a1).abs() < 1e-10,
                "A1 mismatch at p={p}: {} vs {a1}",
                a[0]
            );
        }
    }

    #[test]
    fn uniform_matches_two_instance_closed_form() {
        let p = 0.37;
        let uni = MaxLUniform::new(2, p);
        let two = MaxL2::new(p, p);
        for &[v1, v2] in DATA_2 {
            for (_, o) in enumerate_outcomes(&[v1, v2], &[p, p]) {
                let a = uni.estimate(&o);
                let b = two.estimate(&o);
                assert!((a - b).abs() < 1e-9, "mismatch on ({v1},{v2}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn uniform_is_unbiased_r3_r4() {
        let data3 = [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [2.0, 1.0, 0.0],
            [5.0, 5.0, 5.0],
            [3.0, 1.0, 2.0],
        ];
        for &p in &[0.3, 0.6] {
            let est = MaxLUniform::new(3, p);
            for v in &data3 {
                let e = expectation(&est, v, &[p, p, p]);
                assert!((e - max_of(v)).abs() < 1e-9, "bias for {v:?} p={p}: {e}");
            }
        }
        let data4 = [
            [0.0, 0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 0.0],
            [4.0, 3.0, 2.0, 1.0],
            [2.0, 2.0, 2.0, 2.0],
            [1.0, 0.0, 3.0, 0.0],
        ];
        for &p in &[0.25, 0.5] {
            let est = MaxLUniform::new(4, p);
            for v in &data4 {
                let e = expectation(&est, v, &[p, p, p, p]);
                assert!((e - max_of(v)).abs() < 1e-8, "bias for {v:?} p={p}: {e}");
            }
        }
    }

    #[test]
    fn uniform_coefficient_signs_up_to_r4() {
        // Lemma 4.2's sufficient conditions, verified by the paper for r ≤ 4:
        // α_1 ≤ 1/p^r and α_i < 0 for i > 1.  They imply monotonicity,
        // nonnegativity, and dominance over HT.
        for r in 2..=4usize {
            for &p in &[0.1, 0.3, 0.5, 0.7, 0.9] {
                let est = MaxLUniform::new(r, p);
                let alpha = est.coefficients();
                assert!(
                    alpha[0] <= 1.0 / p.powi(r as i32) + 1e-9,
                    "alpha_1 too large at r={r}, p={p}"
                );
                for (i, &a) in alpha.iter().enumerate().skip(1) {
                    assert!(
                        a < 1e-12,
                        "alpha_{} = {a} should be negative (r={r}, p={p})",
                        i + 1
                    );
                }
                // Prefix sums must stay positive (needed for monotonicity).
                for (h, &s) in est.prefix_sums_slice().iter().enumerate() {
                    assert!(s > 0.0, "prefix sum A_{} nonpositive (r={r}, p={p})", h + 1);
                }
            }
        }
    }

    #[test]
    fn uniform_dominates_ht_r3() {
        let p = 0.4;
        let est = MaxLUniform::new(3, p);
        for v in &[
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 0.0],
            [1.0, 1.0, 1.0],
            [3.0, 2.0, 1.0],
        ] {
            let var_l = variance(&est, v, &[p, p, p]);
            let var_ht = variance(&MaxHtOblivious, v, &[p, p, p]);
            assert!(var_l <= var_ht + 1e-9, "L should dominate HT on {v:?}");
        }
    }

    #[test]
    fn uniform_estimator_is_monotone_in_information_r3() {
        // Adding a sampled entry (with a value no larger than the current max)
        // must not decrease the estimate.
        let est = MaxLUniform::new(3, 0.5);
        let e1 = est.estimate_from_sampled_values(&[4.0]);
        let e2 = est.estimate_from_sampled_values(&[4.0, 4.0]);
        let e3 = est.estimate_from_sampled_values(&[4.0, 4.0, 4.0]);
        assert!(e2 >= e1 - 1e-12);
        assert!(e3 >= e2 - 1e-12);
        // Revealing a smaller second value still cannot decrease the estimate
        // relative to knowing less (determining vector was already imputing max).
        let e_low = est.estimate_from_sampled_values(&[4.0, 1.0]);
        assert!(e_low >= e1 - 1e-12 || e_low >= 0.0);
    }

    #[test]
    fn empty_outcome_estimates_zero() {
        let o = ObliviousOutcome::new(vec![
            ObliviousEntry {
                p: 0.5,
                value: None,
            },
            ObliviousEntry {
                p: 0.5,
                value: None,
            },
        ]);
        assert_eq!(MaxHtOblivious.estimate(&o), 0.0);
        assert_eq!(MaxL2::new(0.5, 0.5).estimate(&o), 0.0);
        assert_eq!(MaxU2::new(0.5, 0.5).estimate(&o), 0.0);
        assert_eq!(MaxLUniform::new(2, 0.5).estimate(&o), 0.0);
    }

    #[test]
    #[should_panic(expected = "exactly two instances")]
    fn max_l2_rejects_three_instances() {
        let o = ObliviousOutcome::new(vec![
            ObliviousEntry {
                p: 0.5,
                value: None,
            },
            ObliviousEntry {
                p: 0.5,
                value: None,
            },
            ObliviousEntry {
                p: 0.5,
                value: None,
            },
        ]);
        let _ = MaxL2::new(0.5, 0.5).estimate(&o);
    }

    #[test]
    #[should_panic(expected = "at least two instances")]
    fn uniform_rejects_r1() {
        let _ = MaxLUniform::new(1, 0.5);
    }

    #[test]
    fn documented_properties() {
        assert!(MaxHtOblivious.properties().unbiased);
        assert!(!MaxHtOblivious.properties().pareto_optimal);
        assert!(MaxL2::new(0.5, 0.5).properties().pareto_optimal);
        assert!(MaxLUniform::new(3, 0.5).properties().pareto_optimal);
    }

    /// The retired array-of-structs `estimate_batch` overrides, kept verbatim
    /// as reference implementations: the lane kernels that replaced them must
    /// stay bit-identical to these (and to the scalar `estimate`).
    mod retired_batch {
        use super::*;

        pub fn max_ht(outcomes: &[ObliviousOutcome], out: &mut [f64]) {
            for (slot, outcome) in out.iter_mut().zip(outcomes) {
                let mut product = 1.0f64;
                let mut max: Option<f64> = None;
                let mut all_sampled = true;
                for entry in outcome.entries() {
                    match entry.value {
                        Some(v) => {
                            product *= entry.p;
                            max = Some(max.map_or(v, |a: f64| a.max(v)));
                        }
                        None => {
                            all_sampled = false;
                            break;
                        }
                    }
                }
                *slot = if all_sampled {
                    max.unwrap_or(0.0) / product
                } else {
                    0.0
                };
            }
        }

        pub fn max_l2(est: &MaxL2, outcomes: &[ObliviousOutcome], out: &mut [f64]) {
            let (p1, p2) = (est.p1, est.p2);
            let p_any = est.p_any();
            let p12 = p1 * p2;
            let c1 = 1.0 / p2 - 1.0;
            let c2 = 1.0 / p1 - 1.0;
            for (slot, outcome) in out.iter_mut().zip(outcomes) {
                let [(_, e1), (_, e2)] = two_entries(outcome);
                *slot = match (e1, e2) {
                    (None, None) => 0.0,
                    (Some(v1), None) => v1 / p_any,
                    (None, Some(v2)) => v2 / p_any,
                    (Some(v1), Some(v2)) => v1.max(v2) / p12 - (c1 * v1 + c2 * v2) / p_any,
                };
            }
        }

        pub fn max_u2(est: &MaxU2, outcomes: &[ObliviousOutcome], out: &mut [f64]) {
            let (p1, p2) = (est.p1, est.p2);
            let denom = 1.0 + est.slack();
            let d1 = p1 * denom;
            let d2 = p2 * denom;
            let p12 = p1 * p2;
            for (slot, outcome) in out.iter_mut().zip(outcomes) {
                let [(_, e1), (_, e2)] = two_entries(outcome);
                *slot = match (e1, e2) {
                    (None, None) => 0.0,
                    (Some(v1), None) => v1 / d1,
                    (None, Some(v2)) => v2 / d2,
                    (Some(v1), Some(v2)) => {
                        (v1.max(v2) - (v1 * (1.0 - p2) + v2 * (1.0 - p1)) / denom) / p12
                    }
                };
            }
        }
    }

    /// Deterministically enumerates an adversarial batch of two-instance
    /// outcomes: every presence pattern crossed with extreme magnitudes,
    /// zeros, and near-ties, at a length that exercises chunk boundaries.
    fn adversarial_batch(len: usize) -> Vec<ObliviousOutcome> {
        let magnitudes = [0.0, 1.0, 1e-300, 1e300, 3.5, 7.25e-9];
        (0..len)
            .map(|k| {
                let v1 = magnitudes[k % magnitudes.len()];
                let v2 = magnitudes[(k / 2 + 1) % magnitudes.len()];
                ObliviousOutcome::new(vec![
                    ObliviousEntry {
                        p: 0.3,
                        value: (k % 4 != 0).then_some(v1),
                    },
                    ObliviousEntry {
                        p: 0.8,
                        value: (k % 3 != 0).then_some(v2),
                    },
                ])
            })
            .collect()
    }

    #[test]
    fn lane_kernels_bit_identical_to_retired_batch_and_scalar() {
        use pie_sampling::ObliviousLanes;
        // Lengths straddling the chunk width, plus empty and single-outcome.
        for len in [0usize, 1, 7, 8, 9, 16, 33] {
            let outcomes = adversarial_batch(len);
            let mut lanes = ObliviousLanes::new();
            lanes.fill_from_outcomes(&outcomes);
            let mut by_lane = vec![f64::NAN; len];
            let mut by_retired = vec![f64::NAN; len];

            MaxHtOblivious.estimate_lanes(&lanes, &mut by_lane);
            retired_batch::max_ht(&outcomes, &mut by_retired);
            for (k, o) in outcomes.iter().enumerate() {
                assert_eq!(by_lane[k].to_bits(), by_retired[k].to_bits(), "ht k={k}");
                assert_eq!(
                    by_lane[k].to_bits(),
                    MaxHtOblivious.estimate(o).to_bits(),
                    "ht vs scalar k={k}"
                );
            }

            let l2 = MaxL2::new(0.3, 0.8);
            l2.estimate_lanes(&lanes, &mut by_lane);
            retired_batch::max_l2(&l2, &outcomes, &mut by_retired);
            for (k, o) in outcomes.iter().enumerate() {
                assert_eq!(by_lane[k].to_bits(), by_retired[k].to_bits(), "l2 k={k}");
                assert_eq!(
                    by_lane[k].to_bits(),
                    l2.estimate(o).to_bits(),
                    "l2 vs scalar k={k}"
                );
            }

            let u2 = MaxU2::new(0.3, 0.8);
            u2.estimate_lanes(&lanes, &mut by_lane);
            retired_batch::max_u2(&u2, &outcomes, &mut by_retired);
            for (k, o) in outcomes.iter().enumerate() {
                assert_eq!(by_lane[k].to_bits(), by_retired[k].to_bits(), "u2 k={k}");
                assert_eq!(
                    by_lane[k].to_bits(),
                    u2.estimate(o).to_bits(),
                    "u2 vs scalar k={k}"
                );
            }
        }
    }

    #[test]
    fn ht_lane_kernel_handles_r3() {
        use pie_sampling::ObliviousLanes;
        let outcomes: Vec<ObliviousOutcome> = (0..19)
            .map(|k| {
                ObliviousOutcome::new(
                    (0..3)
                        .map(|j| ObliviousEntry {
                            p: 0.25 + 0.2 * j as f64,
                            value: ((k + j) % 4 != 0).then_some(f64::from(k as u32) * 0.5),
                        })
                        .collect(),
                )
            })
            .collect();
        let mut lanes = ObliviousLanes::new();
        lanes.fill_from_outcomes(&outcomes);
        let mut out = vec![f64::NAN; outcomes.len()];
        MaxHtOblivious.estimate_lanes(&lanes, &mut out);
        for (k, o) in outcomes.iter().enumerate() {
            assert_eq!(out[k].to_bits(), MaxHtOblivious.estimate(o).to_bits());
        }
    }
}
