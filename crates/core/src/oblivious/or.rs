//! Estimators for Boolean `OR(v)` under weight-oblivious Poisson sampling
//! (Section 4.3).
//!
//! On the binary domain `{0,1}^r` the maximum *is* the OR, so the `OR`
//! estimators specialize the `max` estimators of Section 4.1–4.2 — and the
//! paper shows the specializations remain Pareto optimal on the restricted
//! domain.  Sum-aggregating an OR estimator over keys yields a distinct-count
//! (set-union) estimator (Section 8.1).

use pie_sampling::{ObliviousLanes, ObliviousOutcome};

use crate::estimate::{DocumentedEstimator, Estimator, EstimatorProperties, LANE_BLOCK};
use crate::oblivious::max::{MaxHtOblivious, MaxL2, MaxLUniform, MaxU2};

/// Asserts that every sampled value in the outcome is 0 or 1.
fn assert_binary(outcome: &ObliviousOutcome) {
    for e in &outcome.entries {
        if let Some(v) = e.value {
            assert!(
                v == 0.0 || v == 1.0,
                "OR estimators require binary data, got sampled value {v}"
            );
        }
    }
}

/// Lane counterpart of [`assert_binary`]: a blocked flag-accumulation pass
/// over every value/presence lane — eager `|` so each block reduces to one
/// branch-free mask — and the (cold) panic path rescans the failing block in
/// outcome-major order so the reported value matches the first offender the
/// per-outcome path would have seen.
fn assert_binary_lanes(lanes: &ObliviousLanes) {
    let r = lanes.num_instances();
    let len = lanes.len();
    let mut start = 0usize;
    while start < len {
        let n = LANE_BLOCK.min(len - start);
        let mut ok = true;
        for j in 0..r {
            let v = &lanes.value_lane(j)[start..start + n];
            let s = &lanes.present_lane(j)[start..start + n];
            for i in 0..n {
                ok &= (s[i] <= 0.0) | (v[i] == 0.0) | (v[i] == 1.0);
            }
        }
        if !ok {
            binary_lane_violation(lanes, start, n);
        }
        start += n;
    }
}

#[cold]
#[inline(never)]
fn binary_lane_violation(lanes: &ObliviousLanes, start: usize, n: usize) -> ! {
    for i in start..start + n {
        for j in 0..lanes.num_instances() {
            if lanes.present_lane(j)[i] != 0.0 {
                let v = lanes.value_lane(j)[i];
                assert!(
                    v == 0.0 || v == 1.0,
                    "OR estimators require binary data, got sampled value {v}"
                );
            }
        }
    }
    unreachable!("binary lane violation flagged but not found on rescan");
}

/// The inverse-probability estimator `OR^(HT)`: `1/∏p_i` when every entry is
/// sampled and at least one sampled value is 1, and 0 otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrHtOblivious;

impl Estimator<ObliviousOutcome> for OrHtOblivious {
    fn estimate(&self, outcome: &ObliviousOutcome) -> f64 {
        assert_binary(outcome);
        MaxHtOblivious.estimate(outcome)
    }

    fn name(&self) -> &'static str {
        "or_ht_oblivious"
    }

    /// Lane-kernel hot path: the binary-domain check runs as its own chunked
    /// pass, then the arithmetic delegates to the [`MaxHtOblivious`] lane
    /// kernel — exactly the decomposition of [`estimate`](Self::estimate),
    /// so results are bit-identical.
    fn estimate_lanes(&self, lanes: &ObliviousLanes, out: &mut [f64]) {
        assert_binary_lanes(lanes);
        MaxHtOblivious.estimate_lanes(lanes, out);
    }
}

impl DocumentedEstimator<ObliviousOutcome> for OrHtOblivious {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::ht()
    }
}

/// The `OR^(L)` estimator for two instances (Section 4.3): the specialization
/// of `max^(L)` to binary data.  Pareto optimal; minimum variance on the
/// "no change" vector `(1,1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrL2 {
    inner: MaxL2,
}

impl OrL2 {
    /// Creates the estimator for inclusion probabilities `p1, p2 ∈ (0, 1]`.
    #[must_use]
    pub fn new(p1: f64, p2: f64) -> Self {
        Self {
            inner: MaxL2::new(p1, p2),
        }
    }
}

impl Estimator<ObliviousOutcome> for OrL2 {
    fn estimate(&self, outcome: &ObliviousOutcome) -> f64 {
        assert_binary(outcome);
        self.inner.estimate(outcome)
    }

    fn name(&self) -> &'static str {
        "or_l_2"
    }

    /// Lane-kernel hot path: binary-domain check, then the [`MaxL2`] lane
    /// kernel — the same decomposition as [`estimate`](Self::estimate), so
    /// results are bit-identical.
    fn estimate_lanes(&self, lanes: &ObliviousLanes, out: &mut [f64]) {
        assert_binary_lanes(lanes);
        self.inner.estimate_lanes(lanes, out);
    }
}

impl DocumentedEstimator<ObliviousOutcome> for OrL2 {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

/// The symmetric `OR^(U)` estimator for two instances (Section 4.3): the
/// specialization of `max^(U)` to binary data.  Pareto optimal; minimum
/// variance (among symmetric estimators) on the "change" vectors `(1,0)` and
/// `(0,1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrU2 {
    inner: MaxU2,
}

impl OrU2 {
    /// Creates the estimator for inclusion probabilities `p1, p2 ∈ (0, 1]`.
    #[must_use]
    pub fn new(p1: f64, p2: f64) -> Self {
        Self {
            inner: MaxU2::new(p1, p2),
        }
    }
}

impl Estimator<ObliviousOutcome> for OrU2 {
    fn estimate(&self, outcome: &ObliviousOutcome) -> f64 {
        assert_binary(outcome);
        self.inner.estimate(outcome)
    }

    fn name(&self) -> &'static str {
        "or_u_2"
    }

    /// Lane-kernel hot path: binary-domain check, then the [`MaxU2`] lane
    /// kernel — the same decomposition as [`estimate`](Self::estimate), so
    /// results are bit-identical.
    fn estimate_lanes(&self, lanes: &ObliviousLanes, out: &mut [f64]) {
        assert_binary_lanes(lanes);
        self.inner.estimate_lanes(lanes, out);
    }
}

impl DocumentedEstimator<ObliviousOutcome> for OrU2 {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

/// The `OR^(L)` estimator for `r ≥ 2` instances with a uniform sampling
/// probability (the specialization of Algorithm 3 to binary data).
#[derive(Debug, Clone, PartialEq)]
pub struct OrLUniform {
    inner: MaxLUniform,
}

impl OrLUniform {
    /// Creates the estimator for `r ≥ 2` instances sampled with probability `p`.
    #[must_use]
    pub fn new(r: usize, p: f64) -> Self {
        Self {
            inner: MaxLUniform::new(r, p),
        }
    }

    /// The underlying `max^(L)` coefficients.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        self.inner.coefficients()
    }
}

impl Estimator<ObliviousOutcome> for OrLUniform {
    fn estimate(&self, outcome: &ObliviousOutcome) -> f64 {
        assert_binary(outcome);
        self.inner.estimate(outcome)
    }

    fn name(&self) -> &'static str {
        "or_l_uniform"
    }
}

impl DocumentedEstimator<ObliviousOutcome> for OrLUniform {
    fn properties(&self) -> EstimatorProperties {
        EstimatorProperties::pareto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_sampling::ObliviousEntry;

    fn enumerate_outcomes(v: &[f64], p: &[f64]) -> Vec<(f64, ObliviousOutcome)> {
        let r = v.len();
        let mut out = Vec::with_capacity(1 << r);
        for mask in 0u32..(1 << r) {
            let mut prob = 1.0;
            let mut entries = Vec::with_capacity(r);
            for i in 0..r {
                let sampled = mask & (1 << i) != 0;
                prob *= if sampled { p[i] } else { 1.0 - p[i] };
                entries.push(ObliviousEntry {
                    p: p[i],
                    value: if sampled { Some(v[i]) } else { None },
                });
            }
            out.push((prob, ObliviousOutcome::new(entries)));
        }
        out
    }

    fn expectation<E: Estimator<ObliviousOutcome>>(est: &E, v: &[f64], p: &[f64]) -> f64 {
        enumerate_outcomes(v, p)
            .iter()
            .map(|(prob, o)| prob * est.estimate(o))
            .sum()
    }

    fn variance<E: Estimator<ObliviousOutcome>>(est: &E, v: &[f64], p: &[f64]) -> f64 {
        let mean = expectation(est, v, p);
        enumerate_outcomes(v, p)
            .iter()
            .map(|(prob, o)| {
                let x = est.estimate(o);
                prob * (x - mean) * (x - mean)
            })
            .sum()
    }

    fn or_of(v: &[f64]) -> f64 {
        if v.iter().any(|&x| x > 0.0) {
            1.0
        } else {
            0.0
        }
    }

    const BINARY_2: &[[f64; 2]] = &[[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]];

    #[test]
    fn all_or_estimators_are_unbiased_r2() {
        for &(p1, p2) in &[(0.5, 0.5), (0.2, 0.7), (0.1, 0.1)] {
            for v in BINARY_2 {
                let truth = or_of(v);
                for est in [
                    Box::new(OrHtOblivious) as Box<dyn Estimator<ObliviousOutcome>>,
                    Box::new(OrL2::new(p1, p2)),
                    Box::new(OrU2::new(p1, p2)),
                ] {
                    let e = expectation(&est, v, &[p1, p2]);
                    assert!(
                        (e - truth).abs() < 1e-10,
                        "{} biased on {v:?} at p=({p1},{p2}): {e}",
                        est.name()
                    );
                }
            }
        }
    }

    #[test]
    fn or_estimators_are_nonnegative() {
        for &(p1, p2) in &[(0.5, 0.5), (0.2, 0.7), (0.1, 0.1)] {
            for v in BINARY_2 {
                for (_, o) in enumerate_outcomes(v, &[p1, p2]) {
                    assert!(OrHtOblivious.estimate(&o) >= 0.0);
                    assert!(OrL2::new(p1, p2).estimate(&o) >= -1e-12);
                    assert!(OrU2::new(p1, p2).estimate(&o) >= -1e-12);
                }
            }
        }
    }

    #[test]
    fn paper_variance_formulas() {
        // Eq. (23): VAR[OR^(HT) | OR(v)=1] = 1/(p1 p2) − 1.
        // Eq. (24): VAR[OR^(L) | (1,1)] = 1/(p1+p2−p1p2) − 1.
        for &(p1, p2) in &[(0.5, 0.5), (0.2, 0.7), (0.1, 0.3)] {
            let var_ht = variance(&OrHtOblivious, &[1.0, 1.0], &[p1, p2]);
            assert!((var_ht - (1.0 / (p1 * p2) - 1.0)).abs() < 1e-10);
            let var_ht_10 = variance(&OrHtOblivious, &[1.0, 0.0], &[p1, p2]);
            assert!((var_ht_10 - (1.0 / (p1 * p2) - 1.0)).abs() < 1e-10);
            let var_l = variance(&OrL2::new(p1, p2), &[1.0, 1.0], &[p1, p2]);
            let p_any = p1 + p2 - p1 * p2;
            assert!((var_l - (1.0 / p_any - 1.0)).abs() < 1e-10);
        }
    }

    #[test]
    fn or_l_variance_on_change_vector_matches_paper() {
        // Explicit formula below Eq. (24) for data (1,0).
        for &(p1, p2) in &[(0.5f64, 0.5f64), (0.2, 0.7), (0.1, 0.3)] {
            let p_any = p1 + p2 - p1 * p2;
            let expected = (1.0 - p1)
                + p1 * (1.0 - p2) * (1.0 / p_any - 1.0).powi(2)
                + p1 * p2 * (1.0 / (p1 * p_any) - 1.0).powi(2);
            let var_l = variance(&OrL2::new(p1, p2), &[1.0, 0.0], &[p1, p2]);
            assert!(
                (var_l - expected).abs() < 1e-10,
                "OR^L variance on (1,0) at p=({p1},{p2}): {var_l} vs {expected}"
            );
        }
    }

    #[test]
    fn asymptotic_gains_for_small_p() {
        // Section 4.3: as p → 0, VAR[OR^(HT)] ≈ 1/p², while
        // VAR[OR^(L)], VAR[OR^(U)] ≈ 1/(4p²) on (1,0)/(0,1) and ≈ 1/(2p) on (1,1).
        let p = 0.001;
        let var_ht = variance(&OrHtOblivious, &[1.0, 0.0], &[p, p]);
        let var_l_10 = variance(&OrL2::new(p, p), &[1.0, 0.0], &[p, p]);
        let var_u_10 = variance(&OrU2::new(p, p), &[1.0, 0.0], &[p, p]);
        let var_l_11 = variance(&OrL2::new(p, p), &[1.0, 1.0], &[p, p]);
        let var_u_11 = variance(&OrU2::new(p, p), &[1.0, 1.0], &[p, p]);
        assert!((var_ht * p * p - 1.0).abs() < 0.01);
        assert!(
            (var_l_10 * 4.0 * p * p - 1.0).abs() < 0.01,
            "{}",
            var_l_10 * 4.0 * p * p
        );
        assert!((var_u_10 * 4.0 * p * p - 1.0).abs() < 0.01);
        assert!((var_l_11 * 2.0 * p - 1.0).abs() < 0.01);
        assert!((var_u_11 * 2.0 * p - 1.0).abs() < 0.01);
    }

    #[test]
    fn l_beats_u_on_no_change_and_vice_versa() {
        // Figure 2: OR^(L) has minimum variance on (1,1); OR^(U) on (1,0).
        for &p in &[0.1, 0.3, 0.5] {
            let var_l_11 = variance(&OrL2::new(p, p), &[1.0, 1.0], &[p, p]);
            let var_u_11 = variance(&OrU2::new(p, p), &[1.0, 1.0], &[p, p]);
            let var_l_10 = variance(&OrL2::new(p, p), &[1.0, 0.0], &[p, p]);
            let var_u_10 = variance(&OrU2::new(p, p), &[1.0, 0.0], &[p, p]);
            assert!(var_l_11 <= var_u_11 + 1e-12);
            assert!(var_u_10 <= var_l_10 + 1e-12);
        }
    }

    #[test]
    fn or_l_uniform_specializes_max_l_and_stays_unbiased_r3() {
        let p = 0.3;
        let est = OrLUniform::new(3, p);
        let data = [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 0.0],
            [1.0, 1.0, 1.0],
        ];
        for v in &data {
            let e = expectation(&est, v, &[p, p, p]);
            assert!((e - or_of(v)).abs() < 1e-9, "bias on {v:?}: {e}");
        }
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_values_rejected() {
        let o = ObliviousOutcome::new(vec![
            ObliviousEntry {
                p: 0.5,
                value: Some(2.0),
            },
            ObliviousEntry {
                p: 0.5,
                value: None,
            },
        ]);
        let _ = OrL2::new(0.5, 0.5).estimate(&o);
    }

    #[test]
    fn documented_properties() {
        assert!(!OrHtOblivious.properties().pareto_optimal);
        assert!(OrL2::new(0.5, 0.5).properties().pareto_optimal);
        assert!(OrU2::new(0.5, 0.5).properties().pareto_optimal);
        assert!(OrLUniform::new(3, 0.5).properties().pareto_optimal);
    }

    #[test]
    fn or_lane_kernels_bit_identical_to_scalar() {
        use pie_sampling::ObliviousLanes;
        for len in [0usize, 1, 7, 8, 9, 16, 33] {
            let outcomes: Vec<ObliviousOutcome> = (0..len)
                .map(|k| {
                    ObliviousOutcome::new(vec![
                        ObliviousEntry {
                            p: 0.3,
                            value: (k % 4 != 0).then_some(f64::from(u32::from(k % 3 == 0))),
                        },
                        ObliviousEntry {
                            p: 0.8,
                            value: (k % 3 != 1).then_some(f64::from(u32::from(k % 5 != 0))),
                        },
                    ])
                })
                .collect();
            let mut lanes = ObliviousLanes::new();
            lanes.fill_from_outcomes(&outcomes);
            let mut out = vec![f64::NAN; len];
            for est in [
                Box::new(OrHtOblivious) as Box<dyn Estimator<ObliviousOutcome>>,
                Box::new(OrL2::new(0.3, 0.8)),
                Box::new(OrU2::new(0.3, 0.8)),
            ] {
                est.estimate_lanes(&lanes, &mut out);
                for (k, o) in outcomes.iter().enumerate() {
                    assert_eq!(
                        out[k].to_bits(),
                        est.estimate(o).to_bits(),
                        "{} k={k} len={len}",
                        est.name()
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_values_rejected_by_lane_kernel() {
        use pie_sampling::ObliviousLanes;
        let outcomes = vec![ObliviousOutcome::new(vec![
            ObliviousEntry {
                p: 0.5,
                value: Some(2.0),
            },
            ObliviousEntry {
                p: 0.5,
                value: None,
            },
        ])];
        let mut lanes = ObliviousLanes::new();
        lanes.fill_from_outcomes(&outcomes);
        let mut out = vec![0.0; 1];
        OrL2::new(0.5, 0.5).estimate_lanes(&lanes, &mut out);
    }
}
