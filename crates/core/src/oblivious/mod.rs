//! Estimators over weight-oblivious Poisson samples (Section 4 of the paper).
//!
//! In this regime every entry of the value vector is sampled independently
//! with a known probability that does not depend on the value.  The paper
//! derives two Pareto-optimal families — the "L" estimators (optimized for
//! dense vectors) and the "U" estimators (optimized for sparse vectors) — and
//! compares both against the Horvitz–Thompson baseline.

pub mod max;
pub mod or;

pub use max::{MaxHtOblivious, MaxL2, MaxLUniform, MaxU2, MaxU2Asymmetric};
pub use or::{OrHtOblivious, OrL2, OrLUniform, OrU2};
