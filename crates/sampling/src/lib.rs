//! # pie-sampling — sampling substrate for partial-information estimation
//!
//! This crate implements every sampling scheme used by Cohen & Kaplan,
//! *"Get the Most out of Your Sample: Optimal Unbiased Estimators using
//! Partial Information"* (PODS 2011):
//!
//! * reproducible hash-based randomization ([`hash`], [`seed`]) — the basis of
//!   the paper's "known seeds" and coordinated-sampling models;
//! * rank distributions ([`rank`]): PPS ranks and exponential ranks;
//! * single-instance samplers: weight-oblivious and weighted Poisson
//!   ([`poisson`]), bottom-k / priority / weighted-without-replacement
//!   ([`bottomk`]), and VarOpt ([`varopt`]);
//! * the per-instance sample representation ([`sample`]) with
//!   rank-conditioned inclusion probabilities;
//! * multi-instance drivers and per-key outcomes ([`multi`], [`outcome`]) —
//!   the inputs consumed by the estimators in the `pie-core` crate;
//! * the borrowed, allocation-free outcome accessors ([`view`]) read by the
//!   batched estimation hot path.
//!
//! The guiding constraint (Section 2 of the paper) is that the processing of
//! one instance never depends on the values of another: all coordination
//! happens through the shared, hash-derived seed assignment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bottomk;
pub mod hash;
pub mod instance;
pub mod multi;
pub mod outcome;
pub mod poisson;
pub mod rank;
pub mod sample;
pub mod seed;
pub mod varopt;
pub mod view;

pub use bottomk::{BottomKBuilder, BottomKSampler, PrioritySampler, WsWithoutReplacementSampler};
pub use hash::Hasher64;
pub use instance::{key_union, value_vector, Instance, Key};
pub use multi::{
    oblivious_outcomes, sample_all_oblivious, sample_all_pps, sampled_key_union, weighted_outcomes,
};
pub use outcome::{ObliviousEntry, ObliviousOutcome, WeightedEntry, WeightedOutcome};
pub use poisson::{ObliviousPoissonSampler, PpsPoissonSampler, ThresholdRankSampler};
pub use rank::{ExpRanks, PpsRanks, RankFamily};
pub use sample::{InstanceSample, RankKind, SampleScheme};
pub use seed::{Coordination, SeedAssignment, SeedVisibility};
pub use varopt::VarOptSampler;
pub use view::OutcomeView;
