//! # pie-sampling — streaming sampling substrate for partial-information
//! estimation
//!
//! This crate implements every sampling scheme used by Cohen & Kaplan,
//! *"Get the Most out of Your Sample: Optimal Unbiased Estimators using
//! Partial Information"* (PODS 2011), organized **stream-first**: records
//! `(key, weight)` are ingested one at a time into per-shard sketches,
//! shard sketches are merged, and the merged sketch finalizes into the
//! rank-conditioned per-instance sample the estimators consume.
//!
//! * the unified streaming API ([`scheme`]): [`SamplingScheme`] opens a
//!   mergeable [`Sketch`] per instance/shard — `ingest` → `merge` →
//!   `finalize`, with pooling support for allocation-free hot loops;
//! * reproducible hash-based randomization ([`hash`], [`seed`]) — the basis
//!   of the paper's "known seeds" and coordinated-sampling models, and of
//!   the bit-identical shard-merge guarantee;
//! * rank distributions ([`rank`]): PPS ranks and exponential ranks;
//! * the four scheme families: weight-oblivious and weighted Poisson
//!   ([`poisson`]), bottom-k / priority / weighted-without-replacement over
//!   a bounded heap ([`bottomk`]), and VarOpt with threshold merge
//!   ([`varopt`]);
//! * the per-instance sample representation ([`sample`]) with
//!   rank-conditioned inclusion probabilities and deterministic (key-sorted)
//!   iteration;
//! * multi-instance drivers and per-key outcomes ([`multi`], [`outcome`]) —
//!   the inputs consumed by the estimators in the `pie-core` crate;
//! * the borrowed, allocation-free outcome accessors ([`view`]) read by the
//!   batched estimation hot path, and the struct-of-arrays outcome lanes
//!   ([`lanes`]) that the vectorized lane kernels consume.
//!
//! Every sketch family — plus [`InstanceSample`] and [`SeedAssignment`] —
//! implements the `pie-store` snapshot codec (`Encode`/`Decode`, defined
//! next to each type), so sketch state can be persisted, checkpointed, and
//! merged across processes with bitwise-exact round-trips; see
//! [`scheme::sketch_tag`] for the family discriminants.
//!
//! Batch `sample()` methods still exist on every sampler, but they are thin
//! wrappers over ingest-then-finalize on the corresponding sketch — the
//! streaming path is the implementation, not an afterthought.
//!
//! The guiding constraint (Section 2 of the paper) is that the processing of
//! one instance never depends on the values of another: all coordination
//! happens through the shared, hash-derived seed assignment.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bottomk;
pub mod hash;
pub mod instance;
pub mod lanes;
pub mod multi;
pub mod outcome;
pub mod poisson;
pub mod rank;
pub mod sample;
pub mod scheme;
pub mod seed;
pub mod varopt;
pub mod view;

pub use bottomk::{
    BottomKBuilder, BottomKSampler, BottomKSketch, PrioritySampler, WsWithoutReplacementSampler,
};
pub use hash::Hasher64;
pub use instance::{key_union, value_vector, Instance, Key};
pub use lanes::{LaneOutcome, ObliviousLanes, WeightedLanes};
pub use multi::{
    oblivious_outcomes, sample_all, sample_all_with_universe, sampled_key_union, weighted_outcomes,
};
pub use outcome::{ObliviousEntry, ObliviousOutcome, WeightedEntry, WeightedOutcome};
pub use poisson::{
    ObliviousPoissonSampler, ObliviousPoissonSketch, PpsPoissonSampler, PpsPoissonSketch,
    ThresholdRankSampler,
};
pub use rank::{ExpRanks, PpsRanks, RankFamily};
pub use sample::{InstanceSample, RankKind, SampleScheme};
pub use scheme::{merge_tree, SamplingScheme, Sketch};
pub use seed::{Coordination, SeedAssignment, SeedVisibility};
pub use varopt::{VarOptSampler, VarOptScheme, VarOptSketch};
pub use view::OutcomeView;
