//! [`OutcomeView`]: the borrowed, allocation-free view of a per-key outcome.
//!
//! The paper's estimators are applied per key over millions of keys, so the
//! accessor layer must not allocate.  `OutcomeView` unifies
//! [`ObliviousOutcome`](crate::ObliviousOutcome) and
//! [`WeightedOutcome`](crate::WeightedOutcome) behind one iterator/slice-based
//! interface: everything an estimator needs to know about *which* entries were
//! sampled and *what* they revealed is available by borrowing, without
//! materializing intermediate `Vec`s.
//!
//! Regime-specific information — inclusion probabilities for weight-oblivious
//! outcomes, thresholds and seeds for weighted ones — stays on the concrete
//! types; estimators that need it are regime-specific anyway.

/// A borrowed view of one key's multi-instance outcome.
///
/// Required methods are the positional core (`num_instances`, `value_at`);
/// every derived accessor has an allocation-free default built on top of
/// them, which implementors may override with direct slice iteration.
///
/// This trait is deliberately *not* object-safe (its iterator accessors are
/// `impl Trait` methods); the object-safe abstraction for dynamic dispatch is
/// [`Estimator`](../pie_core/trait.Estimator.html), not the outcome view.
pub trait OutcomeView {
    /// Number of instances `r` (entries of the value vector).
    fn num_instances(&self) -> usize;

    /// The exact value of entry `index` if it was sampled, `None` otherwise.
    ///
    /// # Panics
    /// May panic if `index ≥ num_instances()`.
    fn value_at(&self, index: usize) -> Option<f64>;

    /// Whether the outcome spans zero instances.
    fn is_empty(&self) -> bool {
        self.num_instances() == 0
    }

    /// Number of sampled entries `|S|`.
    fn num_sampled(&self) -> usize {
        (0..self.num_instances())
            .filter(|&i| self.value_at(i).is_some())
            .count()
    }

    /// Whether every entry was sampled (`S = [r]`).
    fn all_sampled(&self) -> bool {
        (0..self.num_instances()).all(|i| self.value_at(i).is_some())
    }

    /// Maximum value among sampled entries, or `None` if nothing was sampled.
    fn max_sampled(&self) -> Option<f64> {
        self.sampled_values()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Iterates over the per-entry values in instance order: `Some(v)` for
    /// sampled entries, `None` for unsampled ones.
    fn values(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        (0..self.num_instances()).map(|i| self.value_at(i))
    }

    /// Iterates over the values of sampled entries in instance order.
    fn sampled_values(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.num_instances()).filter_map(|i| self.value_at(i))
    }

    /// Iterates over the indices of sampled entries, ascending.
    fn sampled_indices_iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_instances()).filter(|&i| self.value_at(i).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic view backed by a plain slice, exercising the defaults.
    struct SliceView<'a>(&'a [Option<f64>]);

    impl OutcomeView for SliceView<'_> {
        fn num_instances(&self) -> usize {
            self.0.len()
        }
        fn value_at(&self, index: usize) -> Option<f64> {
            self.0[index]
        }
    }

    #[test]
    fn default_accessors_derive_from_value_at() {
        let v = SliceView(&[Some(3.0), None, Some(7.0), None]);
        assert_eq!(v.num_instances(), 4);
        assert!(!v.is_empty());
        assert_eq!(v.num_sampled(), 2);
        assert!(!v.all_sampled());
        assert_eq!(v.max_sampled(), Some(7.0));
        assert_eq!(v.sampled_values().collect::<Vec<_>>(), vec![3.0, 7.0]);
        assert_eq!(v.sampled_indices_iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(
            v.values().collect::<Vec<_>>(),
            vec![Some(3.0), None, Some(7.0), None]
        );
    }

    #[test]
    fn empty_view_edge_cases() {
        let v = SliceView(&[]);
        assert!(v.is_empty());
        assert_eq!(v.num_sampled(), 0);
        assert!(v.all_sampled(), "vacuously true on zero instances");
        assert_eq!(v.max_sampled(), None);
        assert_eq!(v.sampled_values().count(), 0);
    }
}
