//! Deterministic 64-bit hashing used to derive reproducible random seeds.
//!
//! The paper's "known seeds" model (Section 2 and Section 7.2) assumes that the
//! per-key, per-instance randomization is produced by a random hash function of
//! the key, so that an estimator (or a later summarization pass) can *recompute*
//! the seed of a key even when the key was not sampled.  This module provides
//! that hash function: a small, dependency-free 64-bit mixer in the spirit of
//! SplitMix64 / xxHash finalizers, together with helpers that map hash values to
//! uniform variates in `[0, 1)`.
//!
//! All functions here are pure and deterministic: the same `(salt, key,
//! instance)` triple always produces the same seed, on every platform.

/// A 64-bit mixing function (the SplitMix64 finalizer).
///
/// This is a bijection on `u64` with good avalanche behaviour; it is the core
/// primitive from which all hash-derived randomness in this workspace is built.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines two 64-bit words into one well-mixed word.
///
/// Used to fold a key identifier together with an instance identifier or a
/// salt.  The combination is not commutative: `combine(a, b) != combine(b, a)`
/// in general, which is what we want (instance 1 of key 2 must differ from
/// instance 2 of key 1).
#[inline]
#[must_use]
pub fn combine(a: u64, b: u64) -> u64 {
    // Standard "hash_combine" style mixing with distinct odd constants.
    mix64(a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31))
}

/// Maps a 64-bit hash value to a uniform `f64` in the half-open interval `[0, 1)`.
///
/// Uses the top 53 bits so that every returned value is exactly representable
/// and the distribution over representable values is uniform.
#[inline]
#[must_use]
pub fn to_unit(h: u64) -> f64 {
    // 2^-53
    const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
    ((h >> 11) as f64) * SCALE
}

/// Maps a 64-bit hash value to a uniform `f64` in the open interval `(0, 1)`.
///
/// Some rank transforms (e.g. exponential ranks `-ln(1-u)/w`) are undefined at
/// the endpoints; this variant never returns exactly `0.0` or `1.0`.
#[inline]
#[must_use]
pub fn to_open_unit(h: u64) -> f64 {
    const SCALE: f64 = 1.0 / ((1u64 << 53) as f64 + 2.0);
    (((h >> 11) as f64) + 1.0) * SCALE
}

/// A deterministic hash function over `(key, stream)` pairs, parameterized by a salt.
///
/// `Hasher64` is the reproducible randomization source used throughout the
/// workspace.  Two hashers constructed with the same salt agree on every input;
/// hashers with different salts behave like independent random hash functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hasher64 {
    salt: u64,
}

impl Hasher64 {
    /// Creates a hasher with the given salt.
    #[must_use]
    pub fn new(salt: u64) -> Self {
        Self { salt: mix64(salt) }
    }

    /// Returns the salt this hasher was built from (after mixing).
    #[must_use]
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Hashes a single 64-bit key.
    #[inline]
    #[must_use]
    pub fn hash_u64(&self, key: u64) -> u64 {
        mix64(self.salt ^ mix64(key))
    }

    /// Hashes a `(key, stream)` pair; `stream` typically identifies an instance.
    #[inline]
    #[must_use]
    pub fn hash_pair(&self, key: u64, stream: u64) -> u64 {
        combine(
            self.hash_u64(key),
            mix64(stream.wrapping_add(0xA076_1D64_78BD_642F)),
        )
    }

    /// Returns a uniform variate in `[0, 1)` for a key.
    #[inline]
    #[must_use]
    pub fn unit(&self, key: u64) -> f64 {
        to_unit(self.hash_u64(key))
    }

    /// Returns a uniform variate in `(0, 1)` for a key.
    #[inline]
    #[must_use]
    pub fn open_unit(&self, key: u64) -> f64 {
        to_open_unit(self.hash_u64(key))
    }

    /// Returns a uniform variate in `[0, 1)` for a `(key, stream)` pair.
    #[inline]
    #[must_use]
    pub fn unit_pair(&self, key: u64, stream: u64) -> f64 {
        to_unit(self.hash_pair(key, stream))
    }

    /// Returns a uniform variate in `(0, 1)` for a `(key, stream)` pair.
    #[inline]
    #[must_use]
    pub fn open_unit_pair(&self, key: u64, stream: u64) -> f64 {
        to_open_unit(self.hash_pair(key, stream))
    }
}

impl pie_store::Encode for Hasher64 {
    /// Writes the (already mixed) salt — 8 bytes.
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), pie_store::StoreError> {
        self.salt.encode(w)
    }
}

impl pie_store::Decode for Hasher64 {
    /// Restores the hasher from its mixed salt, bypassing the mixing in
    /// [`Hasher64::new`] — the decoded hasher agrees with the encoded one on
    /// every input, bit for bit.
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, pie_store::StoreError> {
        Ok(Self {
            salt: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn mix64_is_injective_on_small_range() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn to_unit_is_in_range() {
        for i in 0..10_000u64 {
            let u = to_unit(mix64(i));
            assert!((0.0..1.0).contains(&u), "out of range: {u}");
        }
    }

    #[test]
    fn to_open_unit_excludes_endpoints() {
        assert!(to_open_unit(0) > 0.0);
        assert!(to_open_unit(u64::MAX) < 1.0);
        for i in 0..10_000u64 {
            let u = to_open_unit(mix64(i));
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn unit_values_look_uniform() {
        // Mean of U[0,1) is 0.5 and variance 1/12; check the empirical mean over
        // many hashed keys is close.
        let h = Hasher64::new(42);
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|k| h.unit(k)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} too far from 0.5");
    }

    #[test]
    fn different_salts_decorrelate() {
        let h1 = Hasher64::new(1);
        let h2 = Hasher64::new(2);
        // Correlation of the two hash streams over the same keys should be tiny.
        let n = 50_000u64;
        let xs: Vec<f64> = (0..n).map(|k| h1.unit(k)).collect();
        let ys: Vec<f64> = (0..n).map(|k| h2.unit(k)).collect();
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let cov = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n as f64;
        assert!(cov.abs() < 0.002, "covariance {cov} too large");
    }

    #[test]
    fn pair_hash_depends_on_stream() {
        let h = Hasher64::new(7);
        assert_ne!(h.hash_pair(10, 0), h.hash_pair(10, 1));
        assert_ne!(h.hash_pair(10, 0), h.hash_pair(11, 0));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }
}
