//! Per-key, multi-instance outcomes: the input seen by the paper's estimators.
//!
//! An *outcome* (Section 2.1) is what the sampling process reveals about one
//! key's value vector `v = (v_1, …, v_r)` across `r` instances: which entries
//! were sampled, their exact values, and — in the known-seed models — the
//! seeds, from which an upper bound on each *unsampled* entry can be derived.
//!
//! Two concrete outcome types are provided, mirroring the two sampling regimes
//! studied in the paper:
//!
//! * [`ObliviousOutcome`] — weight-oblivious Poisson sampling (Section 4):
//!   each entry is sampled with a known probability `p_i` independent of its
//!   value; a sampled entry reveals its exact value (possibly 0), an
//!   unsampled entry reveals nothing.
//! * [`WeightedOutcome`] — weighted PPS Poisson sampling (Sections 5–6): entry
//!   `i` is sampled iff `v_i ≥ u_i·τ*_i`.  A sampled entry reveals its value;
//!   an unsampled entry reveals the upper bound `v_i < u_i·τ*_i` when the seed
//!   `u_i` is known, and nothing when it is unknown.
//!
//! Both types implement the borrowed, allocation-free
//! [`OutcomeView`](crate::view::OutcomeView) accessors — the interface the
//! batched estimation hot path reads outcomes through.

use crate::instance::Key;
use crate::sample::{InstanceSample, RankKind, SampleScheme};
use crate::seed::SeedAssignment;
use crate::view::OutcomeView;

/// One entry of a weight-oblivious outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObliviousEntry {
    /// Inclusion probability of this entry (independent of its value).
    pub p: f64,
    /// The exact value if the entry was sampled, `None` otherwise.
    pub value: Option<f64>,
}

/// The outcome of weight-oblivious Poisson sampling of one key over `r` instances.
#[derive(Debug, Clone, PartialEq)]
pub struct ObliviousOutcome {
    /// Per-instance entries; `entries.len()` is the number of instances `r`.
    pub entries: Vec<ObliviousEntry>,
}

impl ObliviousOutcome {
    /// Creates an outcome from per-instance entries.
    ///
    /// # Panics
    /// Panics if any probability lies outside `(0, 1]`.
    #[must_use]
    pub fn new(entries: Vec<ObliviousEntry>) -> Self {
        for e in &entries {
            assert!(
                e.p > 0.0 && e.p <= 1.0,
                "inclusion probability must be in (0,1], got {}",
                e.p
            );
        }
        Self { entries }
    }

    /// Builds the outcome for `key` from weight-oblivious samples of several
    /// instances.  Every sample must use [`SampleScheme::ObliviousPoisson`].
    ///
    /// # Panics
    /// Panics if a sample was produced by a weighted scheme.
    #[must_use]
    pub fn from_samples(key: Key, samples: &[InstanceSample]) -> Self {
        let entries = samples
            .iter()
            .map(|s| match s.scheme {
                SampleScheme::ObliviousPoisson { p } => ObliviousEntry {
                    p,
                    value: s.value(key),
                },
                other => {
                    panic!("ObliviousOutcome requires weight-oblivious samples, got {other:?}")
                }
            })
            .collect();
        Self::new(entries)
    }

    /// Number of instances `r`.
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.entries.len()
    }

    /// The per-instance entries as a borrowed slice (the allocation-free way
    /// to walk probabilities and values together).
    #[must_use]
    pub fn entries(&self) -> &[ObliviousEntry] {
        &self.entries
    }

    /// Number of sampled entries `|S|`.
    #[must_use]
    pub fn num_sampled(&self) -> usize {
        self.entries.iter().filter(|e| e.value.is_some()).count()
    }

    /// Whether every entry was sampled (`S = [r]`).
    #[must_use]
    pub fn all_sampled(&self) -> bool {
        self.entries.iter().all(|e| e.value.is_some())
    }

    /// Maximum value among sampled entries, or `None` if nothing was sampled.
    #[must_use]
    pub fn max_sampled(&self) -> Option<f64> {
        self.entries
            .iter()
            .filter_map(|e| e.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Iterates over the inclusion probabilities `p_1, …, p_r` without
    /// allocating.
    pub fn probabilities_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.entries.iter().map(|e| e.p)
    }

    /// The product `∏_i p_i` (probability that all entries are sampled).
    #[must_use]
    pub fn all_sampled_probability(&self) -> f64 {
        self.entries.iter().map(|e| e.p).product()
    }
}

impl OutcomeView for ObliviousOutcome {
    fn num_instances(&self) -> usize {
        self.entries.len()
    }

    fn value_at(&self, index: usize) -> Option<f64> {
        self.entries[index].value
    }

    fn num_sampled(&self) -> usize {
        ObliviousOutcome::num_sampled(self)
    }

    fn all_sampled(&self) -> bool {
        ObliviousOutcome::all_sampled(self)
    }

    fn max_sampled(&self) -> Option<f64> {
        ObliviousOutcome::max_sampled(self)
    }

    fn values(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        self.entries.iter().map(|e| e.value)
    }

    fn sampled_values(&self) -> impl Iterator<Item = f64> + '_ {
        self.entries.iter().filter_map(|e| e.value)
    }

    fn sampled_indices_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.value.map(|_| i))
    }
}

/// One entry of a weighted (PPS) outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEntry {
    /// The PPS threshold τ*_i of this instance.
    pub tau_star: f64,
    /// The seed `u_i`, if seeds are known to the estimator.
    pub seed: Option<f64>,
    /// The exact value if the entry was sampled, `None` otherwise.
    pub value: Option<f64>,
}

impl WeightedEntry {
    /// The upper bound on this entry's value implied by it *not* being
    /// sampled: `v_i < u_i·τ*_i`.  Only available when the seed is known.
    /// Returns `None` for sampled entries (the exact value is known) or when
    /// the seed is hidden.
    #[must_use]
    pub fn unsampled_upper_bound(&self) -> Option<f64> {
        match (self.value, self.seed) {
            (None, Some(u)) => Some(u * self.tau_star),
            _ => None,
        }
    }

    /// The inclusion probability of a hypothetical value `v` in this instance:
    /// `min(1, v/τ*_i)`.
    #[must_use]
    pub fn inclusion_probability(&self, v: f64) -> f64 {
        if self.tau_star <= 0.0 {
            1.0
        } else {
            (v / self.tau_star).clamp(0.0, 1.0)
        }
    }
}

/// The outcome of weighted PPS Poisson sampling of one key over `r` instances.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedOutcome {
    /// Per-instance entries; `entries.len()` is the number of instances `r`.
    pub entries: Vec<WeightedEntry>,
}

impl WeightedOutcome {
    /// Creates an outcome from per-instance entries.
    ///
    /// # Panics
    /// Panics if any τ* is not positive and finite, or a seed lies outside `(0, 1)`.
    #[must_use]
    pub fn new(entries: Vec<WeightedEntry>) -> Self {
        for e in &entries {
            assert!(
                e.tau_star > 0.0 && e.tau_star.is_finite(),
                "tau_star must be positive and finite, got {}",
                e.tau_star
            );
            if let Some(u) = e.seed {
                assert!(u > 0.0 && u < 1.0, "seed must lie in (0,1), got {u}");
            }
        }
        Self { entries }
    }

    /// Builds the outcome for `key` from weighted samples of several
    /// instances, attaching seeds when `seeds` makes them visible.
    ///
    /// Supported schemes: [`SampleScheme::PpsPoisson`] and
    /// [`SampleScheme::BottomK`] with PPS ranks (priority sampling), for which
    /// the rank-conditioned threshold `1/threshold` plays the role of τ*.
    ///
    /// # Panics
    /// Panics for weight-oblivious or EXP-rank samples.
    #[must_use]
    pub fn from_samples(key: Key, samples: &[InstanceSample], seeds: &SeedAssignment) -> Self {
        let entries = samples
            .iter()
            .map(|s| {
                let tau_star = match s.scheme {
                    SampleScheme::PpsPoisson { tau_star } => tau_star,
                    SampleScheme::BottomK {
                        ranks: RankKind::Pps,
                        ..
                    } => {
                        assert!(
                            s.threshold.is_finite() && s.threshold > 0.0,
                            "priority sample threshold must be finite and positive"
                        );
                        1.0 / s.threshold
                    }
                    other => panic!(
                        "WeightedOutcome requires PPS Poisson or priority samples, got {other:?}"
                    ),
                };
                WeightedEntry {
                    tau_star,
                    seed: seeds.visible_seed(key, s.instance_index),
                    value: s.value(key),
                }
            })
            .collect();
        Self::new(entries)
    }

    /// Number of instances `r`.
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.entries.len()
    }

    /// The per-instance entries as a borrowed slice (the allocation-free way
    /// to walk thresholds, seeds, and values together).
    #[must_use]
    pub fn entries(&self) -> &[WeightedEntry] {
        &self.entries
    }

    /// Number of sampled entries `|S|`.
    #[must_use]
    pub fn num_sampled(&self) -> usize {
        self.entries.iter().filter(|e| e.value.is_some()).count()
    }

    /// Maximum value among sampled entries, or `None` if nothing was sampled.
    #[must_use]
    pub fn max_sampled(&self) -> Option<f64> {
        self.entries
            .iter()
            .filter_map(|e| e.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Whether all seeds are visible (the "known seeds" model).
    #[must_use]
    pub fn seeds_known(&self) -> bool {
        self.entries.iter().all(|e| e.seed.is_some())
    }

    /// The largest upper bound `u_i·τ*_i` over *unsampled* entries, or 0 if
    /// every entry was sampled.  Requires known seeds.
    ///
    /// This is the quantity `max_{i∉S} u_i·τ*_i` used by the weighted
    /// `max^(HT)` estimator (Section 5.2): the true maximum is certainly
    /// `max_{i∈S} v_i` exactly when this bound does not exceed it.
    #[must_use]
    pub fn max_unsampled_bound(&self) -> Option<f64> {
        let mut bound = 0.0f64;
        for e in &self.entries {
            if e.value.is_none() {
                match e.unsampled_upper_bound() {
                    Some(b) => bound = bound.max(b),
                    None => return None,
                }
            }
        }
        Some(bound)
    }
}

impl OutcomeView for WeightedOutcome {
    fn num_instances(&self) -> usize {
        self.entries.len()
    }

    fn value_at(&self, index: usize) -> Option<f64> {
        self.entries[index].value
    }

    fn num_sampled(&self) -> usize {
        WeightedOutcome::num_sampled(self)
    }

    fn all_sampled(&self) -> bool {
        self.entries.iter().all(|e| e.value.is_some())
    }

    fn max_sampled(&self) -> Option<f64> {
        WeightedOutcome::max_sampled(self)
    }

    fn values(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        self.entries.iter().map(|e| e.value)
    }

    fn sampled_values(&self) -> impl Iterator<Item = f64> + '_ {
        self.entries.iter().filter_map(|e| e.value)
    }

    fn sampled_indices_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.value.map(|_| i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::poisson::{ObliviousPoissonSampler, PpsPoissonSampler};

    #[test]
    fn oblivious_outcome_accessors() {
        let o = ObliviousOutcome::new(vec![
            ObliviousEntry {
                p: 0.5,
                value: Some(3.0),
            },
            ObliviousEntry {
                p: 0.4,
                value: None,
            },
            ObliviousEntry {
                p: 1.0,
                value: Some(7.0),
            },
        ]);
        assert_eq!(o.num_instances(), 3);
        assert_eq!(o.num_sampled(), 2);
        assert_eq!(o.sampled_indices_iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!o.all_sampled());
        assert_eq!(o.max_sampled(), Some(7.0));
        assert!((o.all_sampled_probability() - 0.2).abs() < 1e-12);
        assert_eq!(
            o.probabilities_iter().collect::<Vec<_>>(),
            vec![0.5, 0.4, 1.0]
        );
        assert_eq!(o.entries().len(), 3);
    }

    #[test]
    fn iterator_accessors_agree_with_entry_slices() {
        let o = ObliviousOutcome::new(vec![
            ObliviousEntry {
                p: 0.3,
                value: None,
            },
            ObliviousEntry {
                p: 0.9,
                value: Some(2.0),
            },
        ]);
        assert_eq!(o.sampled_indices_iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(
            o.probabilities_iter().collect::<Vec<_>>(),
            o.entries().iter().map(|e| e.p).collect::<Vec<_>>()
        );
        let w = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 5.0,
                seed: Some(0.5),
                value: Some(1.0),
            },
            WeightedEntry {
                tau_star: 5.0,
                seed: Some(0.5),
                value: None,
            },
        ]);
        assert_eq!(w.sampled_indices_iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn outcome_view_is_uniform_across_regimes() {
        let o = ObliviousOutcome::new(vec![
            ObliviousEntry {
                p: 0.5,
                value: Some(4.0),
            },
            ObliviousEntry {
                p: 0.5,
                value: None,
            },
        ]);
        let w = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 8.0,
                seed: Some(0.25),
                value: Some(4.0),
            },
            WeightedEntry {
                tau_star: 8.0,
                seed: Some(0.25),
                value: None,
            },
        ]);
        fn summarize<V: OutcomeView>(v: &V) -> (usize, usize, Option<f64>, Vec<Option<f64>>) {
            (
                v.num_instances(),
                v.num_sampled(),
                v.max_sampled(),
                v.values().collect(),
            )
        }
        assert_eq!(summarize(&o), summarize(&w));
    }

    #[test]
    fn oblivious_outcome_from_samples() {
        let i0 = Instance::from_pairs([(1, 5.0), (2, 0.0)]);
        let i1 = Instance::from_pairs([(1, 7.0), (2, 2.0)]);
        let universe = vec![1, 2];
        let seeds = SeedAssignment::independent_known(3);
        let sampler = ObliviousPoissonSampler::new(1.0); // deterministic: everything sampled
        let samples = vec![
            sampler.sample(&i0, &universe, &seeds, 0),
            sampler.sample(&i1, &universe, &seeds, 1),
        ];
        let o = ObliviousOutcome::from_samples(1, &samples);
        assert_eq!(o.entries[0].value, Some(5.0));
        assert_eq!(o.entries[1].value, Some(7.0));
        let o2 = ObliviousOutcome::from_samples(2, &samples);
        assert_eq!(o2.entries[0].value, Some(0.0));
        assert_eq!(o2.entries[1].value, Some(2.0));
    }

    #[test]
    #[should_panic(expected = "weight-oblivious")]
    fn oblivious_outcome_rejects_weighted_samples() {
        let inst = Instance::from_pairs([(1, 5.0)]);
        let seeds = SeedAssignment::independent_known(3);
        let s = PpsPoissonSampler::new(10.0).sample(&inst, &seeds, 0);
        let _ = ObliviousOutcome::from_samples(1, &[s]);
    }

    #[test]
    fn weighted_entry_upper_bound() {
        let sampled = WeightedEntry {
            tau_star: 10.0,
            seed: Some(0.25),
            value: Some(4.0),
        };
        assert_eq!(sampled.unsampled_upper_bound(), None);
        let unsampled_known = WeightedEntry {
            tau_star: 10.0,
            seed: Some(0.25),
            value: None,
        };
        assert_eq!(unsampled_known.unsampled_upper_bound(), Some(2.5));
        let unsampled_unknown = WeightedEntry {
            tau_star: 10.0,
            seed: None,
            value: None,
        };
        assert_eq!(unsampled_unknown.unsampled_upper_bound(), None);
    }

    #[test]
    fn weighted_entry_inclusion_probability() {
        let e = WeightedEntry {
            tau_star: 8.0,
            seed: None,
            value: None,
        };
        assert_eq!(e.inclusion_probability(2.0), 0.25);
        assert_eq!(e.inclusion_probability(16.0), 1.0);
        assert_eq!(e.inclusion_probability(0.0), 0.0);
    }

    #[test]
    fn weighted_outcome_from_pps_samples() {
        let i0 = Instance::from_pairs([(1, 5.0), (2, 1.0)]);
        let i1 = Instance::from_pairs([(1, 3.0), (2, 9.0)]);
        let seeds = SeedAssignment::independent_known(5);
        let sampler = PpsPoissonSampler::new(10.0);
        let samples = vec![
            sampler.sample(&i0, &seeds, 0),
            sampler.sample(&i1, &seeds, 1),
        ];
        let o = WeightedOutcome::from_samples(1, &samples, &seeds);
        assert_eq!(o.num_instances(), 2);
        assert!(o.seeds_known());
        // Consistency: a sampled entry's value matches the instance, an
        // unsampled one yields an upper bound above the true value.
        for (idx, inst) in [&i0, &i1].into_iter().enumerate() {
            let entry = &o.entries[idx];
            match entry.value {
                Some(v) => assert_eq!(v, inst.value(1)),
                None => {
                    let bound = entry.unsampled_upper_bound().unwrap();
                    assert!(bound > inst.value(1));
                }
            }
        }
    }

    #[test]
    fn weighted_outcome_hides_seeds_when_unknown() {
        let i0 = Instance::from_pairs([(1, 5.0)]);
        let seeds = SeedAssignment::independent_unknown(5);
        let sampler = PpsPoissonSampler::new(10.0);
        let samples = vec![sampler.sample(&i0, &seeds, 0)];
        let o = WeightedOutcome::from_samples(1, &samples, &seeds);
        assert!(!o.seeds_known());
        assert_eq!(o.entries[0].seed, None);
    }

    #[test]
    fn max_unsampled_bound_requires_known_seeds() {
        let known = WeightedOutcome::new(vec![
            WeightedEntry {
                tau_star: 10.0,
                seed: Some(0.5),
                value: None,
            },
            WeightedEntry {
                tau_star: 10.0,
                seed: Some(0.9),
                value: Some(4.0),
            },
        ]);
        assert_eq!(known.max_unsampled_bound(), Some(5.0));
        let unknown = WeightedOutcome::new(vec![WeightedEntry {
            tau_star: 10.0,
            seed: None,
            value: None,
        }]);
        assert_eq!(unknown.max_unsampled_bound(), None);
        let all_sampled = WeightedOutcome::new(vec![WeightedEntry {
            tau_star: 10.0,
            seed: Some(0.1),
            value: Some(2.0),
        }]);
        assert_eq!(all_sampled.max_unsampled_bound(), Some(0.0));
    }

    #[test]
    fn weighted_outcome_from_priority_samples() {
        use crate::bottomk::BottomKSampler;
        use crate::rank::PpsRanks;
        let inst = Instance::from_pairs((0..100u64).map(|k| (k, 1.0 + (k % 4) as f64)));
        let seeds = SeedAssignment::independent_known(9);
        let s = BottomKSampler::new(PpsRanks, 20).sample(&inst, &seeds, 0);
        let o = WeightedOutcome::from_samples(7, std::slice::from_ref(&s), &seeds);
        assert_eq!(o.entries[0].tau_star, 1.0 / s.threshold);
    }

    #[test]
    #[should_panic(expected = "in (0,1]")]
    fn oblivious_outcome_rejects_zero_probability() {
        let _ = ObliviousOutcome::new(vec![ObliviousEntry {
            p: 0.0,
            value: None,
        }]);
    }
}
