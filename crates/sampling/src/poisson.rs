//! Poisson (independent per-key) sampling, streaming-first.
//!
//! Poisson sampling makes a pure per-record decision — keep `(key, weight)`
//! iff a function of the key's hash seed fires — so it shards trivially: a
//! stream can be ingested by any number of [`Sketch`]es partitioned by key
//! and merged into the exact sample single-stream ingestion would produce.
//! Three schemes are provided, matching Section 2 and Section 7.1 of the
//! paper:
//!
//! * [`ObliviousPoissonSampler`] — weight-oblivious: each key of the stream
//!   (including zero-weight universe keys) is kept with a fixed probability
//!   `p`, independent of its value.  This is the scheme of Section 4.
//! * [`PpsPoissonSampler`] — weighted PPS: a key of value `v` is kept with
//!   probability `min(1, v/τ*)` (inclusion probability proportional to size).
//!   This is the scheme of Section 5.
//! * [`ThresholdRankSampler`] — generic Poisson-τ sampling for any
//!   [`RankFamily`]: a key is kept iff its rank falls below a fixed threshold.
//!
//! All schemes draw their randomness from a [`SeedAssignment`], so samples
//! are reproducible and the "known seeds" estimation model is available
//! post hoc.  The batch `sample()` methods are thin wrappers over
//! ingest-then-finalize on the corresponding sketch.

use pie_store::{Decode as _, Encode as _, StoreError};

use crate::instance::{Instance, Key};
use crate::rank::RankFamily;
use crate::sample::{InstanceSample, RankKind, SampleScheme};
use crate::scheme::{sketch_tag, SamplingScheme, Sketch};
use crate::seed::SeedAssignment;

/// Weight-oblivious Poisson sampling: keep each key of the universe with
/// probability `p`, regardless of its value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObliviousPoissonSampler {
    p: f64,
}

impl ObliviousPoissonSampler {
    /// Creates a sampler with per-key inclusion probability `p ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if `p` is not in `(0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0,1], got {p}");
        Self { p }
    }

    /// The per-key inclusion probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Samples `instance` over the key universe `universe` — a thin batch
    /// wrapper over streaming ingest-then-finalize.
    ///
    /// The universe must be supplied explicitly because weight-oblivious
    /// sampling also selects keys whose value is zero (they carry information
    /// for multi-instance functions such as OR and max).  Keys in the
    /// universe that are absent from the instance are treated as having
    /// value 0.
    #[must_use]
    pub fn sample(
        &self,
        instance: &Instance,
        universe: &[Key],
        seeds: &SeedAssignment,
        instance_index: u64,
    ) -> InstanceSample {
        let mut sketch = self.sketch(seeds, instance_index);
        for &key in universe {
            sketch.ingest(key, instance.value(key));
        }
        sketch.finalize()
    }
}

impl SamplingScheme for ObliviousPoissonSampler {
    type Sketch = ObliviousPoissonSketch;

    fn name(&self) -> &'static str {
        "oblivious_poisson"
    }

    fn sketch(&self, seeds: &SeedAssignment, instance_index: u64) -> Self::Sketch {
        ObliviousPoissonSketch {
            p: self.p,
            seeds: *seeds,
            instance_index,
            entries: Vec::new(),
            ingested: 0,
        }
    }
}

/// Streaming state of weight-oblivious Poisson sampling: the records whose
/// Bernoulli trial fired.
///
/// Zero-weight records participate — the stream defines the key universe, so
/// feed every universe key (with weight 0 where the instance has no value)
/// when downstream estimators need oblivious outcomes over the full universe.
#[derive(Debug, Clone)]
pub struct ObliviousPoissonSketch {
    p: f64,
    seeds: SeedAssignment,
    instance_index: u64,
    entries: Vec<(Key, f64)>,
    ingested: usize,
}

impl Sketch for ObliviousPoissonSketch {
    fn ingest(&mut self, key: Key, weight: f64) {
        self.ingested += 1;
        if self.seeds.seed(key, self.instance_index) < self.p {
            self.entries.push((key, weight));
        }
    }

    fn merge(&mut self, other: &mut Self) {
        assert!(
            self.p == other.p && self.instance_index == other.instance_index,
            "cannot merge oblivious sketches with different p or instance"
        );
        self.entries.append(&mut other.entries);
        self.ingested += std::mem::take(&mut other.ingested);
    }

    fn finalize(&mut self) -> InstanceSample {
        self.ingested = 0;
        InstanceSample::new(
            self.instance_index,
            SampleScheme::ObliviousPoisson { p: self.p },
            0.0,
            self.entries.drain(..),
        )
    }

    fn reset(&mut self, seeds: &SeedAssignment, instance_index: u64) {
        self.seeds = *seeds;
        self.instance_index = instance_index;
        self.entries.clear();
        self.ingested = 0;
    }

    fn ingested(&self) -> usize {
        self.ingested
    }
}

/// Writes a sketch's retained entries in canonical (key-ascending) order so
/// equal sketch states always encode to identical bytes, whatever the
/// in-memory push order was.
fn encode_entries_sorted(
    entries: &[(Key, f64)],
    w: &mut dyn std::io::Write,
) -> Result<(), StoreError> {
    if entries.windows(2).all(|pair| pair[0].0 < pair[1].0) {
        entries.encode(w)
    } else {
        let mut sorted = entries.to_vec();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        sorted.encode(w)
    }
}

/// Decodes a Poisson sketch's entry list, enforcing the canonical
/// strictly-ascending key order the encoder writes — so a decoded sketch
/// always re-encodes to the identical bytes, and duplicate keys cannot
/// slip through to be silently dropped by `InstanceSample::new`'s dedup.
fn decode_entries_sorted(r: &mut dyn std::io::Read) -> Result<Vec<(Key, f64)>, StoreError> {
    let entries: Vec<(Key, f64)> = Vec::decode(r)?;
    if entries.windows(2).any(|pair| pair[0].0 >= pair[1].0) {
        return Err(StoreError::InvalidValue {
            what: "Poisson sketch entries must be strictly ascending by key",
        });
    }
    Ok(entries)
}

impl pie_store::Encode for ObliviousPoissonSketch {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        sketch_tag::OBLIVIOUS_POISSON.encode(w)?;
        self.p.encode(w)?;
        self.seeds.encode(w)?;
        self.instance_index.encode(w)?;
        encode_entries_sorted(&self.entries, w)?;
        self.ingested.encode(w)
    }
}

impl pie_store::Decode for ObliviousPoissonSketch {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        let tag = u32::decode(r)?;
        if tag != sketch_tag::OBLIVIOUS_POISSON {
            return Err(StoreError::InvalidTag {
                what: "ObliviousPoissonSketch",
                tag,
            });
        }
        let p = f64::decode(r)?;
        if !(p > 0.0 && p <= 1.0) {
            return Err(StoreError::InvalidValue {
                what: "oblivious sampling probability must lie in (0, 1]",
            });
        }
        Ok(Self {
            p,
            seeds: SeedAssignment::decode(r)?,
            instance_index: u64::decode(r)?,
            entries: decode_entries_sorted(r)?,
            ingested: usize::decode(r)?,
        })
    }
}

/// Weighted Poisson PPS sampling: keep a key of value `v` iff `v ≥ u·τ*`,
/// i.e. with probability `min(1, v/τ*)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpsPoissonSampler {
    tau_star: f64,
}

impl PpsPoissonSampler {
    /// Creates a sampler with PPS threshold `τ* > 0`.
    ///
    /// # Panics
    /// Panics if `tau_star` is not strictly positive and finite.
    #[must_use]
    pub fn new(tau_star: f64) -> Self {
        assert!(
            tau_star > 0.0 && tau_star.is_finite(),
            "tau_star must be positive and finite, got {tau_star}"
        );
        Self { tau_star }
    }

    /// Chooses τ* so that the expected sample size over `instance` is `k`.
    ///
    /// Returns `None` if the instance has fewer than `⌈k⌉` positive keys (in
    /// which case every positive key should simply be kept).
    #[must_use]
    pub fn with_expected_size(instance: &Instance, k: f64) -> Option<Self> {
        let weights: Vec<f64> = instance.iter().map(|(_, v)| v).collect();
        let tau = crate::rank::PpsRanks.threshold_for_expected_size(&weights, k);
        if tau.is_finite() && tau > 0.0 {
            // PPS inclusion prob with threshold tau is min(1, v*tau); τ* = 1/tau.
            Some(Self::new(1.0 / tau))
        } else {
            None
        }
    }

    /// The PPS threshold τ*.
    #[must_use]
    pub fn tau_star(&self) -> f64 {
        self.tau_star
    }

    /// Samples `instance` — a thin batch wrapper over streaming
    /// ingest-then-finalize.  Only keys with positive value can be selected;
    /// the key universe is implicit (zero-valued keys are never sampled by a
    /// weighted scheme).
    #[must_use]
    pub fn sample(
        &self,
        instance: &Instance,
        seeds: &SeedAssignment,
        instance_index: u64,
    ) -> InstanceSample {
        let mut sketch = self.sketch(seeds, instance_index);
        for (key, value) in instance.iter() {
            sketch.ingest(key, value);
        }
        sketch.finalize()
    }
}

impl SamplingScheme for PpsPoissonSampler {
    type Sketch = PpsPoissonSketch;

    fn name(&self) -> &'static str {
        "pps_poisson"
    }

    fn sketch(&self, seeds: &SeedAssignment, instance_index: u64) -> Self::Sketch {
        PpsPoissonSketch {
            tau_star: self.tau_star,
            seeds: *seeds,
            instance_index,
            entries: Vec::new(),
            ingested: 0,
        }
    }
}

/// Streaming state of weighted PPS Poisson sampling: the records that
/// passed the `v ≥ u·τ*` test.  Non-positive weights are ignored.
#[derive(Debug, Clone)]
pub struct PpsPoissonSketch {
    tau_star: f64,
    seeds: SeedAssignment,
    instance_index: u64,
    entries: Vec<(Key, f64)>,
    ingested: usize,
}

impl Sketch for PpsPoissonSketch {
    fn ingest(&mut self, key: Key, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        self.ingested += 1;
        if weight >= self.seeds.seed(key, self.instance_index) * self.tau_star {
            self.entries.push((key, weight));
        }
    }

    fn merge(&mut self, other: &mut Self) {
        assert!(
            self.tau_star == other.tau_star && self.instance_index == other.instance_index,
            "cannot merge PPS sketches with different tau_star or instance"
        );
        self.entries.append(&mut other.entries);
        self.ingested += std::mem::take(&mut other.ingested);
    }

    fn finalize(&mut self) -> InstanceSample {
        self.ingested = 0;
        InstanceSample::new(
            self.instance_index,
            SampleScheme::PpsPoisson {
                tau_star: self.tau_star,
            },
            self.tau_star,
            self.entries.drain(..),
        )
    }

    fn reset(&mut self, seeds: &SeedAssignment, instance_index: u64) {
        self.seeds = *seeds;
        self.instance_index = instance_index;
        self.entries.clear();
        self.ingested = 0;
    }

    fn ingested(&self) -> usize {
        self.ingested
    }
}

impl pie_store::Encode for PpsPoissonSketch {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        sketch_tag::PPS_POISSON.encode(w)?;
        self.tau_star.encode(w)?;
        self.seeds.encode(w)?;
        self.instance_index.encode(w)?;
        encode_entries_sorted(&self.entries, w)?;
        self.ingested.encode(w)
    }
}

impl pie_store::Decode for PpsPoissonSketch {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        let tag = u32::decode(r)?;
        if tag != sketch_tag::PPS_POISSON {
            return Err(StoreError::InvalidTag {
                what: "PpsPoissonSketch",
                tag,
            });
        }
        let tau_star = f64::decode(r)?;
        if !(tau_star > 0.0 && tau_star.is_finite()) {
            return Err(StoreError::InvalidValue {
                what: "PPS tau_star must be positive and finite",
            });
        }
        let seeds = SeedAssignment::decode(r)?;
        let instance_index = u64::decode(r)?;
        let entries = decode_entries_sorted(r)?;
        if entries.iter().any(|&(_, v)| !(v.is_finite() && v > 0.0)) {
            return Err(StoreError::InvalidValue {
                what: "PPS sketch entries must have finite positive weights",
            });
        }
        Ok(Self {
            tau_star,
            seeds,
            instance_index,
            entries,
            ingested: usize::decode(r)?,
        })
    }
}

/// Generic Poisson-τ sampling for an arbitrary rank family: keep a key iff
/// its rank (drawn from `F_{v}` using the key's seed) is below `tau`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdRankSampler<R: RankFamily> {
    family: R,
    tau: f64,
}

impl<R: RankFamily> ThresholdRankSampler<R> {
    /// Creates a sampler keeping keys with rank below `tau > 0`.
    ///
    /// # Panics
    /// Panics if `tau` is not strictly positive.
    #[must_use]
    pub fn new(family: R, tau: f64) -> Self {
        assert!(tau > 0.0, "tau must be positive, got {tau}");
        Self { family, tau }
    }

    /// The rank threshold τ.
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Samples `instance`; only positive-valued keys can be selected.
    #[must_use]
    pub fn sample(
        &self,
        instance: &Instance,
        seeds: &SeedAssignment,
        instance_index: u64,
    ) -> InstanceSample {
        let mut entries = Vec::new();
        for (key, value) in instance.iter() {
            if value <= 0.0 {
                continue;
            }
            let u = seeds.seed(key, instance_index);
            let rank = self.family.rank_from_seed(u, value);
            if rank < self.tau {
                entries.push((key, value));
            }
        }
        // Represent as a PPS or bottom-k style scheme?  The natural mapping is a
        // "bottom-k with known threshold" — we reuse the PpsPoisson descriptor
        // when the family is PPS (tau_star = 1/tau) and the BottomK descriptor
        // otherwise, so inclusion probabilities stay recomputable.
        let (scheme, threshold) = match self.family.name() {
            "pps" => (
                SampleScheme::PpsPoisson {
                    tau_star: 1.0 / self.tau,
                },
                1.0 / self.tau,
            ),
            _ => (
                SampleScheme::BottomK {
                    k: entries.len(),
                    ranks: RankKind::Exp,
                },
                self.tau,
            ),
        };
        InstanceSample::new(instance_index, scheme, threshold, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::{ExpRanks, PpsRanks};

    fn big_instance(n: u64, value: f64) -> Instance {
        Instance::from_pairs((0..n).map(|k| (k, value)))
    }

    #[test]
    fn oblivious_sampler_rate_matches_p() {
        let inst = big_instance(20_000, 1.0);
        let universe = inst.sorted_keys();
        let sampler = ObliviousPoissonSampler::new(0.3);
        let seeds = SeedAssignment::independent_known(7);
        let s = sampler.sample(&inst, &universe, &seeds, 0);
        let rate = s.len() as f64 / universe.len() as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn oblivious_sampler_includes_zero_valued_keys() {
        let inst = Instance::from_pairs([(1, 0.0), (2, 5.0)]);
        let universe = vec![1, 2, 3];
        let sampler = ObliviousPoissonSampler::new(1.0);
        let seeds = SeedAssignment::independent_known(7);
        let s = sampler.sample(&inst, &universe, &seeds, 0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.value(1), Some(0.0));
        assert_eq!(s.value(3), Some(0.0));
        assert_eq!(s.value(2), Some(5.0));
    }

    #[test]
    fn pps_sampler_rate_matches_inclusion_probability() {
        let inst = big_instance(20_000, 2.0);
        let sampler = PpsPoissonSampler::new(8.0); // p = 2/8 = 0.25
        let seeds = SeedAssignment::independent_known(3);
        let s = sampler.sample(&inst, &seeds, 0);
        let rate = s.len() as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn pps_sampler_always_keeps_heavy_keys() {
        let mut inst = big_instance(100, 0.001);
        inst.set(999, 100.0);
        let sampler = PpsPoissonSampler::new(50.0);
        let seeds = SeedAssignment::independent_known(11);
        let s = sampler.sample(&inst, &seeds, 0);
        assert!(s.contains(999), "value above tau_star must always be kept");
    }

    #[test]
    fn pps_sampler_never_keeps_zero_keys() {
        let inst = Instance::from_pairs([(1, 0.0), (2, 1.0)]);
        let sampler = PpsPoissonSampler::new(0.5);
        let seeds = SeedAssignment::independent_known(11);
        let s = sampler.sample(&inst, &seeds, 0);
        assert!(!s.contains(1));
        assert!(s.contains(2), "value >= tau_star is always sampled");
    }

    #[test]
    fn pps_with_expected_size_hits_target() {
        let inst = Instance::from_pairs((0..1000u64).map(|k| (k, 1.0 + (k % 7) as f64)));
        let sampler = PpsPoissonSampler::with_expected_size(&inst, 100.0).unwrap();
        let mut total = 0usize;
        let reps = 30;
        for rep in 0..reps {
            let seeds = SeedAssignment::independent_known(rep);
            total += sampler.sample(&inst, &seeds, 0).len();
        }
        let mean = total as f64 / reps as f64;
        assert!((mean - 100.0).abs() < 10.0, "mean sample size {mean}");
    }

    #[test]
    fn pps_with_expected_size_returns_none_when_k_too_large() {
        let inst = Instance::from_pairs([(1, 1.0), (2, 2.0)]);
        assert!(PpsPoissonSampler::with_expected_size(&inst, 5.0).is_none());
    }

    #[test]
    fn threshold_rank_sampler_pps_equivalent_to_pps_poisson() {
        // ThresholdRankSampler with PPS ranks and tau = 1/τ* selects exactly the
        // same keys as PpsPoissonSampler with τ*.
        let inst = Instance::from_pairs((0..500u64).map(|k| (k, 0.5 + (k % 13) as f64)));
        let seeds = SeedAssignment::independent_known(5);
        let tau_star = 20.0;
        let a = PpsPoissonSampler::new(tau_star).sample(&inst, &seeds, 0);
        let b = ThresholdRankSampler::new(PpsRanks, 1.0 / tau_star).sample(&inst, &seeds, 0);
        assert_eq!(a.sorted_keys(), b.sorted_keys());
    }

    #[test]
    fn threshold_rank_sampler_exp_rate() {
        let inst = big_instance(20_000, 1.0);
        // With EXP ranks and tau, inclusion prob = 1 - e^{-tau}.
        let tau = 0.5f64;
        let sampler = ThresholdRankSampler::new(ExpRanks, tau);
        let seeds = SeedAssignment::independent_known(17);
        let s = sampler.sample(&inst, &seeds, 0);
        let rate = s.len() as f64 / 20_000.0;
        let expect = 1.0 - (-tau).exp();
        assert!((rate - expect).abs() < 0.02, "rate {rate} expect {expect}");
    }

    #[test]
    fn shared_seed_sampling_is_coordinated() {
        // With shared seeds and equal values, the *same* keys are sampled in
        // both instances (full coordination).
        let inst = big_instance(5000, 1.0);
        let sampler = PpsPoissonSampler::new(4.0);
        let seeds = SeedAssignment::shared(23);
        let s0 = sampler.sample(&inst, &seeds, 0);
        let s1 = sampler.sample(&inst, &seeds, 1);
        assert_eq!(s0.sorted_keys(), s1.sorted_keys());
    }

    #[test]
    fn independent_sampling_is_not_coordinated() {
        let inst = big_instance(5000, 1.0);
        let sampler = PpsPoissonSampler::new(4.0);
        let seeds = SeedAssignment::independent_known(23);
        let s0 = sampler.sample(&inst, &seeds, 0);
        let s1 = sampler.sample(&inst, &seeds, 1);
        assert_ne!(s0.sorted_keys(), s1.sorted_keys());
        // Overlap should be roughly p^2 * n = 312, far less than p*n = 1250.
        let keys0 = s0.sorted_keys();
        let overlap = keys0.iter().filter(|&&k| s1.contains(k)).count();
        assert!(
            (overlap as f64) < 0.6 * keys0.len() as f64,
            "overlap {overlap} of {}",
            keys0.len()
        );
    }

    #[test]
    #[should_panic(expected = "p must be in (0,1]")]
    fn oblivious_rejects_bad_p() {
        let _ = ObliviousPoissonSampler::new(1.5);
    }

    #[test]
    #[should_panic(expected = "tau_star must be positive")]
    fn pps_rejects_bad_tau() {
        let _ = PpsPoissonSampler::new(0.0);
    }
}
