//! Multi-instance sampling drivers over the streaming [`SamplingScheme`]
//! API.
//!
//! Dispersed instances are summarized *independently of each other's values*
//! (the constraint of Section 2); what may be shared is the randomization.
//! The drivers here open one [`Sketch`] per instance under a single
//! [`SeedAssignment`], ingest each instance's records, and finalize into the
//! per-instance samples downstream estimation consumes.  They are the
//! single-process, single-shard specialization of the sharded
//! ingest → merge → estimate flow; a sharded front-end (the umbrella crate's
//! `StreamPipeline`) uses the same sketches across threads.
//!
//! Records are ingested in ascending key order, so even order-sensitive
//! schemes (VarOpt) are reproducible across processes.

use crate::instance::{Instance, Key};
use crate::outcome::{ObliviousOutcome, WeightedOutcome};
use crate::sample::InstanceSample;
use crate::scheme::{SamplingScheme, Sketch};
use crate::seed::SeedAssignment;

/// Samples every instance with one scheme and one seed assignment, streaming
/// each instance's stored records through a fresh sketch.
///
/// Instance `i` uses instance index `i`; records are the instance's explicit
/// entries (weighted schemes skip non-positive values on ingest).  Returns
/// one [`InstanceSample`] per instance, in order.
#[must_use]
pub fn sample_all<S: SamplingScheme>(
    scheme: &S,
    instances: &[Instance],
    seeds: &SeedAssignment,
) -> Vec<InstanceSample> {
    instances
        .iter()
        .enumerate()
        .map(|(i, inst)| {
            let mut sketch = scheme.sketch(seeds, i as u64);
            for key in inst.sorted_keys() {
                sketch.ingest(key, inst.value(key));
            }
            sketch.finalize()
        })
        .collect()
}

/// Samples every instance over an explicit key `universe`: each universe key
/// is ingested into every instance's sketch with that instance's value
/// (0 where absent).
///
/// This is the driver for weight-oblivious sampling, where zero-valued keys
/// participate in the Bernoulli trials; for weighted schemes it is
/// equivalent to [`sample_all`] restricted to the universe.
#[must_use]
pub fn sample_all_with_universe<S: SamplingScheme>(
    scheme: &S,
    instances: &[Instance],
    universe: &[Key],
    seeds: &SeedAssignment,
) -> Vec<InstanceSample> {
    instances
        .iter()
        .enumerate()
        .map(|(i, inst)| {
            let mut sketch = scheme.sketch(seeds, i as u64);
            for &key in universe {
                sketch.ingest(key, inst.value(key));
            }
            sketch.finalize()
        })
        .collect()
}

/// Assembles the weight-oblivious outcome of every key in `keys` from the
/// given per-instance samples.
#[must_use]
pub fn oblivious_outcomes(
    keys: &[Key],
    samples: &[InstanceSample],
) -> Vec<(Key, ObliviousOutcome)> {
    keys.iter()
        .map(|&k| (k, ObliviousOutcome::from_samples(k, samples)))
        .collect()
}

/// Assembles the weighted outcome of every key in `keys` from the given
/// per-instance samples, attaching seeds where visible.
#[must_use]
pub fn weighted_outcomes(
    keys: &[Key],
    samples: &[InstanceSample],
    seeds: &SeedAssignment,
) -> Vec<(Key, WeightedOutcome)> {
    keys.iter()
        .map(|&k| (k, WeightedOutcome::from_samples(k, samples, seeds)))
        .collect()
}

/// The set of keys that appear (i.e. were sampled) in at least one of the
/// samples, sorted ascending — a deterministic order, so downstream outcome
/// batches and reports are reproducible across processes.
///
/// For weighted schemes this is the natural key set over which to evaluate a
/// sum aggregate: keys sampled nowhere necessarily contribute an estimate of
/// zero for any nonnegative estimator (they are consistent with the all-zero
/// vector), so iterating over them would be wasted work.
#[must_use]
pub fn sampled_key_union(samples: &[InstanceSample]) -> Vec<Key> {
    let mut keys: Vec<Key> = samples
        .iter()
        .flat_map(|s| s.iter().map(|(k, _)| k))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::key_union;
    use crate::poisson::{ObliviousPoissonSampler, PpsPoissonSampler};

    fn two_instances() -> Vec<Instance> {
        vec![
            Instance::from_pairs([(1, 10.0), (2, 0.0), (3, 5.0)]),
            Instance::from_pairs([(1, 2.0), (2, 8.0), (4, 1.0)]),
        ]
    }

    #[test]
    fn oblivious_sampling_covers_key_union() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(1);
        let universe = key_union(&instances);
        let samples = sample_all_with_universe(
            &ObliviousPoissonSampler::new(1.0),
            &instances,
            &universe,
            &seeds,
        );
        assert_eq!(samples.len(), 2);
        // With p = 1 every universe key is in every sample, including keys the
        // instance itself does not carry (value 0).
        for s in &samples {
            assert_eq!(s.sorted_keys(), vec![1, 2, 3, 4]);
        }
        assert_eq!(samples[0].value(4), Some(0.0));
        assert_eq!(samples[1].value(3), Some(0.0));
    }

    #[test]
    fn oblivious_sampling_includes_extra_universe_keys() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(1);
        let mut universe = key_union(&instances);
        universe.push(99);
        let samples = sample_all_with_universe(
            &ObliviousPoissonSampler::new(1.0),
            &instances,
            &universe,
            &seeds,
        );
        assert!(samples[0].contains(99));
        assert_eq!(samples[0].value(99), Some(0.0));
    }

    #[test]
    fn pps_sampling_produces_per_instance_samples() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(2);
        let samples = sample_all(&PpsPoissonSampler::new(20.0), &instances, &seeds);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].instance_index, 0);
        assert_eq!(samples[1].instance_index, 1);
        // Zero-valued keys never appear.
        assert!(!samples[0].contains(2));
    }

    #[test]
    fn universe_driver_matches_restricted_sample_all_for_weighted_schemes() {
        // For a weighted scheme the universe driver is sample_all restricted
        // to the universe: zero-valued keys are never selected either way.
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(7);
        let universe = key_union(&instances);
        let direct = sample_all(&PpsPoissonSampler::new(6.0), &instances, &seeds);
        let via_universe =
            sample_all_with_universe(&PpsPoissonSampler::new(6.0), &instances, &universe, &seeds);
        assert_eq!(direct, via_universe);
    }

    #[test]
    fn outcome_assembly_round_trips() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(3);
        let samples = sample_all(&PpsPoissonSampler::new(20.0), &instances, &seeds);
        let keys = sampled_key_union(&samples);
        let outcomes = weighted_outcomes(&keys, &samples, &seeds);
        assert_eq!(outcomes.len(), keys.len());
        for (key, o) in &outcomes {
            assert_eq!(o.num_instances(), 2);
            assert!(
                o.num_sampled() >= 1,
                "key {key} should be sampled somewhere"
            );
        }
    }

    #[test]
    fn oblivious_outcome_assembly() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(4);
        let universe = key_union(&instances);
        let samples = sample_all_with_universe(
            &ObliviousPoissonSampler::new(0.8),
            &instances,
            &universe,
            &seeds,
        );
        let keys = vec![1, 2, 3, 4];
        let outcomes = oblivious_outcomes(&keys, &samples);
        assert_eq!(outcomes.len(), 4);
        for (_, o) in &outcomes {
            assert_eq!(o.num_instances(), 2);
            assert_eq!(o.probabilities_iter().collect::<Vec<_>>(), vec![0.8, 0.8]);
        }
    }

    #[test]
    fn sampled_key_union_is_sorted_and_deduped() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(5);
        let samples = sample_all(&PpsPoissonSampler::new(0.5), &instances, &seeds);
        let keys = sampled_key_union(&samples);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
    }
}
