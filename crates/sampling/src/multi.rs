//! Multi-instance sampling drivers.
//!
//! Dispersed instances are summarized *independently of each other's values*
//! (the constraint of Section 2); what may be shared is the randomization.
//! The helpers here sample every instance of a dataset with one scheme and
//! one [`SeedAssignment`], and assemble per-key outcomes for downstream
//! estimation.

use crate::instance::{key_union, Instance, Key};
use crate::outcome::{ObliviousOutcome, WeightedOutcome};
use crate::poisson::{ObliviousPoissonSampler, PpsPoissonSampler};
use crate::sample::InstanceSample;
use crate::seed::SeedAssignment;

/// Samples every instance with weight-oblivious Poisson sampling over the
/// union of all keys (plus any extra universe keys supplied).
///
/// Returns one [`InstanceSample`] per instance, in order.
#[must_use]
pub fn sample_all_oblivious(
    instances: &[Instance],
    p: f64,
    extra_universe: &[Key],
    seeds: &SeedAssignment,
) -> Vec<InstanceSample> {
    let mut universe = key_union(instances);
    universe.extend_from_slice(extra_universe);
    universe.sort_unstable();
    universe.dedup();
    let sampler = ObliviousPoissonSampler::new(p);
    instances
        .iter()
        .enumerate()
        .map(|(i, inst)| sampler.sample(inst, &universe, seeds, i as u64))
        .collect()
}

/// Samples every instance with weighted Poisson PPS sampling (threshold τ*).
///
/// Returns one [`InstanceSample`] per instance, in order.
#[must_use]
pub fn sample_all_pps(
    instances: &[Instance],
    tau_star: f64,
    seeds: &SeedAssignment,
) -> Vec<InstanceSample> {
    let sampler = PpsPoissonSampler::new(tau_star);
    instances
        .iter()
        .enumerate()
        .map(|(i, inst)| sampler.sample(inst, seeds, i as u64))
        .collect()
}

/// Assembles the weight-oblivious outcome of every key in `keys` from the
/// given per-instance samples.
#[must_use]
pub fn oblivious_outcomes(
    keys: &[Key],
    samples: &[InstanceSample],
) -> Vec<(Key, ObliviousOutcome)> {
    keys.iter()
        .map(|&k| (k, ObliviousOutcome::from_samples(k, samples)))
        .collect()
}

/// Assembles the weighted outcome of every key in `keys` from the given
/// per-instance samples, attaching seeds where visible.
#[must_use]
pub fn weighted_outcomes(
    keys: &[Key],
    samples: &[InstanceSample],
    seeds: &SeedAssignment,
) -> Vec<(Key, WeightedOutcome)> {
    keys.iter()
        .map(|&k| (k, WeightedOutcome::from_samples(k, samples, seeds)))
        .collect()
}

/// The set of keys that appear (i.e. were sampled) in at least one of the
/// samples, sorted ascending.
///
/// For weighted schemes this is the natural key set over which to evaluate a
/// sum aggregate: keys sampled nowhere necessarily contribute an estimate of
/// zero for any nonnegative estimator (they are consistent with the all-zero
/// vector), so iterating over them would be wasted work.
#[must_use]
pub fn sampled_key_union(samples: &[InstanceSample]) -> Vec<Key> {
    let mut keys: Vec<Key> = samples
        .iter()
        .flat_map(|s| s.iter().map(|(k, _)| k))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_instances() -> Vec<Instance> {
        vec![
            Instance::from_pairs([(1, 10.0), (2, 0.0), (3, 5.0)]),
            Instance::from_pairs([(1, 2.0), (2, 8.0), (4, 1.0)]),
        ]
    }

    #[test]
    fn oblivious_sampling_covers_key_union() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(1);
        let samples = sample_all_oblivious(&instances, 1.0, &[], &seeds);
        assert_eq!(samples.len(), 2);
        // With p = 1 every universe key is in every sample, including keys the
        // instance itself does not carry (value 0).
        for s in &samples {
            assert_eq!(s.sorted_keys(), vec![1, 2, 3, 4]);
        }
        assert_eq!(samples[0].value(4), Some(0.0));
        assert_eq!(samples[1].value(3), Some(0.0));
    }

    #[test]
    fn oblivious_sampling_includes_extra_universe() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(1);
        let samples = sample_all_oblivious(&instances, 1.0, &[99], &seeds);
        assert!(samples[0].contains(99));
        assert_eq!(samples[0].value(99), Some(0.0));
    }

    #[test]
    fn pps_sampling_produces_per_instance_samples() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(2);
        let samples = sample_all_pps(&instances, 20.0, &seeds);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].instance_index, 0);
        assert_eq!(samples[1].instance_index, 1);
        // Zero-valued keys never appear.
        assert!(!samples[0].contains(2));
    }

    #[test]
    fn outcome_assembly_round_trips() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(3);
        let samples = sample_all_pps(&instances, 20.0, &seeds);
        let keys = sampled_key_union(&samples);
        let outcomes = weighted_outcomes(&keys, &samples, &seeds);
        assert_eq!(outcomes.len(), keys.len());
        for (key, o) in &outcomes {
            assert_eq!(o.num_instances(), 2);
            assert!(
                o.num_sampled() >= 1,
                "key {key} should be sampled somewhere"
            );
        }
    }

    #[test]
    fn oblivious_outcome_assembly() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(4);
        let samples = sample_all_oblivious(&instances, 0.8, &[], &seeds);
        let keys = vec![1, 2, 3, 4];
        let outcomes = oblivious_outcomes(&keys, &samples);
        assert_eq!(outcomes.len(), 4);
        for (_, o) in &outcomes {
            assert_eq!(o.num_instances(), 2);
            assert_eq!(o.probabilities_iter().collect::<Vec<_>>(), vec![0.8, 0.8]);
        }
    }

    #[test]
    fn sampled_key_union_is_sorted_and_deduped() {
        let instances = two_instances();
        let seeds = SeedAssignment::independent_known(5);
        let samples = sample_all_pps(&instances, 0.5, &seeds);
        let keys = sampled_key_union(&samples);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
    }
}
