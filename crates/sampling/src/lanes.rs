//! Struct-of-arrays (SoA) outcome lanes: the vectorization-friendly batch
//! layout consumed by the estimator lane kernels.
//!
//! The per-key outcome structs ([`ObliviousOutcome`], [`WeightedOutcome`])
//! are array-of-structs: one heap-allocated `Vec` of entries per key, with
//! `Option<f64>` fields whose discriminants interleave with the payload.
//! That layout is convenient for single-outcome reasoning but hostile to the
//! batched estimation hot path, where the same few fields are read for
//! hundreds of thousands of keys per trial: every entry access hops
//! pointers, and the `Option` matches defeat autovectorization.
//!
//! A lane container transposes one batch of outcomes into contiguous `f64`
//! lanes, one slice per instance per field:
//!
//! * [`ObliviousLanes`] — inclusion probability, sampled value, and a 0/1
//!   presence mask per instance;
//! * [`WeightedLanes`] — PPS threshold τ*, seed, 0/1 seed-visibility mask,
//!   sampled value, and a 0/1 presence mask per instance.
//!
//! Lanes are **built once per trial replay and shared by every registered
//! estimator**; each estimator then runs a branch-light chunked kernel over
//! the slices (see `pie_core`'s `estimate_lanes` overrides).  Placeholder
//! slots (an unsampled value, a hidden seed) hold `0.0` and are guarded by
//! the corresponding mask lane.
//!
//! Fill methods rewrite the lanes in place, so a pooled container performs
//! no per-trial heap allocation after warm-up.  The [`LaneOutcome`] trait
//! connects each outcome type to its lane container and lets generic code
//! (the scalar `estimate_lanes` fallback in `pie_core`) rebuild individual
//! outcomes from the lanes — bit-identically, since the lanes store exactly
//! the fields of the originating outcomes.

use crate::instance::Key;
use crate::outcome::{ObliviousEntry, ObliviousOutcome, WeightedEntry, WeightedOutcome};
use crate::sample::{InstanceSample, SampleScheme};
use crate::seed::SeedAssignment;

/// Connects an outcome type to its struct-of-arrays lane container.
///
/// This is what makes the lane path available behind dynamic dispatch: an
/// object-safe `estimate_lanes` method can take `&O::Lanes` and, by default,
/// replay the scalar estimator over outcomes rebuilt from the lanes — the
/// bit-identical reference the chunked kernels are tested against.
pub trait LaneOutcome: Sized {
    /// The lane container holding a batch of these outcomes.
    type Lanes;

    /// Number of outcomes in the batch.
    fn lanes_len(lanes: &Self::Lanes) -> usize;

    /// A scratch outcome with the batch's instance count, ready for
    /// [`read_lane`](Self::read_lane) to rewrite in place.
    fn lane_scratch(lanes: &Self::Lanes) -> Self;

    /// Rewrites `into` with outcome `index` of the batch.
    fn read_lane(lanes: &Self::Lanes, index: usize, into: &mut Self);
}

/// SoA lanes for a batch of weight-oblivious outcomes.
///
/// Lane `j` of each field is a contiguous `&[f64]` of length [`len`](Self::len)
/// covering instance `j` of every outcome in the batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObliviousLanes {
    instances: usize,
    len: usize,
    p: Vec<f64>,
    value: Vec<f64>,
    present: Vec<f64>,
}

impl ObliviousLanes {
    /// Creates an empty container (zero outcomes, zero instances).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of outcomes in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of instances `r` per outcome.
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.instances
    }

    /// Inclusion probabilities of instance `j`, one slot per outcome.
    #[must_use]
    pub fn p_lane(&self, j: usize) -> &[f64] {
        &self.p[j * self.len..(j + 1) * self.len]
    }

    /// Sampled values of instance `j` (`0.0` placeholder when unsampled).
    #[must_use]
    pub fn value_lane(&self, j: usize) -> &[f64] {
        &self.value[j * self.len..(j + 1) * self.len]
    }

    /// Presence mask of instance `j`: `1.0` where sampled, `0.0` otherwise.
    #[must_use]
    pub fn present_lane(&self, j: usize) -> &[f64] {
        &self.present[j * self.len..(j + 1) * self.len]
    }

    fn reset(&mut self, instances: usize, len: usize) {
        self.instances = instances;
        self.len = len;
        let total = instances * len;
        self.p.resize(total, 0.0);
        self.value.resize(total, 0.0);
        self.present.resize(total, 0.0);
    }

    /// Transposes a slice of outcomes into the lanes, rewriting in place.
    ///
    /// # Panics
    /// Panics if the outcomes do not all have the same instance count.
    pub fn fill_from_outcomes(&mut self, outcomes: &[ObliviousOutcome]) {
        let instances = outcomes.first().map_or(0, ObliviousOutcome::num_instances);
        self.reset(instances, outcomes.len());
        for (k, outcome) in outcomes.iter().enumerate() {
            assert_eq!(
                outcome.num_instances(),
                instances,
                "every outcome in a lane batch must have the same instance count"
            );
            for (j, e) in outcome.entries.iter().enumerate() {
                let idx = j * self.len + k;
                self.p[idx] = e.p;
                match e.value {
                    Some(v) => {
                        self.value[idx] = v;
                        self.present[idx] = 1.0;
                    }
                    None => {
                        self.value[idx] = 0.0;
                        self.present[idx] = 0.0;
                    }
                }
            }
        }
    }

    /// Fills the lanes for `keys` directly from per-instance samples — the
    /// trial-replay path, skipping the per-key outcome structs entirely.
    /// `keys` must be strictly ascending (the sorted key-union invariant).
    ///
    /// # Panics
    /// Panics if a sample was produced by a weighted scheme.
    pub fn fill_from_samples(&mut self, keys: &[Key], samples: &[InstanceSample]) {
        self.reset(samples.len(), keys.len());
        let len = self.len;
        for (j, sample) in samples.iter().enumerate() {
            let p = match sample.scheme {
                SampleScheme::ObliviousPoisson { p } => p,
                other => {
                    panic!("ObliviousLanes requires weight-oblivious samples, got {other:?}")
                }
            };
            let base = j * len;
            self.p[base..base + len].fill(p);
            sample.fill_value_lane(
                keys,
                &mut self.value[base..base + len],
                &mut self.present[base..base + len],
            );
        }
    }

    /// Rewrites `into` with outcome `index` of the batch.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn read_outcome(&self, index: usize, into: &mut ObliviousOutcome) {
        assert!(index < self.len, "outcome index {index} out of range");
        into.entries.resize(
            self.instances,
            ObliviousEntry {
                p: 1.0,
                value: None,
            },
        );
        for (j, e) in into.entries.iter_mut().enumerate() {
            let idx = j * self.len + index;
            e.p = self.p[idx];
            e.value = (self.present[idx] != 0.0).then(|| self.value[idx]);
        }
    }
}

impl LaneOutcome for ObliviousOutcome {
    type Lanes = ObliviousLanes;

    fn lanes_len(lanes: &ObliviousLanes) -> usize {
        lanes.len()
    }

    fn lane_scratch(lanes: &ObliviousLanes) -> Self {
        ObliviousOutcome {
            entries: vec![
                ObliviousEntry {
                    p: 1.0,
                    value: None,
                };
                lanes.num_instances()
            ],
        }
    }

    fn read_lane(lanes: &ObliviousLanes, index: usize, into: &mut Self) {
        lanes.read_outcome(index, into);
    }
}

/// SoA lanes for a batch of weighted (PPS) outcomes.
///
/// Lane `j` of each field is a contiguous `&[f64]` of length [`len`](Self::len)
/// covering instance `j` of every outcome in the batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeightedLanes {
    instances: usize,
    len: usize,
    tau: Vec<f64>,
    seed: Vec<f64>,
    seed_known: Vec<f64>,
    value: Vec<f64>,
    present: Vec<f64>,
}

impl WeightedLanes {
    /// Creates an empty container (zero outcomes, zero instances).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of outcomes in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of instances `r` per outcome.
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.instances
    }

    /// PPS thresholds τ* of instance `j`, one slot per outcome.
    #[must_use]
    pub fn tau_lane(&self, j: usize) -> &[f64] {
        &self.tau[j * self.len..(j + 1) * self.len]
    }

    /// Seeds of instance `j` (`0.0` placeholder when hidden).
    #[must_use]
    pub fn seed_lane(&self, j: usize) -> &[f64] {
        &self.seed[j * self.len..(j + 1) * self.len]
    }

    /// Seed-visibility mask of instance `j`: `1.0` where the seed is known.
    #[must_use]
    pub fn seed_known_lane(&self, j: usize) -> &[f64] {
        &self.seed_known[j * self.len..(j + 1) * self.len]
    }

    /// Sampled values of instance `j` (`0.0` placeholder when unsampled).
    #[must_use]
    pub fn value_lane(&self, j: usize) -> &[f64] {
        &self.value[j * self.len..(j + 1) * self.len]
    }

    /// Presence mask of instance `j`: `1.0` where sampled, `0.0` otherwise.
    #[must_use]
    pub fn present_lane(&self, j: usize) -> &[f64] {
        &self.present[j * self.len..(j + 1) * self.len]
    }

    fn reset(&mut self, instances: usize, len: usize) {
        self.instances = instances;
        self.len = len;
        let total = instances * len;
        self.tau.resize(total, 0.0);
        self.seed.resize(total, 0.0);
        self.seed_known.resize(total, 0.0);
        self.value.resize(total, 0.0);
        self.present.resize(total, 0.0);
    }

    /// Transposes a slice of outcomes into the lanes, rewriting in place.
    ///
    /// # Panics
    /// Panics if the outcomes do not all have the same instance count.
    pub fn fill_from_outcomes(&mut self, outcomes: &[WeightedOutcome]) {
        let instances = outcomes.first().map_or(0, WeightedOutcome::num_instances);
        self.reset(instances, outcomes.len());
        for (k, outcome) in outcomes.iter().enumerate() {
            assert_eq!(
                outcome.num_instances(),
                instances,
                "every outcome in a lane batch must have the same instance count"
            );
            for (j, e) in outcome.entries.iter().enumerate() {
                let idx = j * self.len + k;
                self.tau[idx] = e.tau_star;
                match e.seed {
                    Some(u) => {
                        self.seed[idx] = u;
                        self.seed_known[idx] = 1.0;
                    }
                    None => {
                        self.seed[idx] = 0.0;
                        self.seed_known[idx] = 0.0;
                    }
                }
                match e.value {
                    Some(v) => {
                        self.value[idx] = v;
                        self.present[idx] = 1.0;
                    }
                    None => {
                        self.value[idx] = 0.0;
                        self.present[idx] = 0.0;
                    }
                }
            }
        }
    }

    /// Fills the lanes for `keys` from PPS-per-instance samples with one
    /// shared threshold `tau_star` — the trial-replay path of the weighted
    /// pipeline.  Instance `j`'s seed for a key is `seeds.visible_seed(key,
    /// j)`, exactly as the per-key outcome assembly wrote it.  `keys` must be
    /// strictly ascending (the sorted key-union invariant).
    pub fn fill_pps(
        &mut self,
        keys: &[Key],
        samples: &[InstanceSample],
        seeds: &SeedAssignment,
        tau_star: f64,
    ) {
        self.reset(samples.len(), keys.len());
        let len = self.len;
        for (j, sample) in samples.iter().enumerate() {
            let base = j * len;
            self.tau[base..base + len].fill(tau_star);
            for (i, &key) in keys.iter().enumerate() {
                match seeds.visible_seed(key, j as u64) {
                    Some(u) => {
                        self.seed[base + i] = u;
                        self.seed_known[base + i] = 1.0;
                    }
                    None => {
                        self.seed[base + i] = 0.0;
                        self.seed_known[base + i] = 0.0;
                    }
                }
            }
            sample.fill_value_lane(
                keys,
                &mut self.value[base..base + len],
                &mut self.present[base..base + len],
            );
        }
    }

    /// Rewrites `into` with outcome `index` of the batch.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn read_outcome(&self, index: usize, into: &mut WeightedOutcome) {
        assert!(index < self.len, "outcome index {index} out of range");
        into.entries.resize(
            self.instances,
            WeightedEntry {
                tau_star: 1.0,
                seed: None,
                value: None,
            },
        );
        for (j, e) in into.entries.iter_mut().enumerate() {
            let idx = j * self.len + index;
            e.tau_star = self.tau[idx];
            e.seed = (self.seed_known[idx] != 0.0).then(|| self.seed[idx]);
            e.value = (self.present[idx] != 0.0).then(|| self.value[idx]);
        }
    }
}

impl LaneOutcome for WeightedOutcome {
    type Lanes = WeightedLanes;

    fn lanes_len(lanes: &WeightedLanes) -> usize {
        lanes.len()
    }

    fn lane_scratch(lanes: &WeightedLanes) -> Self {
        WeightedOutcome {
            entries: vec![
                WeightedEntry {
                    tau_star: 1.0,
                    seed: None,
                    value: None,
                };
                lanes.num_instances()
            ],
        }
    }

    fn read_lane(lanes: &WeightedLanes, index: usize, into: &mut Self) {
        lanes.read_outcome(index, into);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::poisson::{ObliviousPoissonSampler, PpsPoissonSampler};
    use crate::sample::SampleScheme;

    fn oblivious_batch() -> Vec<ObliviousOutcome> {
        vec![
            ObliviousOutcome::new(vec![
                ObliviousEntry {
                    p: 0.5,
                    value: Some(3.0),
                },
                ObliviousEntry {
                    p: 0.4,
                    value: None,
                },
            ]),
            ObliviousOutcome::new(vec![
                ObliviousEntry {
                    p: 0.5,
                    value: None,
                },
                ObliviousEntry {
                    p: 0.4,
                    value: Some(0.0),
                },
            ]),
        ]
    }

    #[test]
    fn oblivious_lanes_round_trip_outcomes() {
        let batch = oblivious_batch();
        let mut lanes = ObliviousLanes::new();
        lanes.fill_from_outcomes(&batch);
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes.num_instances(), 2);
        assert_eq!(lanes.p_lane(0), &[0.5, 0.5]);
        assert_eq!(lanes.p_lane(1), &[0.4, 0.4]);
        assert_eq!(lanes.value_lane(0), &[3.0, 0.0]);
        assert_eq!(lanes.present_lane(0), &[1.0, 0.0]);
        // A sampled zero value stays distinguishable from an unsampled slot.
        assert_eq!(lanes.value_lane(1), &[0.0, 0.0]);
        assert_eq!(lanes.present_lane(1), &[0.0, 1.0]);
        let mut scratch = ObliviousOutcome::lane_scratch(&lanes);
        for (k, expected) in batch.iter().enumerate() {
            ObliviousOutcome::read_lane(&lanes, k, &mut scratch);
            assert_eq!(&scratch, expected, "outcome {k}");
        }
    }

    #[test]
    fn oblivious_lanes_from_samples_match_outcome_assembly() {
        let instances = [
            Instance::from_pairs((0..40u64).map(|k| (k, 1.0 + (k % 5) as f64))),
            Instance::from_pairs((10..50u64).map(|k| (k, 2.0 + (k % 3) as f64))),
        ];
        let universe: Vec<Key> = (0..50u64).collect();
        let seeds = SeedAssignment::independent_known(7);
        let sampler = ObliviousPoissonSampler::new(0.6);
        let samples: Vec<InstanceSample> = instances
            .iter()
            .enumerate()
            .map(|(j, inst)| sampler.sample(inst, &universe, &seeds, j as u64))
            .collect();
        let mut lanes = ObliviousLanes::new();
        lanes.fill_from_samples(&universe, &samples);
        let mut scratch = ObliviousOutcome::lane_scratch(&lanes);
        for (i, &key) in universe.iter().enumerate() {
            ObliviousOutcome::read_lane(&lanes, i, &mut scratch);
            assert_eq!(
                scratch,
                ObliviousOutcome::from_samples(key, &samples),
                "key {key}"
            );
        }
    }

    #[test]
    fn weighted_lanes_round_trip_outcomes() {
        let batch = vec![
            WeightedOutcome::new(vec![
                WeightedEntry {
                    tau_star: 10.0,
                    seed: Some(0.25),
                    value: Some(4.0),
                },
                WeightedEntry {
                    tau_star: 8.0,
                    seed: Some(0.5),
                    value: None,
                },
            ]),
            WeightedOutcome::new(vec![
                WeightedEntry {
                    tau_star: 10.0,
                    seed: None,
                    value: None,
                },
                WeightedEntry {
                    tau_star: 8.0,
                    seed: Some(0.9),
                    value: Some(0.0),
                },
            ]),
        ];
        let mut lanes = WeightedLanes::new();
        lanes.fill_from_outcomes(&batch);
        assert_eq!(lanes.tau_lane(0), &[10.0, 10.0]);
        assert_eq!(lanes.seed_lane(0), &[0.25, 0.0]);
        assert_eq!(lanes.seed_known_lane(0), &[1.0, 0.0]);
        assert_eq!(lanes.present_lane(1), &[0.0, 1.0]);
        let mut scratch = WeightedOutcome::lane_scratch(&lanes);
        for (k, expected) in batch.iter().enumerate() {
            WeightedOutcome::read_lane(&lanes, k, &mut scratch);
            assert_eq!(&scratch, expected, "outcome {k}");
        }
    }

    #[test]
    fn weighted_pps_fill_matches_outcome_assembly() {
        let tau = 6.0;
        let instances = [
            Instance::from_pairs((0..60u64).map(|k| (k, 0.5 + (k % 9) as f64))),
            Instance::from_pairs((20..80u64).map(|k| (k, 1.0 + (k % 4) as f64))),
        ];
        let seeds = SeedAssignment::independent_known(11);
        let sampler = PpsPoissonSampler::new(tau);
        let samples: Vec<InstanceSample> = instances
            .iter()
            .enumerate()
            .map(|(j, inst)| sampler.sample(inst, &seeds, j as u64))
            .collect();
        let keys = crate::multi::sampled_key_union(&samples);
        let mut lanes = WeightedLanes::new();
        lanes.fill_pps(&keys, &samples, &seeds, tau);
        assert_eq!(lanes.len(), keys.len());
        let mut scratch = WeightedOutcome::lane_scratch(&lanes);
        for (i, &key) in keys.iter().enumerate() {
            WeightedOutcome::read_lane(&lanes, i, &mut scratch);
            assert_eq!(
                scratch,
                WeightedOutcome::from_samples(key, &samples, &seeds),
                "key {key}"
            );
        }
    }

    #[test]
    fn lanes_are_reusable_across_shrinking_batches() {
        let batch = oblivious_batch();
        let mut lanes = ObliviousLanes::new();
        lanes.fill_from_outcomes(&batch);
        lanes.fill_from_outcomes(&batch[..1]);
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes.value_lane(0), &[3.0]);
        lanes.fill_from_outcomes(&[]);
        assert!(lanes.is_empty());
        assert_eq!(lanes.num_instances(), 0);
    }

    #[test]
    #[should_panic(expected = "same instance count")]
    fn ragged_batches_rejected() {
        let mut lanes = ObliviousLanes::new();
        lanes.fill_from_outcomes(&[
            ObliviousOutcome::new(vec![ObliviousEntry {
                p: 0.5,
                value: None,
            }]),
            ObliviousOutcome::new(vec![
                ObliviousEntry {
                    p: 0.5,
                    value: None,
                },
                ObliviousEntry {
                    p: 0.5,
                    value: None,
                },
            ]),
        ]);
    }

    #[test]
    #[should_panic(expected = "weight-oblivious")]
    fn oblivious_fill_rejects_weighted_samples() {
        let s = InstanceSample::new(
            0,
            SampleScheme::PpsPoisson { tau_star: 2.0 },
            2.0,
            [(1, 1.0)],
        );
        let mut lanes = ObliviousLanes::new();
        lanes.fill_from_samples(&[1], std::slice::from_ref(&s));
    }
}
