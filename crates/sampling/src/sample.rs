//! The result of summarizing one instance: an [`InstanceSample`].
//!
//! A sample stores the sampled keys with their exact values plus just enough
//! metadata (the scheme and its threshold) to recompute per-key inclusion
//! probabilities — which is all downstream estimators need.  For bottom-k
//! samples the stored threshold is the `(k+1)`-st smallest rank, so inclusion
//! probabilities are the *rank-conditioned* (RC) probabilities of
//! Section 7.1, which let bottom-k samples be treated like Poisson samples
//! for estimation purposes.
//!
//! Samples are produced either by a streaming [`Sketch`](crate::Sketch)
//! (`ingest` → `merge` → `finalize`) or by the batch `sample()` wrappers,
//! which are thin shims over the same sketches.  Entries are stored **sorted
//! by key**, so iteration order, equality, and report output are
//! deterministic across processes — two runs with the same seeds produce
//! bit-identical samples regardless of ingestion sharding.

use pie_store::StoreError;

use crate::instance::Key;

/// Which rank family a rank-based sampler used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankKind {
    /// PPS ranks `u/w` (priority sampling when used with bottom-k).
    Pps,
    /// Exponential ranks `−ln(1−u)/w` (weighted sampling without replacement).
    Exp,
}

/// The sampling scheme that produced an [`InstanceSample`], with the
/// parameters needed to recompute inclusion probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleScheme {
    /// Weight-oblivious Poisson sampling: every key of the universe is kept
    /// independently with probability `p`, regardless of its value.
    ObliviousPoisson {
        /// Per-key inclusion probability.
        p: f64,
    },
    /// Weighted Poisson PPS sampling: a key of value `v` is kept with
    /// probability `min(1, v / tau_star)`.
    PpsPoisson {
        /// The PPS threshold τ*.
        tau_star: f64,
    },
    /// Bottom-k (order) sampling with the given rank family.  `threshold` on
    /// the sample is the `(k+1)`-st smallest rank; conditioned on it, a key of
    /// value `v` is included with probability `F_v(threshold)`.
    BottomK {
        /// Sample size.
        k: usize,
        /// Rank family used to draw ranks.
        ranks: RankKind,
    },
    /// VarOpt sampling with fixed size `k`; `threshold` on the sample is the
    /// VarOpt threshold τ, and a key of value `v` has inclusion probability
    /// `min(1, v/τ)`.
    VarOpt {
        /// Sample size.
        k: usize,
    },
}

impl SampleScheme {
    /// Whether this scheme is weighted (inclusion depends on the value).
    #[must_use]
    pub fn is_weighted(&self) -> bool {
        !matches!(self, SampleScheme::ObliviousPoisson { .. })
    }
}

/// A summary of one instance: the sampled keys with their values, plus the
/// scheme metadata needed to compute inclusion probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSample {
    /// Index of the instance this sample summarizes (matches the instance's
    /// position in the multi-instance sampling call).
    pub instance_index: u64,
    /// The scheme that produced the sample.
    pub scheme: SampleScheme,
    /// Scheme-specific threshold:
    /// * `ObliviousPoisson` — unused (0),
    /// * `PpsPoisson` — τ* (duplicated for convenience),
    /// * `BottomK` — the `(k+1)`-st smallest rank (`+∞` if fewer than `k+1` keys),
    /// * `VarOpt` — the VarOpt threshold τ.
    pub threshold: f64,
    /// Sampled `(key, value)` pairs, sorted ascending by key.
    entries: Vec<(Key, f64)>,
}

impl InstanceSample {
    /// Creates a sample from its parts.
    ///
    /// `entries` may arrive in any order (a `HashMap`, a drained sketch
    /// buffer, …); they are canonicalized to ascending key order so that
    /// iteration, equality, and rendering are deterministic.  If a key occurs
    /// more than once, the occurrence that survives is unspecified — sketches
    /// and samplers never emit duplicates.
    #[must_use]
    pub fn new(
        instance_index: u64,
        scheme: SampleScheme,
        threshold: f64,
        entries: impl IntoIterator<Item = (Key, f64)>,
    ) -> Self {
        let mut entries: Vec<(Key, f64)> = entries.into_iter().collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        entries.dedup_by_key(|&mut (k, _)| k);
        Self {
            instance_index,
            scheme,
            threshold,
            entries,
        }
    }

    /// Number of sampled keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sample is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` was sampled.
    #[must_use]
    pub fn contains(&self, key: Key) -> bool {
        self.entries.binary_search_by_key(&key, |&(k, _)| k).is_ok()
    }

    /// The sampled value of `key`, or `None` if the key was not sampled.
    #[must_use]
    pub fn value(&self, key: Key) -> Option<f64> {
        self.entries
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Iterator over sampled `(key, value)` pairs in ascending key order
    /// (deterministic across runs and processes).
    pub fn iter(&self) -> impl Iterator<Item = (Key, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The sampled `(key, value)` pairs as a slice, sorted ascending by key.
    #[must_use]
    pub fn entries(&self) -> &[(Key, f64)] {
        &self.entries
    }

    /// Writes this sample's value/presence lanes for `keys` in one merge-join
    /// pass: `value[i]` gets the sampled value of `keys[i]` (or `0.0`), and
    /// `present[i]` gets `1.0` where sampled, `0.0` otherwise.
    ///
    /// `keys` must be sorted ascending (the key-union invariant); the walk is
    /// then `O(keys.len() + sample_len)` instead of a binary search per key.
    ///
    /// # Panics
    /// Panics if the output slices do not match `keys` in length.
    pub fn fill_value_lane(&self, keys: &[Key], value: &mut [f64], present: &mut [f64]) {
        assert_eq!(keys.len(), value.len(), "value lane length mismatch");
        assert_eq!(keys.len(), present.len(), "present lane length mismatch");
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "fill_value_lane requires strictly ascending keys"
        );
        let mut cursor = 0usize;
        for ((slot_v, slot_m), &key) in value.iter_mut().zip(present.iter_mut()).zip(keys) {
            while cursor < self.entries.len() && self.entries[cursor].0 < key {
                cursor += 1;
            }
            if cursor < self.entries.len() && self.entries[cursor].0 == key {
                *slot_v = self.entries[cursor].1;
                *slot_m = 1.0;
            } else {
                *slot_v = 0.0;
                *slot_m = 0.0;
            }
        }
    }

    /// Sampled keys sorted ascending (deterministic order for reports/tests).
    #[must_use]
    pub fn sorted_keys(&self) -> Vec<Key> {
        self.entries.iter().map(|&(k, _)| k).collect()
    }

    /// The inclusion probability of a key with value `value` under this
    /// sample's scheme (conditioned on the stored threshold for bottom-k).
    ///
    /// This is the `p` used by Horvitz–Thompson style estimators.  It is well
    /// defined for any value, whether or not the key was sampled.
    #[must_use]
    pub fn inclusion_probability(&self, value: f64) -> f64 {
        match self.scheme {
            SampleScheme::ObliviousPoisson { p } => p,
            SampleScheme::PpsPoisson { tau_star } => {
                if tau_star <= 0.0 {
                    1.0
                } else {
                    (value / tau_star).clamp(0.0, 1.0)
                }
            }
            SampleScheme::BottomK { ranks, .. } => {
                if !self.threshold.is_finite() {
                    // Fewer than k+1 keys: everything with positive value is kept.
                    if value > 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    match ranks {
                        RankKind::Pps => (value * self.threshold).clamp(0.0, 1.0),
                        RankKind::Exp => -(-value * self.threshold).exp_m1(),
                    }
                }
            }
            SampleScheme::VarOpt { .. } => {
                if self.threshold <= 0.0 {
                    if value > 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    (value / self.threshold).clamp(0.0, 1.0)
                }
            }
        }
    }

    /// The Horvitz–Thompson estimate of the total value of all keys in a
    /// selected subset, `Σ_{h ∈ K'} v(h)` (a single-instance subset-sum query).
    ///
    /// `select` decides membership of a key in the queried subset `K'`.
    #[must_use]
    pub fn ht_subset_sum<F: Fn(Key) -> bool>(&self, select: F) -> f64 {
        self.iter()
            .filter(|&(k, _)| select(k))
            .map(|(_, v)| {
                let p = self.inclusion_probability(v);
                if p > 0.0 {
                    v / p
                } else {
                    0.0
                }
            })
            .sum()
    }
}

impl pie_store::Encode for RankKind {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        let tag: u32 = match self {
            Self::Pps => 0,
            Self::Exp => 1,
        };
        tag.encode(w)
    }
}

impl pie_store::Decode for RankKind {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        match u32::decode(r)? {
            0 => Ok(Self::Pps),
            1 => Ok(Self::Exp),
            tag => Err(StoreError::InvalidTag {
                what: "RankKind",
                tag,
            }),
        }
    }
}

impl pie_store::Encode for SampleScheme {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        match *self {
            Self::ObliviousPoisson { p } => {
                0u32.encode(w)?;
                p.encode(w)
            }
            Self::PpsPoisson { tau_star } => {
                1u32.encode(w)?;
                tau_star.encode(w)
            }
            Self::BottomK { k, ranks } => {
                2u32.encode(w)?;
                k.encode(w)?;
                ranks.encode(w)
            }
            Self::VarOpt { k } => {
                3u32.encode(w)?;
                k.encode(w)
            }
        }
    }
}

impl pie_store::Decode for SampleScheme {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        match u32::decode(r)? {
            0 => Ok(Self::ObliviousPoisson { p: f64::decode(r)? }),
            1 => Ok(Self::PpsPoisson {
                tau_star: f64::decode(r)?,
            }),
            2 => Ok(Self::BottomK {
                k: usize::decode(r)?,
                ranks: RankKind::decode(r)?,
            }),
            3 => Ok(Self::VarOpt {
                k: usize::decode(r)?,
            }),
            tag => Err(StoreError::InvalidTag {
                what: "SampleScheme",
                tag,
            }),
        }
    }
}

impl pie_store::Encode for InstanceSample {
    /// Entries are stored key-sorted already, so the encoding is canonical:
    /// equal samples produce identical bytes.
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        self.instance_index.encode(w)?;
        self.scheme.encode(w)?;
        self.threshold.encode(w)?;
        self.entries.encode(w)
    }
}

impl pie_store::Decode for InstanceSample {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        let instance_index = u64::decode(r)?;
        let scheme = SampleScheme::decode(r)?;
        let threshold = f64::decode(r)?;
        let entries: Vec<(Key, f64)> = Vec::decode(r)?;
        // The strictly-ascending key order is the invariant every accessor
        // (binary search, deterministic iteration) relies on; reject inputs
        // that violate it rather than silently re-sorting, so a decoded
        // sample is guaranteed byte-identical to its source.
        if entries.windows(2).any(|pair| pair[0].0 >= pair[1].0) {
            return Err(StoreError::InvalidValue {
                what: "InstanceSample entries must be strictly ascending by key",
            });
        }
        Ok(Self {
            instance_index,
            scheme,
            threshold,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_with(scheme: SampleScheme, threshold: f64) -> InstanceSample {
        InstanceSample::new(0, scheme, threshold, [(2, 0.5), (1, 10.0)])
    }

    #[test]
    fn oblivious_inclusion_probability_is_constant() {
        let s = sample_with(SampleScheme::ObliviousPoisson { p: 0.3 }, 0.0);
        assert_eq!(s.inclusion_probability(10.0), 0.3);
        assert_eq!(s.inclusion_probability(0.0), 0.3);
    }

    #[test]
    fn pps_inclusion_probability_caps_at_one() {
        let s = sample_with(SampleScheme::PpsPoisson { tau_star: 4.0 }, 4.0);
        assert_eq!(s.inclusion_probability(2.0), 0.5);
        assert_eq!(s.inclusion_probability(8.0), 1.0);
        assert_eq!(s.inclusion_probability(0.0), 0.0);
    }

    #[test]
    fn bottomk_pps_rank_conditioned_probability() {
        let s = sample_with(
            SampleScheme::BottomK {
                k: 2,
                ranks: RankKind::Pps,
            },
            0.1,
        );
        // rank = u/v < 0.1  ⇔  u < 0.1 v ⇒ probability min(1, 0.1 v)
        assert!((s.inclusion_probability(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.inclusion_probability(100.0), 1.0);
    }

    #[test]
    fn bottomk_exp_rank_conditioned_probability() {
        let s = sample_with(
            SampleScheme::BottomK {
                k: 2,
                ranks: RankKind::Exp,
            },
            0.2,
        );
        let expected = 1.0 - (-0.2f64 * 3.0).exp();
        assert!((s.inclusion_probability(3.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn bottomk_infinite_threshold_keeps_positive_keys() {
        let s = sample_with(
            SampleScheme::BottomK {
                k: 10,
                ranks: RankKind::Pps,
            },
            f64::INFINITY,
        );
        assert_eq!(s.inclusion_probability(1.0), 1.0);
        assert_eq!(s.inclusion_probability(0.0), 0.0);
    }

    #[test]
    fn ht_subset_sum_uses_inclusion_probability() {
        let s = sample_with(SampleScheme::PpsPoisson { tau_star: 20.0 }, 20.0);
        // key 1 value 10 => p = 0.5 => contributes 20; key 2 value 0.5 => p = 0.025 => 20.
        let total = s.ht_subset_sum(|_| true);
        assert!((total - 40.0).abs() < 1e-9);
        let only_key1 = s.ht_subset_sum(|k| k == 1);
        assert!((only_key1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn accessors() {
        let s = sample_with(SampleScheme::ObliviousPoisson { p: 0.5 }, 0.0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(s.contains(1));
        assert!(!s.contains(3));
        assert_eq!(s.value(2), Some(0.5));
        assert_eq!(s.value(3), None);
        assert_eq!(s.sorted_keys(), vec![1, 2]);
    }

    #[test]
    fn entries_are_canonicalized_to_key_order() {
        let scheme = SampleScheme::ObliviousPoisson { p: 0.5 };
        let a = InstanceSample::new(0, scheme, 0.0, [(5, 1.0), (1, 2.0), (3, 4.0)]);
        let b = InstanceSample::new(0, scheme, 0.0, [(3, 4.0), (5, 1.0), (1, 2.0)]);
        assert_eq!(a, b, "insertion order must not affect equality");
        assert_eq!(a.entries(), &[(1, 2.0), (3, 4.0), (5, 1.0)]);
        let collected: Vec<(Key, f64)> = a.iter().collect();
        assert_eq!(collected, vec![(1, 2.0), (3, 4.0), (5, 1.0)]);
    }

    #[test]
    fn scheme_weighted_flag() {
        assert!(!SampleScheme::ObliviousPoisson { p: 0.1 }.is_weighted());
        assert!(SampleScheme::PpsPoisson { tau_star: 1.0 }.is_weighted());
        assert!(SampleScheme::BottomK {
            k: 3,
            ranks: RankKind::Exp
        }
        .is_weighted());
        assert!(SampleScheme::VarOpt { k: 3 }.is_weighted());
    }
}
