//! The per-instance data model: an assignment of nonnegative values to keys.
//!
//! The paper models data as a matrix of `instances × keys` (Figure 5 (A)); an
//! *instance* is one row — e.g. one hour of traffic logs, one sensor snapshot.
//! Only keys with positive values are explicitly represented (weighted
//! sampling schemes only ever touch those), but weight-oblivious sampling may
//! be applied over an explicit key *universe* that includes zero-valued keys.

use std::collections::HashMap;

/// Key identifiers.  Applications map their natural keys (IP addresses, URLs,
/// sensor ids) to `u64`, typically by hashing.
pub type Key = u64;

/// A single data instance: a finite map from keys to nonnegative values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Instance {
    values: HashMap<Key, f64>,
}

impl Instance {
    /// Creates an empty instance.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an instance from `(key, value)` pairs.
    ///
    /// Later occurrences of the same key overwrite earlier ones.  Values must
    /// be finite and nonnegative.
    ///
    /// # Panics
    /// Panics if any value is negative, NaN, or infinite.
    #[must_use]
    pub fn from_pairs<I: IntoIterator<Item = (Key, f64)>>(pairs: I) -> Self {
        let mut inst = Self::new();
        for (k, v) in pairs {
            inst.set(k, v);
        }
        inst
    }

    /// Sets the value of `key` to `value` (replacing any previous value).
    ///
    /// # Panics
    /// Panics if `value` is negative, NaN, or infinite.
    pub fn set(&mut self, key: Key, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "instance values must be finite and nonnegative, got {value}"
        );
        self.values.insert(key, value);
    }

    /// Adds `delta` to the value of `key` (missing keys start at 0).
    ///
    /// # Panics
    /// Panics if the resulting value would be negative or non-finite.
    pub fn add(&mut self, key: Key, delta: f64) {
        let v = self.values.get(&key).copied().unwrap_or(0.0) + delta;
        self.set(key, v);
    }

    /// The value of `key`, or 0 if the key is absent.
    ///
    /// Absent keys are semantically zero-valued: the paper's weighted schemes
    /// never sample them, and multi-instance functions treat them as 0.
    #[inline]
    #[must_use]
    pub fn value(&self, key: Key) -> f64 {
        self.values.get(&key).copied().unwrap_or(0.0)
    }

    /// Whether `key` has an explicit (possibly zero) entry.
    #[must_use]
    pub fn contains(&self, key: Key) -> bool {
        self.values.contains_key(&key)
    }

    /// Number of explicitly stored keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the instance stores no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of keys with a strictly positive value ("active" keys).
    #[must_use]
    pub fn active_len(&self) -> usize {
        self.values.values().filter(|&&v| v > 0.0).count()
    }

    /// Iterator over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, f64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterator over keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.values.keys().copied()
    }

    /// Sum of all values (e.g. the total traffic volume of the instance).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.values.values().sum()
    }

    /// The maximum value stored, or 0 for an empty instance.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.values.values().copied().fold(0.0, f64::max)
    }

    /// Returns the keys sorted ascending (useful for deterministic iteration
    /// in tests and reports).
    #[must_use]
    pub fn sorted_keys(&self) -> Vec<Key> {
        let mut ks: Vec<Key> = self.values.keys().copied().collect();
        ks.sort_unstable();
        ks
    }
}

impl FromIterator<(Key, f64)> for Instance {
    fn from_iter<T: IntoIterator<Item = (Key, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

impl pie_store::Encode for Instance {
    /// Entries are written in ascending key order, so the encoding is
    /// canonical: equal instances produce identical bytes even though the
    /// in-memory map iterates in an unspecified order.
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), pie_store::StoreError> {
        (self.values.len() as u64).encode(w)?;
        for key in self.sorted_keys() {
            key.encode(w)?;
            self.value(key).encode(w)?;
        }
        Ok(())
    }
}

impl pie_store::Decode for Instance {
    /// Decoding treats the input as untrusted: keys must be strictly
    /// ascending (the canonical-encoding invariant) and values finite and
    /// nonnegative (the [`Instance::set`] invariant) — violations surface as
    /// typed errors, never as the constructor's panics.
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, pie_store::StoreError> {
        let entries: Vec<(Key, f64)> = Vec::decode(r)?;
        if entries.windows(2).any(|pair| pair[0].0 >= pair[1].0) {
            return Err(pie_store::StoreError::InvalidValue {
                what: "Instance entries must be strictly ascending by key",
            });
        }
        if entries.iter().any(|&(_, v)| !(v.is_finite() && v >= 0.0)) {
            return Err(pie_store::StoreError::InvalidValue {
                what: "Instance values must be finite and nonnegative",
            });
        }
        Ok(Self::from_pairs(entries))
    }
}

/// Returns the union of the key sets of several instances, sorted ascending.
#[must_use]
pub fn key_union(instances: &[Instance]) -> Vec<Key> {
    let mut keys: Vec<Key> = instances.iter().flat_map(Instance::keys).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// The per-key value vector `v = (v_1, …, v_r)` across `r` instances
/// (a column of the instances × keys matrix).
#[must_use]
pub fn value_vector(instances: &[Instance], key: Key) -> Vec<f64> {
    instances.iter().map(|inst| inst.value(key)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_defaults_to_zero() {
        let inst = Instance::from_pairs([(1, 2.0), (2, 3.0)]);
        assert_eq!(inst.value(1), 2.0);
        assert_eq!(inst.value(99), 0.0);
    }

    #[test]
    fn set_overwrites_and_add_accumulates() {
        let mut inst = Instance::new();
        inst.set(5, 1.0);
        inst.set(5, 4.0);
        assert_eq!(inst.value(5), 4.0);
        inst.add(5, 2.0);
        assert_eq!(inst.value(5), 6.0);
        inst.add(6, 1.5);
        assert_eq!(inst.value(6), 1.5);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_values_rejected() {
        let mut inst = Instance::new();
        inst.set(1, -1.0);
    }

    #[test]
    fn active_len_ignores_zeros() {
        let inst = Instance::from_pairs([(1, 0.0), (2, 3.0), (3, 0.0), (4, 1.0)]);
        assert_eq!(inst.len(), 4);
        assert_eq!(inst.active_len(), 2);
    }

    #[test]
    fn totals_and_max() {
        let inst = Instance::from_pairs([(1, 1.0), (2, 2.0), (3, 7.0)]);
        assert_eq!(inst.total(), 10.0);
        assert_eq!(inst.max_value(), 7.0);
        assert_eq!(Instance::new().max_value(), 0.0);
    }

    #[test]
    fn key_union_and_value_vector() {
        let a = Instance::from_pairs([(1, 1.0), (2, 2.0)]);
        let b = Instance::from_pairs([(2, 5.0), (3, 4.0)]);
        let union = key_union(&[a.clone(), b.clone()]);
        assert_eq!(union, vec![1, 2, 3]);
        assert_eq!(value_vector(&[a, b], 2), vec![2.0, 5.0]);
    }

    #[test]
    fn codec_roundtrips_canonically() {
        let inst = Instance::from_pairs([(9, 1.5), (2, 0.0), (5, 3.25)]);
        let bytes = pie_store::encode_to_vec(&inst).unwrap();
        let back: Instance = pie_store::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, inst);
        // Canonical: re-encoding the decoded instance is byte-identical.
        assert_eq!(pie_store::encode_to_vec(&back).unwrap(), bytes);
    }

    #[test]
    fn decode_rejects_unsorted_keys_and_invalid_values() {
        use pie_store::{decode_from_slice, encode_to_vec, StoreError};
        // Duplicate / descending keys.
        let unsorted = encode_to_vec(&vec![(5u64, 1.0f64), (5, 2.0)]).unwrap();
        assert!(matches!(
            decode_from_slice::<Instance>(&unsorted).unwrap_err(),
            StoreError::InvalidValue { .. }
        ));
        // Negative, NaN, and infinite values must be typed errors, not the
        // constructor's panic.
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let bytes = encode_to_vec(&vec![(1u64, bad)]).unwrap();
            assert!(
                matches!(
                    decode_from_slice::<Instance>(&bytes).unwrap_err(),
                    StoreError::InvalidValue { .. }
                ),
                "value {bad}"
            );
        }
    }

    #[test]
    fn from_iterator_collects() {
        let inst: Instance = [(10u64, 1.0), (20, 2.0)].into_iter().collect();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.sorted_keys(), vec![10, 20]);
    }
}
