//! VarOpt sampling (Section 7.1; Cohen–Duffield–Kaplan–Lund–Thorup 2009, Chao 1982).
//!
//! VarOpt produces a *fixed-size* sample of `k` keys with PPS inclusion
//! probabilities (`min(1, v/τ)` for the final threshold τ) and non-positively
//! correlated inclusions, which makes subset-sum estimates variance optimal
//! among fixed-size schemes.
//!
//! The implementation is the classic one-pass reservoir procedure: keys whose
//! value exceeds the current threshold are kept exactly ("large" keys);
//! smaller keys are kept with probability `v/τ` and, when kept, are
//! interchangeable — each arrival above capacity evicts exactly one small key
//! chosen with probability proportional to `1 − v/τ`.
//!
//! The paper notes it is unclear whether "known seeds" can be incorporated
//! into VarOpt; accordingly the sampler draws fresh randomness from an RNG
//! rather than from a hash-seed assignment, and its samples are used for
//! single-instance subset sums and as a baseline, not for the known-seed
//! multi-instance estimators.
//!
//! # Streaming and merging
//!
//! The reservoir is one-pass by construction; [`VarOptScheme`] /
//! [`VarOptSketch`] adapt it to the unified
//! [`SamplingScheme`](crate::SamplingScheme) streaming API, seeding each
//! shard's RNG deterministically from the [`SeedAssignment`].  Shard merge
//! uses the classic *threshold merge* (Cohen–Duffield–Kaplan–Lund–Thorup):
//! each item of the absorbed reservoir re-enters with its **adjusted**
//! weight — its true weight if above that reservoir's threshold, the
//! threshold τ otherwise — so per-key Horvitz–Thompson estimates
//! (`InstanceSample::ht_subset_sum`) stay unbiased for the concatenated
//! stream.  Because eviction randomness is fresh per sketch, merge
//! equivalence is distributional, not bitwise (unlike the hash-seeded
//! schemes).  A merged sample may therefore report an item's adjusted rather
//! than raw weight; estimation, which only consumes `v/p = max(v, τ)`, is
//! unaffected.

use pie_store::StoreError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Instance, Key};
use crate::sample::{InstanceSample, SampleScheme};
use crate::scheme::{sketch_tag, SamplingScheme, Sketch};
use crate::seed::SeedAssignment;

/// One key held by the VarOpt reservoir.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Item {
    key: Key,
    value: f64,
}

/// Streaming VarOpt reservoir of capacity `k`.
#[derive(Debug, Clone)]
pub struct VarOptSampler {
    k: usize,
    /// Keys with value strictly above the current threshold, kept exactly.
    /// Sorted ascending by value so the smallest large item can be demoted in O(1).
    large: Vec<Item>,
    /// Keys at or below the threshold; each currently included with
    /// probability `value / tau`.
    small: Vec<Item>,
    /// Current threshold τ (0 until the reservoir first overflows).
    tau: f64,
    processed: usize,
}

impl VarOptSampler {
    /// Creates an empty VarOpt reservoir of capacity `k > 0`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "VarOpt sample size must be positive");
        Self {
            k,
            large: Vec::with_capacity(k + 1),
            small: Vec::with_capacity(k + 1),
            tau: 0.0,
            processed: 0,
        }
    }

    /// The capacity `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current threshold τ.
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Number of keys offered so far (zero-valued keys are not counted).
    #[must_use]
    pub fn processed(&self) -> usize {
        self.processed
    }

    /// Number of keys currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.large.len() + self.small.len()
    }

    /// Whether the reservoir is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offers one `(key, value)` pair, evicting a key if the reservoir is full.
    ///
    /// Zero-valued keys are ignored.
    ///
    /// # Panics
    /// Panics if `value` is negative or non-finite.
    pub fn offer<RNG: Rng + ?Sized>(&mut self, key: Key, value: f64, rng: &mut RNG) {
        assert!(
            value.is_finite() && value >= 0.0,
            "VarOpt values must be finite and nonnegative, got {value}"
        );
        if value <= 0.0 {
            return;
        }
        self.processed += 1;

        // The newcomer enters with its explicit weight; if it is at or below
        // the eventual threshold it will be demoted (and possibly evicted) in
        // the step below, exactly like a demoted "large" key.
        let pos = self
            .large
            .binary_search_by(|it| it.value.partial_cmp(&value).unwrap())
            .unwrap_or_else(|e| e);
        self.large.insert(pos, Item { key, value });

        if self.len() <= self.k {
            return;
        }

        // Eviction step.  Adjusted weights: a key already in the small bucket
        // counts as the *current* threshold τ (its inclusion probability is
        // v/τ and must become v/τ', so it is kept with probability τ/τ');
        // large keys and the newcomer count with their explicit weights.  The
        // new threshold τ' solves
        //   Σ_i min(1, a_i / τ') = k      over the k+1 adjusted weights,
        // i.e.  τ' = (Σ small-side adjusted weights) / (#small-side − 1).
        // Large keys whose weight falls at or below the candidate threshold
        // are demoted to the small side until the partition is consistent.
        let tau_old = self.tau;
        let n_old_small = self.small.len();
        let old_small_adjusted_sum = n_old_small as f64 * tau_old;
        let mut demoted: Vec<Item> = Vec::new();
        let mut demoted_sum = 0.0f64;
        let t = loop {
            let n_small_side = n_old_small + demoted.len();
            if n_small_side >= 2 {
                let t = (old_small_adjusted_sum + demoted_sum) / (n_small_side as f64 - 1.0);
                match self.large.first() {
                    Some(&Item { value: v, .. }) if v <= t => {
                        let item = self.large.remove(0);
                        demoted_sum += item.value;
                        demoted.push(item);
                    }
                    _ => break t,
                }
            } else {
                // Fewer than two small-side keys: the expectation constraint
                // cannot hold yet, demote the smallest large key unconditionally.
                let item = self.large.remove(0);
                demoted_sum += item.value;
                demoted.push(item);
            }
        };
        debug_assert!(
            t.is_finite() && t >= tau_old && t > 0.0,
            "threshold must be positive and non-decreasing after overflow"
        );
        self.tau = t;

        // Evict exactly one small-side key: an old small key with probability
        // (1 − τ/τ'), a demoted key with probability (1 − v/τ').  These
        // probabilities sum to exactly 1 by the choice of τ'.
        let u: f64 = rng.gen::<f64>();
        let mut acc = 0.0;
        let mut evicted = false;
        for i in 0..self.small.len() {
            acc += 1.0 - tau_old / t;
            if u < acc {
                self.small.swap_remove(i);
                evicted = true;
                break;
            }
        }
        let mut skip_demoted_idx = None;
        if !evicted {
            for (i, it) in demoted.iter().enumerate() {
                acc += 1.0 - it.value / t;
                if u < acc {
                    skip_demoted_idx = Some(i);
                    evicted = true;
                    break;
                }
            }
        }
        if !evicted {
            // Numerical slack: evict the last demoted key (smallest residual
            // probability mass) or, failing that, the last old small key.
            if !demoted.is_empty() {
                skip_demoted_idx = Some(demoted.len() - 1);
            } else {
                self.small.pop();
            }
        }
        for (i, it) in demoted.into_iter().enumerate() {
            if Some(i) != skip_demoted_idx {
                self.small.push(it);
            }
        }
        debug_assert_eq!(self.len(), self.k);
    }

    /// Merges `other` — a reservoir over a disjoint shard of the same stream
    /// — into `self`, draining it (threshold merge).
    ///
    /// Items from `other` re-enter with their adjusted weights: large items
    /// with their true weight, small items with `other`'s threshold τ (their
    /// unbiased adjusted weight), preserving unbiased subset-sum estimation
    /// over the union.  `other` is left empty and reusable.
    ///
    /// # Panics
    /// Panics if the reservoirs have different capacities.
    pub fn merge_from<RNG: Rng + ?Sized>(&mut self, other: &mut Self, rng: &mut RNG) {
        assert_eq!(
            self.k, other.k,
            "cannot merge VarOpt reservoirs of different capacities"
        );
        let processed = self.processed + other.processed;
        let tau_other = other.tau;
        for it in std::mem::take(&mut other.large) {
            self.offer(it.key, it.value, rng);
        }
        for it in std::mem::take(&mut other.small) {
            // A small item's inclusion probability so far is v/τ; offering it
            // at adjusted weight τ and surviving with probability τ/τ' leaves
            // it included with the correct v/τ' overall.
            self.offer(it.key, tau_other, rng);
        }
        self.processed = processed;
        other.tau = 0.0;
        other.processed = 0;
    }

    /// Clears the reservoir for reuse, retaining capacity.
    pub fn clear(&mut self) {
        self.large.clear();
        self.small.clear();
        self.tau = 0.0;
        self.processed = 0;
    }

    /// Finalizes the reservoir into an [`InstanceSample`], draining it (the
    /// reservoir stays reusable).
    #[must_use]
    pub fn take_sample(&mut self, instance_index: u64) -> InstanceSample {
        let tau = self.tau;
        let entries: Vec<(Key, f64)> = self
            .large
            .drain(..)
            .chain(self.small.drain(..))
            .map(|it| (it.key, it.value))
            .collect();
        self.clear();
        InstanceSample::new(
            instance_index,
            SampleScheme::VarOpt { k: self.k },
            tau,
            entries,
        )
    }

    /// Finalizes the reservoir into an [`InstanceSample`].
    #[must_use]
    pub fn finish(mut self, instance_index: u64) -> InstanceSample {
        self.take_sample(instance_index)
    }

    /// Convenience: samples a whole instance in one call.
    ///
    /// Keys are offered in ascending order so that, given the same RNG seed,
    /// the sample is reproducible across processes (hash-map iteration order
    /// is not).
    #[must_use]
    pub fn sample<RNG: Rng + ?Sized>(
        k: usize,
        instance: &Instance,
        rng: &mut RNG,
        instance_index: u64,
    ) -> InstanceSample {
        let mut res = Self::new(k);
        for key in instance.sorted_keys() {
            res.offer(key, instance.value(key), rng);
        }
        res.take_sample(instance_index)
    }
}

/// A [`StdRng`] that remembers its seed and how many draws it has produced.
///
/// VarOpt is the one scheme whose sketch state includes *consumed
/// randomness*, which generic RNGs cannot export.  Wrapping the generator
/// with a draw counter makes the state snapshotable portably: a decoded
/// sketch re-seeds and discards the same number of draws, reproducing the
/// generator position bit for bit — independent of the RNG's internal
/// representation (so snapshots stay valid if the vendored stub is swapped
/// for the real `rand`).
#[derive(Debug, Clone)]
struct ReplayableRng {
    inner: StdRng,
    seed: u64,
    draws: u64,
}

impl ReplayableRng {
    /// Starts a fresh generator from `seed` with zero draws consumed.
    fn from_seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            seed,
            draws: 0,
        }
    }

    /// Reconstructs a generator that has already produced `draws` values
    /// from `seed`, by replaying (and discarding) them.
    fn replay(seed: u64, draws: u64) -> Self {
        let mut rng = Self::from_seed(seed);
        for _ in 0..draws {
            let _ = rng.inner.next_u64();
        }
        rng.draws = draws;
        rng
    }
}

impl Rng for ReplayableRng {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// Configuration of VarOpt sampling for the streaming
/// [`SamplingScheme`] API: a fixed sample size `k`.
///
/// Unlike the hash-seeded schemes, each [`VarOptSketch`] owns an RNG seeded
/// deterministically from the [`SeedAssignment`] via
/// [`SeedAssignment::rng_seed`], so runs are reproducible while distinct
/// shards draw decorrelated eviction randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarOptScheme {
    k: usize,
}

impl VarOptScheme {
    /// Creates the scheme with fixed sample size `k > 0`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "VarOpt sample size must be positive");
        Self { k }
    }

    /// The sample size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }
}

impl SamplingScheme for VarOptScheme {
    type Sketch = VarOptSketch;

    fn name(&self) -> &'static str {
        "varopt"
    }

    fn sketch(&self, seeds: &SeedAssignment, instance_index: u64) -> Self::Sketch {
        self.sketch_for_shard(seeds, instance_index, 0)
    }

    fn sketch_for_shard(
        &self,
        seeds: &SeedAssignment,
        instance_index: u64,
        shard: u64,
    ) -> Self::Sketch {
        VarOptSketch {
            inner: VarOptSampler::new(self.k),
            rng: ReplayableRng::from_seed(seeds.rng_seed(instance_index, shard)),
            shard,
            instance_index,
        }
    }
}

/// Streaming VarOpt state: a fixed-size reservoir plus the sketch-local RNG
/// driving its evictions.
#[derive(Debug, Clone)]
pub struct VarOptSketch {
    inner: VarOptSampler,
    rng: ReplayableRng,
    shard: u64,
    instance_index: u64,
}

impl VarOptSketch {
    /// The current VarOpt threshold τ.
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.inner.tau()
    }
}

impl Sketch for VarOptSketch {
    fn ingest(&mut self, key: Key, weight: f64) {
        self.inner.offer(key, weight, &mut self.rng);
    }

    fn merge(&mut self, other: &mut Self) {
        assert_eq!(
            self.instance_index, other.instance_index,
            "cannot merge VarOpt sketches of different instances"
        );
        self.inner.merge_from(&mut other.inner, &mut self.rng);
    }

    fn finalize(&mut self) -> InstanceSample {
        self.inner.take_sample(self.instance_index)
    }

    fn reset(&mut self, seeds: &SeedAssignment, instance_index: u64) {
        self.instance_index = instance_index;
        self.rng = ReplayableRng::from_seed(seeds.rng_seed(instance_index, self.shard));
        self.inner.clear();
    }

    fn ingested(&self) -> usize {
        self.inner.processed()
    }
}

impl pie_store::Encode for VarOptSketch {
    /// Unlike the hash-seeded sketches, both reservoir vectors are written in
    /// their exact in-memory order: eviction probabilities iterate the small
    /// bucket positionally, so the order *is* part of the sketch state.  The
    /// RNG is stored as `(seed, draws-consumed)` and replayed on decode.
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        sketch_tag::VAR_OPT.encode(w)?;
        self.inner.k.encode(w)?;
        self.inner.tau.encode(w)?;
        self.inner.processed.encode(w)?;
        let write_items = |items: &[Item], w: &mut dyn std::io::Write| -> Result<(), StoreError> {
            items.len().encode(w)?;
            for it in items {
                it.key.encode(w)?;
                it.value.encode(w)?;
            }
            Ok(())
        };
        write_items(&self.inner.large, w)?;
        write_items(&self.inner.small, w)?;
        self.rng.seed.encode(w)?;
        self.rng.draws.encode(w)?;
        self.shard.encode(w)?;
        self.instance_index.encode(w)
    }
}

impl pie_store::Decode for VarOptSketch {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        let tag = u32::decode(r)?;
        if tag != sketch_tag::VAR_OPT {
            return Err(StoreError::InvalidTag {
                what: "VarOptSketch",
                tag,
            });
        }
        let k = usize::decode(r)?;
        if k == 0 {
            return Err(StoreError::InvalidValue {
                what: "VarOpt sample size must be positive",
            });
        }
        let tau = f64::decode(r)?;
        if !(tau.is_finite() && tau >= 0.0) {
            return Err(StoreError::InvalidValue {
                what: "VarOpt threshold must be finite and nonnegative",
            });
        }
        let processed = usize::decode(r)?;
        let read_items = |r: &mut dyn std::io::Read| -> Result<Vec<Item>, StoreError> {
            let len = usize::decode(r)?;
            let mut items = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                let key = Key::decode(r)?;
                let value = f64::decode(r)?;
                if !(value.is_finite() && value > 0.0) {
                    return Err(StoreError::InvalidValue {
                        what: "VarOpt reservoir values must be finite and positive",
                    });
                }
                items.push(Item { key, value });
            }
            Ok(items)
        };
        let large = read_items(r)?;
        let small = read_items(r)?;
        if large.len() + small.len() > k + 1 {
            return Err(StoreError::InvalidValue {
                what: "VarOpt reservoir holds more than k + 1 items",
            });
        }
        if large.windows(2).any(|pair| pair[0].value > pair[1].value) {
            return Err(StoreError::InvalidValue {
                what: "VarOpt large bucket must be sorted ascending by value",
            });
        }
        let seed = u64::decode(r)?;
        let draws = u64::decode(r)?;
        Ok(Self {
            inner: VarOptSampler {
                k,
                large,
                small,
                tau,
                processed,
            },
            rng: ReplayableRng::replay(seed, draws),
            shard: u64::decode(r)?,
            instance_index: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_size_is_exactly_k() {
        let inst = Instance::from_pairs((0..1000u64).map(|k| (k, 1.0 + (k % 9) as f64)));
        let mut rng = StdRng::seed_from_u64(1);
        let s = VarOptSampler::sample(64, &inst, &mut rng, 0);
        assert_eq!(s.len(), 64);
        assert!(s.threshold > 0.0);
    }

    #[test]
    fn small_inputs_kept_entirely() {
        let inst = Instance::from_pairs((0..10u64).map(|k| (k, 1.0)));
        let mut rng = StdRng::seed_from_u64(2);
        let s = VarOptSampler::sample(64, &inst, &mut rng, 0);
        assert_eq!(s.len(), 10);
        assert_eq!(s.threshold, 0.0);
    }

    #[test]
    fn heavy_keys_always_kept() {
        let mut inst = Instance::from_pairs((0..500u64).map(|k| (k, 1.0)));
        inst.set(9999, 1_000.0);
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = VarOptSampler::sample(16, &inst, &mut rng, 0);
            assert!(s.contains(9999), "heavy key evicted with rng seed {seed}");
        }
    }

    #[test]
    fn zero_values_ignored() {
        let inst = Instance::from_pairs([(1, 0.0), (2, 3.0)]);
        let mut rng = StdRng::seed_from_u64(3);
        let s = VarOptSampler::sample(4, &inst, &mut rng, 0);
        assert!(!s.contains(1));
        assert!(s.contains(2));
    }

    #[test]
    fn subset_sum_estimates_are_unbiased() {
        // HT (adjusted-weight) estimate of the total should be unbiased.
        let inst = Instance::from_pairs((0..300u64).map(|k| (k, 0.5 + (k % 13) as f64)));
        let truth = inst.total();
        let reps = 600;
        let mut sum = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = VarOptSampler::sample(40, &inst, &mut rng, 0);
            sum += s.ht_subset_sum(|_| true);
        }
        let mean = sum / reps as f64;
        let rel_err = (mean - truth).abs() / truth;
        assert!(rel_err < 0.05, "relative bias {rel_err}");
    }

    #[test]
    fn subset_sum_estimates_of_selection_are_unbiased() {
        let inst = Instance::from_pairs((0..300u64).map(|k| (k, 0.5 + (k % 13) as f64)));
        let truth: f64 = inst
            .iter()
            .filter(|(k, _)| k % 3 == 0)
            .map(|(_, v)| v)
            .sum();
        let reps = 800;
        let mut sum = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(10_000 + seed);
            let s = VarOptSampler::sample(40, &inst, &mut rng, 0);
            sum += s.ht_subset_sum(|k| k % 3 == 0);
        }
        let mean = sum / reps as f64;
        let rel_err = (mean - truth).abs() / truth;
        assert!(rel_err < 0.07, "relative bias {rel_err}");
    }

    #[test]
    fn inclusion_probability_matches_empirical_rate() {
        // A key with value v should be included with probability about min(1, v/τ);
        // check a light key's empirical inclusion rate against the average reported
        // probability.
        let mut inst = Instance::from_pairs((0..200u64).map(|k| (k, 2.0)));
        inst.set(777, 1.0); // the light key under test
        let reps = 2000;
        let mut hits = 0;
        let mut prob_sum = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = VarOptSampler::sample(50, &inst, &mut rng, 0);
            prob_sum += s.inclusion_probability(1.0);
            if s.contains(777) {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(reps as u32);
        let avg_prob = prob_sum / f64::from(reps as u32);
        assert!(
            (rate - avg_prob).abs() < 0.05,
            "rate {rate} vs reported probability {avg_prob}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = VarOptSampler::new(0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_value_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut v = VarOptSampler::new(4);
        v.offer(1, -2.0, &mut rng);
    }
}
